"""Execute the documentation's fenced Python snippets against a live server.

``make docs-check`` runs this script so the quickstart code in
``README.md``, ``docs/API.md`` and ``docs/OPERATIONS.md`` cannot rot:
every fenced
```` ```python ```` block is executed in its own namespace, with a real
in-process :class:`~repro.service.server.YaskHTTPServer` (hotels
dataset, 4 spatial shards) listening on an ephemeral port.  Snippets
written against the documented default endpoint
``http://127.0.0.1:8080`` are rewritten to the live endpoint before
execution, so they run verbatim as a reader would paste them.

A block can opt out by placing ``<!-- docs-check: skip -->`` on any of
the three lines above its opening fence (for illustrative fragments
that are not self-contained).  Snippet stdout is captured and shown
only on failure.

Snippets that spawn threads (the batching and concurrency examples) are
checked for *thread* failures too: a ``threading.excepthook`` installed
around each execution records any exception escaping a snippet-spawned
thread, every thread the snippet started is joined before moving on,
and a recorded thread failure fails the run with the same ``file:line``
report as a synchronous raise — previously those died silently inside
the thread and the check passed.
"""

from __future__ import annotations

import io
import re
import sys
import threading
import traceback
from contextlib import redirect_stdout
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DOC_FILES = ("README.md", "docs/API.md", "docs/OPERATIONS.md")
SKIP_MARKER = "<!-- docs-check: skip -->"
DOCUMENTED_ENDPOINT = "http://127.0.0.1:8080"

_FENCE = re.compile(r"^```python\s*$")
_FENCE_END = re.compile(r"^```\s*$")


def extract_snippets(path: Path) -> list[tuple[int, str]]:
    """``(first line number, source)`` of every runnable python fence."""
    lines = path.read_text(encoding="utf-8").splitlines()
    snippets: list[tuple[int, str]] = []
    inside = False
    start = 0
    buffer: list[str] = []
    for number, line in enumerate(lines, start=1):
        if not inside and _FENCE.match(line):
            context = lines[max(0, number - 4) : number - 1]
            if any(SKIP_MARKER in previous for previous in context):
                continue
            inside = True
            start = number + 1
            buffer = []
        elif inside and _FENCE_END.match(line):
            inside = False
            snippets.append((start, "\n".join(buffer)))
        elif inside:
            buffer.append(line)
    return snippets


@dataclass
class SnippetFailure:
    """Why one snippet failed: where, its output, and the traceback(s)."""

    label: str  # "file.md:line"
    output: str
    traceback_text: str
    in_thread: bool

    def report(self, source: str) -> str:
        where = " (in a snippet-spawned thread)" if self.in_thread else ""
        return "\n".join(
            [
                f"docs-check: snippet at {self.label} FAILED{where}",
                "--- snippet ---",
                source,
                "--- output ---",
                self.output,
                "--- traceback ---",
                self.traceback_text,
            ]
        )


def execute_snippet(label: str, runnable: str) -> SnippetFailure | None:
    """Run one snippet; ``None`` on success, a failure record otherwise.

    Failures *inside snippet-spawned threads* count: a thread-scoped
    ``threading.excepthook`` collects them, and every thread the
    snippet started is joined (bounded) before the verdict, so a
    slow-failing worker cannot outlive its snippet and be missed.
    """
    namespace: dict[str, object] = {"__name__": "__docs_check__"}
    stdout = io.StringIO()
    thread_tracebacks: list[str] = []
    threads_before = set(threading.enumerate())
    previous_hook = threading.excepthook

    def record_thread_exception(args: "threading.ExceptHookArgs") -> None:
        thread_tracebacks.append(
            "".join(
                traceback.format_exception(
                    args.exc_type, args.exc_value, args.exc_traceback
                )
            )
        )

    threading.excepthook = record_thread_exception
    try:
        try:
            with redirect_stdout(stdout):
                exec(compile(runnable, label, "exec"), namespace)
        except Exception:
            return SnippetFailure(
                label=label,
                output=stdout.getvalue(),
                traceback_text=traceback.format_exc(),
                in_thread=False,
            )
        for thread in set(threading.enumerate()) - threads_before:
            thread.join(timeout=30.0)
    finally:
        threading.excepthook = previous_hook
    if thread_tracebacks:
        return SnippetFailure(
            label=label,
            output=stdout.getvalue(),
            traceback_text="\n".join(thread_tracebacks),
            in_thread=True,
        )
    return None


def main() -> int:
    from repro.datasets.hotels import hong_kong_hotels
    from repro.service.api import YaskEngine
    from repro.service.server import YaskHTTPServer

    server = YaskHTTPServer(
        YaskEngine(hong_kong_hotels(), shards=4), host="127.0.0.1", port=0
    )
    server.start_background()
    failures = 0
    executed = 0
    try:
        for name in DOC_FILES:
            path = REPO_ROOT / name
            for line, source in extract_snippets(path):
                executed += 1
                runnable = source.replace(DOCUMENTED_ENDPOINT, server.endpoint)
                failure = execute_snippet(f"{name}:{line}", runnable)
                if failure is not None:
                    failures += 1
                    print(failure.report(source))
    finally:
        server.shutdown()
        server.server_close()
    if failures:
        print(f"docs-check: {failures} of {executed} doc snippet(s) failed")
        return 1
    print(
        f"docs-check ok: {executed} fenced Python snippet(s) from "
        f"{', '.join(DOC_FILES)} executed against a live server"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
