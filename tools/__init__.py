"""Repo-root developer tooling (not part of the installed ``repro`` package)."""
