"""yasklint: AST-based static analysis for YASK project invariants.

The framework half of :mod:`tools.analysis`: a checker runner with a
pluggable rule registry, per-line suppressions, path-scoped rule
configuration and human/JSON output.  The rules themselves live in
:mod:`tools.analysis.yasklint.rules`; each encodes an invariant the
codebase relies on but Python does not enforce (see
``docs/DEVELOPMENT.md`` for the catalogue).

Vocabulary
----------

* A **rule** is a callable ``(File) -> Iterable[Violation]`` registered
  under a stable id (``YASK101``) with a :class:`Scope` restricting the
  paths it applies to and an optional set of **approved** paths that
  are exempt by design (e.g. ``service/wal.py`` owns the atomic-write
  helpers the rest of ``service/`` must go through).
* A **suppression** is an inline comment::

      risky_line()  # yasklint: disable=YASK103 -- exact parity audit

  The ``--`` justification is mandatory: an unjustified suppression is
  itself a violation (YASK100).  ``disable`` with no ``=RULE`` list
  suppresses every rule on that line (still requires a justification).

Run it as ``python -m tools.analysis.yasklint src`` (what ``make
lint`` does) or with ``--format json`` for machine-readable output.
"""

from __future__ import annotations

import ast
import fnmatch
import json
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Protocol

SUPPRESS_RE = re.compile(
    r"#\s*yasklint:\s*disable(?:=(?P<rules>[A-Za-z0-9_,\s]+?))?"
    r"\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and what to do about it."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format_human(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def format_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# yasklint: disable`` comment on one line."""

    line: int
    rules: frozenset[str]  # empty == all rules
    reason: str

    def covers(self, rule_id: str) -> bool:
        return not self.rules or rule_id in self.rules


@dataclass
class File:
    """One parsed source file handed to every applicable rule."""

    path: Path
    relpath: str  # posix-style, relative to the scan root
    source: str
    tree: ast.Module
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, root: Path) -> "File":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:  # linting a file outside the root
            relpath = path.as_posix()
        return cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            suppressions=_parse_suppressions(source),
        )


def _parse_suppressions(source: str) -> dict[int, Suppression]:
    """Map line number -> suppression for every ``yasklint:`` comment."""
    suppressions: dict[int, Suppression] = {}
    readline = iter(source.splitlines(keepends=True)).__next__
    try:
        tokens = list(tokenize.generate_tokens(readline))
    except tokenize.TokenError:  # unterminated string etc.: ast.parse said ok
        tokens = []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        raw_rules = match.group("rules") or ""
        rules = frozenset(
            rule.strip().upper() for rule in raw_rules.split(",") if rule.strip()
        )
        suppressions[token.start[0]] = Suppression(
            line=token.start[0],
            rules=rules,
            reason=(match.group("reason") or "").strip(),
        )
    return suppressions


@dataclass(frozen=True)
class Scope:
    """Which files a rule applies to, as globs over the posix relpath.

    ``include`` gates the rule on; ``approved`` exempts modules that
    implement the invariant itself (the mechanism behind "outside
    approved modules" wording in the rule catalogue).
    """

    include: tuple[str, ...] = ("**/*.py",)
    approved: tuple[str, ...] = ()

    def applies(self, relpath: str) -> bool:
        return _matches(relpath, self.include) and not _matches(relpath, self.approved)


def _matches(relpath: str, patterns: tuple[str, ...]) -> bool:
    return any(
        fnmatch.fnmatch(relpath, pattern) or fnmatch.fnmatch(Path(relpath).name, pattern)
        for pattern in patterns
    )


class RuleCheck(Protocol):
    def __call__(self, file: File) -> Iterable[Violation]: ...


@dataclass(frozen=True)
class Rule:
    """A registered rule: id, one-line contract, scope and checker."""

    rule_id: str
    summary: str
    scope: Scope
    check: RuleCheck


_REGISTRY: dict[str, Rule] = {}


def register(rule_id: str, summary: str, scope: Scope) -> Callable[[RuleCheck], RuleCheck]:
    """Class/function decorator adding a checker to the registry."""

    def wrap(check: RuleCheck) -> RuleCheck:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate yasklint rule id {rule_id}")
        _REGISTRY[rule_id] = Rule(rule_id, summary, scope, check)
        return check

    return wrap


def registered_rules() -> tuple[Rule, ...]:
    """All rules, id-sorted (importing :mod:`.rules` to populate)."""
    from tools.analysis.yasklint import rules as _rules  # noqa: F401

    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def check_file(file: File, rules: Iterable[Rule] | None = None) -> list[Violation]:
    """Run every applicable rule on one file and apply suppressions."""
    if rules is None:
        rules = registered_rules()
    raw: list[Violation] = []
    for rule in rules:
        if rule.scope.applies(file.relpath):
            raw.extend(rule.check(file))
    kept: list[Violation] = []
    for violation in raw:
        suppression = file.suppressions.get(violation.line)
        if suppression is not None and suppression.covers(violation.rule_id):
            if suppression.reason:
                continue
            # Unjustified suppression: keep the original finding AND
            # let YASK100 (below) flag the comment itself.
        kept.append(violation)
    for line, suppression in sorted(file.suppressions.items()):
        if not suppression.reason:
            kept.append(
                Violation(
                    path=file.relpath,
                    line=line,
                    col=0,
                    rule_id="YASK100",
                    message=(
                        "suppression without justification; write "
                        "'# yasklint: disable=RULE -- why this line is exempt'"
                    ),
                )
            )
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return kept


def run(
    paths: Iterable[Path], root: Path, rules: Iterable[Rule] | None = None
) -> tuple[list[Violation], int]:
    """Lint ``paths``; returns (violations, files scanned)."""
    if rules is None:
        rules = registered_rules()
    rules = tuple(rules)
    violations: list[Violation] = []
    scanned = 0
    for path in iter_python_files(paths):
        scanned += 1
        file = File.load(path, root)
        violations.extend(check_file(file, rules))
    return violations, scanned


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="yasklint", description="YASK project-invariant static analysis"
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument("--format", choices=("human", "json"), default="human")
    parser.add_argument(
        "--root", default=".", help="path the reported relpaths are relative to"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in registered_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        return 0

    root = Path(options.root)
    violations, scanned = run([Path(p) for p in options.paths], root)
    if options.format == "json":
        print(json.dumps([v.format_json() for v in violations], indent=2))
    else:
        for violation in violations:
            print(violation.format_human())
        status = "clean" if not violations else f"{len(violations)} violation(s)"
        print(f"yasklint: {scanned} file(s) scanned, {status}", file=sys.stderr)
    return 1 if violations else 0
