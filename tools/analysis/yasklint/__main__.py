"""``python -m tools.analysis.yasklint`` entry point."""

import sys

from tools.analysis.yasklint import main

if __name__ == "__main__":
    sys.exit(main())
