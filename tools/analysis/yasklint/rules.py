"""The yasklint rule catalogue: YASK project invariants as AST checks.

Each rule documents *which convention it encodes and why the codebase
depends on it*; ``docs/DEVELOPMENT.md`` carries the operator-facing
catalogue.  Scope patterns are :mod:`fnmatch` globs over the scanned
relpath (slash-agnostic, so they work from any scan root); ``approved``
paths are the modules that implement the invariant and are therefore
exempt inside it.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from tools.analysis.yasklint import File, Scope, Violation, register

# ---------------------------------------------------------------------------
# helpers


def _terminal_name(node: ast.expr) -> str:
    """The last identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _receiver_names(node: ast.expr) -> tuple[str, ...]:
    """Every identifier along a Name/Attribute chain, outermost last."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def _violation(file: File, node: ast.AST, rule_id: str, message: str) -> Violation:
    return Violation(
        path=file.relpath,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        rule_id=rule_id,
        message=message,
    )


# ---------------------------------------------------------------------------
# YASK101 — mutations must flow through the engine's write-ahead path


@register(
    "YASK101",
    "no direct MutableDatabase.apply / WAL writes outside the engine's "
    "write-ahead path (api.py, wal.py, mutations.py)",
    Scope(
        include=("*repro/*",),
        approved=(
            "*repro/service/api.py",
            "*repro/service/wal.py",
            "*repro/core/mutations.py",
        ),
    ),
)
def check_mutation_path(file: File) -> Iterator[Violation]:
    """Durability rests on WAL-append-then-apply under one write lock.

    ``YaskEngine.apply_mutations`` is the only correct entry point: it
    appends to the WAL *inside* ``MutableDatabase.apply(pre_commit=)``
    so a batch is either logged-and-applied or neither.  Calling
    ``.apply`` on a mutable database, ``.append``/``.write_snapshot``
    on a WAL, or constructing mutation coordinators elsewhere silently
    forks the history the recovery path replays.
    """
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        method = node.func.attr
        receiver = _receiver_names(node.func.value)
        terminal = receiver[-1] if receiver else ""
        lowered = terminal.lower()
        if method == "apply" and ("mutable" in lowered or "coordinator" in lowered):
            yield _violation(
                file,
                node,
                "YASK101",
                f"direct {terminal}.apply() bypasses the write-ahead path; "
                "go through YaskEngine.apply_mutations",
            )
        elif method in {"append", "write_snapshot"} and (
            lowered in {"wal", "_wal", "log", "write_ahead_log"} or "wal" in lowered
        ):
            yield _violation(
                file,
                node,
                "YASK101",
                f"direct {terminal}.{method}() writes the WAL outside the "
                "engine's write-ahead path; go through YaskEngine",
            )


# ---------------------------------------------------------------------------
# YASK102 — service-tier file writes must be atomic (tmp + os.replace)


@register(
    "YASK102",
    "file writes under service/ must use wal.py's tmp+os.replace atomic "
    "pattern, never a bare open-for-write",
    Scope(include=("*repro/service/*",), approved=("*repro/service/wal.py",)),
)
def check_atomic_writes(file: File) -> Iterator[Violation]:
    """Crash recovery assumes every on-disk artefact is whole.

    The WAL/snapshot/manifest machinery writes to a ``*.tmp`` sibling,
    fsyncs, then ``os.replace``s into place so a crash can never leave
    a half-written file where the recovery scan looks.  A bare
    ``open(path, "w")`` anywhere else in the service tier breaks that
    guarantee; route writes through ``wal.py``'s helpers.
    """
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            mode = ""
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
                mode = str(node.args[1].value)
            for keyword in node.keywords:
                if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
                    mode = str(keyword.value.value)
            if any(flag in mode for flag in "wax+"):
                yield _violation(
                    file,
                    node,
                    "YASK102",
                    f"open(..., {mode!r}) writes in place; use the tmp + "
                    "os.replace atomic pattern (see service/wal.py)",
                )
        elif isinstance(func, ast.Attribute) and func.attr in {
            "write_text",
            "write_bytes",
        }:
            yield _violation(
                file,
                node,
                "YASK102",
                f".{func.attr}() writes in place; use the tmp + os.replace "
                "atomic pattern (see service/wal.py)",
            )


# ---------------------------------------------------------------------------
# YASK103 — no float ==/!= on score values outside the comparator modules

_SCOREY = re.compile(
    r"(?:^|_)(score|scores|theta|sdist|tsim|penalty|bound|rank_score)(?:$|_)"
)


def _is_scorey(node: ast.expr) -> bool:
    name = _terminal_name(node)
    return bool(name) and bool(_SCOREY.search(name.lower()))


@register(
    "YASK103",
    "no float == / != on score values outside the documented tie-rule "
    "comparators (core/kernel.py, core/scoring.py, core/sharding.py)",
    Scope(
        include=("*repro/*",),
        approved=(
            "*repro/core/kernel.py",
            "*repro/core/scoring.py",
            "*repro/core/sharding.py",
        ),
    ),
)
def check_float_score_equality(file: File) -> Iterator[Violation]:
    """The paper's tie rule is (score desc, oid asc) — *bit-for-bit*.

    The kernel/scoring/sharding trio implements that comparator once,
    operation-by-operation mirrored so scores are bit-identical across
    paths; exact float comparison is correct **only** under that parity
    contract.  Elsewhere, ``score == other`` is almost always a bug
    (use the rank machinery, or suppress with a justification when an
    exact-parity check is the point, e.g. the serving audit).
    """
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_scorey(left) or _is_scorey(right):
                yield _violation(
                    file,
                    node,
                    "YASK103",
                    "exact float == / != on a score value; tie rules must go "
                    "through the documented comparators in core/",
                )
                break


# ---------------------------------------------------------------------------
# YASK104 — @hot_path loops stay allocation-free

_HOT_BANNED_CALLS = {"getattr", "setattr", "hasattr", "vars", "dir", "eval", "exec"}


def _is_hot_path(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if _terminal_name(target) == "hot_path":
            return True
    return False


def _innermost_loops(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.For | ast.While]:
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.While)):
            has_nested = any(
                isinstance(child, (ast.For, ast.While))
                for child in ast.walk(node)
                if child is not node
            )
            if not has_nested:
                yield node


def _loop_violations(file: File, loop: ast.For | ast.While, func_name: str) -> Iterator[Violation]:
    # The loop header itself (iterable expression) is setup, not body.
    body_nodes: list[ast.AST] = []
    for stmt in [*loop.body, *loop.orelse]:
        body_nodes.extend(ast.walk(stmt))
    for node in body_nodes:
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            kind = type(node).__name__
            yield _violation(
                file,
                node,
                "YASK104",
                f"{kind} inside the innermost loop of @hot_path "
                f"{func_name}(); hoist the allocation out of the per-row loop",
            )
        elif isinstance(node, ast.Try):
            yield _violation(
                file,
                node,
                "YASK104",
                f"try/except inside the innermost loop of @hot_path "
                f"{func_name}(); exception setup per row is not free — hoist it",
            )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _HOT_BANNED_CALLS
        ):
            yield _violation(
                file,
                node,
                "YASK104",
                f"{node.func.id}() inside the innermost loop of @hot_path "
                f"{func_name}(); dynamic lookup per row defeats the columnar kernel",
            )
        elif isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
            yield _violation(
                file,
                node,
                "YASK104",
                f"function allocation inside the innermost loop of @hot_path "
                f"{func_name}(); define it once outside the loop",
            )


@register(
    "YASK104",
    "no allocation-heavy constructs (comprehensions, getattr, try/except, "
    "lambdas) inside the innermost loops of @hot_path functions",
    Scope(include=("*",)),
)
def check_hot_path_loops(file: File) -> Iterator[Violation]:
    """PR 3's columnar kernel wins come from allocation-free row loops.

    ``@hot_path`` (``repro.core.hotpath``) marks the per-row scan loops
    in ``core/kernel.py`` and the shard scan loops in
    ``core/sharding.py``.  Setup work before the loop is fine — the
    rule polices only the *innermost* loops, where a comprehension,
    ``getattr`` or try/except re-runs once per database row and shows
    up directly in the E11/E12 floors.
    """
    for node in ast.walk(file.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and _is_hot_path(
            node
        ):
            for loop in _innermost_loops(node):
                yield from _loop_violations(file, loop, node.name)


# ---------------------------------------------------------------------------
# YASK105 — service-tier locks carry a documented order level

_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}


@register(
    "YASK105",
    "no bare threading.Lock/RLock/Condition in service/; construct locks "
    "through repro.concurrency with a documented lock-order level",
    Scope(include=("*repro/service/*",)),
)
def check_bare_locks(file: File) -> Iterator[Violation]:
    """Every service-tier lock must name its place in the hierarchy.

    ``repro.concurrency.ordered_lock(name, level)`` is how a lock
    declares its level (and how the ``YASK_LOCKDEP=1`` sanitizer finds
    it).  A bare ``threading.Lock()`` is invisible to both — the
    deadlock-freedom argument in ``docs/DEVELOPMENT.md`` only covers
    levelled locks.
    """
    threading_aliases = {"threading"}
    bare_imports: set[str] = set()
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "threading":
                    threading_aliases.add(alias.asname or "threading")
        elif isinstance(node, ast.ImportFrom) and node.module == "threading":
            for alias in node.names:
                if alias.name in _LOCK_FACTORIES:
                    bare_imports.add(alias.asname or alias.name)
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        flagged = ""
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _LOCK_FACTORIES
            and isinstance(func.value, ast.Name)
            and func.value.id in threading_aliases
        ):
            flagged = f"threading.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in bare_imports:
            flagged = func.id
        if flagged:
            yield _violation(
                file,
                node,
                "YASK105",
                f"bare {flagged}() in service/; use repro.concurrency."
                "ordered_lock(name, level) so the lock carries its "
                "documented lock-order level",
            )


# ---------------------------------------------------------------------------
# YASK106 — no silently swallowed exceptions


@register(
    "YASK106",
    "no swallowed exceptions: an `except ...: pass` handler must carry a "
    "comment saying why dropping the error is safe",
    Scope(include=("*repro/*",)),
)
def check_swallowed_exceptions(file: File) -> Iterator[Violation]:
    """The degradation tier promises *honest* failure, never silent.

    Every degraded answer, shed request and tripped breaker exists
    because an error was caught and *reported* — a bare
    ``except ...: pass`` is the opposite: it turns a fault into
    silence, exactly the failure mode the chaos suite hunts.  When
    dropping an exception really is correct (best-effort cleanup,
    probing for an optional capability), say why in a comment on the
    handler or its ``pass`` body; the comment is the reviewable claim
    that silence is safe.
    """
    lines = file.source.splitlines()
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if len(node.body) != 1 or not isinstance(node.body[0], ast.Pass):
            continue
        start = node.lineno
        end = max(node.body[0].lineno, node.body[0].end_lineno or 0)
        commented = any(
            "#" in lines[lineno - 1]
            for lineno in range(start, min(end, len(lines)) + 1)
        )
        if commented:
            continue
        caught = "..." if node.type is None else ast.unparse(node.type)
        yield _violation(
            file,
            node,
            "YASK106",
            f"except {caught}: pass swallows the error silently; handle "
            "it, degrade honestly, or add a comment saying why dropping "
            "it is safe",
        )


# ---------------------------------------------------------------------------
# YASK107 — result-cache entries are written only by the executor tier

_CACHE_MUTATORS = {
    "put",
    "pop",
    "popitem",
    "clear",
    "move_to_end",
    "setdefault",
    "update",
    "invalidate",
    "invalidate_where",
    "apply_maintenance",
}


def _is_cache_receiver(node: ast.expr) -> bool:
    names = _receiver_names(node)
    return bool(names) and "cache" in names[-1].lower()


@register(
    "YASK107",
    "no direct result-cache entry mutation outside service/executor.py; "
    "cached answers change only through the executor's "
    "execute/maintain/invalidate protocol",
    Scope(include=("*repro/*",), approved=("*repro/service/executor.py",)),
)
def check_cache_entry_mutation(file: File) -> Iterator[Violation]:
    """Answer maintenance depends on a single writer for cache entries.

    ``_ResultCache`` entries carry skyband metadata stamped with the
    engine generation; the two-phase snapshot/apply protocol in
    ``service/executor.py`` is the only code allowed to create, patch
    or drop them.  A ``cache.put(...)`` / ``cache.pop(...)`` /
    subscript write anywhere else can install an entry whose stamp lies
    about the generation it reflects — the next maintenance pass would
    then "patch" it into a wrong answer served as a warm hit.  Route
    writes through ``QueryExecutor`` / ``WhyNotExecutor`` methods.
    """
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _CACHE_MUTATORS and _is_cache_receiver(
                node.func.value
            ):
                yield _violation(
                    file,
                    node,
                    "YASK107",
                    f"direct .{node.func.attr}() on a result cache outside "
                    "the executor tier; route the write through "
                    "QueryExecutor/WhyNotExecutor",
                )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript) and _is_cache_receiver(
                    target.value
                ):
                    yield _violation(
                        file,
                        node,
                        "YASK107",
                        "subscript write into a result cache outside the "
                        "executor tier; route the write through "
                        "QueryExecutor/WhyNotExecutor",
                    )
                    break
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and _is_cache_receiver(
                    target.value
                ):
                    yield _violation(
                        file,
                        node,
                        "YASK107",
                        "del on a result-cache entry outside the executor "
                        "tier; route the write through "
                        "QueryExecutor/WhyNotExecutor",
                    )
                    break
