"""Runtime lock-order sanitizer (TSan-style) for the serving stack.

Opt-in via ``YASK_LOCKDEP=1``: the :mod:`repro.concurrency` factories
then return :class:`InstrumentedLock` wrappers (and hand-rolled
primitives report through :class:`LockSanitizer`) so every acquisition
in the process flows through one :class:`LockDepMonitor`.  The monitor
enforces, *before* the underlying acquire can block:

* **Level order** — a thread may only acquire a lock whose level is
  strictly greater than every levelled lock it already holds.  The
  hierarchy is documented in :mod:`repro.concurrency` and
  ``docs/DEVELOPMENT.md``.
* **Acquisition cycles** — every nested acquisition records a directed
  edge ``held-name → acquired-name`` in a process-wide graph; an edge
  that closes a cycle is reported even when the locks carry no levels
  (catching A→B on one thread and B→A on another before the schedules
  that would actually deadlock).
* **Self deadlock** — re-acquiring a held non-reentrant lock on the
  same thread.  Re-entrant locks and same-instance nested *read*
  acquisitions (the readers-preference ``ReadWriteLock`` re-enters by
  design) are allowed; read-under-write and write-under-read on the
  same instance are reported.
* **fsync hazards** — :func:`repro.concurrency.note_fsync` reports if
  the calling thread holds any lock not flagged ``fsync_safe``.  The
  write-ahead contract *requires* the engine RW / WAL / snapshot locks
  across fsync; anything else stalling on disk flushes is a latency
  bug.

Violations raise :exc:`LockOrderError` at the offending call site (and
are also kept on ``monitor.violations`` for post-mortem assertions).
Checks happen before the real acquire, so an ordering bug surfaces as
a stack trace instead of a wedged hammer test.

Graph nodes are keyed by lock *name*, not instance: all
``executor.cache`` locks share one node, so an ordering learned from
the top-k cache applies to the why-not cache too — same-name nesting
of distinct instances is itself reported as a one-edge cycle.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator


class LockOrderError(RuntimeError):
    """A lock-order, cycle, self-deadlock or fsync-hazard violation."""


class _Held:
    """One live acquisition on one thread's stack."""

    __slots__ = ("key", "name", "level", "mode", "fsync_safe", "count")

    def __init__(
        self, key: int, name: str, level: int | None, mode: str, fsync_safe: bool
    ) -> None:
        self.key = key
        self.name = name
        self.level = level
        self.mode = mode
        self.fsync_safe = fsync_safe
        self.count = 1

    def describe(self) -> str:
        level = "unlevelled" if self.level is None else f"level {self.level}"
        return f"{self.name} ({level}, {self.mode})"


class LockDepMonitor:
    """Process-wide acquisition-graph recorder and checker."""

    def __init__(self) -> None:
        self._tls = threading.local()
        self._graph_lock = threading.Lock()
        # name -> {successor name -> witness description}
        self._edges: dict[str, dict[str, str]] = {}
        self._violations: list[str] = []

    # -- per-thread held stack -------------------------------------------

    def _stack(self) -> list[_Held]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def held_names(self) -> tuple[str, ...]:
        """Names of locks the calling thread currently holds (oldest first)."""
        return tuple(h.name for h in self._stack())

    @property
    def violations(self) -> tuple[str, ...]:
        with self._graph_lock:
            return tuple(self._violations)

    def edges(self) -> dict[str, tuple[str, ...]]:
        """The recorded acquisition graph, for reports and tests."""
        with self._graph_lock:
            return {name: tuple(succ) for name, succ in self._edges.items()}

    def _fail(self, message: str) -> None:
        with self._graph_lock:
            self._violations.append(message)
        raise LockOrderError(message)

    # -- checks ----------------------------------------------------------

    def acquiring(
        self,
        key: int,
        name: str,
        *,
        level: int | None,
        mode: str = "exclusive",
        reentrant: bool = False,
    ) -> None:
        """Validate an acquisition the calling thread is about to block on."""
        stack = self._stack()
        held_same = [h for h in stack if h.key == key]
        if held_same:
            if reentrant:
                return  # RLock-style: nothing new to learn from a re-entry
            if mode == "read" and all(h.mode == "read" for h in held_same):
                return  # readers-preference RW re-entry is deadlock-free
            self._fail(
                f"self deadlock: thread re-acquires {name} ({mode}) while "
                f"already holding it ({held_same[-1].mode})"
            )
        others = [h for h in stack if h.key != key]
        if level is not None:
            for held in others:
                if held.level is not None and held.level >= level:
                    self._fail(
                        f"lock-order violation: acquiring {name} (level {level}) "
                        f"while holding {held.describe()}; levels must strictly "
                        "increase along every acquisition chain"
                    )
        if others:
            thread = threading.current_thread().name
            with self._graph_lock:
                for held in others:
                    path = self._find_path(name, held.name)
                    if path is not None:
                        chain = " -> ".join([held.name, *path])
                        witness = self._edges.get(path[0], {}).get(
                            path[1] if len(path) > 1 else held.name, ""
                        )
                        self._violations.append(chain)
                        raise LockOrderError(
                            f"lock acquisition cycle: acquiring {name} while "
                            f"holding {held.name}, but the reverse order "
                            f"{chain} was already observed ({witness or 'earlier'})"
                        )
                for held in others:
                    self._edges.setdefault(held.name, {}).setdefault(
                        name, f"thread {thread}"
                    )

    def _find_path(self, source: str, target: str) -> list[str] | None:
        """A recorded path ``source -> ... -> target``, or ``None``.

        Caller holds ``_graph_lock``.
        """
        if source == target:
            return [source]
        seen = {source}
        frontier: list[list[str]] = [[source]]
        while frontier:
            path = frontier.pop()
            for successor in self._edges.get(path[-1], ()):
                if successor == target:
                    return path + [successor]
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(path + [successor])
        return None

    def acquired(
        self,
        key: int,
        name: str,
        *,
        level: int | None,
        mode: str = "exclusive",
        fsync_safe: bool = False,
    ) -> None:
        """Push a successful acquisition onto the thread's held stack."""
        stack = self._stack()
        for held in stack:
            if held.key == key and held.mode == mode:
                held.count += 1
                return
        stack.append(_Held(key, name, level, mode, fsync_safe))

    def released(self, key: int, *, mode: str = "exclusive") -> None:
        """Pop one acquisition of ``key`` from the thread's held stack."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            held = stack[index]
            if held.key == key and held.mode == mode:
                held.count -= 1
                if held.count == 0:
                    del stack[index]
                return
        # Releasing a lock this thread never recorded: tolerated (a lock
        # may have been created before instrumentation was enabled).

    def note_fsync(self, context: str = "") -> None:
        """Report any non-sanctioned lock held across an fsync."""
        offenders = [h for h in self._stack() if not h.fsync_safe]
        if offenders:
            where = f" in {context}" if context else ""
            held = ", ".join(h.describe() for h in offenders)
            self._fail(
                f"fsync hazard{where}: flushing to disk while holding "
                f"non-fsync-sanctioned lock(s) {held}; only the engine RW, "
                "WAL and snapshot locks may be held across fsync"
            )

    def reset_thread(self) -> None:
        """Drop the calling thread's held stack (test isolation helper)."""
        self._tls.stack = []


class InstrumentedLock:
    """A ``threading.Lock``/``RLock`` stand-in that reports to a monitor.

    Duck-types the primitive interface the codebase uses: ``acquire`` /
    ``release`` / context manager / ``locked``.
    """

    def __init__(
        self,
        monitor: LockDepMonitor,
        name: str,
        *,
        level: int | None = None,
        fsync_safe: bool = False,
        reentrant: bool = False,
    ) -> None:
        self._monitor = monitor
        self.name = name
        self.level = level
        self.fsync_safe = fsync_safe
        self.reentrant = reentrant
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._monitor.acquiring(
            id(self), self.name, level=self.level, reentrant=self.reentrant
        )
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._monitor.acquired(
                id(self), self.name, level=self.level, fsync_safe=self.fsync_safe
            )
        return got

    def release(self) -> None:
        self._inner.release()
        self._monitor.released(id(self))

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        level = "?" if self.level is None else self.level
        return f"<InstrumentedLock {self.name} level={level}>"


class LockSanitizer:
    """Manual hooks for primitives that implement their own blocking.

    ``ReadWriteLock`` reports through this: ``acquiring(mode)`` before
    blocking, ``acquired(mode)`` once in, ``released(mode)`` on the way
    out.  One sanitizer instance == one lock instance in the monitor.
    """

    __slots__ = ("_monitor", "name", "level", "fsync_safe")

    def __init__(
        self,
        monitor: LockDepMonitor,
        name: str,
        *,
        level: int | None = None,
        fsync_safe: bool = False,
    ) -> None:
        self._monitor = monitor
        self.name = name
        self.level = level
        self.fsync_safe = fsync_safe

    def acquiring(self, mode: str) -> None:
        self._monitor.acquiring(id(self), self.name, level=self.level, mode=mode)

    def acquired(self, mode: str) -> None:
        self._monitor.acquired(
            id(self), self.name, level=self.level, mode=mode, fsync_safe=self.fsync_safe
        )

    def released(self, mode: str) -> None:
        self._monitor.released(id(self), mode=mode)


_monitor_guard = threading.Lock()
_global_monitor: LockDepMonitor | None = None


def global_monitor() -> LockDepMonitor:
    """The process-wide monitor (one acquisition graph per process)."""
    global _global_monitor
    with _monitor_guard:
        if _global_monitor is None:
            _global_monitor = LockDepMonitor()
        return _global_monitor


def fresh_monitor() -> LockDepMonitor:
    """Swap in an empty process-wide monitor (test isolation helper)."""
    global _global_monitor
    with _monitor_guard:
        _global_monitor = LockDepMonitor()
        return _global_monitor
