"""Correctness tooling for the YASK codebase.

Two halves, documented in ``docs/DEVELOPMENT.md``:

* :mod:`tools.analysis.yasklint` — AST-based static analysis encoding
  the project invariants (write-ahead mutation path, atomic file
  writes, float tie-rule discipline, allocation-free hot loops,
  levelled locks).  Runs in ``make lint`` and CI.
* :mod:`tools.analysis.lockdep` — the runtime lock-order sanitizer
  behind the ``YASK_LOCKDEP=1`` opt-in, fed by the
  :mod:`repro.concurrency` shim.
"""
