"""Unit tests for :mod:`repro.text.similarity` — Eqn. (2) and friends."""

import pytest

from repro.text.similarity import (
    JACCARD,
    CosineTfIdfSimilarity,
    DiceSimilarity,
    JaccardSimilarity,
    OverlapSimilarity,
    WeightedJaccardSimilarity,
)

A = frozenset({"a"})
AB = frozenset({"a", "b"})
ABC = frozenset({"a", "b", "c"})
XY = frozenset({"x", "y"})
EMPTY = frozenset()


class TestJaccard:
    def test_eqn2_values(self):
        model = JaccardSimilarity()
        assert model.similarity(AB, AB) == 1.0
        assert model.similarity(AB, ABC) == pytest.approx(2 / 3)
        assert model.similarity(A, ABC) == pytest.approx(1 / 3)
        assert model.similarity(AB, XY) == 0.0

    def test_empty_cases(self):
        model = JaccardSimilarity()
        assert model.similarity(EMPTY, EMPTY) == 0.0
        assert model.similarity(EMPTY, AB) == 0.0
        assert model.similarity(AB, EMPTY) == 0.0

    def test_symmetry(self):
        model = JaccardSimilarity()
        assert model.similarity(AB, ABC) == model.similarity(ABC, AB)

    def test_module_singleton(self):
        assert isinstance(JACCARD, JaccardSimilarity)

    def test_bounds_bracket_exact_value(self):
        model = JaccardSimilarity()
        # Node with intersection {a}, union {a,b,c}: any doc between them.
        docs = [A, AB, frozenset({"a", "c"}), ABC]
        for query in (A, AB, ABC, XY, frozenset({"b", "x"})):
            upper = model.upper_bound(A, ABC, query)
            lower = model.lower_bound(A, ABC, query)
            assert lower <= upper
            for doc in docs:
                value = model.similarity(doc, query)
                assert lower - 1e-12 <= value <= upper + 1e-12

    def test_bounds_exact_for_leaf_singleton(self):
        model = JaccardSimilarity()
        # intersection == union == the single doc: bounds collapse.
        assert model.upper_bound(AB, AB, ABC) == model.lower_bound(AB, AB, ABC)
        assert model.upper_bound(AB, AB, ABC) == model.similarity(AB, ABC)


class TestWeightedJaccard:
    def test_unit_weights_degenerate_to_jaccard(self):
        model = WeightedJaccardSimilarity({}, default_weight=1.0)
        plain = JaccardSimilarity()
        for doc, query in [(AB, ABC), (A, XY), (ABC, ABC)]:
            assert model.similarity(doc, query) == pytest.approx(
                plain.similarity(doc, query)
            )

    def test_weights_change_ranking(self):
        model = WeightedJaccardSimilarity({"a": 10.0}, default_weight=1.0)
        assert model.similarity(A, AB) > model.similarity(frozenset({"b"}), AB)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedJaccardSimilarity({"a": -1.0})
        with pytest.raises(ValueError):
            WeightedJaccardSimilarity({}, default_weight=-0.5)

    def test_zero_total_mass_is_zero_similarity(self):
        model = WeightedJaccardSimilarity({"a": 0.0, "b": 0.0}, default_weight=0.0)
        assert model.similarity(AB, AB) == 0.0

    def test_bounds_bracket_exact_value(self):
        model = WeightedJaccardSimilarity({"a": 3.0, "b": 0.5}, default_weight=1.0)
        docs = [A, AB, frozenset({"a", "c"}), ABC]
        for query in (A, AB, ABC, XY):
            upper = model.upper_bound(A, ABC, query)
            lower = model.lower_bound(A, ABC, query)
            for doc in docs:
                value = model.similarity(doc, query)
                assert lower - 1e-12 <= value <= upper + 1e-12


class TestDiceAndOverlap:
    def test_dice_values(self):
        model = DiceSimilarity()
        assert model.similarity(AB, AB) == 1.0
        assert model.similarity(AB, ABC) == pytest.approx(4 / 5)
        assert model.similarity(AB, XY) == 0.0

    def test_overlap_values(self):
        model = OverlapSimilarity()
        assert model.similarity(A, ABC) == 1.0  # A ⊆ ABC
        assert model.similarity(AB, ABC) == 1.0
        assert model.similarity(ABC, XY) == 0.0

    @pytest.mark.parametrize("model", [DiceSimilarity(), OverlapSimilarity()])
    def test_bounds_bracket_exact_value(self, model):
        docs = [A, AB, frozenset({"a", "c"}), ABC]
        for query in (A, AB, ABC, XY, frozenset({"a", "x"})):
            upper = model.upper_bound(A, ABC, query)
            lower = model.lower_bound(A, ABC, query)
            for doc in docs:
                value = model.similarity(doc, query)
                assert lower - 1e-12 <= value <= upper + 1e-12


class TestCosineTfIdf:
    @pytest.fixture()
    def model(self):
        return CosineTfIdfSimilarity({"a": 5, "b": 2, "c": 1}, corpus_size=10)

    def test_identical_sets_score_one(self, model):
        assert model.similarity(AB, AB) == pytest.approx(1.0)

    def test_disjoint_sets_score_zero(self, model):
        assert model.similarity(AB, XY) == 0.0

    def test_rare_keywords_weigh_more(self, model):
        # Sharing the rare "c" beats sharing the common "a" for same-size docs.
        common = model.similarity(frozenset({"a", "x"}), frozenset({"a", "y"}))
        rare = model.similarity(frozenset({"c", "x"}), frozenset({"c", "y"}))
        assert rare > common

    def test_unseen_keyword_gets_max_idf(self, model):
        # Unseen keywords are treated as df=1 — the rarest possible.
        assert model.idf("zzz") >= model.idf("c") > model.idf("a")

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CosineTfIdfSimilarity({"a": 1}, corpus_size=0)
        with pytest.raises(ValueError):
            CosineTfIdfSimilarity({"a": 0}, corpus_size=5)

    def test_range(self, model):
        for doc in (A, AB, ABC):
            for query in (A, AB, ABC, XY):
                assert 0.0 <= model.similarity(doc, query) <= 1.0

    def test_max_impact_bounds_contribution(self, model):
        # For any doc containing t: idf(t)²/‖o‖ ≤ idf(t) since ‖o‖ ≥ idf(t).
        for keyword in ("a", "b", "c"):
            assert model.max_impact(keyword) == pytest.approx(model.idf(keyword))
