"""Tests for the interned keyword vocabulary behind the scoring kernel."""

import pytest

from repro.text.vocabulary import Vocabulary


@pytest.fixture()
def vocab():
    return Vocabulary(
        [
            frozenset({"cafe", "wifi"}),
            frozenset({"bar", "cafe"}),
            frozenset(),
        ]
    )


class TestConstruction:
    def test_size_is_distinct_keyword_count(self, vocab):
        assert len(vocab) == 3

    def test_bit_positions_follow_sorted_order(self, vocab):
        assert vocab.keywords == ("bar", "cafe", "wifi")
        assert [vocab.id_of(k) for k in vocab.keywords] == [0, 1, 2]

    def test_order_insensitive_to_document_order(self):
        a = Vocabulary([frozenset({"x"}), frozenset({"a", "m"})])
        b = Vocabulary([frozenset({"m"}), frozenset({"x", "a"})])
        assert a.keywords == b.keywords

    def test_membership_and_iteration(self, vocab):
        assert "cafe" in vocab
        assert "sushi" not in vocab
        assert list(vocab) == ["bar", "cafe", "wifi"]

    def test_unknown_keyword_raises(self, vocab):
        with pytest.raises(KeyError):
            vocab.id_of("sushi")


class TestEncoding:
    def test_encode_roundtrips_through_decode(self, vocab):
        doc = frozenset({"bar", "wifi"})
        assert vocab.decode(vocab.encode(doc)) == doc

    def test_encode_empty_doc_is_zero(self, vocab):
        assert vocab.encode(frozenset()) == 0

    def test_encode_rejects_unknown_keywords(self, vocab):
        with pytest.raises(KeyError):
            vocab.encode(frozenset({"cafe", "sushi"}))

    def test_mask_intersection_matches_set_intersection(self, vocab):
        left = frozenset({"bar", "cafe"})
        right = frozenset({"cafe", "wifi"})
        mask = vocab.encode(left) & vocab.encode(right)
        assert mask.bit_count() == len(left & right)
        assert vocab.decode(mask) == left & right

    def test_encode_query_counts_unknown_keywords(self, vocab):
        mask, unknown = vocab.encode_query(frozenset({"cafe", "sushi", "ramen"}))
        assert vocab.decode(mask) == frozenset({"cafe"})
        assert unknown == 2

    def test_encode_query_all_known_has_zero_unknown(self, vocab):
        mask, unknown = vocab.encode_query(frozenset({"bar", "wifi"}))
        assert unknown == 0
        assert mask == vocab.encode(frozenset({"bar", "wifi"}))

    def test_decode_rejects_negative_masks(self, vocab):
        with pytest.raises(ValueError):
            vocab.decode(-1)
