"""Unit tests for :mod:`repro.text.tokenize`."""

import pytest

from repro.text.tokenize import (
    DEFAULT_STOPWORDS,
    document_frequencies,
    keyword_set,
    normalize_keyword,
    tokenize,
    vocabulary,
)


class TestNormalizeKeyword:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("WiFi", "wifi"),
            ("  Pool  ", "pool"),
            ("harbour-view", "harbour"),
            ("don't", "dont"),
            ("24h", "24h"),
            ("***", ""),
            ("", ""),
        ],
    )
    def test_normalisation(self, raw, expected):
        assert normalize_keyword(raw) == expected


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Clean AND Comfortable rooms") == [
            "clean", "comfortable", "rooms",
        ]

    def test_removes_stopwords(self):
        tokens = tokenize("the hotel is very clean")
        assert "the" not in tokens and "is" not in tokens and "very" not in tokens
        assert tokens == ["hotel", "clean"]

    def test_preserves_duplicates_and_order(self):
        assert tokenize("clean rooms clean lobby") == [
            "clean", "rooms", "clean", "lobby",
        ]

    def test_custom_stopwords(self):
        tokens = tokenize("clean hotel", stopwords=frozenset({"clean"}))
        assert tokens == ["hotel"]

    def test_punctuation_stripped(self):
        assert tokenize("pool, gym & spa!") == ["pool", "gym", "spa"]


class TestKeywordSet:
    def test_from_text_deduplicates(self):
        assert keyword_set("clean clean Comfortable") == frozenset(
            {"clean", "comfortable"}
        )

    def test_from_token_iterable(self):
        assert keyword_set(["WiFi", "POOL", "the", ""]) == frozenset({"wifi", "pool"})

    def test_empty_input(self):
        assert keyword_set("") == frozenset()
        assert keyword_set([]) == frozenset()

    def test_result_is_frozenset(self):
        assert isinstance(keyword_set("a b"), frozenset)


class TestCorpusHelpers:
    def test_vocabulary_union(self):
        docs = [{"a", "b"}, {"b", "c"}]
        assert vocabulary(docs) == frozenset({"a", "b", "c"})

    def test_document_frequencies_counts_documents_not_tokens(self):
        docs = [["a", "a", "b"], ["b"], ["b", "c"]]
        assert document_frequencies(docs) == {"a": 1, "b": 3, "c": 1}

    def test_stopword_list_is_lowercase(self):
        assert all(word == word.lower() for word in DEFAULT_STOPWORDS)
