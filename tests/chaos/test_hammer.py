"""Concurrent hammer against a tiny in-flight bound (satellite c).

Eight real client threads fire barrier-synchronised rounds of mixed
traffic at a server with ``max_inflight=1``.  This test is about
*invariants under real concurrency*, not determinism, so no fault plan
is armed and no virtual clock runs — but there are still no sleeps:

* every shed request is a structured 503 with ``Retry-After``;
* every admitted query is byte-for-byte the single-threaded baseline;
* every admitted mutation is applied (or refused) atomically;
* the in-flight gauge drains back to zero and its counters add up.
"""

from __future__ import annotations

import threading

import pytest

from repro.service.api import YaskEngine
from repro.service.client import YaskClient, YaskClientError

from tests.chaos.conftest import (
    HAMMER_OID_BASE,
    canonical,
    make_chaos_db,
    running_server,
)

pytestmark = pytest.mark.slow

THREADS = 8
ROUNDS = 10


class TestHammer:
    def test_overload_sheds_cleanly_and_never_lies(self):
        engine = YaskEngine(make_chaos_db())
        try:
            with running_server(engine, max_inflight=1) as server:
                baseline_client = YaskClient(server.endpoint, retries=0)
                baseline = canonical(
                    baseline_client.query(0.06, 0.06, ["food", "cafe"], 3)[
                        "result"
                    ]["entries"]
                )

                barrier = threading.Barrier(THREADS)
                results: list[list[dict]] = [[] for _ in range(THREADS)]
                crashes: list[BaseException] = []

                def hammer(worker: int) -> None:
                    # Each worker owns one far-corner, keyword-disjoint
                    # object: its churn provably cannot enter the
                    # baseline query's top-k, so admitted queries must
                    # match the baseline exactly no matter how the
                    # mutations interleave.
                    client = YaskClient(server.endpoint, retries=0)
                    oid = HAMMER_OID_BASE + worker
                    try:
                        for round_no in range(ROUNDS):
                            barrier.wait()
                            if worker % 2 == 0:
                                self._one_query(client, results[worker])
                            else:
                                self._one_mutation(
                                    client, results[worker], oid, round_no
                                )
                    except BaseException as exc:  # pragma: no cover
                        crashes.append(exc)

                threads = [
                    threading.Thread(target=hammer, args=(i,), daemon=True)
                    for i in range(THREADS)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60)
                    assert not thread.is_alive(), "hammer thread hung"
                assert crashes == []

                flat = [r for per_thread in results for r in per_thread]
                assert len(flat) == THREADS * ROUNDS
                sheds = [r for r in flat if r["kind"] == "shed"]
                query_answers = [r for r in flat if r["kind"] == "query"]
                mutation_answers = [r for r in flat if r["kind"] == "mutation"]

                # With 8 threads released by a barrier against a bound
                # of 1, shedding must actually happen...
                assert sheds, "no request was ever shed"
                for shed in sheds:
                    assert shed["status"] == 503
                    assert shed["retry_after"] is not None
                    assert "overloaded" in shed["error"]
                # ...and some traffic must also get through.
                assert query_answers
                for answer in query_answers:
                    assert answer["entries"] == baseline
                for answer in mutation_answers:
                    assert answer["applied"] in (0, 1)

                # The gauge drained and its ledger is consistent: every
                # POST this test sent (baseline included) was either
                # admitted or shed, nothing leaked.
                # A handler releases the gauge after writing its
                # response, so the last request may still be "in
                # flight" for a beat; each stats round-trip gives it
                # ample time to finish draining.
                for _ in range(50):
                    gauge = baseline_client.resilience_stats()["inflight"]
                    if gauge["inflight"] == 0:
                        break
                assert gauge["inflight"] == 0
                assert gauge["limit"] == 1
                assert gauge["shed"] == len(sheds)
                assert (
                    gauge["admitted"] + gauge["shed"] == THREADS * ROUNDS + 1
                )
        finally:
            engine.close()

    @staticmethod
    def _one_query(client: YaskClient, out: list[dict]) -> None:
        try:
            body = client.query(0.06, 0.06, ["food", "cafe"], 3)
        except YaskClientError as exc:
            out.append(
                {
                    "kind": "shed",
                    "status": exc.status,
                    "retry_after": exc.retry_after,
                    "error": str(exc),
                }
            )
            return
        assert "degraded" not in body
        out.append(
            {"kind": "query", "entries": canonical(body["result"]["entries"])}
        )

    @staticmethod
    def _one_mutation(
        client: YaskClient, out: list[dict], oid: int, round_no: int
    ) -> None:
        if round_no % 2 == 0:
            batch = [
                {
                    "op": "insert",
                    "oid": oid,
                    "x": 0.95,
                    "y": 0.95,
                    "keywords": ["hammerfodder"],
                }
            ]
        else:
            batch = [{"op": "delete", "oid": oid}]
        try:
            report = client.mutate(batch)
        except YaskClientError as exc:
            if exc.status == 503:
                out.append(
                    {
                        "kind": "shed",
                        "status": exc.status,
                        "retry_after": exc.retry_after,
                        "error": str(exc),
                    }
                )
                return
            # A shed earlier in this worker's insert/delete cadence
            # leaves the next step addressing a missing (404) or
            # duplicate (409) oid — a structured, atomic refusal.
            assert exc.status in (404, 409), str(exc)
            out.append({"kind": "mutation", "applied": 0})
            return
        applied = report.get("inserted", 0) + report.get("deleted", 0)
        out.append({"kind": "mutation", "applied": applied})
