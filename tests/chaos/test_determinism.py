"""The chaos harness's core promise: same seed, same outcome.

A full seeded scenario — delays, WAL faults, degraded queries,
structured errors — is replayed twice against fresh engines and
servers.  The injection logs and every (canonicalised) response must
match byte for byte; a different seed must diverge.
"""

from __future__ import annotations

from repro import faults
from repro.faults import FaultPlan
from repro.service.api import YaskEngine
from repro.service.client import YaskClient, YaskClientError
from repro.service.wal import WriteAheadLog

from tests.chaos.conftest import canonical, make_chaos_db, running_server

import pytest

pytestmark = pytest.mark.slow


def run_scenario(seed: int, wal_dir) -> tuple[tuple, list[str]]:
    """One seeded pass: returns (injection log, canonical outputs).

    The plan's own RNG decides *which* mutation attempt the WAL fault
    hits and how slow the injected shard scans are, so the schedule
    itself — not just the payloads — is derived from the seed.
    """
    plan = FaultPlan(seed=seed)
    doomed_attempt = plan.rng.randrange(3)
    scan_ms = 40.0 + 5.0 * doomed_attempt
    plan.delay("shard.scan.*", scan_ms, times=None)
    plan.fail("wal.sync", after=doomed_attempt, times=1)

    outputs: list[str] = []

    def record(fn):
        try:
            outputs.append(canonical(fn()))
        except YaskClientError as exc:
            outputs.append(
                canonical(
                    {
                        "status": exc.status,
                        "error": str(exc),
                        "retry_after": exc.retry_after,
                    }
                )
            )

    with faults.armed(plan):
        wal = WriteAheadLog(wal_dir, fsync="always")
        engine = YaskEngine(make_chaos_db(), shards=4, wal=wal)
        with running_server(
            engine, breaker_failure_threshold=2, breaker_cooldown_ms=1000.0
        ) as server:
            client = YaskClient(server.endpoint, retries=0)
            record(lambda: client.query(0.5, 0.5, ["food", "cafe"], 10, timeout_ms=120.0))
            for oid in (0, 1, 2):
                record(lambda oid=oid: client.mutate([{"op": "delete", "oid": oid}]))
            record(lambda: client.query(0.5, 0.5, ["food", "cafe"], 10, timeout_ms=120.0))
            record(lambda: client.query(0.1, 0.1, ["bar"], 3))
            record(lambda: client.resilience_stats())
        engine.close()
    return plan.injections, outputs


class TestSeededReplay:
    def test_same_seed_replays_byte_for_byte(self, tmp_path):
        first = run_scenario(1234, tmp_path / "a")
        second = run_scenario(1234, tmp_path / "b")
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_different_seed_diverges(self, tmp_path):
        # Seed 1234 dooms mutation attempt 1, seed 999 attempt 2, so
        # the injection logs (and the 503s' positions in the
        # transcript) must differ.
        first = run_scenario(1234, tmp_path / "a")
        other = run_scenario(999, tmp_path / "b")
        assert first[0] != other[0]
        assert first[1] != other[1]

    def test_every_outcome_is_structured(self, tmp_path):
        # Whatever the seed does, nothing in the transcript is a hang,
        # a crash, or an unstructured failure: each output is either a
        # JSON body or a {status, error, retry_after} record.
        import json

        _, outputs = run_scenario(77, tmp_path)
        assert len(outputs) == 7
        for raw in outputs:
            parsed = json.loads(raw)
            if "status" in parsed and "error" in parsed:
                assert parsed["status"] in (503,)
            else:
                assert "result" in parsed or "generation" in parsed or "breaker" in parsed
