"""Shared machinery for the chaos suite.

Every test here drives a *live in-process HTTP server* through seeded
:class:`repro.faults.FaultPlan`s and asserts the graceful-degradation
contract: each response is exact, honestly degraded (a ``degraded``
envelope saying what was omitted), or a structured error — never a
hang, a crash, or a silently wrong answer.  Time is the armed plan's
virtual clock, so nothing sleeps and the same seed replays the same
outcome.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Iterator

from repro.core.geometry import Point, Rect
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.service.server import YaskHTTPServer

#: Measured wall-clock fields, per-run identifiers and instantaneous
#: gauge readings: observability, not outcome.  Masked before
#: byte-for-byte comparison.  ``inflight``/``peak`` are racy by design:
#: a handler releases the gauge *after* writing its response, so a
#: back-to-back stats read may or may not still see it in flight.
NONDETERMINISTIC_KEYS = frozenset(
    {
        "response_ms",
        "total_ms",
        "scatter_ms",
        "gather_ms",
        "session_id",
        "directory",
        "inflight",
        "peak",
    }
)

#: The far-corner object why-not questions ask about (never in a
#: south-west top-k) and the oid block the hammer's mutators own.
FAR_OID = 47
HAMMER_OID_BASE = 1000


def make_chaos_db(count: int = 48) -> SpatialDatabase:
    """A deterministic grid of objects that shards non-trivially.

    Every object carries ``food`` (so any shard can contribute to the
    canonical query), alternating ``cafe``/``bar``, and a rotating
    topic keyword.  Object 0 sits closest to the canonical south-west
    query point; object ``FAR_OID`` is the far-corner why-not target.
    """
    objects = []
    for i in range(count):
        x = 0.06 + (i % 8) * 0.125
        y = 0.06 + (i // 8) * 0.15
        keywords = {"food", "cafe" if i % 2 == 0 else "bar", f"topic{i % 5}"}
        objects.append(
            SpatialObject(i, Point(x, y), frozenset(keywords), f"obj{i}")
        )
    return SpatialDatabase(objects, dataspace=Rect(0.0, 0.0, 1.0, 1.0))


@contextmanager
def running_server(engine: Any, **kwargs: Any) -> Iterator[YaskHTTPServer]:
    """A live background server, always torn down (no leaked sockets).

    The construction already binds the listening socket, so everything
    after it — including ``start_background`` itself — runs inside the
    ``try``, and ``server_close`` is reached even when ``shutdown``
    raises: an assertion failing mid-test must never leak the socket
    (asserted under ``-W error::ResourceWarning`` by
    ``tests/service/test_socket_hygiene.py``).
    """
    server = YaskHTTPServer(engine, **kwargs)
    started = False
    try:
        server.start_background()
        started = True
        yield server
    finally:
        try:
            if started:
                server.shutdown()
        finally:
            server.server_close()


def canonical(payload: Any) -> str:
    """A byte-comparable rendering with measured-time fields masked."""

    def masked(key: str, val: Any) -> bool:
        # Only scalar leaves are masked: the resilience section's
        # "inflight" *container* must still be compared (its admitted
        # and shed counters are deterministic), only the identically
        # named instantaneous reading inside it is not.
        return key in NONDETERMINISTIC_KEYS and not isinstance(val, (dict, list))

    def scrub(value: Any) -> Any:
        if isinstance(value, dict):
            return {
                key: ("<masked>" if masked(key, val) else scrub(val))
                for key, val in value.items()
            }
        if isinstance(value, list):
            return [scrub(item) for item in value]
        return value

    return json.dumps(scrub(payload), sort_keys=True)
