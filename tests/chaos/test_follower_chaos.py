"""Replica tailing under injected faults, over HTTP.

A follower whose poll hits an injected I/O error must answer a
structured retryable 503 — never stale data presented as fresh, never
a 500 — and recover on the next poll once the fault budget is spent.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.core.mutations import Mutation
from repro.faults import FaultPlan
from repro.service.api import YaskEngine
from repro.service.client import YaskClient, YaskClientError
from repro.service.wal import FollowerEngine, WriteAheadLog

from tests.chaos.conftest import make_chaos_db, running_server

pytestmark = pytest.mark.slow


def make_primary(wal_dir) -> YaskEngine:
    return YaskEngine(make_chaos_db(), wal=WriteAheadLog(wal_dir))


class TestFollowerTailingFaults:
    def test_failed_poll_is_a_retryable_503_then_recovers(self, tmp_path):
        plan = FaultPlan(seed=30).fail("follower.poll", after=1, times=1)
        primary = make_primary(tmp_path)
        primary.apply_mutations([Mutation.delete(0)])
        with faults.armed(plan):
            follower = FollowerEngine(tmp_path, database=make_chaos_db())
            with running_server(
                follower.engine, follower=follower
            ) as server:
                client = YaskClient(server.endpoint, retries=0)
                # The injected fault fires inside the pre-read poll:
                # the replica refuses to answer rather than serving a
                # possibly-stale result as fresh.
                with pytest.raises(YaskClientError) as exc:
                    client.query(0.06, 0.06, ["food", "cafe"], 3)
                assert exc.value.status == 503
                assert "replica tailing failed" in str(exc.value)
                assert "retry shortly" in str(exc.value)
                assert exc.value.retry_after is not None

                # Budget spent: the retry the 503 invited succeeds, and
                # the answer reflects the primary's mutation.
                body = client.query(0.06, 0.06, ["food", "cafe"], 3)
                oids = [e["object"]["oid"] for e in body["result"]["entries"]]
                assert 0 not in oids
                assert follower.generation == primary.generation
            follower.close()
        primary.close()
        assert [e["site"] for e in plan.injections] == ["follower.poll"]

    def test_client_retry_loop_rides_out_a_tailing_blip(self, tmp_path):
        plan = FaultPlan(seed=31).fail("follower.poll", after=1, times=1)
        primary = make_primary(tmp_path)
        primary.apply_mutations([Mutation.delete(0)])
        slept: list[float] = []
        with faults.armed(plan):
            follower = FollowerEngine(tmp_path, database=make_chaos_db())
            with running_server(
                follower.engine, follower=follower
            ) as server:
                client = YaskClient(
                    server.endpoint, retries=2, sleep=slept.append
                )
                # One transparent retry after the advertised second:
                # the caller never sees the blip.
                body = client.query(0.06, 0.06, ["food", "cafe"], 3)
                assert slept == [1.0]
                oids = [e["object"]["oid"] for e in body["result"]["entries"]]
                assert 0 not in oids
            follower.close()
        primary.close()
