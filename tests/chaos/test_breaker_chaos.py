"""WAL circuit breaker over HTTP: open, advertise, probe, recover.

Injected ``wal.sync`` failures drive a live primary into read-only
degraded mode; the virtual clock (``plan.advance``) walks the breaker
through its cooldown without a single wall-clock sleep.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.faults import FaultPlan
from repro.service.api import YaskEngine
from repro.service.client import YaskClient, YaskClientError
from repro.service.wal import WriteAheadLog

from tests.chaos.conftest import make_chaos_db, running_server

pytestmark = pytest.mark.slow

DELETE_0 = [{"op": "delete", "oid": 0}]
DELETE_1 = [{"op": "delete", "oid": 1}]
DELETE_2 = [{"op": "delete", "oid": 2}]


class TestBreakerLifecycle:
    def test_open_advertise_probe_recover(self, tmp_path):
        plan = FaultPlan(seed=10).fail("wal.sync", times=2)
        with faults.armed(plan):
            wal = WriteAheadLog(tmp_path, fsync="always")
            engine = YaskEngine(make_chaos_db(), wal=wal)
            with running_server(
                engine,
                breaker_failure_threshold=2,
                breaker_cooldown_ms=1000.0,
            ) as server:
                client = YaskClient(server.endpoint, retries=0)

                # Two injected fsync failures: each is a structured 503
                # saying the batch was NOT applied, and together they
                # trip the breaker.
                for _ in range(2):
                    with pytest.raises(YaskClientError) as exc:
                        client.mutate(DELETE_0)
                    assert exc.value.status == 503
                    assert "NOT applied" in str(exc.value)
                    assert exc.value.retry_after is not None
                assert server.breaker.state == "open"

                # Open: mutations are refused up front — the WAL is not
                # even attempted — with the read-only degraded message.
                with pytest.raises(YaskClientError) as exc:
                    client.mutate(DELETE_0)
                assert exc.value.status == 503
                assert "read-only degraded mode" in str(exc.value)
                assert exc.value.retry_after is not None

                # Advertised: readiness fails, liveness and reads hold.
                ready = client.health_ready()
                assert ready["status"] == "degraded"
                assert ready["resilience"]["read_only"] is True
                assert ready["resilience"]["breaker"]["state"] == "open"
                assert client.health_live() == {"status": "ok"}
                body = client.query(0.5, 0.5, ["food", "cafe"], 3)
                assert len(body["result"]["entries"]) == 3

                # Cooldown (virtual) elapses: the next mutation is the
                # half-open probe; the device is healthy again, so it
                # commits and closes the breaker.
                plan.advance(1000.0)
                report = client.mutate(DELETE_0)
                assert report["generation"] == 1
                assert report["deleted"] == 1
                assert server.breaker.state == "closed"
                ready = client.health_ready()
                assert ready["status"] == "ok"
                assert ready["resilience"]["read_only"] is False

                # The engine's state is exactly the acknowledged
                # history: one committed batch, nothing from the failed
                # attempts.
                assert client.mutation_stats()["generation"] == 1
            engine.close()
        # The injection log is the scenario's receipt.
        assert [e["site"] for e in plan.injections] == ["wal.sync", "wal.sync"]

    def test_failed_probe_reopens_the_breaker(self, tmp_path):
        plan = FaultPlan(seed=11).fail("wal.sync", times=3)
        with faults.armed(plan):
            wal = WriteAheadLog(tmp_path, fsync="always")
            engine = YaskEngine(make_chaos_db(), wal=wal)
            with running_server(
                engine,
                breaker_failure_threshold=2,
                breaker_cooldown_ms=500.0,
            ) as server:
                client = YaskClient(server.endpoint, retries=0)
                for _ in range(2):
                    with pytest.raises(YaskClientError):
                        client.mutate(DELETE_0)
                assert server.breaker.state == "open"
                plan.advance(500.0)
                # The probe is admitted but the third injected fault
                # fails it: straight back to open.
                with pytest.raises(YaskClientError) as exc:
                    client.mutate(DELETE_0)
                assert "NOT applied" in str(exc.value)
                assert server.breaker.state == "open"
                # Next cooldown, healthy device: recovery.
                plan.advance(500.0)
                assert client.mutate(DELETE_0)["generation"] == 1
                assert server.breaker.state == "closed"
            engine.close()

    def test_stats_carry_the_resilience_section(self, tmp_path):
        plan = FaultPlan(seed=12).fail("wal.sync", times=2)
        with faults.armed(plan):
            wal = WriteAheadLog(tmp_path, fsync="always")
            engine = YaskEngine(make_chaos_db(), wal=wal)
            with running_server(
                engine,
                breaker_failure_threshold=2,
                breaker_cooldown_ms=1000.0,
            ) as server:
                client = YaskClient(server.endpoint, retries=0)
                for _ in range(2):
                    with pytest.raises(YaskClientError):
                        client.mutate(DELETE_0)
                stats = client.resilience_stats()
                assert stats["read_only"] is True
                assert stats["breaker"]["state"] == "open"
                assert stats["breaker"]["trips"] == 1
                assert stats["inflight"]["limit"] is None
            engine.close()
