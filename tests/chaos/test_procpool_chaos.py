"""Cross-process chaos: the worker pool under kills, delays and churn.

Worker processes die for real here (``SIGKILL``, no cleanup handlers),
and the contract is the PR-8 degradation envelope stretched across the
process boundary: a crash surfaces as a structured 503 *after* the
pool has already restarted the worker (the retried query is exact), a
seeded delay plan honors ``timeout_ms`` by absorbing partials exactly
as the threaded tier does, and a mutate-while-scanning hammer must
never observe a torn generation — a worker serving pre-batch columns
against a post-batch parent would return oids the database no longer
holds or scores no single generation could produce.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro import faults
from repro.core.geometry import Point
from repro.core.mutations import Mutation
from repro.core.objects import SpatialObject
from repro.core.query import SpatialKeywordQuery, Weights
from repro.faults import FaultPlan
from repro.service.api import YaskEngine
from repro.service.client import YaskClient, YaskClientError
from repro.service.procpool import WorkerCrashedError

from tests.chaos.conftest import canonical, make_chaos_db, running_server

pytestmark = pytest.mark.slow

SHARDS = 4
#: k above any shard's population: no shard can be bound-pruned, so a
#: scan visits every worker and a killed one is guaranteed to surface.
UNPRUNABLE_K = 20


@pytest.fixture()
def proc_engine():
    engine = YaskEngine(make_chaos_db(), shards=SHARDS, shard_workers="proc")
    yield engine
    engine.close()


def kill_worker(pool, shard_id: int, *, stall: bool = False) -> None:
    """``kill -9`` one worker, optionally mid-request (stalled in a
    ``sleep`` op, exactly where a real scan would be executing)."""
    pid = pool.worker_pid(shard_id)
    assert pid is not None
    process = pool._handles[shard_id].process
    if stall:
        pool.inject_stall(shard_id, 30.0)
        time.sleep(0.05)  # let the worker dequeue the stall op
    os.kill(pid, signal.SIGKILL)
    process.join(timeout=5.0)  # reap: kill(pid, 0) sees zombies as alive
    assert not process.is_alive(), f"worker {pid} survived SIGKILL"


class TestWorkerCrash:
    def test_kill9_mid_scan_is_a_structured_503_then_exact(self, proc_engine):
        """Crash → 503 with Retry-After → automatic restart → exact."""
        reference = YaskEngine(make_chaos_db())
        expected = [
            (entry.obj.oid, entry.score)
            for entry in reference.top_k(
                Point(0.5, 0.5), {"food"}, k=UNPRUNABLE_K
            ).entries
        ]
        reference.close()
        pool = proc_engine.worker_pool
        with running_server(proc_engine) as server:
            client = YaskClient(server.endpoint, retries=0)
            shard_id = proc_engine.shard_router.shards[0].shard_id
            kill_worker(pool, shard_id, stall=True)
            with pytest.raises(YaskClientError) as excinfo:
                client.query(0.5, 0.5, ["food"], UNPRUNABLE_K)
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after is not None
            assert "worker" in str(excinfo.value)
            # The pool restarted the worker before the 503 left the
            # building: the very next query is exact, not degraded.
            body = client.query(0.5, 0.5, ["food"], UNPRUNABLE_K)
            assert "degraded" not in body
            got = [
                (e["object"]["oid"], e["score"])
                for e in body["result"]["entries"]
            ]
            assert got == expected
        assert pool.restarts >= 1

    def test_crash_is_absorbed_under_a_deadline(self, proc_engine):
        """An absorbing deadline treats a dead worker as a failed shard."""
        pool = proc_engine.worker_pool
        with running_server(proc_engine) as server:
            client = YaskClient(server.endpoint, retries=0)
            shard_id = proc_engine.shard_router.shards[1].shard_id
            kill_worker(pool, shard_id)
            body = client.query(
                0.5, 0.5, ["food"], UNPRUNABLE_K, timeout_ms=100000.0
            )
            envelope = body["degraded"]
            assert envelope["shards_answered"] == SHARDS - 1
            assert "shard" in envelope["reason"]
            # And with the worker restarted, headroom or not, exact:
            exact = client.query(
                0.5, 0.5, ["food"], UNPRUNABLE_K, timeout_ms=100000.0
            )
            assert "degraded" not in exact
            assert len(exact["result"]["entries"]) == UNPRUNABLE_K

    def test_delta_to_a_dead_worker_self_heals(self, proc_engine):
        """A batch landing on a dead worker respawns it post-batch."""
        pool = proc_engine.worker_pool
        shard_id = proc_engine.shard_router.shards[2].shard_id
        kill_worker(pool, shard_id)
        proc_engine.apply_mutations(
            [
                Mutation.insert(
                    SpatialObject(
                        900, Point(0.51, 0.52), frozenset({"food", "fresh"})
                    )
                )
            ]
        )
        reference = YaskEngine(make_chaos_db())
        reference.apply_mutations(
            [
                Mutation.insert(
                    SpatialObject(
                        900, Point(0.51, 0.52), frozenset({"food", "fresh"})
                    )
                )
            ]
        )
        query = SpatialKeywordQuery(
            loc=Point(0.5, 0.5),
            doc=frozenset({"food", "fresh"}),
            k=UNPRUNABLE_K,
            weights=Weights.from_spatial(0.5),
        )
        try:
            assert [tuple(e) for e in proc_engine.query(query)] == [
                tuple(e) for e in reference.query(query)
            ]
        finally:
            reference.close()
        assert pool.restarts >= 1


class TestDeadlineAcrossProcesses:
    def test_seeded_delay_plan_degrades_identically_to_threads(self):
        """One seeded plan, two scan tiers, byte-identical responses.

        The fault site trips in the parent before each dispatch, so the
        virtual clock's arithmetic — and therefore which shards the
        deadline absorbs — cannot depend on which side of the process
        boundary the scan runs.
        """
        bodies = {}
        for mode in ("proc", 2):
            engine = YaskEngine(
                make_chaos_db(), shards=SHARDS, shard_workers=mode
            )
            plan = FaultPlan(seed=41).delay("shard.scan.*", 60.0, times=None)
            with faults.armed(plan):
                with running_server(engine) as server:
                    client = YaskClient(server.endpoint, retries=0)
                    bodies[mode] = client.query(
                        0.5, 0.5, ["food", "cafe"], 10, timeout_ms=150.0
                    )
        assert canonical(bodies["proc"]) == canonical(bodies[2])
        envelope = bodies["proc"]["degraded"]
        assert envelope["budget_ms"] == 150.0
        assert envelope["shards_skipped"] >= 1
        assert envelope["reason"] == "deadline"


class TestMutateWhileScanning:
    def test_hammer_never_serves_a_torn_generation(self, proc_engine):
        """Concurrent writers and readers, every answer single-generation.

        A stale worker would return tombstoned oids (the parent's
        materialise step would blow up on the lookup) or scores that no
        longer recompute from the served components; a torn delta would
        surface as a generation-skew :class:`WorkerCrashedError`.  The
        hammer requires none of the above for its whole duration, and
        zero silent restarts.
        """
        stop = threading.Event()
        failures: list[str] = []

        def fail(message: str) -> None:
            failures.append(message)
            stop.set()

        query = SpatialKeywordQuery(
            loc=Point(0.5, 0.5),
            doc=frozenset({"food"}),
            k=UNPRUNABLE_K,
            weights=Weights.from_spatial(0.5),
        )

        def writer() -> None:
            next_oid = 2000
            owned: list[int] = []
            while not stop.is_set():
                try:
                    batch: list[Mutation] = []
                    for _ in range(3):
                        if len(owned) > 6:
                            batch.append(Mutation.delete(owned.pop(0)))
                        else:
                            obj = SpatialObject(
                                next_oid,
                                Point(
                                    (next_oid % 97) / 97.0,
                                    (next_oid % 89) / 89.0,
                                ),
                                frozenset({"food", f"topic{next_oid % 5}"}),
                            )
                            owned.append(next_oid)
                            next_oid += 1
                            batch.append(Mutation.insert(obj))
                    proc_engine.apply_mutations(batch)
                except Exception as exc:  # noqa: BLE001 - the test's point
                    fail(f"writer raised: {exc!r}")
                    return

        def reader() -> None:
            while not stop.is_set():
                try:
                    result = proc_engine.query(query)
                    entries = result.entries
                    ranks = [entry.rank for entry in entries]
                    if ranks != list(range(1, len(entries) + 1)):
                        fail(f"non-contiguous ranks: {ranks}")
                    scores = [entry.score for entry in entries]
                    if scores != sorted(scores, reverse=True):
                        fail(f"scores out of order: {scores}")
                    for entry in entries:
                        recomputed = query.ws * (
                            1.0 - entry.sdist
                        ) + query.wt * entry.tsim
                        if recomputed != entry.score:
                            fail(
                                f"torn entry for oid {entry.obj.oid}: "
                                f"{entry.score} != {recomputed}"
                            )
                except WorkerCrashedError as exc:
                    fail(f"generation skew or crash under hammer: {exc}")
                    return
                except Exception as exc:  # noqa: BLE001
                    fail(f"reader raised: {exc!r}")
                    return

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        time.sleep(1.2)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not failures, failures[:3]
        stats = proc_engine.worker_pool.to_dict()
        assert stats["restarts"] == 0, "a worker died silently under load"
        assert stats["deltas"] > 0, "the hammer never exercised deltas"
