"""Deadline degradation against a live server, on the virtual clock.

A seeded plan makes every shard scan "cost" a fixed number of virtual
milliseconds; a request-level ``timeout_ms`` then degrades exactly
where the arithmetic says it must.  Top-k absorbs (partial result +
``degraded`` envelope); why-not is strict (exact answer or an honest
degradation report — never a partial rank count).
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.core.geometry import Point
from repro.faults import FaultPlan
from repro.service.api import YaskEngine
from repro.service.client import YaskClient

from tests.chaos.conftest import FAR_OID, make_chaos_db, running_server

pytestmark = pytest.mark.slow

SHARDS = 4


@pytest.fixture()
def chaos_engine():
    engine = YaskEngine(make_chaos_db(), shards=SHARDS)
    yield engine
    engine.close()


class TestPartialTopK:
    def test_deadline_yields_partial_with_envelope(self, chaos_engine):
        plan = FaultPlan(seed=1).delay("shard.scan.*", 60.0, times=None)
        with faults.armed(plan):
            with running_server(chaos_engine) as server:
                client = YaskClient(server.endpoint, retries=0)
                body = client.query(
                    0.5, 0.5, ["food", "cafe"], 10, timeout_ms=150.0
                )
        envelope = body["degraded"]
        assert envelope["budget_ms"] == 150.0
        assert envelope["shards_skipped"] >= 1
        assert (
            envelope["shards_answered"] + envelope["shards_skipped"] == SHARDS
        )
        assert envelope["reason"] == "deadline"
        # The partial is still a well-formed top-k page.
        assert 1 <= len(body["result"]["entries"]) <= 10
        assert not body["cached"]

    def test_no_deadline_is_exact_and_envelope_free(self, chaos_engine):
        plan = FaultPlan(seed=1).delay("shard.scan.*", 60.0, times=None)
        reference = YaskEngine(make_chaos_db())  # unsharded oracle
        expected = [
            entry.obj.oid
            for entry in reference.top_k(
                Point(0.5, 0.5), {"food", "cafe"}, k=10
            ).entries
        ]
        reference.close()
        with faults.armed(plan):
            with running_server(chaos_engine) as server:
                client = YaskClient(server.endpoint, retries=0)
                body = client.query(0.5, 0.5, ["food", "cafe"], 10)
        assert "degraded" not in body
        assert [e["object"]["oid"] for e in body["result"]["entries"]] == expected

    def test_degraded_results_are_never_cached(self, chaos_engine):
        plan = FaultPlan(seed=2).delay("shard.scan.*", 60.0, times=None)
        with faults.armed(plan):
            with running_server(chaos_engine) as server:
                client = YaskClient(server.endpoint, retries=0)
                degraded = client.query(
                    0.5, 0.5, ["food", "cafe"], 10, timeout_ms=150.0
                )
                assert degraded["degraded"]["shards_skipped"] >= 1
                # The same query with headroom must re-execute exactly —
                # a cache hit here would serve the partial back.
                exact = client.query(
                    0.5, 0.5, ["food", "cafe"], 10, timeout_ms=100000.0
                )
        assert "degraded" not in exact
        assert not exact["cached"]
        assert len(exact["result"]["entries"]) == 10

    def test_cache_hits_are_served_exact_under_any_deadline(self, chaos_engine):
        plan = FaultPlan(seed=3).delay("shard.scan.*", 60.0, times=None)
        with faults.armed(plan):
            with running_server(chaos_engine) as server:
                client = YaskClient(server.endpoint, retries=0)
                warm = client.query(0.5, 0.5, ["food", "cafe"], 10)
                # A hopeless budget, but the warm exact result exists:
                # serving it is strictly better than degrading.
                hit = client.query(
                    0.5, 0.5, ["food", "cafe"], 10, timeout_ms=1.0
                )
        assert hit["cached"]
        assert "degraded" not in hit
        assert hit["result"] == warm["result"]


class TestStrictWhyNot:
    def test_whynot_degrades_honestly_not_wrongly(self, chaos_engine):
        plan = FaultPlan(seed=4).delay("shard.scan.*", 60.0, times=None)
        with faults.armed(plan):
            with running_server(chaos_engine) as server:
                client = YaskClient(server.endpoint, retries=0)
                session = client.query(0.5, 0.5, ["food", "cafe"], 10)
                # Invalidate the query cache so the why-not's initial
                # top-k re-executes (and burns virtual time).  The new
                # object matches the query keywords near its location —
                # scoped invalidation cannot keep the warm result.
                client.mutate(
                    [
                        {
                            "op": "insert",
                            "oid": 900,
                            "x": 0.5,
                            "y": 0.52,
                            "keywords": ["food", "cafe"],
                        }
                    ]
                )
                body = client.explain(
                    session["session_id"], [FAR_OID], timeout_ms=100.0
                )
        assert body["degraded"]["budget_ms"] == 100.0
        assert "deadline" in body["error"]
        assert body["cached"] is False
        # No partial explanation may leak: a half-finished rank count
        # is a silently wrong answer, the one forbidden outcome.
        assert "explanation" not in body
        assert "ranks" not in body

    def test_whynot_with_headroom_is_exact(self, chaos_engine):
        plan = FaultPlan(seed=5).delay("shard.scan.*", 60.0, times=None)
        with faults.armed(plan):
            with running_server(chaos_engine) as server:
                client = YaskClient(server.endpoint, retries=0)
                session = client.query(0.5, 0.5, ["food", "cafe"], 10)
                body = client.explain(
                    session["session_id"], [FAR_OID], timeout_ms=1000000.0
                )
        assert "degraded" not in body
        assert "explanation" in body
