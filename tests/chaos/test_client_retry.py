"""Client-side resilience: honored Retry-After, jittered backoff,
and idempotent retries deduplicated through the WAL batch token.

The client's ``sleep`` hook is a recorder, so every test asserts the
exact waits the retry loop asked for without actually waiting.
"""

from __future__ import annotations

import random
import socket

import pytest

from repro import faults
from repro.faults import FaultPlan
from repro.service.api import YaskEngine
from repro.service.client import YaskClient, YaskClientError
from repro.service.wal import WriteAheadLog

from tests.chaos.conftest import make_chaos_db, running_server

pytestmark = pytest.mark.slow


def recording_client(endpoint: str, **kwargs) -> tuple[YaskClient, list[float]]:
    slept: list[float] = []
    client = YaskClient(
        endpoint,
        sleep=slept.append,
        rng=random.Random(0),
        **kwargs,
    )
    return client, slept


def dead_endpoint() -> str:
    """An address with nothing listening: instant connection refusal."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    return f"http://127.0.0.1:{port}"


class TestRetryAfterIsHonored:
    def test_transient_wal_fault_retried_once_then_committed(self, tmp_path):
        plan = FaultPlan(seed=20).fail("wal.sync", times=1)
        with faults.armed(plan):
            wal = WriteAheadLog(tmp_path, fsync="always")
            engine = YaskEngine(make_chaos_db(), wal=wal)
            with running_server(
                engine, breaker_failure_threshold=3
            ) as server:
                client, slept = recording_client(server.endpoint, retries=2)
                report = client.mutate(
                    [{"op": "delete", "oid": 0}], batch_token="chaos-t1"
                )
                # One 503 ("NOT applied", Retry-After: 1), one wait of
                # exactly that advertised second, one clean commit.
                assert slept == [1.0]
                assert report["generation"] == 1
                assert report["deleted"] == 1
                assert not report["deduplicated"]

                # The committed token now shields a blind re-send: the
                # server answers from the WAL generation record instead
                # of applying the batch twice.
                replay = client.mutate(
                    [{"op": "delete", "oid": 0}], batch_token="chaos-t1"
                )
                assert replay["deduplicated"] is True
                assert replay["generation"] == 1
                assert engine.wal.last_generation == 1
            engine.close()
        assert [e["site"] for e in plan.injections] == ["wal.sync"]


class TestBackoffPolicy:
    def test_idempotent_reads_back_off_with_jitter(self):
        client, slept = recording_client(
            dead_endpoint(), retries=3, backoff_ms=100.0, max_backoff_ms=250.0
        )
        with pytest.raises(YaskClientError) as exc:
            client.health_live()
        assert exc.value.status == 0
        # Full jitter against a doubling, capped ceiling:
        # attempt 0 -> (0.05, 0.1], 1 -> (0.1, 0.2], 2 -> capped (0.125, 0.25].
        assert len(slept) == 3
        for delay, ceiling in zip(slept, (0.1, 0.2, 0.25)):
            assert ceiling / 2 <= delay <= ceiling

    def test_unfenced_mutations_never_retry_blind(self):
        # Without a batch token a connection error is ambiguous — the
        # batch may have been applied — so the client must not re-send.
        client, slept = recording_client(dead_endpoint(), retries=3)
        with pytest.raises(YaskClientError) as exc:
            client.mutate([{"op": "delete", "oid": 0}])
        assert exc.value.status == 0
        assert slept == []

    def test_token_makes_the_same_mutation_retriable(self):
        client, slept = recording_client(dead_endpoint(), retries=2)
        with pytest.raises(YaskClientError):
            client.mutate([{"op": "delete", "oid": 0}], batch_token="t")
        assert len(slept) == 2

    def test_retries_zero_fails_fast(self):
        client, slept = recording_client(dead_endpoint(), retries=0)
        with pytest.raises(YaskClientError):
            client.health_live()
        assert slept == []
