"""Shared fixtures for the YASK reproduction test suite.

Dataset fixtures are session-scoped: databases are immutable by
construction, so sharing them across tests is safe and keeps the suite
fast despite hundreds of tests touching the same data.
"""

from __future__ import annotations

import random

import pytest

from repro.core.geometry import Point, Rect
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import SpatialKeywordQuery, Weights
from repro.core.scoring import Scorer
from repro.datasets.generators import SyntheticDatasetBuilder
from repro.datasets.hotels import coffee_shops, hong_kong_hotels
from repro.index.kcrtree import KcRTree
from repro.index.setrtree import SetRTree


def make_tiny_db() -> SpatialDatabase:
    """Five handcrafted objects in the unit square (worked-example scale).

    Mirrors Fig. 2's five-object setup: o1-o3 cluster in the south-west
    with Chinese/restaurant keywords, o4-o5 in the north-east with
    Spanish/restaurant keywords.
    """
    objects = [
        SpatialObject(0, Point(0.10, 0.10), frozenset({"chinese", "restaurant"}), "o1"),
        SpatialObject(1, Point(0.20, 0.15), frozenset({"chinese", "restaurant"}), "o2"),
        SpatialObject(2, Point(0.15, 0.25), frozenset({"restaurant"}), "o3"),
        SpatialObject(3, Point(0.80, 0.85), frozenset({"spanish", "restaurant"}), "o4"),
        SpatialObject(4, Point(0.90, 0.80), frozenset({"spanish", "restaurant"}), "o5"),
    ]
    return SpatialDatabase(objects, dataspace=Rect(0.0, 0.0, 1.0, 1.0))


@pytest.fixture(scope="session")
def tiny_db() -> SpatialDatabase:
    return make_tiny_db()


@pytest.fixture(scope="session")
def small_db() -> SpatialDatabase:
    """120 synthetic objects — brute-force oracles stay instant."""
    return SyntheticDatasetBuilder(seed=11).build(
        120, vocabulary_size=30, doc_length=(2, 6)
    )


@pytest.fixture(scope="session")
def medium_db() -> SpatialDatabase:
    """1500 clustered objects — enough for indexes to have real depth."""
    return SyntheticDatasetBuilder(seed=12).build(
        1500,
        vocabulary_size=80,
        doc_length=(3, 8),
        spatial="clustered",
        clusters=6,
    )


@pytest.fixture(scope="session")
def hotels_db() -> SpatialDatabase:
    return hong_kong_hotels()


@pytest.fixture(scope="session")
def coffee_db() -> SpatialDatabase:
    return coffee_shops()


@pytest.fixture(scope="session")
def small_scorer(small_db: SpatialDatabase) -> Scorer:
    return Scorer(small_db)


@pytest.fixture(scope="session")
def medium_scorer(medium_db: SpatialDatabase) -> Scorer:
    return Scorer(medium_db)


@pytest.fixture(scope="session")
def hotels_scorer(hotels_db: SpatialDatabase) -> Scorer:
    return Scorer(hotels_db)


@pytest.fixture(scope="session")
def small_setrtree(small_db: SpatialDatabase) -> SetRTree:
    return SetRTree.build(small_db, max_entries=8)


@pytest.fixture(scope="session")
def medium_setrtree(medium_db: SpatialDatabase) -> SetRTree:
    return SetRTree.build(medium_db, max_entries=16)


@pytest.fixture(scope="session")
def small_kcrtree(small_db: SpatialDatabase) -> KcRTree:
    return KcRTree.build(small_db, max_entries=8)


@pytest.fixture(scope="session")
def medium_kcrtree(medium_db: SpatialDatabase) -> KcRTree:
    return KcRTree.build(medium_db, max_entries=16)


def make_query(
    x: float = 0.5,
    y: float = 0.5,
    keywords: tuple[str, ...] = ("kw000", "kw001"),
    k: int = 5,
    ws: float = 0.5,
) -> SpatialKeywordQuery:
    """Convenience query constructor used across test modules."""
    return SpatialKeywordQuery(
        loc=Point(x, y),
        doc=frozenset(keywords),
        k=k,
        weights=Weights.from_spatial(ws),
    )


def random_queries(
    database: SpatialDatabase, count: int, *, seed: int, k: int = 5
) -> list[SpatialKeywordQuery]:
    """Deterministic random queries with keywords from the database."""
    rng = random.Random(seed)
    vocabulary = sorted(database.vocabulary())
    space = database.dataspace
    queries = []
    for _ in range(count):
        keywords = rng.sample(vocabulary, k=rng.randint(1, min(3, len(vocabulary))))
        queries.append(
            SpatialKeywordQuery(
                loc=Point(
                    rng.uniform(space.min_x, space.max_x),
                    rng.uniform(space.min_y, space.max_y),
                ),
                doc=frozenset(keywords),
                k=k,
                weights=Weights.from_spatial(rng.uniform(0.2, 0.8)),
            )
        )
    return queries
