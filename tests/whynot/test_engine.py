"""Tests for the combined why-not engine facade."""

import pytest

from repro.whynot.engine import WhyNotEngine
from repro.whynot.errors import UnknownObjectError


def scenario(scorer, seed=140, k=5):
    from repro.bench.workloads import generate_whynot_scenarios

    return generate_whynot_scenarios(
        scorer, count=1, k=k, missing_count=1, seed=seed, rank_window=25
    )[0]


@pytest.fixture(scope="module")
def engine(small_scorer, small_setrtree, small_kcrtree):
    return WhyNotEngine(
        small_scorer, set_rtree=small_setrtree, kcr_tree=small_kcrtree
    )


class TestResolution:
    def test_resolve_by_id(self, engine, small_db):
        assert engine.resolve_missing([3])[0].oid == 3

    def test_resolve_by_object(self, engine, small_db):
        obj = small_db.get(5)
        assert engine.resolve_missing([obj])[0] is obj

    def test_duplicates_collapse(self, engine):
        assert len(engine.resolve_missing([3, 3, 3])) == 1

    def test_unknown_id_raises(self, engine):
        with pytest.raises(UnknownObjectError):
            engine.resolve_missing([99999])

    def test_unknown_name_raises(self, engine):
        with pytest.raises(UnknownObjectError):
            engine.resolve_missing(["No Such Hotel"])


class TestDispatch:
    def test_explain(self, engine, small_scorer):
        s = scenario(small_scorer)
        explanation = engine.explain(s.query, [m.oid for m in s.missing])
        assert explanation.worst_rank > s.query.k

    def test_refine_preference(self, engine, small_scorer):
        s = scenario(small_scorer, seed=141)
        refinement = engine.refine_preference(s.query, [m.oid for m in s.missing])
        assert refinement.penalty <= 0.5 + 1e-12

    def test_refine_keywords(self, engine, small_scorer):
        s = scenario(small_scorer, seed=142)
        refinement = engine.refine_keywords(s.query, [m.oid for m in s.missing])
        assert refinement.penalty <= 0.5 + 1e-12

    def test_refine_both_returns_all_parts(self, engine, small_scorer):
        s = scenario(small_scorer, seed=143)
        answer = engine.refine_both(s.query, [m.oid for m in s.missing])
        assert answer.explanation is not None
        assert answer.preference is not None
        assert answer.keyword is not None
        assert answer.best_model in ("preference adjustment", "keyword adaption")

    def test_best_model_picks_lower_penalty(self, engine, small_scorer):
        s = scenario(small_scorer, seed=144)
        answer = engine.refine_both(s.query, [m.oid for m in s.missing])
        if answer.best_model == "preference adjustment":
            assert answer.preference.penalty <= answer.keyword.penalty
        else:
            assert answer.keyword.penalty < answer.preference.penalty

    def test_best_model_with_partial_answers(self, engine, small_scorer):
        from repro.whynot.engine import WhyNotAnswer

        s = scenario(small_scorer, seed=145)
        explanation = engine.explain(s.query, [m.oid for m in s.missing])
        assert WhyNotAnswer(explanation).best_model is None
        pref = engine.refine_preference(s.query, [m.oid for m in s.missing])
        assert (
            WhyNotAnswer(explanation, preference=pref).best_model
            == "preference adjustment"
        )
