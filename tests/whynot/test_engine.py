"""Tests for the combined why-not engine facade."""

import pytest

from repro.whynot.engine import WhyNotEngine
from repro.whynot.errors import UnknownObjectError


def scenario(scorer, seed=140, k=5):
    from repro.bench.workloads import generate_whynot_scenarios

    return generate_whynot_scenarios(
        scorer, count=1, k=k, missing_count=1, seed=seed, rank_window=25
    )[0]


@pytest.fixture(scope="module")
def engine(small_scorer, small_setrtree, small_kcrtree):
    return WhyNotEngine(
        small_scorer, set_rtree=small_setrtree, kcr_tree=small_kcrtree
    )


class TestResolution:
    def test_resolve_by_id(self, engine, small_db):
        assert engine.resolve_missing([3])[0].oid == 3

    def test_resolve_by_object(self, engine, small_db):
        obj = small_db.get(5)
        assert engine.resolve_missing([obj])[0] is obj

    def test_duplicates_collapse(self, engine):
        assert len(engine.resolve_missing([3, 3, 3])) == 1

    def test_unknown_id_raises(self, engine):
        with pytest.raises(UnknownObjectError):
            engine.resolve_missing([99999])

    def test_unknown_name_raises(self, engine):
        with pytest.raises(UnknownObjectError):
            engine.resolve_missing(["No Such Hotel"])


class TestDispatch:
    def test_explain(self, engine, small_scorer):
        s = scenario(small_scorer)
        explanation = engine.explain(s.query, [m.oid for m in s.missing])
        assert explanation.worst_rank > s.query.k

    def test_refine_preference(self, engine, small_scorer):
        s = scenario(small_scorer, seed=141)
        refinement = engine.refine_preference(s.query, [m.oid for m in s.missing])
        assert refinement.penalty <= 0.5 + 1e-12

    def test_refine_keywords(self, engine, small_scorer):
        s = scenario(small_scorer, seed=142)
        refinement = engine.refine_keywords(s.query, [m.oid for m in s.missing])
        assert refinement.penalty <= 0.5 + 1e-12

    def test_refine_both_returns_all_parts(self, engine, small_scorer):
        s = scenario(small_scorer, seed=143)
        answer = engine.refine_both(s.query, [m.oid for m in s.missing])
        assert answer.explanation is not None
        assert answer.preference is not None
        assert answer.keyword is not None
        assert answer.best_model in ("preference adjustment", "keyword adaption")

    def test_best_model_picks_lower_penalty(self, engine, small_scorer):
        s = scenario(small_scorer, seed=144)
        answer = engine.refine_both(s.query, [m.oid for m in s.missing])
        if answer.best_model == "preference adjustment":
            assert answer.preference.penalty <= answer.keyword.penalty
        else:
            assert answer.keyword.penalty < answer.preference.penalty

    def test_best_model_with_partial_answers(self, engine, small_scorer):
        from repro.whynot.engine import WhyNotAnswer

        s = scenario(small_scorer, seed=145)
        explanation = engine.explain(s.query, [m.oid for m in s.missing])
        assert WhyNotAnswer(explanation).best_model is None
        pref = engine.refine_preference(s.query, [m.oid for m in s.missing])
        assert (
            WhyNotAnswer(explanation, preference=pref).best_model
            == "preference adjustment"
        )


class TestBestModelTieBreaking:
    """Regression: `WhyNotAnswer.best_model` must resolve exactly equal
    penalties explicitly and deterministically (preference adjustment
    wins ties — it keeps the user's keywords verbatim)."""

    @staticmethod
    def make_answer(pref_penalty, kw_penalty):
        from repro.core.geometry import Point
        from repro.core.query import SpatialKeywordQuery
        from repro.whynot.engine import WhyNotAnswer
        from repro.whynot.explanation import WhyNotExplanation
        from repro.whynot.keyword import AdaptionStats, KeywordRefinement
        from repro.whynot.preference import PreferenceRefinement

        query = SpatialKeywordQuery(
            loc=Point(0.5, 0.5), doc=frozenset({"cafe"}), k=3
        )
        explanation = WhyNotExplanation(
            query=query, explanations=(), worst_rank=7,
            suggested_model="preference adjustment",
        )
        preference = (
            PreferenceRefinement(
                refined_query=query.with_k(7), penalty=pref_penalty,
                delta_k=4, delta_w=0.0, refined_worst_rank=7,
                initial_worst_rank=7, lam=0.5,
            )
            if pref_penalty is not None
            else None
        )
        keyword = (
            KeywordRefinement(
                refined_query=query.with_k(7), penalty=kw_penalty,
                delta_k=4, delta_doc=0, added=frozenset(),
                removed=frozenset(), refined_worst_rank=7,
                initial_worst_rank=7, lam=0.5, stats=AdaptionStats(),
            )
            if kw_penalty is not None
            else None
        )
        return WhyNotAnswer(
            explanation=explanation, preference=preference, keyword=keyword
        )

    def test_exactly_equal_penalties_prefer_preference_adjustment(self):
        # The engineered tie: both models report the bit-identical
        # penalty.  The documented rule picks the less intrusive model.
        answer = self.make_answer(0.25, 0.25)
        assert answer.best_model == "preference adjustment"

    def test_strictly_lower_keyword_penalty_wins(self):
        answer = self.make_answer(0.25, 0.2499999999999999)
        assert answer.best_model == "keyword adaption"

    def test_strictly_lower_preference_penalty_wins(self):
        answer = self.make_answer(0.1, 0.25)
        assert answer.best_model == "preference adjustment"

    def test_single_model_wins_by_default(self):
        assert self.make_answer(0.9, None).best_model == "preference adjustment"
        assert self.make_answer(None, 0.9).best_model == "keyword adaption"

    def test_no_model_executed_means_no_winner(self):
        assert self.make_answer(None, None).best_model is None

    def test_tie_rule_is_stable_across_argument_order(self):
        # Determinism: the winner depends only on the penalties, never
        # on construction order or identity.
        first = self.make_answer(0.5, 0.5)
        second = self.make_answer(0.5, 0.5)
        assert first.best_model == second.best_model == "preference adjustment"
