"""Tests for the explanation generator (Section 3.3)."""

import pytest

from repro.core.scoring import Scorer
from repro.whynot.errors import NotMissingError
from repro.whynot.explanation import ExplanationGenerator, MissingReason

from tests.conftest import random_queries


def scenario(scorer, seed=100, k=5, missing_count=1):
    from repro.bench.workloads import generate_whynot_scenarios

    return generate_whynot_scenarios(
        scorer, count=1, k=k, missing_count=missing_count, seed=seed,
        rank_window=25,
    )[0]


@pytest.fixture(scope="module")
def generator(small_scorer, small_setrtree):
    return ExplanationGenerator(small_scorer, small_setrtree)


class TestExplanationContent:
    def test_rank_matches_scorer(self, small_scorer, generator):
        s = scenario(small_scorer)
        explanation = generator.explain(s.query, s.missing)
        for obj_explanation, missing in zip(explanation.explanations, s.missing):
            assert obj_explanation.rank == small_scorer.rank_of(missing, s.query)

    def test_worst_rank_is_r_m_q(self, small_scorer, generator):
        s = scenario(small_scorer, seed=101, missing_count=2)
        explanation = generator.explain(s.query, s.missing)
        assert explanation.worst_rank == small_scorer.worst_rank(s.missing, s.query)

    def test_counts_match_linear_scan(self, small_scorer, generator):
        s = scenario(small_scorer, seed=102)
        explanation = generator.explain(s.query, s.missing)
        missing = s.missing[0]
        entry = explanation.explanations[0]
        distance = missing.loc.distance_to(s.query.loc)
        expected_closer = sum(
            1
            for obj in small_scorer.database
            if obj.loc.distance_to(s.query.loc) < distance
        )
        tsim = small_scorer.tsim(missing, s.query.doc)
        expected_similar = sum(
            1
            for obj in small_scorer.database
            if small_scorer.tsim(obj, s.query.doc) > tsim
        )
        assert entry.closer_objects == expected_closer
        assert entry.more_similar_objects == expected_similar

    def test_index_and_scan_generators_agree(self, small_scorer, small_setrtree):
        with_index = ExplanationGenerator(small_scorer, small_setrtree)
        without_index = ExplanationGenerator(small_scorer, None)
        s = scenario(small_scorer, seed=103)
        a = with_index.explain(s.query, s.missing).explanations[0]
        b = without_index.explain(s.query, s.missing).explanations[0]
        assert (a.closer_objects, a.more_similar_objects) == (
            b.closer_objects, b.more_similar_objects,
        )
        assert a.reason == b.reason

    def test_ranks_behind(self, small_scorer, generator):
        s = scenario(small_scorer, seed=104)
        entry = generator.explain(s.query, s.missing).explanations[0]
        assert entry.ranks_behind == entry.rank - s.query.k

    def test_narrative_mentions_key_numbers(self, small_scorer, generator):
        s = scenario(small_scorer, seed=105)
        entry = generator.explain(s.query, s.missing).explanations[0]
        text = entry.narrative()
        assert f"#{entry.rank}" in text
        assert "Reason:" in text

    def test_full_narrative_suggests_a_model(self, small_scorer, generator):
        s = scenario(small_scorer, seed=106)
        explanation = generator.explain(s.query, s.missing)
        assert explanation.suggested_model in (
            "preference adjustment", "keyword adaption",
        )
        assert explanation.suggested_model in explanation.narrative()


class TestReasonClassification:
    def test_reasons_are_consistent_with_components(self, small_scorer, generator):
        for seed in range(110, 118):
            s = scenario(small_scorer, seed=seed)
            explanation = generator.explain(s.query, s.missing)
            entry = explanation.explanations[0]
            kth = entry.kth_breakdown
            assert kth is not None
            if entry.reason is MissingReason.BOTH:
                assert entry.breakdown.sdist > kth.sdist
                assert entry.breakdown.tsim < kth.tsim
            elif entry.reason is MissingReason.TOO_FAR:
                assert entry.breakdown.sdist > kth.sdist
            elif entry.reason is MissingReason.LOW_RELEVANCE:
                assert entry.breakdown.tsim < kth.tsim

    def test_headlines_exist_for_every_reason(self):
        for reason in MissingReason:
            assert reason.headline()


class TestErrors:
    def test_object_in_result_raises(self, small_scorer, generator):
        q = random_queries(small_scorer.database, 1, seed=119, k=5)[0]
        top = small_scorer.top_k(q)
        with pytest.raises(NotMissingError):
            generator.explain(q, [top.entries[0].obj])

    def test_empty_missing_rejected(self, small_scorer, generator):
        q = random_queries(small_scorer.database, 1, seed=120, k=5)[0]
        with pytest.raises(ValueError):
            generator.explain(q, [])

    def test_mismatched_index_database_rejected(self, small_scorer, medium_setrtree):
        with pytest.raises(ValueError):
            ExplanationGenerator(small_scorer, medium_setrtree)

    def test_cached_result_reused(self, small_scorer, generator):
        s = scenario(small_scorer, seed=121)
        result = small_scorer.top_k(s.query)
        explanation = generator.explain(s.query, s.missing, result=result)
        assert explanation.worst_rank >= s.query.k
