"""A fully hand-computed worked example of both refinement models.

Five objects on the unit square, every SDist/TSim/score/rank/crossover/
penalty derived by hand in the comments and asserted exactly.  If any
engine drifts from the paper's equations, this module says precisely
where.

Setup (dataspace = unit square, diagonal = sqrt(2)):

  oid  loc           doc              dist to q=(0,0)   SDist = dist/√2
  0    (0.00, 0.00)  {a}              0                 0
  1    (0.30, 0.40)  {a, b}           0.5               0.5/√2 ≈ 0.35355
  2    (0.60, 0.80)  {a, b, c, d}     1.0               1/√2   ≈ 0.70711
  3    (0.00, 0.70)  {x}              0.7               0.7/√2 ≈ 0.49497
  4    (1.00, 1.00)  {a, b}           √2                1

Query: loc=(0,0), doc={a,b}, k=1, w=(0.5, 0.5).

Jaccard TSim against {a,b}:
  o0: |{a}∩{a,b}| / |{a}∪{a,b}| = 1/2
  o1: 2/2 = 1
  o2: 2/4 = 1/2
  o3: 0
  o4: 2/2 = 1

Scores ST = 0.5(1 − SDist) + 0.5·TSim:
  o0: 0.5(1)       + 0.25    = 0.75
  o1: 0.5(0.64645) + 0.5     = 0.82322...
  o2: 0.5(0.29289) + 0.25    = 0.39645...
  o3: 0.5(0.50503) + 0       = 0.25251...
  o4: 0.5(0)       + 0.5     = 0.5

Ranking: o1 (0.8232) > o0 (0.75) > o4 (0.5) > o2 (0.3965) > o3 (0.2525).
"""

import math

import pytest

from repro.core.geometry import Point, Rect
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import SpatialKeywordQuery, Weights
from repro.core.scoring import Scorer
from repro.index.kcrtree import KcRTree
from repro.whynot.keyword import KeywordAdapter
from repro.whynot.preference import PreferenceAdjuster

SQRT2 = math.sqrt(2.0)


@pytest.fixture(scope="module")
def db():
    return SpatialDatabase(
        [
            SpatialObject(0, Point(0.00, 0.00), frozenset({"a"})),
            SpatialObject(1, Point(0.30, 0.40), frozenset({"a", "b"})),
            SpatialObject(2, Point(0.60, 0.80), frozenset({"a", "b", "c", "d"})),
            SpatialObject(3, Point(0.00, 0.70), frozenset({"x"})),
            SpatialObject(4, Point(1.00, 1.00), frozenset({"a", "b"})),
        ],
        dataspace=Rect(0, 0, 1, 1),
    )


@pytest.fixture(scope="module")
def scorer(db):
    return Scorer(db)


@pytest.fixture(scope="module")
def query():
    return SpatialKeywordQuery(
        Point(0.0, 0.0), frozenset({"a", "b"}), 1, Weights(0.5, 0.5)
    )


class TestHandComputedScores:
    def test_sdist_values(self, scorer, db, query):
        expected = [0.0, 0.5 / SQRT2, 1.0 / SQRT2, 0.7 / SQRT2, 1.0]
        for oid, value in enumerate(expected):
            assert scorer.sdist(db.get(oid), query) == pytest.approx(value)

    def test_tsim_values(self, scorer, db, query):
        expected = [0.5, 1.0, 0.5, 0.0, 1.0]
        for oid, value in enumerate(expected):
            assert scorer.tsim(db.get(oid), query.doc) == pytest.approx(value)

    def test_scores(self, scorer, db, query):
        expected = {
            0: 0.75,
            1: 0.5 * (1 - 0.5 / SQRT2) + 0.5,
            2: 0.5 * (1 - 1.0 / SQRT2) + 0.25,
            3: 0.5 * (1 - 0.7 / SQRT2),
            4: 0.5,
        }
        for oid, value in expected.items():
            assert scorer.score(db.get(oid), query) == pytest.approx(value)

    def test_ranking(self, scorer, query):
        assert [e.obj.oid for e in scorer.rank_all(query)] == [1, 0, 4, 2, 3]


class TestHandComputedPreference:
    """Why-not for o0 (rank 2, k=1): the refinement math by hand.

    o0's dual point: a₀ = 1, b₀ = 0.5 (slope 0.5).
    o1's dual point: a₁ = 1 − 0.5/√2 ≈ 0.64645, b₁ = 1 (slope −0.35355).

    o0 and o1 cross where w·a₀ + (1−w)·b₀ = w·a₁ + (1−w)·b₁:
      w(1 − 0.64645) = (1 − w)(1 − 0.5)
      0.35355·w = 0.5 − 0.5w  →  w* = 0.5/(0.5 + 0.5/√2) ≈ 0.58579.
    For w > w*, o0 outscores o1 and takes rank 1.

    o4 (a=0, b=1, slope −1) crosses o0 where w·1 + (1−w)·0.5 = (1−w):
      0.5w + 0.5 = 1 − w → 1.5w = 0.5 → w = 1/3; for w > 1/3 o0 is above
      (it already is at w = 0.5).  Nothing else outranks o0 at w ≥ 0.5.

    So with λ = 0.5 and R(M,q) = 2, k = 1:
      k-only:   penalty = 0.5·(2−1)/(2−1)            = 0.5
      w-change: Δw = √2(w* − 0.5) ≈ 0.121320,
                penalty = 0.5·0.121320/√1.5 ≈ 0.049533... (Δk = 0)
    The weight change wins; refined ws == w* (the tie at w* goes to o0,
    oid 0 < oid 1, so the crossover itself already ranks o0 first).
    """

    W_STAR = 0.5 / (0.5 + 0.5 / SQRT2)

    def test_initial_rank_of_o0(self, scorer, db, query):
        assert scorer.rank_of(db.get(0), query) == 2

    def test_refinement_matches_hand_math(self, scorer, db, query):
        adjuster = PreferenceAdjuster(scorer)
        refinement = adjuster.refine(query, [db.get(0)], lam=0.5)
        assert refinement.initial_worst_rank == 2
        assert refinement.delta_k == 0
        assert refinement.refined_query.k == 1
        assert refinement.refined_query.ws == pytest.approx(self.W_STAR, abs=1e-12)
        expected_penalty = (
            0.5 * (SQRT2 * (self.W_STAR - 0.5)) / math.sqrt(1.5)
        )
        assert refinement.penalty == pytest.approx(expected_penalty, abs=1e-9)

    def test_refined_query_puts_o0_first(self, scorer, db, query):
        adjuster = PreferenceAdjuster(scorer)
        refinement = adjuster.refine(query, [db.get(0)], lam=0.5)
        result = scorer.top_k(refinement.refined_query)
        assert result.entries[0].obj.oid == 0

    def test_viable_interval_starts_at_crossover(self, scorer, db, query):
        adjuster = PreferenceAdjuster(scorer)
        intervals = adjuster.viable_weight_intervals(query, db.get(0))
        assert len(intervals) == 1
        lo, hi = intervals[0]
        assert lo == pytest.approx(self.W_STAR, abs=1e-12)
        assert hi == 1.0


class TestHandComputedKeyword:
    """Why-not for o2 (rank 4, k=1) via keyword adaption, λ = 0.5.

    M.doc = {a,b,c,d}; |q.doc ∪ M.doc| = 4; R(M,q) = 4 → normaliser 3.

    Candidate S = {c} (Δdoc = 3: remove a, b; add c):
      TSim(o2) = 1/4, others 0 (only o2 contains c; |o2 ∪ {c}| = 4).
      scores: o0 0.5, o1 0.32322, o2 0.271446+0.125 = wait —
      recompute: o2: 0.5(1−0.70711) + 0.5(0.25) = 0.146447 + 0.125 = 0.271447
      o0: 0.5(1) + 0 = 0.5 ; o1: 0.5(0.64645) = 0.32322 ; o3: 0.25251 ;
      o4: 0. So o2 ranks 3 → Δk = 2.
      penalty = 0.5·2/3 + 0.5·3/4 = 1/3 + 3/8 = 0.70833.

    Candidate S = {c, d} (Δdoc = 4): TSim(o2) = 2/4 = 0.5 → score
      0.146447 + 0.25 = 0.396447; o0 0.5 still above → rank 2, Δk = 1.
      penalty = 0.5·1/3 + 0.5·4/4 = 0.16667 + 0.5 = 0.66667.

    Candidate S = q.doc (Δdoc = 0): rank stays 4, Δk = 3,
      penalty = 0.5·3/3 + 0 = 0.5.

    Candidate S = {a,b,c} (Δdoc = 1): TSim o2 = 3/4, o1 = 2/3, o4 = 2/3,
      o0 = 1/3:
      o2: 0.146447 + 0.375   = 0.521447
      o1: 0.323223 + 1/3     = 0.656556
      o0: 0.5      + 1/6     = 0.666667
      o4: 0        + 1/3     = 0.333333
      → o2 rank 3, Δk = 2: penalty = 0.5·2/3 + 0.5·1/4 = 0.458333.

    Candidate S = {a,b,c,d} (Δdoc = 2): TSim o2 = 1, o1 = o4 = 1/2,
      o0 = 1/4:
      o2: 0.146447 + 0.5   = 0.646447
      o1: 0.323223 + 0.25  = 0.573223
      o0: 0.5      + 0.125 = 0.625
      → o2 rank 1!  Δk = 0: penalty = 0 + 0.5·2/4 = 0.25.  ← optimum
    """

    def test_initial_rank_of_o2(self, scorer, db, query):
        assert scorer.rank_of(db.get(2), query) == 4

    def test_adaption_finds_hand_computed_optimum(self, scorer, db, query):
        tree = KcRTree.build(db, max_entries=3, min_entries=1)
        adapter = KeywordAdapter(scorer, tree)
        refinement = adapter.refine(query, [db.get(2)], lam=0.5)
        assert refinement.refined_query.doc == frozenset({"a", "b", "c", "d"})
        assert refinement.delta_doc == 2
        assert refinement.delta_k == 0
        assert refinement.refined_query.k == 1
        assert refinement.penalty == pytest.approx(0.25, abs=1e-12)

    def test_intermediate_candidates_match_hand_math(self, scorer, db, query):
        from repro.whynot.penalty import KeywordPenalty

        penalty = KeywordPenalty(query, [db.get(2)], 4, lam=0.5)
        assert penalty(4, query.doc) == pytest.approx(0.5)
        assert penalty(3, frozenset({"a", "b", "c"})) == pytest.approx(
            0.5 * 2 / 3 + 0.5 * 1 / 4
        )
        assert penalty(1, frozenset({"a", "b", "c", "d"})) == pytest.approx(0.25)

    def test_refined_query_puts_o2_first(self, scorer, db, query):
        tree = KcRTree.build(db, max_entries=3, min_entries=1)
        adapter = KeywordAdapter(scorer, tree)
        refinement = adapter.refine(query, [db.get(2)], lam=0.5)
        result = scorer.top_k(refinement.refined_query)
        assert result.entries[0].obj.oid == 2
