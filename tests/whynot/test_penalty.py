"""Unit tests for :mod:`repro.whynot.penalty` — Eqns. (3) and (4)."""

import math

import pytest

from repro.core.geometry import Point
from repro.core.objects import SpatialObject
from repro.core.query import SpatialKeywordQuery, Weights
from repro.whynot.penalty import (
    KeywordPenalty,
    PreferencePenalty,
    keyword_edit_distance,
    missing_doc_union,
)


def query(k=3, ws=0.5, doc=("a", "b")):
    return SpatialKeywordQuery(
        Point(0, 0), frozenset(doc), k, Weights.from_spatial(ws)
    )


def missing_obj(oid, doc):
    return SpatialObject(oid, Point(0.5, 0.5), frozenset(doc))


class TestHelpers:
    def test_missing_doc_union(self):
        objs = [missing_obj(0, ("a", "b")), missing_obj(1, ("b", "c"))]
        assert missing_doc_union(objs) == frozenset({"a", "b", "c"})

    @pytest.mark.parametrize(
        "original,refined,expected",
        [
            ({"a"}, {"a"}, 0),
            ({"a"}, {"b"}, 2),
            ({"a", "b"}, {"a"}, 1),
            ({"a"}, {"a", "b", "c"}, 2),
            (set(), {"a"}, 1),
        ],
    )
    def test_keyword_edit_distance(self, original, refined, expected):
        assert keyword_edit_distance(frozenset(original), frozenset(refined)) == expected


class TestPreferencePenalty:
    def test_eqn3_value(self):
        q = query(k=3, ws=0.5)
        penalty = PreferencePenalty(q, initial_worst_rank=13, lam=0.5)
        refined = Weights.from_spatial(0.7)
        delta_w = q.weights.distance_to(refined)
        expected = 0.5 * 5 / 10 + 0.5 * delta_w / math.sqrt(1.5)
        assert penalty(8, refined) == pytest.approx(expected)

    def test_delta_k_clamped_at_zero(self):
        penalty = PreferencePenalty(query(k=3), 13, lam=0.5)
        assert penalty.delta_k(2) == 0
        assert penalty.delta_k(3) == 0
        assert penalty.delta_k(4) == 1

    def test_refined_k_covers_worst_rank(self):
        penalty = PreferencePenalty(query(k=3), 13)
        assert penalty.refined_k(2) == 3   # never shrink k
        assert penalty.refined_k(13) == 13

    def test_zero_when_nothing_changes_within_k(self):
        penalty = PreferencePenalty(query(k=3, ws=0.5), 13, lam=0.5)
        assert penalty(3, Weights.from_spatial(0.5)) == 0.0

    def test_pure_k_enlargement_penalty_is_lambda(self):
        # Δk = R(M,q) − k normalised by itself → the k-term is exactly λ.
        q = query(k=3)
        for lam in (0.0, 0.25, 0.5, 1.0):
            penalty = PreferencePenalty(q, 20, lam=lam)
            assert penalty(20, q.weights) == pytest.approx(lam)

    def test_penalty_in_unit_interval_for_reachable_ranks(self):
        q = query(k=3)
        penalty = PreferencePenalty(q, 30, lam=0.4)
        for rank in (1, 3, 15, 30):
            for ws in (0.1, 0.5, 0.9):
                value = penalty(rank, Weights.from_spatial(ws))
                assert 0.0 <= value <= 1.0 + 1e-12

    def test_lambda_validation(self):
        with pytest.raises(ValueError):
            PreferencePenalty(query(), 10, lam=-0.1)
        with pytest.raises(ValueError):
            PreferencePenalty(query(), 10, lam=1.1)

    def test_not_missing_rank_rejected(self):
        with pytest.raises(ValueError):
            PreferencePenalty(query(k=5), 5)
        with pytest.raises(ValueError):
            PreferencePenalty(query(k=5), 3)

    def test_breakdown_components_sum(self):
        penalty = PreferencePenalty(query(k=3), 13, lam=0.3)
        breakdown = penalty.breakdown(10, Weights.from_spatial(0.8))
        assert breakdown.total == pytest.approx(
            breakdown.k_component + breakdown.modification_component
        )
        assert breakdown.delta_k == 7

    def test_modification_term_is_lower_bound(self):
        penalty = PreferencePenalty(query(k=3), 13, lam=0.3)
        refined = Weights.from_spatial(0.9)
        assert penalty.modification_term(refined) <= penalty(20, refined)


class TestKeywordPenalty:
    def _penalty(self, k=3, worst=13, lam=0.5, q_doc=("a", "b"), m_docs=(("c", "d"),)):
        q = query(k=k, doc=q_doc)
        missing = [missing_obj(i, doc) for i, doc in enumerate(m_docs)]
        return KeywordPenalty(q, missing, worst, lam=lam), q

    def test_eqn4_value(self):
        penalty, q = self._penalty()
        # |q.doc ∪ M.doc| = |{a,b,c,d}| = 4.
        refined = frozenset({"a", "b", "c"})  # one insertion
        expected = 0.5 * 5 / 10 + 0.5 * 1 / 4
        assert penalty(8, refined) == pytest.approx(expected)

    def test_doc_normaliser_is_union_size(self):
        penalty, _ = self._penalty(q_doc=("a", "b"), m_docs=(("b", "c"), ("d",)))
        assert penalty.doc_normaliser == 4  # {a, b, c, d}
        assert penalty.missing_doc == frozenset({"b", "c", "d"})

    def test_pure_k_enlargement_penalty_is_lambda(self):
        penalty, q = self._penalty(lam=0.7)
        assert penalty(13, q.doc) == pytest.approx(0.7)

    def test_delta_doc_counts_both_edit_kinds(self):
        penalty, _ = self._penalty()
        assert penalty.delta_doc(frozenset({"a", "c"})) == 2  # -b +c

    def test_penalty_in_unit_interval(self):
        penalty, q = self._penalty(worst=30)
        for rank in (1, 3, 10, 30):
            for refined in (q.doc, frozenset({"c"}), frozenset({"a", "c", "d"})):
                assert 0.0 <= penalty(rank, refined) <= 1.0 + 1e-12

    def test_modification_term_for_edits_monotone(self):
        penalty, _ = self._penalty(lam=0.25)
        values = [penalty.modification_term_for_edits(e) for e in range(5)]
        assert values == sorted(values)
        assert values[0] == 0.0

    def test_not_missing_rank_rejected(self):
        with pytest.raises(ValueError):
            self._penalty(k=5, worst=5)

    def test_breakdown_components(self):
        penalty, _ = self._penalty(lam=0.4)
        breakdown = penalty.breakdown(10, frozenset({"a", "b", "c", "d"}))
        assert breakdown.delta_k == 7
        assert breakdown.total == pytest.approx(
            breakdown.k_component + breakdown.modification_component
        )
