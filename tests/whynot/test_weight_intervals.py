"""Tests for :meth:`PreferenceAdjuster.viable_weight_intervals`.

The intervals are verified against the float-rank oracle: interior
points of reported intervals must place the object inside the top-k;
interior points of the gaps between them must not.
"""

import pytest

from repro.core.query import Weights
from repro.whynot.preference import PreferenceAdjuster


def scenario(scorer, seed=210, k=5):
    from repro.bench.workloads import generate_whynot_scenarios

    return generate_whynot_scenarios(
        scorer, count=1, k=k, missing_count=1, seed=seed, rank_window=25
    )[0]


def rank_at(scorer, query, obj, w):
    return scorer.rank_of(obj, query.with_weights(Weights.from_spatial(w)))


def interior_points(lo, hi, count=3):
    if hi <= lo:
        return []
    step = (hi - lo) / (count + 1)
    return [lo + step * (index + 1) for index in range(count)]


@pytest.fixture(scope="module")
def adjuster(small_scorer):
    return PreferenceAdjuster(small_scorer)


class TestViableIntervals:
    @pytest.mark.parametrize("seed", [210, 211, 212, 213])
    def test_interiors_are_viable(self, small_scorer, adjuster, seed):
        s = scenario(small_scorer, seed=seed)
        missing = s.missing[0]
        intervals = adjuster.viable_weight_intervals(s.query, missing)
        for lo, hi in intervals:
            for w in interior_points(lo, hi):
                assert rank_at(small_scorer, s.query, missing, w) <= s.query.k, (
                    f"w={w} inside {lo, hi} should be viable"
                )

    @pytest.mark.parametrize("seed", [210, 211, 212])
    def test_gap_interiors_are_not_viable(self, small_scorer, adjuster, seed):
        s = scenario(small_scorer, seed=seed)
        missing = s.missing[0]
        intervals = adjuster.viable_weight_intervals(s.query, missing)
        # Build the complement gaps strictly inside (0, 1).
        gaps = []
        previous = 0.0
        for lo, hi in intervals:
            if lo > previous:
                gaps.append((previous, lo))
            previous = hi
        if previous < 1.0:
            gaps.append((previous, 1.0))
        for lo, hi in gaps:
            for w in interior_points(lo, hi):
                assert rank_at(small_scorer, s.query, missing, w) > s.query.k, (
                    f"w={w} in gap {lo, hi} should not be viable"
                )

    def test_initial_weight_not_in_any_interval(self, small_scorer, adjuster):
        # The object is missing under the initial weights, so ws0 cannot
        # lie strictly inside a viable interval.
        s = scenario(small_scorer, seed=214)
        intervals = adjuster.viable_weight_intervals(s.query, s.missing[0])
        for lo, hi in intervals:
            assert not (lo < s.query.ws < hi)

    def test_intervals_sorted_and_disjoint(self, small_scorer, adjuster):
        s = scenario(small_scorer, seed=215)
        intervals = adjuster.viable_weight_intervals(s.query, s.missing[0])
        for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
            assert lo1 <= hi1 <= lo2 <= hi2

    def test_target_k_widens_intervals(self, small_scorer, adjuster):
        # A larger k can only make more weights viable.
        s = scenario(small_scorer, seed=216)
        missing = s.missing[0]
        narrow = adjuster.viable_weight_intervals(s.query, missing)
        wide = adjuster.viable_weight_intervals(
            s.query, missing, target_k=s.query.k + 10
        )
        narrow_mass = sum(hi - lo for lo, hi in narrow)
        wide_mass = sum(hi - lo for lo, hi in wide)
        assert wide_mass >= narrow_mass - 1e-12

    def test_huge_target_k_covers_everything(self, small_scorer, adjuster):
        s = scenario(small_scorer, seed=217)
        intervals = adjuster.viable_weight_intervals(
            s.query, s.missing[0], target_k=len(small_scorer.database)
        )
        assert intervals == [(0.0, 1.0)]

    def test_refinement_weight_lies_in_a_viable_interval(self, small_scorer, adjuster):
        # If the returned refinement keeps k unchanged, its weight must
        # sit inside (or on the boundary of) some viable interval.
        for seed in (218, 219, 220):
            s = scenario(small_scorer, seed=seed)
            refinement = adjuster.refine(s.query, s.missing, lam=0.5)
            if refinement.delta_k > 0 or len(s.missing) != 1:
                continue
            intervals = adjuster.viable_weight_intervals(s.query, s.missing[0])
            w = refinement.refined_query.ws
            assert any(lo - 1e-12 <= w <= hi + 1e-12 for lo, hi in intervals)

    def test_linear_and_indexed_paths_agree(self, small_scorer):
        s = scenario(small_scorer, seed=221)
        indexed = PreferenceAdjuster(small_scorer, use_dual_index=True)
        linear = PreferenceAdjuster(small_scorer, use_dual_index=False)
        assert indexed.viable_weight_intervals(
            s.query, s.missing[0]
        ) == linear.viable_weight_intervals(s.query, s.missing[0])
