"""Tests for the combined refinement of Section 3.2.

"Users can apply the two refinement functions simultaneously to find
better solutions" — the combined refiner chains keyword adaption and
preference adjustment in both orders and returns the cheaper result.
"""

import pytest

from repro.core.topk import BruteForceTopK
from repro.whynot.combined import CombinedRefiner
from repro.whynot.keyword import KeywordAdapter
from repro.whynot.preference import PreferenceAdjuster


def scenarios(scorer, *, count, k=5, missing_count=1, seed=200):
    from repro.bench.workloads import generate_whynot_scenarios

    return generate_whynot_scenarios(
        scorer, count=count, k=k, missing_count=missing_count, seed=seed,
        rank_window=25,
    )


@pytest.fixture(scope="module")
def refiner(small_scorer, small_kcrtree):
    return CombinedRefiner(
        small_scorer,
        PreferenceAdjuster(small_scorer),
        KeywordAdapter(small_scorer, small_kcrtree),
    )


class TestContainment:
    @pytest.mark.parametrize("lam", [0.1, 0.5, 0.9])
    def test_combined_refinement_revives_missing(self, small_scorer, refiner, lam):
        oracle = BruteForceTopK(small_scorer)
        for scenario in scenarios(small_scorer, count=4):
            refinement = refiner.refine(scenario.query, scenario.missing, lam=lam)
            result = oracle.search(refinement.refined_query)
            assert all(result.contains(m) for m in scenario.missing), (
                refinement.describe()
            )

    def test_multiple_missing(self, small_scorer, refiner):
        oracle = BruteForceTopK(small_scorer)
        for scenario in scenarios(small_scorer, count=2, missing_count=2, seed=201):
            refinement = refiner.refine(scenario.query, scenario.missing)
            result = oracle.search(refinement.refined_query)
            assert all(result.contains(m) for m in scenario.missing)


class TestComposition:
    def test_order_reported_and_stages_kept(self, small_scorer, refiner):
        scenario = scenarios(small_scorer, count=1, seed=202)[0]
        refinement = refiner.refine(scenario.query, scenario.missing)
        assert refinement.order in ("keyword-first", "preference-first")
        # At least the first stage of the winning order must exist.
        assert (
            refinement.keyword_stage is not None
            or refinement.preference_stage is not None
        )

    def test_deltas_match_final_query(self, small_scorer, refiner):
        for scenario in scenarios(small_scorer, count=3, seed=203):
            refinement = refiner.refine(scenario.query, scenario.missing)
            q = scenario.query
            refined = refinement.refined_query
            assert refinement.delta_doc == len(q.doc ^ refined.doc)
            assert refinement.delta_w == pytest.approx(
                q.weights.distance_to(refined.weights)
            )
            assert refinement.delta_k == max(0, refinement.refined_worst_rank - q.k)

    def test_refined_k_covers_worst_rank(self, small_scorer, refiner):
        for scenario in scenarios(small_scorer, count=3, seed=204):
            refinement = refiner.refine(scenario.query, scenario.missing)
            assert refinement.refined_query.k >= refinement.refined_worst_rank

    def test_location_never_changes(self, small_scorer, refiner):
        for scenario in scenarios(small_scorer, count=3, seed=205):
            refinement = refiner.refine(scenario.query, scenario.missing)
            assert refinement.refined_query.loc == scenario.query.loc

    def test_penalty_in_unit_interval(self, small_scorer, refiner):
        for lam in (0.0, 0.5, 1.0):
            scenario = scenarios(small_scorer, count=1, seed=206)[0]
            refinement = refiner.refine(scenario.query, scenario.missing, lam=lam)
            assert 0.0 <= refinement.penalty <= 1.0 + 1e-9

    def test_empty_missing_rejected(self, small_scorer, refiner):
        scenario = scenarios(small_scorer, count=1, seed=207)[0]
        with pytest.raises(ValueError):
            refiner.refine(scenario.query, [])


class TestEngineIntegration:
    def test_engine_facade_dispatch(self, small_db):
        from repro.service.api import YaskEngine
        from repro.bench.workloads import generate_whynot_scenarios

        engine = YaskEngine(small_db, max_entries=8)
        scenario = generate_whynot_scenarios(
            engine.scorer, count=1, k=5, missing_count=1, seed=208,
            rank_window=25,
        )[0]
        refinement = engine.refine_combined(
            scenario.query, [m.oid for m in scenario.missing]
        )
        refined = engine.query(refinement.refined_query)
        assert all(refined.contains(m) for m in scenario.missing)

    def test_http_endpoint(self, small_db):
        from repro.service.api import YaskEngine
        from repro.service.client import YaskClient
        from repro.service.server import YaskHTTPServer
        from repro.bench.workloads import generate_whynot_scenarios

        engine = YaskEngine(small_db, max_entries=8)
        scenario = generate_whynot_scenarios(
            engine.scorer, count=1, k=5, missing_count=1, seed=209,
            rank_window=25,
        )[0]
        server = YaskHTTPServer(engine)
        server.start_background()
        try:
            client = YaskClient(server.endpoint)
            q = scenario.query
            session = client.query(q.loc.x, q.loc.y, sorted(q.doc), q.k, ws=q.ws)
            response = client.refine_combined(
                session["session_id"], [m.oid for m in scenario.missing]
            )
            assert response["refinement"]["model"] == "combined"
            refined_ids = {
                entry["object"]["oid"]
                for entry in response["refined_result"]["entries"]
            }
            assert {m.oid for m in scenario.missing} <= refined_ids
            log = client.query_log(session["session_id"])
            assert any(e["kind"] == "combined refinement" for e in log)
        finally:
            server.shutdown()
            server.server_close()
