"""Tests for the keyword-adapted why-not module (Definition 3).

Central contracts:

1. **Containment:** the refined query's result contains every missing
   object.
2. **Exactness of bound-and-prune:** the KcR-tree path returns exactly
   the same refined keyword set and penalty as the exhaustive-scan
   baseline — pruning must never change the answer, only the work.
3. **Optimality:** no candidate in the enumeration space has a lower
   Eqn. (4) penalty (established via the exhaustive baseline).
"""

import pytest

from repro.core.topk import BruteForceTopK
from repro.index.kcrtree import KcRTree
from repro.whynot.baselines import exhaustive_keyword_adapter
from repro.whynot.errors import NotMissingError
from repro.whynot.keyword import KeywordAdapter

from tests.conftest import random_queries


def scenarios(scorer, *, count, k, missing_count=1, seed=80):
    from repro.bench.workloads import generate_whynot_scenarios

    return generate_whynot_scenarios(
        scorer, count=count, k=k, missing_count=missing_count, seed=seed,
        rank_window=25,
    )


@pytest.fixture(scope="module")
def adapter(small_scorer, small_kcrtree):
    return KeywordAdapter(small_scorer, small_kcrtree)


@pytest.fixture(scope="module")
def baseline(small_scorer, small_kcrtree):
    return exhaustive_keyword_adapter(small_scorer, small_kcrtree)


class TestContainment:
    @pytest.mark.parametrize("lam", [0.1, 0.5, 0.9])
    def test_refined_query_revives_missing(self, small_scorer, adapter, lam):
        oracle = BruteForceTopK(small_scorer)
        for scenario in scenarios(small_scorer, count=5, k=5):
            refinement = adapter.refine(scenario.query, scenario.missing, lam=lam)
            result = oracle.search(refinement.refined_query)
            for missing in scenario.missing:
                assert result.contains(missing), refinement.describe()

    def test_multiple_missing_objects(self, small_scorer, adapter):
        oracle = BruteForceTopK(small_scorer)
        for scenario in scenarios(small_scorer, count=3, k=5, missing_count=2, seed=81):
            refinement = adapter.refine(scenario.query, scenario.missing)
            result = oracle.search(refinement.refined_query)
            assert all(result.contains(m) for m in scenario.missing)

    def test_medium_database(self, medium_scorer, medium_kcrtree):
        adapter = KeywordAdapter(medium_scorer, medium_kcrtree)
        oracle = BruteForceTopK(medium_scorer)
        for scenario in scenarios(medium_scorer, count=2, k=10, seed=82):
            refinement = adapter.refine(scenario.query, scenario.missing)
            result = oracle.search(refinement.refined_query)
            assert all(result.contains(m) for m in scenario.missing)


class TestBoundAndPruneExactness:
    @pytest.mark.parametrize("lam", [0.2, 0.5, 0.8])
    def test_same_answer_as_exhaustive(self, small_scorer, adapter, baseline, lam):
        for scenario in scenarios(small_scorer, count=4, k=5, seed=83):
            pruned = adapter.refine(scenario.query, scenario.missing, lam=lam)
            exhaustive = baseline.refine(scenario.query, scenario.missing, lam=lam)
            assert pruned.penalty == pytest.approx(exhaustive.penalty, abs=1e-12)
            assert pruned.refined_query.doc == exhaustive.refined_query.doc
            assert pruned.refined_query.k == exhaustive.refined_query.k

    def test_pruning_reduces_scored_objects(self, small_scorer, adapter, baseline):
        scenario = scenarios(small_scorer, count=1, k=5, seed=84)[0]
        pruned = adapter.refine(scenario.query, scenario.missing)
        exhaustive = baseline.refine(scenario.query, scenario.missing)
        assert pruned.stats.objects_scored < exhaustive.stats.objects_scored

    def test_methods_reported(self, small_scorer, adapter, baseline):
        scenario = scenarios(small_scorer, count=1, k=5, seed=85)[0]
        assert adapter.refine(scenario.query, scenario.missing).method == "kcr-bound-prune"
        assert (
            baseline.refine(scenario.query, scenario.missing).method
            == "exhaustive-scan"
        )


class TestRefinementSemantics:
    def test_added_keywords_come_from_missing_docs(self, small_scorer, adapter):
        for scenario in scenarios(small_scorer, count=4, k=5, seed=86):
            refinement = adapter.refine(scenario.query, scenario.missing)
            missing_doc = frozenset().union(*(m.doc for m in scenario.missing))
            assert refinement.added <= missing_doc - scenario.query.doc

    def test_removed_keywords_come_from_query(self, small_scorer, adapter):
        for scenario in scenarios(small_scorer, count=4, k=5, seed=87):
            refinement = adapter.refine(scenario.query, scenario.missing)
            assert refinement.removed <= scenario.query.doc

    def test_delta_doc_is_edit_distance(self, small_scorer, adapter):
        for scenario in scenarios(small_scorer, count=4, k=5, seed=88):
            refinement = adapter.refine(scenario.query, scenario.missing)
            assert refinement.delta_doc == len(
                scenario.query.doc ^ refinement.refined_query.doc
            )

    def test_loc_weights_unchanged(self, small_scorer, adapter):
        # Definition 3: q' = (loc, doc', k', ~w) — weights stay fixed.
        for scenario in scenarios(small_scorer, count=3, k=5, seed=89):
            refined = adapter.refine(scenario.query, scenario.missing).refined_query
            assert refined.loc == scenario.query.loc
            assert refined.weights == scenario.query.weights

    def test_refined_k_covers_worst_rank(self, small_scorer, adapter):
        for scenario in scenarios(small_scorer, count=3, k=5, seed=90):
            refinement = adapter.refine(scenario.query, scenario.missing)
            assert refinement.refined_query.k == max(
                scenario.query.k, refinement.refined_worst_rank
            )

    def test_penalty_never_exceeds_lambda(self, small_scorer, adapter):
        # The zero-edit candidate (pure k-enlargement) achieves λ.
        for lam in (0.0, 0.4, 1.0):
            scenario = scenarios(small_scorer, count=1, k=5, seed=91)[0]
            refinement = adapter.refine(scenario.query, scenario.missing, lam=lam)
            assert refinement.penalty <= lam + 1e-12

    def test_lambda_zero_returns_zero_edit_refinement(self, small_scorer, adapter):
        # With λ=0 the Δk term vanishes; the admissible cut stops the
        # enumeration after the zero-edit candidate (penalty 0).
        scenario = scenarios(small_scorer, count=1, k=5, seed=92)[0]
        refinement = adapter.refine(scenario.query, scenario.missing, lam=0.0)
        assert refinement.delta_doc == 0
        assert refinement.penalty == 0.0


class TestGuardsAndErrors:
    def test_not_missing_raises(self, small_scorer, adapter):
        q = random_queries(small_scorer.database, 1, seed=93, k=5)[0]
        top = small_scorer.top_k(q)
        with pytest.raises(NotMissingError):
            adapter.refine(q, [top.entries[0].obj])

    def test_empty_missing_rejected(self, small_scorer, adapter):
        q = random_queries(small_scorer.database, 1, seed=94, k=5)[0]
        with pytest.raises(ValueError):
            adapter.refine(q, [])

    def test_non_jaccard_model_rejected_with_bounds(self, small_db, small_kcrtree):
        from repro.core.scoring import Scorer
        from repro.text.similarity import DiceSimilarity

        scorer = Scorer(small_db, text_model=DiceSimilarity())
        with pytest.raises(ValueError):
            KeywordAdapter(scorer, small_kcrtree, use_bounds=True)

    def test_mismatched_database_rejected(self, small_scorer, medium_kcrtree):
        with pytest.raises(ValueError):
            KeywordAdapter(small_scorer, medium_kcrtree)

    def test_candidate_budget_validated(self, small_scorer, small_kcrtree):
        with pytest.raises(ValueError):
            KeywordAdapter(small_scorer, small_kcrtree, candidate_budget=0)

    def test_max_edit_count_limits_search(self, small_scorer, small_kcrtree):
        capped = KeywordAdapter(small_scorer, small_kcrtree, max_edit_count=1)
        scenario = scenarios(small_scorer, count=1, k=5, seed=95)[0]
        refinement = capped.refine(scenario.query, scenario.missing)
        assert refinement.delta_doc <= 1

    def test_stats_populated(self, small_scorer, adapter):
        scenario = scenarios(small_scorer, count=1, k=5, seed=96)[0]
        refinement = adapter.refine(scenario.query, scenario.missing)
        stats = refinement.stats
        assert stats.candidates_generated >= 1
        assert stats.candidates_evaluated >= 1
        assert stats.edit_levels_explored >= 1
        assert 0.0 <= stats.prune_ratio <= 1.0
