"""Semantic scenarios for keyword adaption beyond simple insertions.

Eqn. (4) allows both inserting and deleting keywords; these scenarios
construct databases where each edit kind is *the* optimal move, so a
regression that quietly stops exploring one half of the edit space fails
loudly.
"""

import pytest

from repro.core.geometry import Point, Rect
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import SpatialKeywordQuery, Weights
from repro.core.scoring import Scorer
from repro.index.kcrtree import KcRTree
from repro.whynot.keyword import KeywordAdapter


def make_adapter(objects):
    db = SpatialDatabase(objects, dataspace=Rect(0, 0, 1, 1))
    scorer = Scorer(db)
    tree = KcRTree.build(db, max_entries=3, min_entries=1)
    return db, scorer, KeywordAdapter(scorer, tree)


class TestDeletionIsOptimal:
    """The missing object lacks one query keyword that its competitors
    all carry; deleting that keyword levels the textual field while the
    missing object wins on distance."""

    @pytest.fixture()
    def setup(self):
        objects = [
            # The missing object: closest to the query, doc = {food}.
            SpatialObject(0, Point(0.05, 0.05), frozenset({"food"})),
            # Competitors: farther, but carry the noisy keyword "cheap"
            # that the user also typed.
            SpatialObject(1, Point(0.30, 0.30), frozenset({"food", "cheap"})),
            SpatialObject(2, Point(0.35, 0.25), frozenset({"food", "cheap"})),
            SpatialObject(3, Point(0.25, 0.40), frozenset({"food", "cheap"})),
            SpatialObject(4, Point(0.90, 0.90), frozenset({"other"})),
        ]
        return make_adapter(objects)

    def test_scenario_well_posed(self, setup):
        db, scorer, _ = setup
        query = SpatialKeywordQuery(
            Point(0.0, 0.0), frozenset({"food", "cheap"}), 1, Weights(0.3, 0.7)
        )
        # With text-heavy weights, the {food,cheap} competitors beat the
        # nearby {food}-only object.
        assert scorer.rank_of(db.get(0), query) > 1

    def test_deleting_the_noise_keyword_wins(self, setup):
        db, scorer, adapter = setup
        query = SpatialKeywordQuery(
            Point(0.0, 0.0), frozenset({"food", "cheap"}), 1, Weights(0.3, 0.7)
        )
        refinement = adapter.refine(query, [db.get(0)], lam=0.9)
        # λ=0.9 makes k-enlargement expensive, so the model must edit
        # keywords; the only keyword worth touching is "cheap" (the
        # addition pool is empty: M.doc ⊂ q.doc).
        assert refinement.removed == frozenset({"cheap"})
        assert refinement.added == frozenset()
        assert refinement.delta_k == 0
        result = scorer.top_k(refinement.refined_query)
        assert result.entries[0].obj.oid == 0


class TestInsertionIsOptimal:
    """Symmetric scenario: the missing object's distinguishing keyword
    must be added to the query."""

    @pytest.fixture()
    def setup(self):
        objects = [
            SpatialObject(0, Point(0.10, 0.10), frozenset({"food", "sushi"})),
            SpatialObject(1, Point(0.05, 0.05), frozenset({"food"})),
            SpatialObject(2, Point(0.06, 0.08), frozenset({"food"})),
            SpatialObject(3, Point(0.08, 0.04), frozenset({"food"})),
        ]
        return make_adapter(objects)

    def test_adding_the_discriminating_keyword_wins(self, setup):
        db, scorer, adapter = setup
        query = SpatialKeywordQuery(
            Point(0.0, 0.0), frozenset({"food"}), 1, Weights(0.3, 0.7)
        )
        assert scorer.rank_of(db.get(0), query) > 1
        refinement = adapter.refine(query, [db.get(0)], lam=0.9)
        assert refinement.added == frozenset({"sushi"})
        assert refinement.removed == frozenset()
        result = scorer.top_k(refinement.refined_query)
        assert result.entries[0].obj.oid == 0


class TestMixedEditIsOptimal:
    """Both a deletion and an insertion are needed."""

    @pytest.fixture()
    def setup(self):
        objects = [
            SpatialObject(0, Point(0.10, 0.10), frozenset({"food", "sushi"})),
            SpatialObject(1, Point(0.05, 0.05), frozenset({"food", "cheap"})),
            SpatialObject(2, Point(0.06, 0.08), frozenset({"food", "cheap"})),
            SpatialObject(3, Point(0.08, 0.04), frozenset({"food", "cheap"})),
        ]
        return make_adapter(objects)

    def test_swap_edit_found(self, setup):
        db, scorer, adapter = setup
        query = SpatialKeywordQuery(
            Point(0.0, 0.0), frozenset({"food", "cheap"}), 1, Weights(0.2, 0.8)
        )
        assert scorer.rank_of(db.get(0), query) > 1
        refinement = adapter.refine(query, [db.get(0)], lam=0.95)
        # The cheapest zero-Δk refinement swaps the noise keyword for the
        # discriminating one.
        assert refinement.delta_k == 0
        assert "sushi" in refinement.refined_query.doc
        assert "cheap" not in refinement.refined_query.doc
        result = scorer.top_k(refinement.refined_query)
        assert result.entries[0].obj.oid == 0
