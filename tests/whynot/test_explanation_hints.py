"""Tests for the weight-interval hints in explanations (Example 1's
"how can the ranking function be adjusted?" question)."""

import pytest

from repro.core.geometry import Point
from repro.core.query import Weights
from repro.whynot.explanation import ExplanationGenerator
from repro.whynot.preference import PreferenceAdjuster


def scenario(scorer, seed=240, k=5):
    from repro.bench.workloads import generate_whynot_scenarios

    return generate_whynot_scenarios(
        scorer, count=1, k=k, missing_count=1, seed=seed, rank_window=25
    )[0]


@pytest.fixture(scope="module")
def generator(small_scorer, small_setrtree):
    return ExplanationGenerator(
        small_scorer,
        small_setrtree,
        preference_adjuster=PreferenceAdjuster(small_scorer),
    )


class TestWeightHints:
    def test_intervals_attached_when_adjuster_present(self, small_scorer, generator):
        s = scenario(small_scorer)
        entry = generator.explain(s.query, s.missing).explanations[0]
        assert entry.viable_ws_intervals is not None
        assert entry.fixable_by_weights_alone in (True, False)

    def test_intervals_none_without_adjuster(self, small_scorer, small_setrtree):
        plain = ExplanationGenerator(small_scorer, small_setrtree)
        s = scenario(small_scorer, seed=241)
        entry = plain.explain(s.query, s.missing).explanations[0]
        assert entry.viable_ws_intervals is None
        assert entry.fixable_by_weights_alone is None

    def test_intervals_match_direct_adjuster_call(self, small_scorer, generator):
        adjuster = PreferenceAdjuster(small_scorer)
        s = scenario(small_scorer, seed=242)
        entry = generator.explain(s.query, s.missing).explanations[0]
        direct = tuple(
            adjuster.viable_weight_intervals(s.query, s.missing[0])
        )
        assert entry.viable_ws_intervals == direct

    def test_narrative_mentions_hint(self, small_scorer, generator):
        s = scenario(small_scorer, seed=243)
        entry = generator.explain(s.query, s.missing).explanations[0]
        text = entry.narrative()
        if entry.fixable_by_weights_alone:
            assert "Adjusting the spatial weight" in text
        else:
            assert "No preference weighting alone" in text

    def test_fixable_consistent_with_refinement(self, small_scorer, generator):
        # When weights alone can fix it, preference adjustment at λ=1
        # (only Δk penalised) must find a zero-Δk refinement.
        adjuster = PreferenceAdjuster(small_scorer)
        for seed in (244, 245, 246):
            s = scenario(small_scorer, seed=seed)
            entry = generator.explain(s.query, s.missing).explanations[0]
            refinement = adjuster.refine(s.query, s.missing, lam=1.0)
            if entry.fixable_by_weights_alone:
                assert refinement.delta_k == 0

    def test_engine_explanations_carry_hints(self, small_db):
        from repro.service.api import YaskEngine
        from repro.bench.workloads import generate_whynot_scenarios

        engine = YaskEngine(small_db, max_entries=8)
        s = generate_whynot_scenarios(
            engine.scorer, count=1, k=5, missing_count=1, seed=247,
            rank_window=25,
        )[0]
        explanation = engine.explain(s.query, [m.oid for m in s.missing])
        assert explanation.explanations[0].viable_ws_intervals is not None

    def test_protocol_serialises_hints(self, small_db):
        import json

        from repro.service.api import YaskEngine
        from repro.service.protocol import explanation_to_dict
        from repro.bench.workloads import generate_whynot_scenarios

        engine = YaskEngine(small_db, max_entries=8)
        s = generate_whynot_scenarios(
            engine.scorer, count=1, k=5, missing_count=1, seed=248,
            rank_window=25,
        )[0]
        payload = explanation_to_dict(
            engine.explain(s.query, [m.oid for m in s.missing])
        )
        json.dumps(payload)
        first = payload["objects"][0]
        assert "viable_ws_intervals" in first
        assert "fixable_by_weights_alone" in first
