"""Tests for the comparison baselines (:mod:`repro.whynot.baselines`)."""

import pytest

from repro.core.topk import BruteForceTopK
from repro.whynot.baselines import SamplingPreferenceAdjuster
from repro.whynot.errors import NotMissingError

from tests.conftest import random_queries


def scenario(scorer, seed=130, k=5):
    from repro.bench.workloads import generate_whynot_scenarios

    return generate_whynot_scenarios(
        scorer, count=1, k=k, missing_count=1, seed=seed, rank_window=25
    )[0]


class TestSamplingAdjuster:
    def test_sampled_refinement_revives_missing(self, small_scorer):
        sampler = SamplingPreferenceAdjuster(small_scorer, samples=100)
        oracle = BruteForceTopK(small_scorer)
        s = scenario(small_scorer)
        refinement = sampler.refine(s.query, s.missing)
        result = oracle.search(refinement.refined_query)
        assert all(result.contains(m) for m in s.missing)

    def test_more_samples_never_worse(self, small_scorer):
        # The probe grids are nested in effect: penalty is monotone
        # non-increasing in sample density on the same scenario.
        s = scenario(small_scorer, seed=131)
        coarse = SamplingPreferenceAdjuster(small_scorer, samples=10)
        fine = SamplingPreferenceAdjuster(small_scorer, samples=400)
        assert (
            fine.refine(s.query, s.missing).penalty
            <= coarse.refine(s.query, s.missing).penalty + 1e-9
        )

    def test_penalty_at_most_lambda(self, small_scorer):
        # The initial weight is always probed → penalty ≤ λ.
        sampler = SamplingPreferenceAdjuster(small_scorer, samples=5)
        for lam in (0.2, 0.8):
            s = scenario(small_scorer, seed=132)
            assert sampler.refine(s.query, s.missing, lam=lam).penalty <= lam + 1e-12

    def test_method_label_carries_sample_count(self, small_scorer):
        sampler = SamplingPreferenceAdjuster(small_scorer, samples=33)
        s = scenario(small_scorer, seed=133)
        assert sampler.refine(s.query, s.missing).method == "sampling-33"

    def test_not_missing_raises(self, small_scorer):
        sampler = SamplingPreferenceAdjuster(small_scorer, samples=10)
        q = random_queries(small_scorer.database, 1, seed=134, k=5)[0]
        top = small_scorer.top_k(q)
        with pytest.raises(NotMissingError):
            sampler.refine(q, [top.entries[0].obj])

    def test_invalid_sample_count(self, small_scorer):
        with pytest.raises(ValueError):
            SamplingPreferenceAdjuster(small_scorer, samples=0)

    def test_empty_missing_rejected(self, small_scorer):
        sampler = SamplingPreferenceAdjuster(small_scorer, samples=10)
        q = random_queries(small_scorer.database, 1, seed=135, k=5)[0]
        with pytest.raises(ValueError):
            sampler.refine(q, [])
