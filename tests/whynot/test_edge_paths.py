"""Edge-path tests across the why-not modules."""

import pytest

from repro.core.geometry import Point, Rect
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import SpatialKeywordQuery, Weights
from repro.core.scoring import Scorer
from repro.index.kcrtree import KcRTree
from repro.index.setrtree import SetRTree
from repro.whynot.explanation import ExplanationGenerator, MissingReason
from repro.whynot.keyword import KeywordAdapter
from repro.whynot.preference import PreferenceAdjuster


def tiny_engine(objects):
    db = SpatialDatabase(objects, dataspace=Rect(0, 0, 1, 1))
    scorer = Scorer(db)
    return db, scorer


class TestReasonClassificationCases:
    def test_too_far_reason(self):
        # Missing object: textually perfect but spatially distant.
        db, scorer = tiny_engine([
            SpatialObject(0, Point(0.95, 0.95), frozenset({"a", "b"})),
            SpatialObject(1, Point(0.05, 0.05), frozenset({"a", "b"})),
            SpatialObject(2, Point(0.10, 0.05), frozenset({"a"})),
        ])
        generator = ExplanationGenerator(scorer, SetRTree.build(db, max_entries=2))
        query = SpatialKeywordQuery(Point(0, 0), frozenset({"a", "b"}), 1)
        entry = generator.explain(query, [db.get(0)]).explanations[0]
        assert entry.reason is MissingReason.TOO_FAR

    def test_low_relevance_reason(self):
        # Missing object: closest, but keyword-poor vs the winner.
        db, scorer = tiny_engine([
            SpatialObject(0, Point(0.02, 0.02), frozenset({"x"})),
            SpatialObject(1, Point(0.10, 0.10), frozenset({"a", "b"})),
            SpatialObject(2, Point(0.90, 0.90), frozenset({"a"})),
        ])
        generator = ExplanationGenerator(scorer, SetRTree.build(db, max_entries=2))
        query = SpatialKeywordQuery(Point(0, 0), frozenset({"a", "b"}), 1)
        entry = generator.explain(query, [db.get(0)]).explanations[0]
        assert entry.reason is MissingReason.LOW_RELEVANCE

    def test_both_reason(self):
        db, scorer = tiny_engine([
            SpatialObject(0, Point(0.9, 0.9), frozenset({"x"})),
            SpatialObject(1, Point(0.05, 0.05), frozenset({"a", "b"})),
            SpatialObject(2, Point(0.5, 0.5), frozenset({"a"})),
        ])
        generator = ExplanationGenerator(scorer, SetRTree.build(db, max_entries=2))
        query = SpatialKeywordQuery(Point(0, 0), frozenset({"a", "b"}), 1)
        entry = generator.explain(query, [db.get(0)]).explanations[0]
        assert entry.reason is MissingReason.BOTH

    def test_preference_imbalance_reason(self):
        # Missing object ties the winner on distance and beats it on
        # text, but the tie at equal score goes to the smaller oid —
        # component-wise it is not behind on either axis.
        db, scorer = tiny_engine([
            SpatialObject(0, Point(0.05, 0.05), frozenset({"a", "b"})),
            SpatialObject(5, Point(0.05, 0.05), frozenset({"a", "b"})),
            SpatialObject(7, Point(0.9, 0.9), frozenset({"x"})),
        ])
        generator = ExplanationGenerator(scorer, SetRTree.build(db, max_entries=2))
        query = SpatialKeywordQuery(Point(0, 0), frozenset({"a", "b"}), 1)
        entry = generator.explain(query, [db.get(5)]).explanations[0]
        assert entry.reason is MissingReason.PREFERENCE_IMBALANCE


class TestKeywordAdapterBudget:
    def test_candidate_budget_truncates_but_answers(self, small_scorer, small_kcrtree):
        from repro.bench.workloads import generate_whynot_scenarios

        scenario = generate_whynot_scenarios(
            small_scorer, count=1, k=5, missing_count=1, seed=270,
            rank_window=25,
        )[0]
        budgeted = KeywordAdapter(
            small_scorer, small_kcrtree, candidate_budget=1
        )
        refinement = budgeted.refine(scenario.query, scenario.missing)
        # Only the zero-edit candidate was examined: pure k-enlargement.
        assert refinement.delta_doc == 0
        assert refinement.stats.candidates_generated == 1
        assert refinement.penalty == pytest.approx(0.5)

    def test_lambda_one_with_budget_is_safe(self, small_scorer, small_kcrtree):
        from repro.bench.workloads import generate_whynot_scenarios

        scenario = generate_whynot_scenarios(
            small_scorer, count=1, k=5, missing_count=1, seed=271,
            rank_window=25,
        )[0]
        budgeted = KeywordAdapter(
            small_scorer, small_kcrtree, candidate_budget=200
        )
        refinement = budgeted.refine(scenario.query, scenario.missing, lam=1.0)
        assert refinement.stats.candidates_generated <= 200
        assert refinement.penalty <= 1.0 + 1e-12


class TestPreferenceExtremes:
    def test_crossover_at_extreme_weight_handled(self):
        # Two objects whose crossover sits extremely close to w=1: the
        # far-side candidate search must not produce invalid weights.
        db, scorer = tiny_engine([
            SpatialObject(0, Point(0.0, 0.0), frozenset({"a"})),
            SpatialObject(1, Point(0.001, 0.0), frozenset({"a", "b"})),
            SpatialObject(2, Point(0.9, 0.9), frozenset({"b"})),
        ])
        adjuster = PreferenceAdjuster(scorer)
        query = SpatialKeywordQuery(
            Point(0, 0), frozenset({"a", "b"}), 1, Weights.from_spatial(0.5)
        )
        missing = db.get(0)
        if scorer.rank_of(missing, query) <= 1:
            pytest.skip("object not missing in this configuration")
        refinement = adjuster.refine(query, [missing])
        assert 0.0 < refinement.refined_query.ws < 1.0

    def test_all_objects_identical_lines(self):
        # Every object has the same dual point: no crossovers exist and
        # only k-enlargement can revive the missing object.
        db, scorer = tiny_engine([
            SpatialObject(0, Point(0.5, 0.5), frozenset({"a"})),
            SpatialObject(1, Point(0.5, 0.5), frozenset({"a"})),
            SpatialObject(2, Point(0.5, 0.5), frozenset({"a"})),
        ])
        adjuster = PreferenceAdjuster(scorer)
        query = SpatialKeywordQuery(Point(0.5, 0.5), frozenset({"a"}), 1)
        # oid tie-break: object 2 ranks third forever.
        refinement = adjuster.refine(query, [db.get(2)], lam=0.5)
        assert refinement.crossovers == 0
        assert refinement.delta_w == 0.0
        assert refinement.refined_query.k == 3
        assert refinement.penalty == pytest.approx(0.5)

    def test_viable_intervals_empty_when_unfixable(self):
        db, scorer = tiny_engine([
            SpatialObject(0, Point(0.5, 0.5), frozenset({"a"})),
            SpatialObject(1, Point(0.5, 0.5), frozenset({"a"})),
        ])
        adjuster = PreferenceAdjuster(scorer)
        query = SpatialKeywordQuery(Point(0.5, 0.5), frozenset({"a"}), 1)
        assert adjuster.viable_weight_intervals(query, db.get(1)) == []
