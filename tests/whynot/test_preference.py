"""Tests for the preference-adjusted why-not module (Definition 2).

Central contracts:

1. **Containment:** the refined query's result contains every missing
   object (Definition 2 requires it).
2. **Optimality:** no alternative weight — sampled densely or taken from
   the exhaustive crossover set — achieves a lower Eqn. (3) penalty.
3. **Consistency:** the linear-scan ablation returns the same answer as
   the dual-space R-tree path, and the sweep's incremental ranks agree
   with from-scratch ranking.
"""

import math

import pytest

from repro.core.query import Weights
from repro.core.scoring import Scorer
from repro.core.topk import BruteForceTopK
from repro.whynot.errors import NotMissingError
from repro.whynot.penalty import PreferencePenalty
from repro.whynot.preference import PreferenceAdjuster

from tests.conftest import random_queries


def scenarios(scorer, *, count, k, missing_count=1, seed=60):
    from repro.bench.workloads import generate_whynot_scenarios

    return generate_whynot_scenarios(
        scorer, count=count, k=k, missing_count=missing_count, seed=seed,
        rank_window=30,
    )


def exact_optimum_by_enumeration(scorer, query, missing, lam):
    """Slow exact oracle: evaluate Eqn. (3) at every crossover weight.

    Enumerates every pairwise crossover of the missing objects' score
    lines with all other objects' lines (plus one-ulp neighbours and the
    initial weight) and computes exact float ranks at each — O(n² )-ish
    but indisputable.
    """
    duals = scorer.dual_points(query)
    by_oid = {d.oid: d for d in duals}
    missing_duals = [by_oid[m.oid] for m in missing]

    initial_worst = max(
        PreferenceAdjuster._ranks_at_weights(query.weights, missing_duals, duals).values()
    )
    penalty = PreferencePenalty(query, initial_worst, lam)

    candidate_ws = {query.ws}
    for m_dual in missing_duals:
        for other in duals:
            if other.oid == m_dual.oid:
                continue
            w = m_dual.crossover_with(other)
            if w is None or not (0.0 < w < 1.0 and 0.0 < 1.0 - w < 1.0):
                continue
            candidate_ws.add(w)
            for neighbour in (math.nextafter(w, 0.0), math.nextafter(w, 1.0)):
                if 0.0 < neighbour < 1.0 and 0.0 < 1.0 - neighbour < 1.0:
                    candidate_ws.add(neighbour)

    best = math.inf
    for w in sorted(candidate_ws):
        weights = query.weights if w == query.ws else Weights.from_spatial(w)
        worst = max(
            PreferenceAdjuster._ranks_at_weights(weights, missing_duals, duals).values()
        )
        best = min(best, penalty(worst, weights))
    return best


class TestContainment:
    @pytest.mark.parametrize("lam", [0.1, 0.5, 0.9])
    def test_refined_query_revives_missing(self, small_scorer, lam):
        adjuster = PreferenceAdjuster(small_scorer)
        oracle = BruteForceTopK(small_scorer)
        for scenario in scenarios(small_scorer, count=6, k=5):
            refinement = adjuster.refine(scenario.query, scenario.missing, lam=lam)
            result = oracle.search(refinement.refined_query)
            for missing in scenario.missing:
                assert result.contains(missing), (
                    f"missing object {missing.oid} not revived "
                    f"(lam={lam}, refined={refinement.describe()})"
                )

    def test_multiple_missing_objects(self, small_scorer):
        adjuster = PreferenceAdjuster(small_scorer)
        oracle = BruteForceTopK(small_scorer)
        for scenario in scenarios(small_scorer, count=4, k=5, missing_count=3, seed=61):
            refinement = adjuster.refine(scenario.query, scenario.missing)
            result = oracle.search(refinement.refined_query)
            assert all(result.contains(m) for m in scenario.missing)

    def test_medium_database(self, medium_scorer):
        adjuster = PreferenceAdjuster(medium_scorer)
        oracle = BruteForceTopK(medium_scorer)
        for scenario in scenarios(medium_scorer, count=3, k=10, seed=62):
            refinement = adjuster.refine(scenario.query, scenario.missing)
            result = oracle.search(refinement.refined_query)
            assert all(result.contains(m) for m in scenario.missing)


class TestOptimality:
    @pytest.mark.parametrize("lam", [0.2, 0.5, 0.8])
    def test_beats_exhaustive_crossover_enumeration(self, small_scorer, lam):
        adjuster = PreferenceAdjuster(small_scorer)
        for scenario in scenarios(small_scorer, count=4, k=5, seed=63):
            refinement = adjuster.refine(scenario.query, scenario.missing, lam=lam)
            oracle = exact_optimum_by_enumeration(
                small_scorer, scenario.query, scenario.missing, lam
            )
            assert refinement.penalty <= oracle + 1e-9

    def test_beats_dense_sampling(self, small_scorer):
        from repro.whynot.baselines import SamplingPreferenceAdjuster

        adjuster = PreferenceAdjuster(small_scorer)
        sampler = SamplingPreferenceAdjuster(small_scorer, samples=500)
        for scenario in scenarios(small_scorer, count=4, k=5, seed=64):
            exact = adjuster.refine(scenario.query, scenario.missing)
            sampled = sampler.refine(scenario.query, scenario.missing)
            assert exact.penalty <= sampled.penalty + 1e-9

    def test_penalty_never_exceeds_lambda(self, small_scorer):
        # The pure k-enlargement candidate always achieves penalty = λ.
        adjuster = PreferenceAdjuster(small_scorer)
        for lam in (0.0, 0.3, 0.7, 1.0):
            for scenario in scenarios(small_scorer, count=3, k=5, seed=65):
                refinement = adjuster.refine(scenario.query, scenario.missing, lam=lam)
                assert refinement.penalty <= lam + 1e-12


class TestReportedFields:
    def test_refined_k_covers_worst_rank(self, small_scorer):
        adjuster = PreferenceAdjuster(small_scorer)
        for scenario in scenarios(small_scorer, count=4, k=5, seed=66):
            refinement = adjuster.refine(scenario.query, scenario.missing)
            assert refinement.refined_query.k == max(
                scenario.query.k, refinement.refined_worst_rank
            )

    def test_delta_w_matches_weights(self, small_scorer):
        adjuster = PreferenceAdjuster(small_scorer)
        for scenario in scenarios(small_scorer, count=4, k=5, seed=67):
            refinement = adjuster.refine(scenario.query, scenario.missing)
            assert refinement.delta_w == pytest.approx(
                scenario.query.weights.distance_to(refinement.refined_query.weights)
            )

    def test_initial_worst_rank_matches_scorer(self, small_scorer):
        adjuster = PreferenceAdjuster(small_scorer)
        for scenario in scenarios(small_scorer, count=4, k=5, seed=68):
            refinement = adjuster.refine(scenario.query, scenario.missing)
            assert refinement.initial_worst_rank == small_scorer.worst_rank(
                scenario.missing, scenario.query
            )

    def test_loc_doc_unchanged_only_weights_and_k_move(self, small_scorer):
        # Definition 2: q' = (loc, doc, k', ~w').
        adjuster = PreferenceAdjuster(small_scorer)
        for scenario in scenarios(small_scorer, count=3, k=5, seed=69):
            refined = adjuster.refine(scenario.query, scenario.missing).refined_query
            assert refined.loc == scenario.query.loc
            assert refined.doc == scenario.query.doc


class TestAblationsAndErrors:
    def test_linear_scan_equals_dual_index(self, small_scorer):
        indexed = PreferenceAdjuster(small_scorer, use_dual_index=True)
        linear = PreferenceAdjuster(small_scorer, use_dual_index=False)
        for scenario in scenarios(small_scorer, count=4, k=5, seed=70):
            a = indexed.refine(scenario.query, scenario.missing)
            b = linear.refine(scenario.query, scenario.missing)
            assert a.penalty == pytest.approx(b.penalty, abs=1e-12)
            assert a.refined_query.k == b.refined_query.k
            assert a.refined_query.ws == pytest.approx(b.refined_query.ws)

    def test_not_missing_raises(self, small_scorer):
        adjuster = PreferenceAdjuster(small_scorer)
        q = random_queries(small_scorer.database, 1, seed=71, k=5)[0]
        top = small_scorer.top_k(q)
        with pytest.raises(NotMissingError):
            adjuster.refine(q, [top.entries[0].obj])

    def test_empty_missing_rejected(self, small_scorer):
        adjuster = PreferenceAdjuster(small_scorer)
        q = random_queries(small_scorer.database, 1, seed=72, k=5)[0]
        with pytest.raises(ValueError):
            adjuster.refine(q, [])

    def test_invalid_verification_window(self, small_scorer):
        with pytest.raises(ValueError):
            PreferenceAdjuster(small_scorer, verification_window=0)

    def test_stats_reported(self, small_scorer):
        adjuster = PreferenceAdjuster(small_scorer)
        scenario = scenarios(small_scorer, count=1, k=5, seed=73)[0]
        refinement = adjuster.refine(scenario.query, scenario.missing)
        assert refinement.candidates_evaluated >= 1
        assert refinement.crossovers >= 0
        assert refinement.method == "weight-sweep"
