"""Unit tests for :mod:`repro.index.irtree` (the Cong et al. [4] substrate)."""

import pytest

from repro.core.scoring import Scorer
from repro.index.irtree import IRSummary, IRTree
from repro.text.similarity import CosineTfIdfSimilarity

from tests.conftest import random_queries


def walk_nodes(tree):
    stack = [tree.root]
    while stack:
        node = stack.pop()
        yield node
        if not node.is_leaf:
            stack.extend(node.children)


def objects_under(node):
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            for entry in current.entries:
                yield entry.item
        else:
            stack.extend(current.children)


@pytest.fixture(scope="module")
def ir_tree(small_db):
    return IRTree.build(small_db, max_entries=8)


@pytest.fixture(scope="module")
def cosine_scorer(small_db, ir_tree):
    return Scorer(small_db, text_model=ir_tree.text_model)


class TestConstruction:
    def test_default_model_built_from_corpus(self, small_db, ir_tree):
        assert isinstance(ir_tree.text_model, CosineTfIdfSimilarity)
        assert len(ir_tree) == len(small_db)

    def test_every_node_has_inverted_file(self, ir_tree):
        for node in walk_nodes(ir_tree):
            assert isinstance(node.summary, IRSummary)
            assert node.summary.count == sum(1 for _ in objects_under(node))

    def test_node_vocabulary_covers_subtree(self, ir_tree):
        for node in walk_nodes(ir_tree):
            subtree_vocab = set()
            for obj in objects_under(node):
                subtree_vocab |= obj.doc
            assert subtree_vocab == set(node.summary.max_impacts)

    def test_parent_impacts_dominate_children(self, ir_tree):
        for node in walk_nodes(ir_tree):
            if node.is_leaf:
                continue
            for child in node.children:
                for keyword, impact in child.summary.max_impacts.items():
                    assert node.summary.max_impacts[keyword] >= impact - 1e-12


class TestScoreBound:
    def test_upper_bound_dominates_descendant_scores(
        self, small_db, ir_tree, cosine_scorer
    ):
        for q in random_queries(small_db, 8, seed=41, k=3):
            for node in walk_nodes(ir_tree):
                bound = ir_tree.score_upper_bound(node, q)
                for obj in objects_under(node):
                    assert cosine_scorer.score(obj, q) <= bound + 1e-9

    def test_tsim_bound_unreachable_keywords_is_zero(self, ir_tree):
        summary: IRSummary = ir_tree.root.summary
        assert summary.tsim_upper_bound(frozenset({"no-such-keyword"}), 1.0) == 0.0

    def test_tsim_bound_zero_norm_is_zero(self, ir_tree):
        summary: IRSummary = ir_tree.root.summary
        assert summary.tsim_upper_bound(frozenset({"kw000"}), 0.0) == 0.0
