"""Unit tests for :mod:`repro.index.setrtree`."""

import pytest

from repro.core.geometry import Point
from repro.core.scoring import Scorer
from repro.index.setrtree import SetRTree, SetSummary

from tests.conftest import random_queries


def walk_nodes(tree):
    stack = [tree.root]
    while stack:
        node = stack.pop()
        yield node
        if not node.is_leaf:
            stack.extend(node.children)


def objects_under(node):
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            for entry in current.entries:
                yield entry.item
        else:
            stack.extend(current.children)


class TestSummaries:
    def test_every_node_has_summary(self, small_setrtree):
        for node in walk_nodes(small_setrtree):
            assert isinstance(node.summary, SetSummary)

    def test_summary_sets_are_true_intersection_and_union(self, small_setrtree):
        for node in walk_nodes(small_setrtree):
            docs = [obj.doc for obj in objects_under(node)]
            expected_union = frozenset().union(*docs)
            expected_intersection = docs[0]
            for doc in docs[1:]:
                expected_intersection &= doc
            summary: SetSummary = node.summary
            assert summary.union == expected_union
            assert summary.intersection == expected_intersection
            assert summary.count == len(docs)
            assert summary.min_doc_len == min(len(d) for d in docs)
            assert summary.max_doc_len == max(len(d) for d in docs)

    def test_summaries_maintained_under_insert(self, small_db):
        from repro.core.objects import SpatialObject

        tree = SetRTree(database=small_db, max_entries=4)
        for obj in small_db.objects[:50]:
            tree.insert(obj, obj.loc)
            tree.check_invariants()
        for node in walk_nodes(tree):
            docs = [o.doc for o in objects_under(node)]
            assert node.summary.union == frozenset().union(*docs)
            assert node.summary.count == len(docs)

    def test_summaries_maintained_under_delete(self, small_db):
        tree = SetRTree.build(small_db, max_entries=4)
        victims = small_db.objects[:30]
        for obj in victims:
            assert tree.delete(obj, obj.loc)
        for node in walk_nodes(tree):
            docs = [o.doc for o in objects_under(node)]
            assert node.summary.union == frozenset().union(*docs)
            assert node.summary.count == len(docs)


class TestScoreBounds:
    def test_node_upper_bound_dominates_descendant_scores(
        self, small_db, small_setrtree, small_scorer
    ):
        for q in random_queries(small_db, 5, seed=31, k=3):
            for node in walk_nodes(small_setrtree):
                bound = small_setrtree.score_upper_bound(node, q)
                for obj in objects_under(node):
                    assert small_scorer.score(obj, q) <= bound + 1e-9

    def test_node_lower_bound_below_descendant_scores(
        self, small_db, small_setrtree, small_scorer
    ):
        for q in random_queries(small_db, 5, seed=32, k=3):
            for node in walk_nodes(small_setrtree):
                bound = small_setrtree.score_lower_bound(node, q)
                for obj in objects_under(node):
                    assert small_scorer.score(obj, q) >= bound - 1e-9

    def test_tsim_bounds_bracket_descendants(self, small_db, small_setrtree):
        model = small_setrtree.text_model
        for q in random_queries(small_db, 5, seed=33, k=3):
            for node in walk_nodes(small_setrtree):
                upper = small_setrtree.tsim_upper_bound(node, q.doc)
                lower = small_setrtree.tsim_lower_bound(node, q.doc)
                assert lower <= upper + 1e-12
                for obj in objects_under(node):
                    sim = model.similarity(obj.doc, q.doc)
                    assert lower - 1e-12 <= sim <= upper + 1e-12


class TestCountingQueries:
    def test_count_within_distance_matches_scan(self, small_db, small_setrtree):
        center = small_db.objects[0].loc
        for radius_fraction in (0.0, 0.1, 0.3, 0.7, 2.0):
            radius = radius_fraction * small_db.dataspace.diagonal
            expected = sum(
                1 for obj in small_db if obj.loc.distance_to(center) < radius
            )
            assert small_setrtree.count_within_distance(center, radius) == expected

    def test_count_more_similar_matches_scan(self, small_db, small_setrtree):
        model = small_setrtree.text_model
        for q in random_queries(small_db, 5, seed=34, k=3):
            for threshold in (0.0, 0.2, 0.5, 0.99):
                expected = sum(
                    1
                    for obj in small_db
                    if model.similarity(obj.doc, q.doc) > threshold
                )
                assert (
                    small_setrtree.count_more_similar(q.doc, threshold) == expected
                )

    def test_count_scoring_above_matches_scan(
        self, small_db, small_setrtree, small_scorer
    ):
        for q in random_queries(small_db, 5, seed=35, k=3):
            for threshold in (0.1, 0.4, 0.8):
                expected = sum(
                    1 for obj in small_db if small_scorer.score(obj, q) > threshold
                )
                assert small_setrtree.count_scoring_above(q, threshold) == expected

    def test_zero_radius_counts_nothing(self, small_setrtree):
        assert small_setrtree.count_within_distance(Point(0.5, 0.5), 0.0) == 0


class TestConstructionGuards:
    def test_build_covers_database(self, small_db, small_setrtree):
        assert len(small_setrtree) == len(small_db)
        assert sorted(o.oid for o in small_setrtree.iter_items()) == sorted(
            o.oid for o in small_db
        )

    def test_database_property(self, small_db, small_setrtree):
        assert small_setrtree.database is small_db
