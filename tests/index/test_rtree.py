"""Unit tests for the from-scratch R-tree (:mod:`repro.index.rtree`)."""

import random

import pytest

from repro.core.geometry import Point, Rect
from repro.index.rtree import RTree


def random_points(n, seed, lo=0.0, hi=100.0):
    rng = random.Random(seed)
    return [Point(rng.uniform(lo, hi), rng.uniform(lo, hi)) for _ in range(n)]


def brute_range(points, window):
    return sorted(
        i for i, p in enumerate(points) if window.contains_point(p)
    )


class TestConstruction:
    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.bounds is None
        assert tree.range_search(Rect(0, 0, 1, 1)) == []
        assert tree.nearest_neighbors(Point(0, 0), 3) == []

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            RTree(max_entries=1)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)  # > M/2
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=0)

    def test_bulk_load_sizes(self):
        for n in (0, 1, 5, 33, 200):
            points = random_points(n, seed=n)
            tree = RTree.bulk_load(
                list(range(n)), key=lambda i: points[i], max_entries=8
            )
            assert len(tree) == n
            if n:
                tree.check_invariants()
                assert sorted(tree.iter_items()) == list(range(n))

    def test_bulk_load_bounds_cover_all_points(self):
        points = random_points(64, seed=3)
        tree = RTree.bulk_load(points, key=lambda p: p, max_entries=8)
        for point in points:
            assert tree.bounds.contains_point(point)


class TestInsertion:
    def test_incremental_insert_preserves_invariants(self):
        tree = RTree(max_entries=4)
        points = random_points(120, seed=4)
        for index, point in enumerate(points):
            tree.insert(index, point)
            tree.check_invariants()
        assert len(tree) == 120

    def test_insert_matches_bulk_load_semantics(self):
        points = random_points(80, seed=5)
        incremental = RTree(max_entries=8)
        for index, point in enumerate(points):
            incremental.insert(index, point)
        bulk = RTree.bulk_load(
            list(range(80)), key=lambda i: points[i], max_entries=8
        )
        window = Rect(20, 20, 70, 70)
        assert sorted(incremental.range_search(window)) == sorted(
            bulk.range_search(window)
        )

    def test_duplicate_points_allowed(self):
        tree = RTree(max_entries=4)
        for index in range(10):
            tree.insert(index, Point(1.0, 1.0))
        tree.check_invariants()
        assert sorted(tree.range_search(Rect(0, 0, 2, 2))) == list(range(10))

    def test_height_grows_logarithmically(self):
        points = random_points(500, seed=6)
        tree = RTree.bulk_load(points, key=lambda p: p, max_entries=8)
        assert tree.height() <= 5
        assert tree.node_count() >= len(points) / 8


class TestRangeSearch:
    @pytest.mark.parametrize("n", [10, 100, 400])
    def test_matches_brute_force(self, n):
        points = random_points(n, seed=n + 1)
        tree = RTree.bulk_load(
            list(range(n)), key=lambda i: points[i], max_entries=8
        )
        rng = random.Random(n)
        for _ in range(15):
            x1, x2 = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
            y1, y2 = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
            window = Rect(x1, y1, x2, y2)
            assert sorted(tree.range_search(window)) == brute_range(points, window)

    def test_count_matches_range_search(self):
        points = random_points(200, seed=9)
        tree = RTree.bulk_load(
            list(range(200)), key=lambda i: points[i], max_entries=8
        )
        for window in (Rect(0, 0, 50, 50), Rect(25, 25, 75, 75), Rect(90, 90, 99, 99)):
            assert tree.count_in(window) == len(tree.range_search(window))

    def test_empty_window_region(self):
        points = [Point(0, 0), Point(1, 1)]
        tree = RTree.bulk_load(points, key=lambda p: p)
        assert tree.range_search(Rect(10, 10, 20, 20)) == []
        assert tree.count_in(Rect(10, 10, 20, 20)) == 0


class TestNearestNeighbors:
    def test_matches_brute_force(self):
        points = random_points(150, seed=13)
        tree = RTree.bulk_load(
            list(range(150)), key=lambda i: points[i], max_entries=8
        )
        rng = random.Random(14)
        for _ in range(10):
            q = Point(rng.uniform(0, 100), rng.uniform(0, 100))
            expected = sorted(
                range(150), key=lambda i: (q.distance_to(points[i]), i)
            )[:7]
            actual = tree.nearest_neighbors(q, 7, tie_key=lambda i: i)
            assert actual == expected

    def test_k_exceeds_size(self):
        points = random_points(5, seed=15)
        tree = RTree.bulk_load(
            list(range(5)), key=lambda i: points[i], max_entries=4
        )
        assert len(tree.nearest_neighbors(Point(0, 0), 50)) == 5

    def test_invalid_k(self):
        tree = RTree.bulk_load([Point(0, 0)], key=lambda p: p)
        with pytest.raises(ValueError):
            tree.nearest_neighbors(Point(0, 0), 0)


class TestDeletion:
    def test_delete_existing(self):
        points = random_points(60, seed=16)
        tree = RTree.bulk_load(
            list(range(60)), key=lambda i: points[i], max_entries=4
        )
        for index in range(0, 60, 2):
            assert tree.delete(index, points[index])
            tree.check_invariants()
        assert len(tree) == 30
        remaining = sorted(tree.iter_items())
        assert remaining == list(range(1, 60, 2))

    def test_delete_missing_returns_false(self):
        points = random_points(10, seed=17)
        tree = RTree.bulk_load(
            list(range(10)), key=lambda i: points[i], max_entries=4
        )
        assert not tree.delete(99, Point(0, 0))
        assert len(tree) == 10

    def test_delete_all_then_reuse(self):
        points = random_points(25, seed=18)
        tree = RTree.bulk_load(
            list(range(25)), key=lambda i: points[i], max_entries=4
        )
        for index in range(25):
            assert tree.delete(index, points[index])
        assert len(tree) == 0
        tree.insert(0, Point(1, 1))
        assert tree.range_search(Rect(0, 0, 2, 2)) == [0]

    def test_queries_stay_correct_under_churn(self):
        rng = random.Random(19)
        tree = RTree(max_entries=4)
        alive: dict[int, Point] = {}
        next_id = 0
        for step in range(300):
            if alive and rng.random() < 0.4:
                victim = rng.choice(sorted(alive))
                assert tree.delete(victim, alive.pop(victim))
            else:
                point = Point(rng.uniform(0, 50), rng.uniform(0, 50))
                tree.insert(next_id, point)
                alive[next_id] = point
                next_id += 1
            if step % 50 == 0:
                tree.check_invariants()
                window = Rect(10, 10, 40, 40)
                expected = sorted(
                    i for i, p in alive.items() if window.contains_point(p)
                )
                assert sorted(tree.range_search(window)) == expected


class TestLevelIteration:
    def test_iter_levels_partitions_nodes(self):
        points = random_points(100, seed=20)
        tree = RTree.bulk_load(points, key=lambda p: p, max_entries=4)
        levels = list(tree.iter_levels())
        assert levels[0] == [tree.root]
        assert sum(len(level) for level in levels) == tree.node_count()
        # Last level is all leaves.
        assert all(node.is_leaf for node in levels[-1])


def assert_tight_bounds(tree):
    """Every node's MBR must equal the exact union of its members' MBRs.

    A merely *containing* (inflated) ancestor rectangle would pass
    ``check_invariants`` but inflate ``score_upper_bound`` in the
    spatio-textual subclasses and silently weaken best-first pruning —
    this asserts the stronger tightness property.
    """
    def walk(node):
        if node.rect is None:
            assert len(node) == 0
            return
        rects = list(node.iter_rects())
        assert rects, "non-empty rect on an empty node"
        expected = Rect.union_all(rects)
        assert node.rect == expected, (
            f"stale MBR {node.rect.as_tuple()} != tight {expected.as_tuple()}"
        )
        if not node.is_leaf:
            for child in node.children:
                walk(child)

    walk(tree.root)


class TestShrinkAfterDelete:
    """Regression: ancestor MBRs must tighten all the way to the root
    after deletions (`RTree.delete` / `_refresh_upwards` maintenance)."""

    def test_root_bounds_shrink_when_outlier_deleted(self):
        # A dense cluster plus one far outlier: the outlier alone
        # stretches the root MBR, so deleting it must shrink the root
        # (and every ancestor on its path) back to the cluster box.
        tree = RTree(max_entries=4)
        cluster = random_points(40, seed=91, lo=0.0, hi=10.0)
        for i, p in enumerate(cluster):
            tree.insert(i, p)
        outlier = Point(500.0, 500.0)
        tree.insert(999, outlier)
        assert tree.bounds.contains_point(outlier)

        assert tree.delete(999, outlier)
        tree.check_invariants()
        assert_tight_bounds(tree)
        assert tree.bounds.max_x <= 10.0 and tree.bounds.max_y <= 10.0

    def test_bounds_stay_tight_through_random_deletions(self):
        points = random_points(120, seed=92)
        tree = RTree(max_entries=4)
        for i, p in enumerate(points):
            tree.insert(i, p)
        order = list(range(len(points)))
        random.Random(93).shuffle(order)
        for victim in order[:100]:
            assert tree.delete(victim, points[victim])
            tree.check_invariants()
            assert_tight_bounds(tree)

    def test_bulk_loaded_tree_tightens_too(self):
        # STR packing takes a different construction path than Guttman
        # insertion; condensation after deletes must refresh it equally.
        points = random_points(150, seed=94)
        tree = RTree.bulk_load(
            list(range(len(points))), key=lambda i: points[i], max_entries=8
        )
        order = list(range(len(points)))
        random.Random(95).shuffle(order)
        for victim in order[:120]:
            assert tree.delete(victim, points[victim])
        tree.check_invariants()
        assert_tight_bounds(tree)

    def test_setrtree_summary_and_bounds_tighten(self, small_db):
        # The spatio-textual subclass must tighten its keyword summaries
        # alongside the MBRs: once every object carrying a keyword is
        # deleted, no node summary may still advertise it (a stale union
        # would inflate tsim_upper_bound and weaken top-k pruning).
        from repro.index.setrtree import SetRTree

        tree = SetRTree.build(small_db, max_entries=4)
        keyword = "kw000"
        carriers = [obj for obj in small_db if keyword in obj.doc]
        assert carriers, "fixture database must contain kw000"
        assert keyword in tree.root.summary.union
        for obj in carriers:
            assert tree.delete(obj, obj.loc)
        tree.check_invariants()
        assert_tight_bounds(tree)

        def no_stale_keyword(node):
            if node.summary is not None:
                assert keyword not in node.summary.union
            if not node.is_leaf:
                for child in node.children:
                    no_stale_keyword(child)

        no_stale_keyword(tree.root)
