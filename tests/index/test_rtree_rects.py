"""R-tree over rectangle-keyed items (the generic, non-point path).

The spatial-keyword engines index points, but the R-tree substrate
supports arbitrary rectangles (e.g. region objects); this keeps that
path honest.
"""

import random

import pytest

from repro.core.geometry import Point, Rect
from repro.index.rtree import RTree


def random_rects(n, seed, extent=100.0, max_size=10.0):
    rng = random.Random(seed)
    rects = []
    for _ in range(n):
        x = rng.uniform(0, extent - max_size)
        y = rng.uniform(0, extent - max_size)
        rects.append(
            Rect(x, y, x + rng.uniform(0, max_size), y + rng.uniform(0, max_size))
        )
    return rects


class TestRectEntries:
    def test_range_search_uses_intersection_semantics(self):
        rects = random_rects(200, seed=301)
        tree = RTree.bulk_load(
            list(range(200)), key=lambda i: rects[i], max_entries=8
        )
        rng = random.Random(302)
        for _ in range(10):
            x1, x2 = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
            y1, y2 = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
            window = Rect(x1, y1, x2, y2)
            expected = sorted(
                i for i, rect in enumerate(rects) if rect.intersects(window)
            )
            assert sorted(tree.range_search(window)) == expected

    def test_incremental_insert_of_rects(self):
        rects = random_rects(80, seed=303)
        tree = RTree(max_entries=4)
        for index, rect in enumerate(rects):
            tree.insert(index, rect)
            tree.check_invariants()
        assert len(tree) == 80

    def test_delete_rect_entries(self):
        rects = random_rects(50, seed=304)
        tree = RTree.bulk_load(
            list(range(50)), key=lambda i: rects[i], max_entries=4
        )
        for index in range(0, 50, 3):
            assert tree.delete(index, rects[index])
            tree.check_invariants()
        survivors = sorted(tree.iter_items())
        assert survivors == [i for i in range(50) if i % 3 != 0]

    def test_count_in_with_containment_shortcut(self):
        rects = random_rects(150, seed=305)
        tree = RTree.bulk_load(
            list(range(150)), key=lambda i: rects[i], max_entries=8
        )
        whole = Rect(-1, -1, 101, 101)
        assert tree.count_in(whole) == 150

    def test_nearest_neighbors_by_mindist(self):
        rects = random_rects(60, seed=306)
        tree = RTree.bulk_load(
            list(range(60)), key=lambda i: rects[i], max_entries=8
        )
        query = Point(50.0, 50.0)
        expected = sorted(
            range(60),
            key=lambda i: (rects[i].min_distance_to_point(query), i),
        )[:5]
        assert tree.nearest_neighbors(query, 5, tie_key=lambda i: i) == expected

    def test_mixed_point_and_rect_entries(self):
        tree = RTree(max_entries=4)
        tree.insert("point", Point(5.0, 5.0))
        tree.insert("rect", Rect(0.0, 0.0, 2.0, 2.0))
        tree.check_invariants()
        assert sorted(tree.range_search(Rect(4, 4, 6, 6))) == ["point"]
        assert sorted(tree.range_search(Rect(1, 1, 6, 6))) == ["point", "rect"]
