"""Tests for index persistence (:mod:`repro.index.persistence`)."""

import json

import pytest

from repro.core.scoring import Scorer
from repro.core.topk import BestFirstTopK
from repro.index.irtree import IRTree
from repro.index.kcrtree import KcRTree
from repro.index.persistence import (
    IndexPersistenceError,
    index_from_dict,
    index_to_dict,
    load_index,
    save_index,
)
from repro.index.setrtree import SetRTree

from tests.conftest import random_queries


def walk(tree):
    stack = [tree.root]
    while stack:
        node = stack.pop()
        yield node
        if not node.is_leaf:
            stack.extend(node.children)


class TestRoundTrip:
    def test_setrtree_round_trip_identical_structure(self, small_db, tmp_path):
        original = SetRTree.build(small_db, max_entries=8)
        path = tmp_path / "set.json"
        save_index(original, path)
        loaded = load_index(path, small_db)
        assert isinstance(loaded, SetRTree)
        assert len(loaded) == len(original)
        original_nodes = sorted(
            (node.rect.as_tuple(), node.is_leaf) for node in walk(original)
        )
        loaded_nodes = sorted(
            (node.rect.as_tuple(), node.is_leaf) for node in walk(loaded)
        )
        assert loaded_nodes == original_nodes

    def test_loaded_setrtree_answers_queries_identically(self, small_db, tmp_path):
        scorer = Scorer(small_db)
        original = SetRTree.build(small_db, max_entries=8)
        path = tmp_path / "set.json"
        save_index(original, path)
        loaded = load_index(path, small_db)
        for q in random_queries(small_db, 8, seed=230, k=5):
            a = BestFirstTopK(original, scorer).search(q)
            b = BestFirstTopK(loaded, scorer).search(q)
            assert [e.obj.oid for e in a] == [e.obj.oid for e in b]

    def test_kcrtree_round_trip_summaries_recomputed(self, small_db, tmp_path):
        original = KcRTree.build(small_db, max_entries=8)
        path = tmp_path / "kcr.json"
        save_index(original, path)
        loaded = load_index(path, small_db)
        assert isinstance(loaded, KcRTree)
        assert dict(loaded.root.summary.keyword_counts) == dict(
            original.root.summary.keyword_counts
        )
        assert loaded.root.summary.cnt == original.root.summary.cnt

    def test_irtree_round_trip(self, small_db, tmp_path):
        original = IRTree.build(small_db, max_entries=8)
        path = tmp_path / "ir.json"
        save_index(original, path)
        loaded = load_index(path, small_db, text_model=original.text_model)
        assert isinstance(loaded, IRTree)
        assert loaded.root.summary.max_impacts == original.root.summary.max_impacts

    def test_incrementally_built_tree_round_trips(self, small_db, tmp_path):
        tree = SetRTree(database=small_db, max_entries=4)
        for obj in small_db.objects[:60]:
            tree.insert(obj, obj.loc)
        path = tmp_path / "partial.json"
        save_index(tree, path)
        loaded = load_index(path, small_db)
        assert len(loaded) == 60
        assert sorted(o.oid for o in loaded.iter_items()) == sorted(
            o.oid for o in small_db.objects[:60]
        )

    def test_invariants_hold_after_load(self, small_db, tmp_path):
        original = SetRTree.build(small_db, max_entries=8)
        path = tmp_path / "inv.json"
        save_index(original, path)
        loaded = load_index(path, small_db)
        loaded.check_invariants()

    def test_loaded_tree_supports_further_inserts(self, small_db, tmp_path):
        tree = SetRTree(database=small_db, max_entries=4)
        for obj in small_db.objects[:50]:
            tree.insert(obj, obj.loc)
        path = tmp_path / "grow.json"
        save_index(tree, path)
        loaded = load_index(path, small_db)
        for obj in small_db.objects[50:70]:
            loaded.insert(obj, obj.loc)
        loaded.check_invariants()
        assert len(loaded) == 70


class TestErrorHandling:
    def test_unknown_type_rejected(self, small_db):
        with pytest.raises(IndexPersistenceError):
            index_from_dict(
                {"format": 1, "type": "BTree", "root": {}}, small_db
            )

    def test_wrong_format_version(self, small_db):
        payload = {"format": 99, "type": "SetRTree", "root": {"leaf": True, "oids": [0]}}
        with pytest.raises(IndexPersistenceError):
            index_from_dict(payload, small_db)

    def test_missing_object_reference(self, small_db):
        payload = {
            "format": 1,
            "type": "SetRTree",
            "max_entries": 8,
            "min_entries": 4,
            "size": 1,
            "root": {"leaf": True, "oids": [999999]},
        }
        with pytest.raises(IndexPersistenceError):
            index_from_dict(payload, small_db)

    def test_duplicate_object_rejected(self, small_db):
        payload = {
            "format": 1,
            "type": "SetRTree",
            "max_entries": 8,
            "min_entries": 4,
            "size": 2,
            "root": {
                "leaf": False,
                "children": [
                    {"leaf": True, "oids": [0]},
                    {"leaf": True, "oids": [0]},
                ],
            },
        }
        with pytest.raises(IndexPersistenceError):
            index_from_dict(payload, small_db)

    def test_size_mismatch_rejected(self, small_db):
        payload = {
            "format": 1,
            "type": "SetRTree",
            "max_entries": 8,
            "min_entries": 4,
            "size": 5,
            "root": {"leaf": True, "oids": [0, 1]},
        }
        with pytest.raises(IndexPersistenceError):
            index_from_dict(payload, small_db)

    def test_corrupt_file(self, small_db, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(IndexPersistenceError):
            load_index(path, small_db)

    def test_plain_rtree_not_supported(self, small_db):
        from repro.index.rtree import RTree

        tree = RTree.bulk_load(
            small_db.objects, key=lambda o: o.loc, max_entries=8
        )
        with pytest.raises(IndexPersistenceError):
            index_to_dict(tree)

    def test_setrtree_requires_set_model(self, small_db, tmp_path):
        original = SetRTree.build(small_db, max_entries=8)
        path = tmp_path / "model.json"
        save_index(original, path)
        from repro.text.similarity import CosineTfIdfSimilarity

        cosine = CosineTfIdfSimilarity(
            small_db.keyword_document_frequencies(), len(small_db)
        )
        with pytest.raises(IndexPersistenceError):
            load_index(path, small_db, text_model=cosine)

    def test_payload_is_json_safe(self, small_db):
        payload = index_to_dict(SetRTree.build(small_db, max_entries=8))
        json.dumps(payload)
