"""Unit tests for :mod:`repro.index.kcrtree`, including the exact Fig. 2 tree.

Experiment E2 (DESIGN.md): Fig. 2 of the paper draws a KcR-tree over
five objects — leaf R1 = {o1, o2, o3} with keyword-count map
{Chinese: 2, restaurant: 3}, cnt = 3; leaf R2 = {o4, o5} with
{Spanish: 2, restaurant: 2}, cnt = 2; root R3 with
{Chinese: 2, Spanish: 2, restaurant: 5}, cnt = 5.
``TestFig2Reproduction`` rebuilds that exact tree and checks every
number in the figure.
"""

import pytest

from repro.core.geometry import Point, Rect
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.index.kcrtree import KcRTree, KcSummary


def walk_nodes(tree):
    stack = [tree.root]
    while stack:
        node = stack.pop()
        yield node
        if not node.is_leaf:
            stack.extend(node.children)


def objects_under(node):
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            for entry in current.entries:
                yield entry.item
        else:
            stack.extend(current.children)


class TestFig2Reproduction:
    """Rebuild the exact example KcR-tree of Fig. 2."""

    @pytest.fixture()
    def fig2_tree(self):
        # o1-o3: Chinese restaurants in one spatial cluster (o3 lacks
        # "Chinese" so that R1's map reads {Chinese: 2, restaurant: 3});
        # o4-o5: Spanish restaurants in another cluster.
        objects = [
            SpatialObject(1, Point(0.10, 0.10), frozenset({"Chinese", "restaurant"}), "o1"),
            SpatialObject(2, Point(0.15, 0.20), frozenset({"Chinese", "restaurant"}), "o2"),
            SpatialObject(3, Point(0.20, 0.15), frozenset({"restaurant"}), "o3"),
            SpatialObject(4, Point(0.80, 0.85), frozenset({"Spanish", "restaurant"}), "o4"),
            SpatialObject(5, Point(0.85, 0.80), frozenset({"Spanish", "restaurant"}), "o5"),
        ]
        database = SpatialDatabase(objects, dataspace=Rect(0, 0, 1, 1))
        # Fanout 3 forces exactly the two leaves + root of the figure.
        return KcRTree.build(database, max_entries=3, min_entries=1)

    def test_tree_shape_matches_figure(self, fig2_tree):
        root = fig2_tree.root
        assert not root.is_leaf
        assert len(root.children) == 2
        assert all(child.is_leaf for child in root.children)

    def test_leaf_r1_payload(self, fig2_tree):
        leaves = sorted(
            fig2_tree.root.children, key=lambda n: n.summary.cnt, reverse=True
        )
        r1: KcSummary = leaves[0].summary
        assert dict(r1.keyword_counts) == {"Chinese": 2, "restaurant": 3}
        assert r1.cnt == 3

    def test_leaf_r2_payload(self, fig2_tree):
        leaves = sorted(
            fig2_tree.root.children, key=lambda n: n.summary.cnt, reverse=True
        )
        r2: KcSummary = leaves[1].summary
        assert dict(r2.keyword_counts) == {"Spanish": 2, "restaurant": 2}
        assert r2.cnt == 2

    def test_root_r3_payload(self, fig2_tree):
        r3: KcSummary = fig2_tree.root.summary
        assert dict(r3.keyword_counts) == {
            "Chinese": 2,
            "Spanish": 2,
            "restaurant": 5,
        }
        assert r3.cnt == 5

    def test_fig2_render_mentions_all_counts(self, fig2_tree):
        rendered = fig2_tree.describe_fig2_style()
        assert "restaurant 5" in rendered
        assert "Chinese 2" in rendered
        assert "Spanish 2" in rendered
        assert "cnt=5" in rendered


class TestSummaryInvariants:
    def test_counts_equal_true_keyword_frequencies(self, small_kcrtree):
        for node in walk_nodes(small_kcrtree):
            docs = [obj.doc for obj in objects_under(node)]
            expected: dict[str, int] = {}
            for doc in docs:
                for keyword in doc:
                    expected[keyword] = expected.get(keyword, 0) + 1
            summary: KcSummary = node.summary
            assert dict(summary.keyword_counts) == expected
            assert summary.cnt == len(docs)

    def test_parent_map_is_sum_of_children(self, medium_kcrtree):
        for node in walk_nodes(medium_kcrtree):
            if node.is_leaf:
                continue
            merged: dict[str, int] = {}
            for child in node.children:
                for keyword, count in child.summary.keyword_counts.items():
                    merged[keyword] = merged.get(keyword, 0) + count
            assert dict(node.summary.keyword_counts) == merged
            assert node.summary.cnt == sum(c.summary.cnt for c in node.children)

    def test_doc_length_range(self, small_kcrtree):
        for node in walk_nodes(small_kcrtree):
            lengths = [len(obj.doc) for obj in objects_under(node)]
            assert node.summary.min_doc_len == min(lengths)
            assert node.summary.max_doc_len == max(lengths)

    def test_maintained_under_insert_and_delete(self, small_db):
        tree = KcRTree(database=small_db, max_entries=4)
        objects = small_db.objects[:40]
        for obj in objects:
            tree.insert(obj, obj.loc)
        for obj in objects[:15]:
            assert tree.delete(obj, obj.loc)
        for node in walk_nodes(tree):
            docs = [o.doc for o in objects_under(node)]
            expected: dict[str, int] = {}
            for doc in docs:
                for keyword in doc:
                    expected[keyword] = expected.get(keyword, 0) + 1
            assert dict(node.summary.keyword_counts) == expected


class TestCountBounds:
    """The keyword-adaption rank bounds rest on these three counting facts."""

    def _check_node(self, node, keywords):
        summary: KcSummary = node.summary
        docs = [obj.doc for obj in objects_under(node)]
        for min_overlap in (1, 2, len(keywords)):
            actual = sum(1 for doc in docs if len(doc & keywords) >= min_overlap)
            assert actual <= summary.count_with_overlap_at_least(
                keywords, min_overlap
            )
        containing_all = sum(1 for doc in docs if keywords <= doc)
        assert summary.count_containing_all(keywords) <= containing_all
        containing_any = sum(1 for doc in docs if doc & keywords)
        assert containing_any <= summary.count_containing_any_upper(keywords)
        best = max((len(doc & keywords) for doc in docs), default=0)
        assert best <= summary.max_possible_overlap(keywords)

    def test_bounds_hold_on_random_nodes(self, small_db, small_kcrtree):
        import random

        rng = random.Random(77)
        vocabulary = sorted(small_db.vocabulary())
        for _ in range(10):
            keywords = frozenset(rng.sample(vocabulary, k=rng.randint(1, 4)))
            for node in walk_nodes(small_kcrtree):
                self._check_node(node, keywords)

    def test_overlap_zero_returns_cnt(self, small_kcrtree):
        summary: KcSummary = small_kcrtree.root.summary
        assert summary.count_with_overlap_at_least(frozenset({"kw000"}), 0) == summary.cnt

    def test_unknown_keywords_give_zero_mass(self, small_kcrtree):
        summary: KcSummary = small_kcrtree.root.summary
        unknown = frozenset({"definitely-not-present"})
        assert summary.incidence_mass(unknown) == 0
        assert summary.count_with_overlap_at_least(unknown, 1) == 0
        assert summary.count_containing_all(unknown) == 0
        assert summary.max_possible_overlap(unknown) == 0


class TestProximityBounds:
    def test_bounds_bracket_member_proximities(self, small_db, small_kcrtree):
        query_loc = Point(0.3, 0.7)
        for node in walk_nodes(small_kcrtree):
            low, high = small_kcrtree.proximity_bounds(node, query_loc)
            assert low <= high + 1e-12
            for obj in objects_under(node):
                proximity = 1.0 - small_db.normalized_distance(obj.loc, query_loc)
                assert low - 1e-9 <= proximity <= high + 1e-9
