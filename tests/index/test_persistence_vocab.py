"""Vocabulary round-trip through index persistence (format v2).

Before this format, a loaded index silently re-interned the database's
vocabulary in sorted order; after live mutation the vocabulary is
append-extended (no longer globally sorted), so a reload could assign
different bit positions and decode saved doc masks into the wrong
keyword sets.  Format v2 persists the keyword order and adopts it on
load.
"""

from __future__ import annotations

import pytest

from repro.core.geometry import Point
from repro.core.mutations import MutableDatabase, Mutation
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.index.persistence import (
    IndexPersistenceError,
    index_from_dict,
    index_to_dict,
    load_index,
    save_index,
)
from repro.index.setrtree import SetRTree
from tests.conftest import make_tiny_db


def test_saved_payload_carries_vocabulary_when_interned():
    database = make_tiny_db()
    _ = database.doc_masks  # intern
    tree = SetRTree.build(database, max_entries=4)
    payload = index_to_dict(tree)
    assert payload["format"] == 2
    assert payload["vocabulary"] == list(database.vocabulary_index.keywords)


def test_uninterned_database_saves_without_vocabulary():
    database = make_tiny_db()
    tree = SetRTree.build(database, max_entries=4)
    payload = index_to_dict(tree)
    assert "vocabulary" not in payload
    # And still loads (the lazy-interning v1 behaviour).
    loaded = index_from_dict(payload, make_tiny_db())
    assert len(loaded) == len(tree)


def test_format_v1_payloads_still_load():
    database = make_tiny_db()
    tree = SetRTree.build(database, max_entries=4)
    payload = index_to_dict(tree)
    payload.pop("vocabulary", None)
    payload["format"] = 1
    loaded = index_from_dict(payload, make_tiny_db())
    assert len(loaded) == len(tree)


def test_save_mutate_save_load_mask_parity(tmp_path):
    """The satellite's scenario: bit positions survive mutate + reload."""
    database = make_tiny_db()
    _ = database.doc_masks
    tree = SetRTree.build(database, max_entries=4)
    first = tmp_path / "first.json"
    save_index(tree, first)

    # Mutate: new keywords append bit positions beyond the sorted corpus.
    mutable = MutableDatabase(database, model_code="jaccard")
    mutable.apply(
        [
            Mutation.insert(
                SpatialObject(
                    10, Point(0.5, 0.5), frozenset({"aardvark", "spanish"})
                )
            ),
            Mutation.delete(2),
        ]
    )
    tree = SetRTree.build(database, max_entries=4)
    second = tmp_path / "second.json"
    save_index(tree, second)
    # The appended keyword sits *after* the originally sorted corpus —
    # a plain sorted re-intern would move it to position 0.
    assert database.vocabulary_index.keywords[-1] == "aardvark"

    # Reload over a fresh database holding the same final objects.
    fresh = SpatialDatabase(database.objects, dataspace=database.dataspace)
    loaded = load_index(second, fresh)
    assert fresh.vocabulary_index.keywords == database.vocabulary_index.keywords
    assert fresh.doc_masks == database.doc_masks
    assert len(loaded) == len(tree)
    # And the first (pre-mutation) save still loads over its own objects.
    original = make_tiny_db()
    load_index(first, original)
    assert original.doc_masks == make_tiny_db().doc_masks


def test_adopted_vocabulary_must_cover_corpus():
    database = make_tiny_db()
    _ = database.doc_masks
    tree = SetRTree.build(database, max_entries=4)
    payload = index_to_dict(tree)
    payload["vocabulary"] = ["chinese"]  # missing most corpus keywords
    with pytest.raises(IndexPersistenceError, match="missing corpus keyword"):
        index_from_dict(payload, make_tiny_db())


def test_failed_load_leaves_database_vocabulary_untouched():
    """A payload that fails after the vocabulary section must not adopt it.

    Re-interning is a visible database mutation; a half-failed load that
    reordered bit positions would silently corrupt any kernel built over
    the database.
    """
    database = make_tiny_db()
    _ = database.doc_masks
    tree = SetRTree.build(database, max_entries=4)
    payload = index_to_dict(tree)
    reordered = list(reversed(payload["vocabulary"]))
    payload["vocabulary"] = reordered
    payload["root"] = {"leaf": True, "oids": [999]}  # fails _rebuild_node
    target = make_tiny_db()
    before_keywords = target.vocabulary_index.keywords
    before_masks = target.doc_masks
    with pytest.raises(IndexPersistenceError, match="missing from the database"):
        index_from_dict(payload, target)
    assert target.vocabulary_index.keywords == before_keywords
    assert target.doc_masks == before_masks


def test_adopting_a_reordered_vocabulary_over_interned_db_is_refused():
    """A live kernel snapshots doc masks in the current bit positions;
    silently re-interning an already-interned database to a different
    order would corrupt every mask comparison.  Identical orders are a
    no-op; different orders are an error."""
    database = make_tiny_db()
    _ = database.doc_masks  # intern (a kernel could now hold these masks)
    same_order = list(database.vocabulary_index.keywords)
    database.adopt_vocabulary(same_order)  # no-op, allowed
    with pytest.raises(ValueError, match="already interned"):
        database.adopt_vocabulary(list(reversed(same_order)))


def test_loading_reordered_vocab_over_interned_database_errors():
    database = make_tiny_db()
    _ = database.doc_masks
    tree = SetRTree.build(database, max_entries=4)
    payload = index_to_dict(tree)
    payload["vocabulary"] = list(reversed(payload["vocabulary"]))
    target = make_tiny_db()
    _ = target.doc_masks  # interned before the load
    with pytest.raises(IndexPersistenceError, match="already interned"):
        index_from_dict(payload, target)


def test_malformed_vocabulary_rejected():
    database = make_tiny_db()
    _ = database.doc_masks
    tree = SetRTree.build(database, max_entries=4)
    payload = index_to_dict(tree)
    payload["vocabulary"] = "restaurant"
    with pytest.raises(IndexPersistenceError, match="list of keywords"):
        index_from_dict(payload, make_tiny_db())
