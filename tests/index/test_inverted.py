"""Unit tests for :mod:`repro.index.inverted`."""

from repro.index.inverted import InvertedIndex


class TestInvertedIndex:
    def test_postings_match_scan(self, small_db):
        index = InvertedIndex.build(small_db)
        for keyword in sorted(small_db.vocabulary()):
            expected = frozenset(
                obj.oid for obj in small_db if keyword in obj.doc
            )
            assert index.postings(keyword) == expected

    def test_unknown_keyword_empty_postings(self, small_db):
        index = InvertedIndex.build(small_db)
        assert index.postings("not-a-keyword") == frozenset()
        assert index.document_frequency("not-a-keyword") == 0

    def test_len_counts_objects(self, small_db):
        assert len(InvertedIndex.build(small_db)) == len(small_db)

    def test_document_frequencies_match_database(self, small_db):
        index = InvertedIndex.build(small_db)
        assert dict(index.document_frequencies()) == (
            small_db.keyword_document_frequencies()
        )

    def test_containing_any_is_union(self, small_db):
        index = InvertedIndex.build(small_db)
        vocabulary = sorted(small_db.vocabulary())
        keywords = frozenset(vocabulary[:3])
        expected = frozenset(
            obj.oid for obj in small_db if obj.doc & keywords
        )
        assert index.objects_containing_any(keywords) == expected

    def test_containing_all_is_intersection(self, small_db):
        index = InvertedIndex.build(small_db)
        vocabulary = sorted(small_db.vocabulary())
        keywords = frozenset(vocabulary[:2])
        expected = frozenset(
            obj.oid for obj in small_db if keywords <= obj.doc
        )
        assert index.objects_containing_all(keywords) == expected

    def test_containing_all_empty_keywords(self, small_db):
        index = InvertedIndex.build(small_db)
        assert index.objects_containing_all(frozenset()) == frozenset()

    def test_vocabulary_property(self, small_db):
        index = InvertedIndex.build(small_db)
        assert index.vocabulary == small_db.vocabulary()
