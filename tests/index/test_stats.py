"""Tests for :mod:`repro.index.stats`."""

import pytest

from repro.index.irtree import IRTree
from repro.index.kcrtree import KcRTree
from repro.index.rtree import RTree
from repro.index.setrtree import SetRTree
from repro.index.stats import tree_statistics


class TestTreeStatistics:
    def test_counts_consistent(self, small_db, small_setrtree):
        stats = tree_statistics(small_setrtree)
        assert stats.items == len(small_db)
        assert stats.node_count == small_setrtree.node_count()
        assert stats.leaf_count + stats.inner_count == stats.node_count
        assert stats.height == small_setrtree.height()

    def test_fill_factors_in_range(self, medium_setrtree):
        stats = tree_statistics(medium_setrtree)
        assert 0.0 < stats.avg_leaf_fill <= 1.0
        assert 0.0 < stats.avg_inner_fill <= 1.0
        # STR packing keeps nodes well above minimum fill on average.
        assert stats.avg_leaf_fill >= 0.5

    def test_bulk_load_tighter_than_incremental(self, small_db):
        bulk = SetRTree.build(small_db, max_entries=8)
        incremental = SetRTree(database=small_db, max_entries=8)
        for obj in small_db:
            incremental.insert(obj, obj.loc)
        bulk_stats = tree_statistics(bulk)
        incremental_stats = tree_statistics(incremental)
        # STR packs tighter: fewer nodes for the same data.
        assert bulk_stats.node_count <= incremental_stats.node_count

    def test_summary_sizes_per_variant(self, small_db):
        set_stats = tree_statistics(SetRTree.build(small_db, max_entries=8))
        kcr_stats = tree_statistics(KcRTree.build(small_db, max_entries=8))
        ir_stats = tree_statistics(IRTree.build(small_db, max_entries=8))
        plain = RTree.bulk_load(
            small_db.objects, key=lambda o: o.loc, max_entries=8
        )
        plain_stats = tree_statistics(plain)
        assert plain_stats.avg_summary_size == 0.0
        for stats in (set_stats, kcr_stats, ir_stats):
            assert stats.avg_summary_size > 0.0

    def test_empty_tree(self):
        stats = tree_statistics(RTree(max_entries=8))
        assert stats.items == 0
        assert stats.node_count == 1
        assert stats.avg_leaf_fill == 0.0

    def test_overlap_ratio_nonnegative(self, medium_setrtree):
        stats = tree_statistics(medium_setrtree)
        assert stats.sibling_overlap_ratio >= 0.0

    def test_describe_mentions_key_fields(self, small_setrtree):
        text = tree_statistics(small_setrtree).describe()
        assert "items=" in text and "height=" in text and "overlap=" in text
