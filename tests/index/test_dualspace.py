"""Unit tests for :mod:`repro.index.dualspace` — the two range queries."""

from repro.core.scoring import Scorer
from repro.index.dualspace import DualSpaceIndex

from tests.conftest import random_queries


def build_index(scorer: Scorer, query):
    duals = scorer.dual_points(query)
    return DualSpaceIndex(duals), duals


class TestCrossingCandidates:
    def test_matches_linear_scan(self, small_db, small_scorer):
        for q in random_queries(small_db, 5, seed=51, k=3):
            index, duals = build_index(small_scorer, q)
            for missing in duals[:10]:
                via_index = {
                    d.oid for d in index.crossing_candidates(missing)
                }
                via_scan = {
                    d.oid
                    for d in DualSpaceIndex.crossing_candidates_linear(duals, missing)
                }
                assert via_index == via_scan

    def test_crossing_is_opposite_quadrants(self, small_db, small_scorer):
        q = random_queries(small_db, 1, seed=52, k=3)[0]
        index, duals = build_index(small_scorer, q)
        missing = duals[0]
        for dual in index.crossing_candidates(missing):
            assert (dual.a - missing.a) * (dual.b - missing.b) < 0.0

    def test_crossing_excludes_self_and_equal_points(self, small_db, small_scorer):
        q = random_queries(small_db, 1, seed=53, k=3)[0]
        index, duals = build_index(small_scorer, q)
        missing = duals[3]
        oids = {d.oid for d in index.crossing_candidates(missing)}
        assert missing.oid not in oids

    def test_every_candidate_yields_interior_or_boundary_crossover(
        self, small_db, small_scorer
    ):
        # Opposite-quadrant pairs always produce a crossover weight in
        # (0, 1) in exact arithmetic; verify the float computation agrees.
        q = random_queries(small_db, 1, seed=54, k=3)[0]
        index, duals = build_index(small_scorer, q)
        missing = duals[7]
        for dual in index.crossing_candidates(missing):
            w = missing.crossover_with(dual)
            assert w is not None
            assert 0.0 < w < 1.0

    def test_symmetry_of_crossing_relation(self, small_db, small_scorer):
        q = random_queries(small_db, 1, seed=55, k=3)[0]
        index, duals = build_index(small_scorer, q)
        a, b = duals[0], duals[1]
        a_crosses_b = any(d.oid == b.oid for d in index.crossing_candidates(a))
        b_crosses_a = any(d.oid == a.oid for d in index.crossing_candidates(b))
        assert a_crosses_b == b_crosses_a

    def test_index_covers_all_points(self, small_db, small_scorer):
        q = random_queries(small_db, 1, seed=56, k=3)[0]
        index, duals = build_index(small_scorer, q)
        assert len(index) == len(duals) == len(small_db)
