"""Tests for the benchmark harness utilities."""

import pytest

from repro.bench.harness import Table, time_call


class TestTimeCall:
    def test_returns_result_and_timing(self):
        result, timing = time_call(lambda: 42, repeat=3, warmup=1)
        assert result == 42
        assert timing.repeats == 3
        assert timing.best <= timing.median <= timing.mean * 3  # sanity
        assert timing.best_ms == pytest.approx(timing.best * 1000.0)

    def test_counts_calls(self):
        calls = []
        time_call(lambda: calls.append(1), repeat=4, warmup=2)
        assert len(calls) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeat=0)
        with pytest.raises(ValueError):
            time_call(lambda: None, warmup=-1)


class TestTable:
    def test_render_aligned(self):
        table = Table("name", "value")
        table.add_row("alpha", 1)
        table.add_row("b", 23456)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0].startswith("name")
        assert len(set(len(line) for line in lines if line)) <= 2

    def test_title(self):
        table = Table("x", title="My experiment")
        table.add_row(1)
        assert table.render().splitlines()[0] == "My experiment"

    def test_row_width_validated(self):
        table = Table("a", "b")
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_formatting(self):
        table = Table("v")
        table.add_row(0.123456)
        table.add_row(1234567.0)
        table.add_row(0.00000012)
        rendered = table.render()
        assert "0.1235" in rendered
        assert "e+06" in rendered
        assert "e-07" in rendered

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table()


class TestWorkloads:
    def test_query_workload_deterministic(self, small_db):
        from repro.bench.workloads import QueryWorkload

        a = list(QueryWorkload(small_db, seed=1).queries(5))
        b = list(QueryWorkload(small_db, seed=1).queries(5))
        assert [q.doc for q in a] == [q.doc for q in b]
        assert [q.loc for q in a] == [q.loc for q in b]

    def test_query_keywords_from_vocabulary(self, small_db):
        from repro.bench.workloads import QueryWorkload

        vocabulary = small_db.vocabulary()
        for q in QueryWorkload(small_db, seed=2).queries(10):
            assert q.doc <= vocabulary

    def test_query_locations_in_dataspace(self, small_db):
        from repro.bench.workloads import QueryWorkload

        for q in QueryWorkload(small_db, seed=3).queries(10):
            assert small_db.dataspace.contains_point(q.loc)

    def test_scenarios_have_genuinely_missing_objects(self, small_scorer):
        from repro.bench.workloads import generate_whynot_scenarios

        scenarios = generate_whynot_scenarios(
            small_scorer, count=3, k=5, missing_count=2, seed=4, rank_window=30
        )
        for s in scenarios:
            result = small_scorer.top_k(s.query)
            for missing, rank in zip(s.missing, s.missing_ranks):
                assert not result.contains(missing)
                assert s.query.k < rank <= s.query.k + 30
                assert small_scorer.rank_of(missing, s.query) == rank
            assert s.worst_rank == max(s.missing_ranks)

    def test_scenario_generation_fails_loudly(self, small_scorer):
        from repro.bench.workloads import generate_whynot_scenarios

        with pytest.raises(RuntimeError):
            # Impossible: more missing objects than the window holds.
            generate_whynot_scenarios(
                small_scorer, count=1, k=5, missing_count=50, seed=5,
                rank_window=10,
            )

    def test_workload_validation(self, small_db):
        from repro.bench.workloads import QueryWorkload

        with pytest.raises(ValueError):
            QueryWorkload(small_db, keywords_per_query=(0, 2))
        with pytest.raises(ValueError):
            QueryWorkload(small_db, keywords_per_query=(3, 2))
