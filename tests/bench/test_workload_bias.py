"""Tests for the workload keyword-bias regimes used by E3/E7."""

import pytest

from repro.bench.workloads import QueryWorkload


class TestKeywordBias:
    def test_invalid_bias_rejected(self, small_db):
        with pytest.raises(ValueError):
            QueryWorkload(small_db, keyword_bias="zipf")

    def test_frequency_bias_prefers_common_keywords(self, medium_db):
        frequencies = medium_db.keyword_document_frequencies()
        ranked = sorted(frequencies, key=frequencies.get, reverse=True)
        head = set(ranked[: max(1, len(ranked) // 10)])

        def head_share(bias):
            workload = QueryWorkload(
                medium_db, seed=5, keyword_bias=bias,
                keywords_per_query=(1, 1),
            )
            drawn = [next(iter(q.doc)) for q in workload.queries(300)]
            return sum(1 for kw in drawn if kw in head) / len(drawn)

        # The top-decile keywords should dominate frequency-biased draws
        # and be roughly proportionate under uniform draws.
        assert head_share("frequency") > head_share("uniform") + 0.1

    def test_uniform_bias_covers_tail(self, medium_db):
        vocabulary = sorted(medium_db.vocabulary())
        workload = QueryWorkload(
            medium_db, seed=6, keyword_bias="uniform", keywords_per_query=(1, 1)
        )
        drawn = {next(iter(q.doc)) for q in workload.queries(400)}
        # A uniform sampler over ~80 keywords hits well over half of them
        # in 400 draws.
        assert len(drawn) > len(vocabulary) // 2

    def test_both_regimes_deterministic(self, small_db):
        for bias in ("frequency", "uniform"):
            a = [q.doc for q in QueryWorkload(small_db, seed=7, keyword_bias=bias).queries(5)]
            b = [q.doc for q in QueryWorkload(small_db, seed=7, keyword_bias=bias).queries(5)]
            assert a == b
