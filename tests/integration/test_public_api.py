"""The public API surface: everything advertised must import and work."""

import importlib
import inspect

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_subpackages_import(self):
        for module in (
            "repro.core", "repro.text", "repro.index", "repro.whynot",
            "repro.service", "repro.datasets", "repro.bench",
        ):
            importlib.import_module(module)

    def test_subpackage_alls_resolve(self):
        for module_name in (
            "repro.core", "repro.text", "repro.index", "repro.whynot",
            "repro.service", "repro.datasets", "repro.bench",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name} missing"


class TestDocumentation:
    def test_every_public_module_has_docstring(self):
        import pkgutil

        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} lacks a module docstring"

    def test_public_classes_documented(self):
        for name in repro.__all__:
            member = getattr(repro, name)
            if inspect.isclass(member):
                assert member.__doc__, f"repro.{name} lacks a docstring"

    def test_quickstart_snippet_from_readme_runs(self):
        # The README's quickstart, verbatim in spirit.
        from repro import Point, YaskEngine
        from repro.datasets import hong_kong_hotels

        engine = YaskEngine(hong_kong_hotels())
        result = engine.top_k(
            Point(114.1722, 22.2975), {"clean", "comfortable"}, k=3
        )
        answer = engine.why_not(result.query, ["Grand Victoria Harbour Hotel"])
        assert answer.explanation.narrative()
        refined = engine.query(answer.keyword.refined_query)
        assert refined.contains(
            engine.database.resolve("Grand Victoria Harbour Hotel")
        )
