"""End-to-end integration tests across the whole stack.

These replay the paper's two motivating examples and the demonstration
flow on the shipped datasets, through the public API only.
"""

import pytest

from repro.core.geometry import Point
from repro.core.query import Weights
from repro.datasets.hotels import GRAND_VICTORIA, STARBUCKS_CENTRAL
from repro.service.api import YaskEngine


class TestExample1BobCoffee:
    """Example 1: preference adjustment revives the Starbucks."""

    @pytest.fixture(scope="class")
    def engine(self, coffee_db):
        return YaskEngine(coffee_db)

    @pytest.fixture(scope="class")
    def query(self, engine):
        return engine.make_query(
            Point(114.158, 22.282), {"coffee"}, 3,
            weights=Weights.from_spatial(0.15),
        )

    def test_starbucks_initially_missing(self, engine, query, coffee_db):
        result = engine.query(query)
        assert not result.contains(coffee_db.resolve(STARBUCKS_CENTRAL))

    def test_explanation_identifies_preference_problem(self, engine, query):
        explanation = engine.explain(query, [STARBUCKS_CENTRAL])
        entry = explanation.explanations[0]
        # The Starbucks is the closest cafe: nothing is closer.
        assert entry.closer_objects == 0
        assert entry.rank > query.k

    def test_preference_adjustment_revives_starbucks(self, engine, query, coffee_db):
        refinement = engine.refine_preference(query, [STARBUCKS_CENTRAL], lam=0.5)
        refined = engine.query(refinement.refined_query)
        assert refined.contains(coffee_db.resolve(STARBUCKS_CENTRAL))
        # The adjustment moves importance towards spatial proximity,
        # exactly the paper's diagnosis for Example 1.
        assert refinement.refined_query.ws > query.ws

    def test_k_only_alternative_has_higher_or_equal_cost(self, engine, query):
        refinement = engine.refine_preference(query, [STARBUCKS_CENTRAL], lam=0.5)
        assert refinement.penalty <= 0.5  # pure-k fallback costs λ


class TestExample2CarolHotels:
    """Example 2: keyword adaption revives the international hotel."""

    @pytest.fixture(scope="class")
    def engine(self, hotels_db):
        return YaskEngine(hotels_db)

    @pytest.fixture(scope="class")
    def query(self, engine):
        return engine.make_query(
            Point(114.1722, 22.2975), {"clean", "comfortable"}, 3
        )

    def test_hotel_initially_missing(self, engine, query, hotels_db):
        result = engine.query(query)
        assert not result.contains(hotels_db.resolve(GRAND_VICTORIA))

    def test_explanation_identifies_keyword_problem(self, engine, query):
        explanation = engine.explain(query, [GRAND_VICTORIA])
        entry = explanation.explanations[0]
        assert entry.breakdown.tsim == 0.0  # no keyword overlap at all
        assert explanation.suggested_model == "keyword adaption"

    def test_keyword_adaption_revives_hotel(self, engine, query, hotels_db):
        refinement = engine.refine_keywords(query, [GRAND_VICTORIA], lam=0.5)
        refined = engine.query(refinement.refined_query)
        assert refined.contains(hotels_db.resolve(GRAND_VICTORIA))
        # Adapted keywords describe the luxury hotel better.
        assert refinement.added <= hotels_db.resolve(GRAND_VICTORIA).doc

    def test_both_models_compared(self, engine, query):
        answer = engine.why_not(query, [GRAND_VICTORIA], lam=0.5)
        # A zero-overlap hotel is textually hopeless: keyword adaption
        # must be the cheaper fix in this scenario.
        assert answer.best_model == "keyword adaption"


class TestLambdaEffectiveness:
    """Section 4 'Query Refinement Effectiveness': the λ trade-off."""

    @pytest.fixture(scope="class")
    def parts(self, hotels_db):
        engine = YaskEngine(hotels_db)
        query = engine.make_query(
            Point(114.1722, 22.2975), {"clean", "comfortable"}, 3
        )
        return engine, query

    def test_lambda_one_keeps_query_unchanged(self, parts):
        engine, query = parts
        pref = engine.refine_preference(query, [GRAND_VICTORIA], lam=1.0)
        kw = engine.refine_keywords(query, [GRAND_VICTORIA], lam=1.0)
        # λ=1: only Δk is penalised, so the minimum-penalty refinement
        # keeps weights/keywords and enlarges k — Δ-modification is free
        # but the optimiser still reports *some* zero-Δk solution if one
        # exists with zero modification... the guaranteed property is
        # penalty 0 for candidates with Δk = 0 OR unchanged parameters.
        assert pref.penalty <= 1.0
        assert kw.penalty <= 1.0

    def test_lambda_zero_changes_only_modification_side(self, parts):
        engine, query = parts
        pref = engine.refine_preference(query, [GRAND_VICTORIA], lam=0.0)
        kw = engine.refine_keywords(query, [GRAND_VICTORIA], lam=0.0)
        assert pref.delta_w == 0.0 and pref.penalty == 0.0
        assert kw.delta_doc == 0 and kw.penalty == 0.0

    def test_delta_k_weakly_decreases_with_lambda(self, parts):
        engine, query = parts
        delta_ks = [
            engine.refine_keywords(query, [GRAND_VICTORIA], lam=lam).delta_k
            for lam in (0.1, 0.5, 0.9)
        ]
        assert delta_ks == sorted(delta_ks, reverse=True)

    def test_penalties_bounded_by_lambda(self, parts):
        engine, query = parts
        for lam in (0.25, 0.5, 0.75):
            assert (
                engine.refine_preference(query, [GRAND_VICTORIA], lam=lam).penalty
                <= lam + 1e-12
            )
            assert (
                engine.refine_keywords(query, [GRAND_VICTORIA], lam=lam).penalty
                <= lam + 1e-12
            )


class TestCrossModelConsistency:
    def test_indexes_and_brute_force_agree_on_hotels(self, hotels_db):
        indexed = YaskEngine(hotels_db)
        brute = YaskEngine(hotels_db, use_index=False)
        from repro.bench.workloads import QueryWorkload

        for q in QueryWorkload(hotels_db, seed=190, k=5).queries(10):
            assert [e.obj.oid for e in indexed.query(q)] == [
                e.obj.oid for e in brute.query(q)
            ]

    def test_whynot_after_index_maintenance(self, small_db):
        # Refinements remain correct when the KcR-tree was built
        # incrementally rather than bulk-loaded.
        from repro.core.scoring import Scorer
        from repro.index.kcrtree import KcRTree
        from repro.whynot.keyword import KeywordAdapter
        from repro.bench.workloads import generate_whynot_scenarios
        from repro.core.topk import BruteForceTopK

        scorer = Scorer(small_db)
        tree = KcRTree(database=small_db, max_entries=4)
        for obj in small_db:
            tree.insert(obj, obj.loc)
        adapter = KeywordAdapter(scorer, tree)
        scenario = generate_whynot_scenarios(
            scorer, count=1, k=5, missing_count=1, seed=191, rank_window=25
        )[0]
        refinement = adapter.refine(scenario.query, scenario.missing)
        result = BruteForceTopK(scorer).search(refinement.refined_query)
        assert all(result.contains(m) for m in scenario.missing)
