"""The shipped examples must run clean — they are executable documentation."""

import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_at_least_three_examples_shipped():
    assert len(ALL_EXAMPLES) >= 3


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs_clean(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]


def test_quickstart_revives_missing_hotel():
    result = run_example("quickstart.py")
    assert "refined result contains" in result.stdout
    assert "True" in result.stdout


def test_bob_example_shows_preference_fix():
    result = run_example("bob_coffee.py")
    assert "Starbucks Central revived: True" in result.stdout
    assert "preference adjustment" in result.stdout


def test_carol_example_shows_lambda_sweep():
    result = run_example("carol_hotels.py")
    assert "keyword adaption" in result.stdout
    assert "lambda" in result.stdout


def test_demo_renders_all_panels():
    result = run_example("hk_hotels_demo.py")
    for panel in ("Panel 1: map", "Panel 2: results",
                  "Panel 4: why-not explanation", "Panel 5: query log"):
        assert panel in result.stdout


def test_server_example_round_trips():
    result = run_example("yask_server.py")
    assert "revived in refined result: True" in result.stdout
    assert "server stopped" in result.stdout
