"""Tests for dataset persistence (:mod:`repro.datasets.loaders`)."""

import pytest

from repro.datasets.loaders import (
    database_from_dict,
    database_to_dict,
    load_csv,
    load_json,
    save_csv,
    save_json,
)


class TestJsonRoundTrip:
    def test_round_trip_exact(self, small_db, tmp_path):
        path = tmp_path / "db.json"
        save_json(small_db, path)
        loaded = load_json(path)
        assert len(loaded) == len(small_db)
        assert loaded.dataspace == small_db.dataspace
        for original, restored in zip(small_db, loaded):
            assert restored.oid == original.oid
            assert restored.loc == original.loc
            assert restored.doc == original.doc
            assert restored.name == original.name

    def test_round_trip_preserves_scores(self, small_db, tmp_path):
        from repro.core.scoring import Scorer
        from tests.conftest import random_queries

        path = tmp_path / "db.json"
        save_json(small_db, path)
        loaded = load_json(path)
        q = random_queries(small_db, 1, seed=180, k=5)[0]
        assert [e.obj.oid for e in Scorer(loaded).top_k(q)] == [
            e.obj.oid for e in Scorer(small_db).top_k(q)
        ]

    def test_dict_round_trip(self, hotels_db):
        restored = database_from_dict(database_to_dict(hotels_db))
        assert len(restored) == len(hotels_db)
        assert restored.resolve("Grand Victoria Harbour Hotel").doc == (
            hotels_db.resolve("Grand Victoria Harbour Hotel").doc
        )

    def test_malformed_payload(self):
        with pytest.raises(ValueError):
            database_from_dict({"nope": []})
        with pytest.raises(ValueError):
            database_from_dict([1, 2, 3])


class TestCsvRoundTrip:
    def test_round_trip_objects(self, small_db, tmp_path):
        path = tmp_path / "db.csv"
        save_csv(small_db, path)
        loaded = load_csv(path)
        assert len(loaded) == len(small_db)
        for original, restored in zip(small_db, loaded):
            assert restored.oid == original.oid
            assert restored.loc == original.loc  # repr() round-trips floats
            assert restored.doc == original.doc

    def test_names_preserved(self, hotels_db, tmp_path):
        path = tmp_path / "hotels.csv"
        save_csv(hotels_db, path)
        loaded = load_csv(path)
        assert loaded.find_by_name("Grand Victoria Harbour Hotel") is not None

    def test_nameless_objects_round_trip_as_none(self, small_db, tmp_path):
        path = tmp_path / "db.csv"
        save_csv(small_db, path)
        loaded = load_csv(path)
        assert all(o.name is None for o in loaded)

    def test_csv_dataspace_is_recomputed_mbr(self, small_db, tmp_path):
        path = tmp_path / "db.csv"
        save_csv(small_db, path)
        loaded = load_csv(path)
        from repro.core.geometry import Rect

        expected = Rect.from_points(o.loc for o in small_db)
        assert loaded.dataspace == expected
