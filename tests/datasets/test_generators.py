"""Tests for the synthetic dataset generators."""

import pytest

from repro.core.geometry import Rect
from repro.datasets.generators import (
    SyntheticDatasetBuilder,
    generate_vocabulary,
    zipf_weights,
)


class TestZipfWeights:
    def test_normalised(self):
        weights = zipf_weights(100, 1.0)
        assert sum(weights) == pytest.approx(1.0)

    def test_decreasing(self):
        weights = zipf_weights(50, 1.2)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_zero_exponent_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert all(w == pytest.approx(0.1) for w in weights)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(10, -1.0)


class TestVocabulary:
    def test_size_and_uniqueness(self):
        vocab = generate_vocabulary(500)
        assert len(vocab) == 500
        assert len(set(vocab)) == 500

    def test_prefix(self):
        assert generate_vocabulary(3, prefix="tag")[0] == "tag000"

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_vocabulary(0)


class TestBuilder:
    def test_deterministic_per_seed(self):
        a = SyntheticDatasetBuilder(seed=5).build(50)
        b = SyntheticDatasetBuilder(seed=5).build(50)
        assert [o.loc for o in a] == [o.loc for o in b]
        assert [o.doc for o in a] == [o.doc for o in b]

    def test_different_seeds_differ(self):
        a = SyntheticDatasetBuilder(seed=5).build(50)
        b = SyntheticDatasetBuilder(seed=6).build(50)
        assert [o.loc for o in a] != [o.loc for o in b]

    def test_doc_length_range_respected(self):
        db = SyntheticDatasetBuilder(seed=7).build(200, doc_length=(2, 5))
        for obj in db:
            assert 2 <= len(obj.doc) <= 5

    def test_locations_inside_dataspace(self):
        space = Rect(10, 20, 30, 40)
        db = SyntheticDatasetBuilder(seed=8).build(100, dataspace=space)
        for obj in db:
            assert space.contains_point(obj.loc)

    def test_clustered_distribution_clusters(self):
        db = SyntheticDatasetBuilder(seed=9).build(
            400, spatial="clustered", clusters=3, cluster_spread=0.01
        )
        # With tight clusters, average pairwise distance is far below the
        # uniform expectation (~0.52 for the unit square).
        objs = db.objects[:100]
        total, pairs = 0.0, 0
        for i, a in enumerate(objs):
            for b in objs[i + 1 :]:
                total += a.loc.distance_to(b.loc)
                pairs += 1
        assert total / pairs < 0.45

    def test_zipf_skew_in_keyword_frequencies(self):
        db = SyntheticDatasetBuilder(seed=10).build(
            500, vocabulary_size=100, zipf_exponent=1.0
        )
        frequencies = sorted(
            db.keyword_document_frequencies().values(), reverse=True
        )
        # Head keyword much more frequent than the tail.
        assert frequencies[0] > 5 * frequencies[-1]

    def test_named_objects(self):
        db = SyntheticDatasetBuilder(seed=11).build(5, name_objects=True)
        assert all(o.name for o in db)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0},
            {"n": 10, "doc_length": (0, 3)},
            {"n": 10, "doc_length": (5, 3)},
            {"n": 10, "doc_length": (3, 500), "vocabulary_size": 100},
            {"n": 10, "spatial": "hexagonal"},
            {"n": 10, "spatial": "clustered", "clusters": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            SyntheticDatasetBuilder(seed=1).build(**kwargs)
