"""Tests for the demonstration datasets (Section 4 of the paper)."""

import pytest

from repro.core.geometry import Point
from repro.datasets.hotels import (
    GRAND_VICTORIA,
    HONG_KONG_BOUNDS,
    HOTEL_COUNT,
    STARBUCKS_CENTRAL,
    coffee_shops,
    hong_kong_hotels,
)


class TestHongKongHotels:
    def test_exactly_539_hotels(self, hotels_db):
        # "contains some 539 hotels" (Section 4).
        assert len(hotels_db) == HOTEL_COUNT == 539

    def test_deterministic(self):
        a = hong_kong_hotels()
        b = hong_kong_hotels()
        assert [o.name for o in a] == [o.name for o in b]
        assert [o.doc for o in a] == [o.doc for o in b]

    def test_all_inside_hong_kong(self, hotels_db):
        for hotel in hotels_db:
            assert HONG_KONG_BOUNDS.contains_point(hotel.loc)

    def test_unique_names(self, hotels_db):
        names = [hotel.name for hotel in hotels_db]
        assert len(set(names)) == len(names)

    def test_keyword_sets_nonempty(self, hotels_db):
        assert all(hotel.doc for hotel in hotels_db)

    def test_facility_vocabulary_shared(self, hotels_db):
        # "wifi" is the head facility; most hotels should carry it.
        df = hotels_db.keyword_document_frequencies()
        assert df["wifi"] > len(hotels_db) * 0.4

    def test_staged_example2_hotel_present(self, hotels_db):
        hotel = hotels_db.resolve(GRAND_VICTORIA)
        assert "luxury" in hotel.doc
        assert "clean" not in hotel.doc and "comfortable" not in hotel.doc

    def test_example2_scenario_holds(self, hotels_db):
        # The Grand Victoria must be missing from Carol's top-3 yet
        # spatially competitive (the premise of Example 2).
        from repro.core.scoring import Scorer
        from repro.core.query import SpatialKeywordQuery

        scorer = Scorer(hotels_db)
        query = SpatialKeywordQuery(
            Point(114.1722, 22.2975), frozenset({"clean", "comfortable"}), 3
        )
        result = scorer.top_k(query)
        hotel = hotels_db.resolve(GRAND_VICTORIA)
        assert not result.contains(hotel)
        closer = sum(
            1
            for other in hotels_db
            if other.loc.distance_to(query.loc) < hotel.loc.distance_to(query.loc)
        )
        assert closer <= 5  # among the closest hotels to the venue

    def test_custom_seed_changes_synthetic_hotels_only(self):
        alternative = hong_kong_hotels(seed=99)
        assert len(alternative) == HOTEL_COUNT
        assert alternative.resolve(GRAND_VICTORIA).doc == (
            hong_kong_hotels().resolve(GRAND_VICTORIA).doc
        )


class TestCoffeeShops:
    def test_size_and_determinism(self, coffee_db):
        assert len(coffee_db) == 60
        assert [o.doc for o in coffee_db] == [o.doc for o in coffee_shops()]

    def test_starbucks_is_closest_to_canonical_query(self, coffee_db):
        starbucks = coffee_db.resolve(STARBUCKS_CENTRAL)
        query_loc = Point(114.158, 22.282)
        for other in coffee_db:
            if other.oid != starbucks.oid:
                assert (
                    starbucks.loc.distance_to(query_loc)
                    < other.loc.distance_to(query_loc)
                )

    def test_example1_scenario_holds(self, coffee_db):
        # Text-heavy weights push the Starbucks out of the top 3.
        from repro.core.scoring import Scorer
        from repro.core.query import SpatialKeywordQuery, Weights

        scorer = Scorer(coffee_db)
        query = SpatialKeywordQuery(
            Point(114.158, 22.282), frozenset({"coffee"}), 3,
            Weights.from_spatial(0.15),
        )
        result = scorer.top_k(query)
        assert not result.contains(coffee_db.resolve(STARBUCKS_CENTRAL))

    def test_every_shop_serves_coffee(self, coffee_db):
        assert all("coffee" in shop.doc for shop in coffee_db)
