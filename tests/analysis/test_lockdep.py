"""Runtime lock-order sanitizer tests.

Covers the acceptance criterion that a deliberately mis-ordered
acquisition is detected, plus cycle detection without levels, self
deadlocks, fsync hazards, RW-lock re-entrancy semantics, the
plain-lock passthrough when the opt-in is off, and a clean run of the
real engine lock stack under the sanitizer.
"""

from __future__ import annotations

import threading

import pytest

from tools.analysis import lockdep
from tools.analysis.lockdep import InstrumentedLock, LockOrderError


@pytest.fixture()
def monitor(monkeypatch: pytest.MonkeyPatch) -> lockdep.LockDepMonitor:
    """A fresh process-wide monitor with the opt-in env set."""
    monkeypatch.setenv("YASK_LOCKDEP", "1")
    return lockdep.fresh_monitor()


def test_shim_returns_plain_locks_when_disabled(
    monkeypatch: pytest.MonkeyPatch,
) -> None:
    from repro import concurrency

    monkeypatch.delenv("YASK_LOCKDEP", raising=False)
    lock = concurrency.ordered_lock("t.plain", concurrency.LEVEL_LEAF)
    assert isinstance(lock, type(threading.Lock()))
    assert not concurrency.lockdep_active()


def test_shim_returns_instrumented_locks_when_enabled(
    monitor: lockdep.LockDepMonitor,
) -> None:
    from repro import concurrency

    assert concurrency.lockdep_active()
    lock = concurrency.ordered_lock("t.inst", concurrency.LEVEL_LEAF)
    assert isinstance(lock, InstrumentedLock)
    assert lock.level == concurrency.LEVEL_LEAF


def test_misordered_acquisition_detected(monitor: lockdep.LockDepMonitor) -> None:
    """The acceptance criterion: a deliberate inversion raises."""
    domain = InstrumentedLock(monitor, "t.domain", level=40)
    leaf = InstrumentedLock(monitor, "t.leaf", level=50)
    with domain:
        with leaf:  # correct order: strictly increasing levels
            pass
    with leaf:
        with pytest.raises(LockOrderError, match="lock-order violation"):
            domain.acquire()
    assert any("lock-order violation" in v for v in monitor.violations)


def test_equal_level_acquisition_detected(monitor: lockdep.LockDepMonitor) -> None:
    a = InstrumentedLock(monitor, "t.a", level=50)
    b = InstrumentedLock(monitor, "t.b", level=50)
    with a:
        with pytest.raises(LockOrderError, match="lock-order violation"):
            b.acquire()


def test_cycle_detected_without_levels(monitor: lockdep.LockDepMonitor) -> None:
    """A->B then B->A is a deadlock schedule even with no levels."""
    a = InstrumentedLock(monitor, "t.x")
    b = InstrumentedLock(monitor, "t.y")
    with a:
        with b:
            pass
    with b:
        with pytest.raises(LockOrderError, match="cycle"):
            a.acquire()


def test_cross_thread_cycle_detected(monitor: lockdep.LockDepMonitor) -> None:
    """The order learned on one thread applies to every thread."""
    a = InstrumentedLock(monitor, "t.c1")
    b = InstrumentedLock(monitor, "t.c2")

    def learn_order() -> None:
        with a:
            with b:
                pass

    thread = threading.Thread(target=learn_order)
    thread.start()
    thread.join()
    with b:
        with pytest.raises(LockOrderError, match="cycle"):
            a.acquire()


def test_self_deadlock_detected(monitor: lockdep.LockDepMonitor) -> None:
    lock = InstrumentedLock(monitor, "t.self", level=50)
    with lock:
        with pytest.raises(LockOrderError, match="self deadlock"):
            lock.acquire()


def test_rlock_reentry_allowed(monitor: lockdep.LockDepMonitor) -> None:
    lock = InstrumentedLock(monitor, "t.re", level=30, reentrant=True)
    with lock:
        with lock:
            pass
    assert monitor.held_names() == ()


def test_fsync_hazard_detected(monitor: lockdep.LockDepMonitor) -> None:
    lock = InstrumentedLock(monitor, "t.cachelock", level=50)
    with lock:
        with pytest.raises(LockOrderError, match="fsync hazard"):
            monitor.note_fsync("test")


def test_fsync_under_sanctioned_locks_allowed(
    monitor: lockdep.LockDepMonitor,
) -> None:
    wal = InstrumentedLock(monitor, "t.wal", level=30, fsync_safe=True)
    with wal:
        monitor.note_fsync("test")  # no raise
    assert monitor.violations == ()


def test_rwlock_nested_reads_allowed(monitor: lockdep.LockDepMonitor) -> None:
    from repro.core.mutations import ReadWriteLock

    rw = ReadWriteLock(name="t.rw", level=20)
    with rw.read():
        with rw.read():  # the why-not path's documented re-entry
            pass
    assert monitor.held_names() == ()


def test_rwlock_write_under_read_detected(
    monitor: lockdep.LockDepMonitor,
) -> None:
    from repro.core.mutations import ReadWriteLock

    rw = ReadWriteLock(name="t.rw2", level=20)
    with pytest.raises(LockOrderError, match="self deadlock"):
        with rw.read():
            with rw.write():
                pass


def test_engine_stack_runs_clean(
    monitor: lockdep.LockDepMonitor, tmp_path
) -> None:
    """The real lock stack — engine, WAL, executors, snapshot — under
    the sanitizer, end to end, with zero violations."""
    from repro.core.geometry import Point
    from repro.core.mutations import Mutation
    from repro.core.objects import SpatialObject
    from repro.core.query import SpatialKeywordQuery
    from repro.datasets.hotels import hong_kong_hotels
    from repro.service.api import YaskEngine
    from repro.service.executor import (
        QueryExecutor,
        WhyNotExecutor,
        consistent_stats,
    )
    from repro.service.wal import FollowerEngine, WriteAheadLog

    wal = WriteAheadLog(tmp_path / "wal")
    engine = YaskEngine(hong_kong_hotels(), shards=4)
    engine.attach_wal(wal)
    topk = QueryExecutor(engine)
    whynot = WhyNotExecutor(engine, topk)
    query = SpatialKeywordQuery(loc=Point(0.3, 0.4), doc=frozenset({"spa"}), k=3)
    execution = topk.execute(query)
    served = {entry.obj.oid for entry in execution.result.entries}
    missing = next(
        obj for obj in engine.database.objects if obj.oid not in served
    )
    engine.why_not(query, [missing.oid])
    report = engine.apply_mutations(
        [
            Mutation.insert(
                SpatialObject(
                    oid=91000, loc=Point(0.5, 0.5), doc=frozenset({"bar"})
                )
            )
        ]
    )
    topk.invalidate_scoped(report.change.summary)
    consistent_stats(topk, whynot)
    engine.snapshot()
    whynot.close()
    topk.close()
    engine.close()

    follower = FollowerEngine(tmp_path / "wal")
    _result, generation = follower.read(query)
    assert generation == 1
    follower.close()

    assert monitor.violations == ()
    edges = monitor.edges()
    # The documented hierarchy was actually observed.
    assert "wal.log" in edges.get("engine.rw", ())
    assert "executor.cache" in edges.get("executor.domain", ())
