"""YASK102 fixture: in-place file writes in the service tier.

Not real service code — a seeded-violation corpus file proving the rule
fires with exact ids and line numbers (tests/analysis/test_yasklint.py).
"""

from pathlib import Path


def sneak_writes(path: Path, payload: str) -> None:
    with open(path, "w") as handle:  # line 11: YASK102 (write mode)
        handle.write(payload)
    with open(path, mode="ab") as handle:  # line 13: YASK102 (mode kwarg)
        handle.write(payload.encode())
    path.write_text(payload)  # line 15: YASK102 (Path.write_text)
    path.write_bytes(payload.encode())  # line 16: YASK102 (Path.write_bytes)


def fine_reads(path: Path) -> str:
    with open(path) as handle:  # default mode "r": reading is fine
        return handle.read()
