"""Seeded YASK106 violations: silently swallowed exceptions."""


def swallow_everything(handle):
    try:
        handle.close()
    except Exception:
        pass


def swallow_specific(path):
    import os

    try:
        os.unlink(path)
    except OSError:
        pass


def swallow_bare(work):
    try:
        work()
    except:
        pass


# --- everything below is sanctioned and must NOT be flagged -----------


def cleanup_with_reason(handle):
    try:
        handle.close()
    except Exception:
        pass  # best-effort cleanup: the handle may already be gone


def reason_on_the_except_line(path):
    import os

    try:
        os.unlink(path)
    except OSError:  # the probe file is optional; absence is fine
        pass


def handler_that_actually_handles(work, log):
    try:
        work()
    except ValueError as exc:
        log.append(str(exc))
