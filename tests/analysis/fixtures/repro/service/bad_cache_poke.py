"""Seeded YASK107 violations: direct result-cache entry mutation."""


def poke(executor, key, value):
    executor._cache.put(key, value, None, 0)
    executor._cache.pop(key)
    executor._cache.clear()
    executor._cache.move_to_end(key)
    executor._cache[key] = value
    del executor._cache[key]


def sanctioned(executor, change, query):
    # The executor-tier protocol: these receivers are not caches.
    executor.maintain(change)
    executor.invalidate_scoped(change.summary)
    execution = executor.execute(query)
    # Reads are fine — only entry mutation is fenced.
    peeked = executor._cache.peek(key="k")
    return execution, peeked, executor._cache.stats()
