"""YASK101 fixture: direct mutation/WAL writes outside the approved modules.

Not real service code — a seeded-violation corpus file proving the rule
fires with exact ids and line numbers (tests/analysis/test_yasklint.py).
"""


def sneak_apply(mutable, coordinator, wal, batch, generation, payload):
    change = mutable.apply(batch)  # line 9: YASK101 (mutable .apply)
    coordinator.apply(batch)  # line 10: YASK101 (coordinator .apply)
    wal.append(generation, payload)  # line 11: YASK101 (wal .append)
    wal.write_snapshot(generation, payload)  # line 12: YASK101 (snapshot)
    return change


def fine_paths(engine, batch, entries):
    engine.apply_mutations(batch)  # the sanctioned entry point
    entries.append(1)  # plain list append: not a WAL receiver
