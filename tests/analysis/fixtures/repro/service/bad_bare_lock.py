"""YASK105 fixture: bare threading locks in the service tier.

Not real service code — a seeded-violation corpus file proving the rule
fires with exact ids and line numbers (tests/analysis/test_yasklint.py).
"""

import threading
from threading import Lock, RLock

from repro import concurrency


class SneakyLocks:
    def __init__(self) -> None:
        self._a = threading.Lock()  # line 15: YASK105 (module attribute)
        self._b = threading.RLock()  # line 16: YASK105 (RLock)
        self._c = Lock()  # line 17: YASK105 (bare imported name)
        self._d = RLock()  # line 18: YASK105 (bare imported name)
        self._e = threading.Condition()  # line 19: YASK105 (Condition)


class LevelledLocks:
    def __init__(self) -> None:
        # The sanctioned construction: named, levelled, sanitizable.
        self._lock = concurrency.ordered_lock("fixture.leaf", concurrency.LEVEL_LEAF)
        self._event = threading.Event()  # Events are not locks: fine
