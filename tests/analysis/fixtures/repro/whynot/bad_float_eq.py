"""YASK103 fixture: exact float comparison on score values.

Not real why-not code — a seeded-violation corpus file proving the rule
fires with exact ids and line numbers (tests/analysis/test_yasklint.py).
"""


def sneak_compares(score: float, other_score: float, theta: float) -> bool:
    if score == other_score:  # line 9: YASK103 (== on scores)
        return True
    if theta != score:  # line 11: YASK103 (!= involving theta)
        return False
    return score == 0.0  # line 13: YASK103 (== against a literal)


def fine_compares(score: float, theta: float, count: int) -> bool:
    if score > theta:  # ordering comparisons are the documented idiom
        return True
    return count == 0  # integer equality is not score equality


def suppressed_compare(score: float, theta: float) -> bool:
    return score == theta  # yasklint: disable=YASK103 -- fixture: justified suppression must silence the finding


def badly_suppressed_compare(score: float, theta: float) -> bool:
    return score == theta  # yasklint: disable=YASK103
