"""YASK104 fixture: allocation-heavy constructs inside @hot_path loops.

Not real kernel code — a seeded-violation corpus file proving the rule
fires with exact ids and line numbers (tests/analysis/test_yasklint.py).
"""

from repro.core.hotpath import hot_path


@hot_path
def sneaky_scan(rows, masks, qmask):
    beaters = 0
    # Setup comprehensions BEFORE the loop are the kernel's idiom: fine.
    live = [row for row in rows if row >= 0]
    for row in live:
        shared = [m for m in masks if m & qmask]  # line 16: YASK104 (comp)
        try:  # line 17: YASK104 (try/except per row)
            beaters += len(shared)
        except TypeError:
            pass
        value = getattr(masks, "count")  # line 21: YASK104 (getattr)
        key = lambda m: m & qmask  # noqa: E731  line 22: YASK104 (lambda)
    return beaters


@hot_path
def clean_scan(rows, scores, theta):
    # Innermost loop is pure arithmetic: no findings.
    beaters = 0
    for row in rows:
        if scores[row] > theta:
            beaters += 1
    return beaters


def unmarked_scan(rows, masks, qmask):
    # Not @hot_path: comprehensions in loops are unpoliced here.
    total = 0
    for row in rows:
        total += len([m for m in masks if m & qmask])
    return total
