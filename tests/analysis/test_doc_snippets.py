"""Regression tests for the doc-snippet runner's thread-failure path.

The bug: a snippet that spawned a thread whose body raised was reported
as passing — the exception died with the thread and ``docs-check``
exited zero.  ``execute_snippet`` now installs a ``threading.excepthook``
around each run, joins every snippet-spawned thread, and returns a
failure record carrying the ``file:line`` label and the thread's
traceback.
"""

from __future__ import annotations

import textwrap

from tools.check_doc_snippets import execute_snippet, extract_snippets


def test_passing_snippet_returns_none() -> None:
    assert execute_snippet("README.md:1", "x = 1 + 1\nprint(x)") is None


def test_synchronous_failure_reported() -> None:
    failure = execute_snippet("README.md:10", "raise ValueError('boom')")
    assert failure is not None
    assert failure.label == "README.md:10"
    assert not failure.in_thread
    assert "ValueError: boom" in failure.traceback_text
    assert "README.md:10" in failure.report("raise ValueError('boom')")


def test_thread_failure_no_longer_swallowed() -> None:
    """The regression: a raise inside a spawned thread must fail."""
    source = textwrap.dedent(
        """
        import threading

        def worker():
            raise RuntimeError("died in a thread")

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        """
    )
    failure = execute_snippet("docs/API.md:42", source)
    assert failure is not None
    assert failure.in_thread
    assert failure.label == "docs/API.md:42"
    assert "RuntimeError: died in a thread" in failure.traceback_text
    report = failure.report(source)
    assert "docs/API.md:42" in report
    assert "snippet-spawned thread" in report


def test_unjoined_thread_failure_still_caught() -> None:
    """Even a thread the snippet forgot to join is joined and checked."""
    source = textwrap.dedent(
        """
        import threading

        def worker():
            raise RuntimeError("unjoined and doomed")

        threading.Thread(target=worker).start()
        """
    )
    failure = execute_snippet("docs/OPERATIONS.md:7", source)
    assert failure is not None
    assert failure.in_thread
    assert "unjoined and doomed" in failure.traceback_text


def test_thread_success_not_reported() -> None:
    source = textwrap.dedent(
        """
        import threading

        results = []
        thread = threading.Thread(target=lambda: results.append(1))
        thread.start()
        thread.join()
        assert results == [1]
        """
    )
    assert execute_snippet("README.md:99", source) is None


def test_extract_snippets_line_numbers(tmp_path) -> None:
    doc = tmp_path / "doc.md"
    doc.write_text(
        "intro\n"
        "```python\n"
        "x = 1\n"
        "```\n"
        "<!-- docs-check: skip -->\n"
        "```python\n"
        "skipped\n"
        "```\n"
    )
    snippets = extract_snippets(doc)
    assert snippets == [(3, "x = 1")]
