"""yasklint framework + rule tests over the seeded-violation corpus.

One test per rule asserts the exact rule id AND line numbers against
the known-bad fixtures under ``tests/analysis/fixtures/`` (laid out as
a miniature ``repro/`` tree so the path-scoped rule configuration is
exercised too), plus suppression-comment behaviour and the
acceptance-criteria check that ``src/`` itself lints clean.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from tools.analysis.yasklint import (
    File,
    Scope,
    Violation,
    check_file,
    registered_rules,
    run,
)

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_fixture(relpath: str) -> list[Violation]:
    file = File.load(FIXTURES / relpath, FIXTURES)
    return check_file(file)


def findings(relpath: str, rule_id: str) -> list[tuple[int, str]]:
    return [
        (v.line, v.rule_id)
        for v in lint_fixture(relpath)
        if v.rule_id == rule_id
    ]


def test_yask101_mutation_path_lines() -> None:
    assert findings("repro/service/bad_mutation_path.py", "YASK101") == [
        (9, "YASK101"),
        (10, "YASK101"),
        (11, "YASK101"),
        (12, "YASK101"),
    ]


def test_yask101_sanctioned_entry_point_not_flagged() -> None:
    violations = lint_fixture("repro/service/bad_mutation_path.py")
    assert not any(v.line >= 16 for v in violations)


def test_yask102_atomic_write_lines() -> None:
    assert findings("repro/service/bad_atomic_write.py", "YASK102") == [
        (11, "YASK102"),
        (13, "YASK102"),
        (15, "YASK102"),
        (16, "YASK102"),
    ]


def test_yask102_read_mode_not_flagged() -> None:
    violations = lint_fixture("repro/service/bad_atomic_write.py")
    assert not any(v.line >= 19 for v in violations)


def test_yask103_float_eq_lines() -> None:
    flagged = findings("repro/whynot/bad_float_eq.py", "YASK103")
    assert flagged[:3] == [(9, "YASK103"), (11, "YASK103"), (13, "YASK103")]


def test_yask103_ordering_comparisons_not_flagged() -> None:
    violations = lint_fixture("repro/whynot/bad_float_eq.py")
    assert not any(16 <= v.line <= 19 for v in violations)


def test_yask104_hot_loop_lines() -> None:
    assert findings("repro/core/bad_hot_loop.py", "YASK104") == [
        (16, "YASK104"),
        (17, "YASK104"),
        (21, "YASK104"),
        (22, "YASK104"),
    ]


def test_yask104_setup_comprehension_and_unmarked_functions_exempt() -> None:
    violations = lint_fixture("repro/core/bad_hot_loop.py")
    # The pre-loop comprehension (line 14), the clean @hot_path scan and
    # the unmarked function must produce nothing.
    assert not any(v.line == 14 or v.line >= 26 for v in violations)


def test_yask105_bare_lock_lines() -> None:
    assert findings("repro/service/bad_bare_lock.py", "YASK105") == [
        (15, "YASK105"),
        (16, "YASK105"),
        (17, "YASK105"),
        (18, "YASK105"),
        (19, "YASK105"),
    ]


def test_yask105_ordered_lock_and_event_not_flagged() -> None:
    violations = lint_fixture("repro/service/bad_bare_lock.py")
    assert not any(v.line >= 22 for v in violations)


def test_yask106_swallowed_exception_lines() -> None:
    assert findings(
        "repro/service/bad_swallowed_exception.py", "YASK106"
    ) == [
        (7, "YASK106"),
        (16, "YASK106"),
        (23, "YASK106"),
    ]


def test_yask106_commented_and_handled_exempt() -> None:
    violations = [
        v
        for v in lint_fixture("repro/service/bad_swallowed_exception.py")
        if v.rule_id == "YASK106"
    ]
    # The reason-commented handlers and the one that logs must be clean.
    assert not any(v.line >= 27 for v in violations)


def test_yask107_cache_poke_lines() -> None:
    assert findings("repro/service/bad_cache_poke.py", "YASK107") == [
        (5, "YASK107"),
        (6, "YASK107"),
        (7, "YASK107"),
        (8, "YASK107"),
        (9, "YASK107"),
        (10, "YASK107"),
    ]


def test_yask107_executor_protocol_and_reads_exempt() -> None:
    violations = [
        v
        for v in lint_fixture("repro/service/bad_cache_poke.py")
        if v.rule_id == "YASK107"
    ]
    # maintain/invalidate_scoped/execute calls and cache reads are clean.
    assert not any(v.line >= 13 for v in violations)


def test_justified_suppression_silences_finding() -> None:
    violations = lint_fixture("repro/whynot/bad_float_eq.py")
    assert not any(v.line == 23 for v in violations)


def test_unjustified_suppression_keeps_finding_and_adds_yask100() -> None:
    violations = lint_fixture("repro/whynot/bad_float_eq.py")
    at_27 = sorted(v.rule_id for v in violations if v.line == 27)
    assert at_27 == ["YASK100", "YASK103"]


def test_scope_excludes_approved_modules() -> None:
    scope = Scope(include=("*repro/service/*",), approved=("*repro/service/wal.py",))
    assert scope.applies("repro/service/server.py")
    assert not scope.applies("repro/service/wal.py")
    assert not scope.applies("repro/core/kernel.py")


def test_rule_catalogue_registered() -> None:
    ids = [rule.rule_id for rule in registered_rules()]
    assert ids == [
        "YASK101",
        "YASK102",
        "YASK103",
        "YASK104",
        "YASK105",
        "YASK106",
        "YASK107",
    ]


def test_src_lints_clean() -> None:
    """The acceptance criterion: zero unsuppressed violations in src/."""
    violations, scanned = run([REPO_ROOT / "src"], REPO_ROOT)
    assert scanned > 40
    assert violations == []


def test_every_src_suppression_is_justified() -> None:
    """Belt and braces: every inline suppression carries a reason."""
    for path in sorted((REPO_ROOT / "src").rglob("*.py")):
        file = File.load(path, REPO_ROOT)
        for suppression in file.suppressions.values():
            assert suppression.reason, (
                f"{file.relpath}:{suppression.line} suppression lacks a "
                "justification"
            )


def test_cli_json_output(tmp_path: Path) -> None:
    import json
    import subprocess
    import sys

    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "tools.analysis.yasklint",
            "tests/analysis/fixtures/repro/service/bad_bare_lock.py",
            "--root",
            "tests/analysis/fixtures",
            "--format",
            "json",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert {entry["rule"] for entry in payload} == {"YASK105"}
    assert {entry["line"] for entry in payload} == {15, 16, 17, 18, 19}


def test_cli_clean_exit_zero() -> None:
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "tools.analysis.yasklint", "src"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
