"""Unit tests for the columnar scoring kernel (repro.core.kernel).

The exhaustive bit-for-bit parity sweeps live in
``tests/properties/test_prop_kernel.py``; this module covers the
kernel's construction rules, counters, edge cases and the scorer's
fallback behaviour around it.
"""

import pytest

from repro.core.geometry import Point, Rect
from repro.core.kernel import ScoringKernel
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import SpatialKeywordQuery, Weights
from repro.core.scoring import Scorer
from repro.index.dualspace import DualSpaceIndex
from repro.text.similarity import (
    DiceSimilarity,
    JaccardSimilarity,
    OverlapSimilarity,
    WeightedJaccardSimilarity,
)


def edge_db() -> SpatialDatabase:
    """Empty docs, shared keywords and score ties in one database."""
    return SpatialDatabase(
        [
            SpatialObject(oid=0, loc=Point(0.1, 0.1), doc=frozenset({"cafe", "wifi"})),
            SpatialObject(oid=1, loc=Point(0.9, 0.9), doc=frozenset()),
            SpatialObject(oid=2, loc=Point(0.1, 0.1), doc=frozenset({"cafe", "wifi"})),
            SpatialObject(oid=3, loc=Point(0.5, 0.5), doc=frozenset({"bar"})),
        ],
        dataspace=Rect(0.0, 0.0, 1.0, 1.0),
    )


def query(keywords, *, k=2, ws=0.5) -> SpatialKeywordQuery:
    return SpatialKeywordQuery(
        loc=Point(0.2, 0.3),
        doc=frozenset(keywords),
        k=k,
        weights=Weights.from_spatial(ws),
    )


class TestConstruction:
    def test_supported_models(self):
        assert ScoringKernel.supports(JaccardSimilarity())
        assert ScoringKernel.supports(DiceSimilarity())
        assert ScoringKernel.supports(OverlapSimilarity())

    def test_unsupported_model_is_rejected(self):
        db = edge_db()
        model = WeightedJaccardSimilarity({"cafe": 2.0})
        assert ScoringKernel.maybe_build(db, model) is None
        with pytest.raises(ValueError):
            ScoringKernel(db, model)

    def test_exact_type_dispatch_excludes_subclasses(self):
        class Tweaked(JaccardSimilarity):
            def similarity(self, object_keywords, query_keywords):
                return 0.5

        assert not ScoringKernel.supports(Tweaked())
        assert Scorer(edge_db(), text_model=Tweaked()).kernel is None

    def test_scorer_builds_kernel_by_default(self):
        assert Scorer(edge_db()).kernel is not None

    def test_scorer_kernel_opt_out(self):
        assert Scorer(edge_db(), use_kernel=False).kernel is None

    def test_columns_align_with_database(self):
        db = edge_db()
        kernel = ScoringKernel(db, JaccardSimilarity())
        assert len(kernel) == len(db)
        assert list(kernel.oids) == [obj.oid for obj in db]
        assert [kernel.row_of(obj.oid) for obj in db] == list(range(len(db)))


class TestEdgeCases:
    def test_empty_doc_scores_zero_tsim(self):
        db = edge_db()
        kernel = ScoringKernel(db, JaccardSimilarity())
        q = query({"cafe"})
        _sdists, tsims, _scores = kernel.components_all(q)
        assert tsims[kernel.row_of(1)] == 0.0

    def test_out_of_vocabulary_query_keywords(self):
        """Unknown query keywords never match but still enlarge |q.doc|."""
        db = edge_db()
        scorer = Scorer(db)
        q = query({"cafe", "sushi"})  # "sushi" unseen in the corpus
        for obj in db:
            expected = scorer.text_model.similarity(obj.doc, q.doc)
            prepared = scorer.kernel.prepare(q)
            _sdists, tsims, _scores = scorer.kernel.components_all(q)
            assert tsims[scorer.kernel.row_of(obj.oid)] == expected
            assert prepared.score_oid(obj.oid) == scorer.score(obj, q)

    def test_all_query_keywords_unknown(self):
        db = edge_db()
        scorer = Scorer(db)
        q = query({"sushi", "ramen"})
        _sdists, tsims, _scores = scorer.kernel.components_all(q)
        assert list(tsims) == [0.0] * len(db)

    def test_tie_order_prefers_smaller_oid(self):
        """Objects 0 and 2 are exact duplicates; oid breaks the tie."""
        scorer = Scorer(edge_db())
        ranking = scorer.rank_all(query({"cafe"}))
        oids = [entry.obj.oid for entry in ranking]
        assert oids.index(0) < oids.index(2)

    def test_order_rows_with_non_ascending_oids(self):
        db = SpatialDatabase(
            [
                SpatialObject(oid=7, loc=Point(0.1, 0.1), doc=frozenset({"a"})),
                SpatialObject(oid=3, loc=Point(0.1, 0.1), doc=frozenset({"a"})),
                SpatialObject(oid=5, loc=Point(0.1, 0.1), doc=frozenset({"a"})),
            ],
            dataspace=Rect(0.0, 0.0, 1.0, 1.0),
        )
        fast = Scorer(db)
        slow = Scorer(db, use_kernel=False)
        q = SpatialKeywordQuery(loc=Point(0.1, 0.1), doc=frozenset({"a"}), k=3)
        assert [e.obj.oid for e in fast.rank_all(q)] == [3, 5, 7]
        assert [tuple(e) for e in fast.rank_all(q)] == [
            tuple(e) for e in slow.rank_all(q)
        ]


class TestRankPrimitives:
    def test_count_better_matches_rank_of(self):
        db = edge_db()
        fast = Scorer(db)
        slow = Scorer(db, use_kernel=False)
        q = query({"cafe", "bar"})
        for obj in db:
            expected = slow.rank_of(obj, q)
            assert fast.rank_of(obj, q) == expected
            score = slow.score(obj, q)
            assert fast.kernel.count_better(score, obj.oid, q) + 1 == expected

    def test_rank_of_many_matches_individual_ranks(self):
        db = edge_db()
        fast = Scorer(db)
        slow = Scorer(db, use_kernel=False)
        q = query({"cafe", "wifi"})
        ranks = fast.kernel.rank_of_many([obj.oid for obj in db], q)
        assert ranks == {obj.oid: slow.rank_of(obj, q) for obj in db}

    def test_worst_rank_matches_set_path(self):
        db = edge_db()
        fast = Scorer(db)
        slow = Scorer(db, use_kernel=False)
        q = query({"cafe"})
        targets = [db.get(1), db.get(3)]
        assert fast.worst_rank(targets, q) == slow.worst_rank(targets, q)

    def test_foreign_object_falls_back_to_set_path(self):
        """An object outside D is scored as passed, not via the columns."""
        db = edge_db()
        fast = Scorer(db)
        slow = Scorer(db, use_kernel=False)
        foreign = SpatialObject(oid=0, loc=Point(0.9, 0.2), doc=frozenset({"bar"}))
        q = query({"bar"})
        assert fast.rank_of(foreign, q) == slow.rank_of(foreign, q)
        assert fast.worst_rank([foreign], q) == slow.worst_rank([foreign], q)


class TestBestFirstGuard:
    def test_foreign_index_entries_scored_as_passed(self):
        """Leaf entries that are not the scorer database's own objects
        must be scored object-at-a-time (pre-kernel semantics), not via
        the columns of a same-oid database row."""
        from repro.core.topk import BestFirstTopK
        from repro.index.setrtree import SetRTree

        db = edge_db()
        # Same oids/locations, different keyword sets: a kernel lookup
        # by oid would score the wrong documents.
        twisted = SpatialDatabase(
            [
                SpatialObject(oid=obj.oid, loc=obj.loc, doc=frozenset({"bar"}))
                for obj in db
            ],
            dataspace=db.dataspace,
        )
        index = SetRTree.build(twisted, max_entries=2)
        q = query({"bar"}, k=4)
        fast = BestFirstTopK(index, Scorer(db))
        slow = BestFirstTopK(index, Scorer(db, use_kernel=False))
        assert [tuple(e) for e in fast.search(q)] == [
            tuple(e) for e in slow.search(q)
        ]


class TestDualView:
    def test_dual_points_match_scorer(self):
        db = edge_db()
        fast = Scorer(db)
        slow = Scorer(db, use_kernel=False)
        q = query({"cafe", "bar"})
        assert fast.dual_points(q) == slow.dual_points(q)

    def test_crossing_candidates_match_linear_scan(self):
        db = edge_db()
        fast = Scorer(db)
        q = query({"cafe", "bar"})
        view = fast.kernel.dual_view(q)
        duals = view.dual_points()
        for dual in duals:
            columnar = {d.oid for d in view.crossing_candidates(dual.oid)}
            linear = {
                d.oid
                for d in DualSpaceIndex.crossing_candidates_linear(duals, dual)
            }
            assert columnar == linear


class TestStats:
    def test_counters_track_batch_passes(self):
        db = edge_db()
        scorer = Scorer(db)
        kernel = scorer.kernel
        q = query({"cafe"})
        kernel.stats.reset()
        scorer.rank_all(q)
        assert kernel.stats.full_passes == 1
        scorer.rank_of(db.get(3), q)
        assert kernel.stats.count_better_calls == 1
        assert kernel.stats.score_passes == 1
        scorer.worst_rank([db.get(3)], q)
        assert kernel.stats.rank_of_many_calls == 1
        scorer.dual_points(q)
        assert kernel.stats.dual_views == 1
        prepared = kernel.prepare(q)
        prepared.score_oid(0)
        assert prepared.scored == 1
        prepared.flush_stats()
        assert kernel.stats.point_scores == 1
        snapshot = kernel.stats.to_dict()
        # The dual view runs its own (a, b) pass, not a component pass.
        assert snapshot["full_passes"] == 1
        kernel.stats.reset()
        assert kernel.stats.to_dict()["full_passes"] == 0
