"""Unit tests for :mod:`repro.core.topk` — Definition 1's engines.

The central contract: the best-first index engine returns *exactly* the
brute-force result (same objects, same order) for every query and every
index, because both implement the same deterministic total order.
"""

import pytest

from repro.core.objects import SpatialDatabase
from repro.core.query import SpatialKeywordQuery
from repro.core.scoring import Scorer
from repro.core.topk import BestFirstTopK, BruteForceTopK
from repro.index.irtree import IRTree
from repro.index.setrtree import SetRTree
from repro.text.similarity import CosineTfIdfSimilarity

from tests.conftest import random_queries


class TestBruteForce:
    def test_returns_k_objects(self, small_scorer):
        queries = random_queries(small_scorer.database, 3, seed=1, k=7)
        for q in queries:
            assert len(BruteForceTopK(small_scorer).search(q)) == 7

    def test_k_larger_than_database_returns_all(self, small_scorer):
        q = random_queries(small_scorer.database, 1, seed=2, k=10_000)[0]
        result = BruteForceTopK(small_scorer).search(q)
        assert len(result) == len(small_scorer.database)

    def test_result_satisfies_definition_1(self, small_scorer):
        # ∀o ∈ R, ∀o' ∈ D−R: ST(o,q) ≥ ST(o',q).
        q = random_queries(small_scorer.database, 1, seed=3, k=5)[0]
        result = BruteForceTopK(small_scorer).search(q)
        outside = [
            obj for obj in small_scorer.database
            if obj.oid not in result.object_ids
        ]
        min_inside = min(e.score for e in result)
        for obj in outside:
            assert small_scorer.score(obj, q) <= min_inside + 1e-15


class TestBestFirstAgainstBruteForce:
    @pytest.mark.parametrize("k", [1, 3, 10, 50])
    def test_setrtree_engine_matches_oracle(self, small_db, small_scorer, small_setrtree, k):
        engine = BestFirstTopK(small_setrtree, small_scorer)
        oracle = BruteForceTopK(small_scorer)
        for q in random_queries(small_db, 10, seed=k, k=k):
            expected = oracle.search(q)
            actual = engine.search(q)
            assert [e.obj.oid for e in actual] == [e.obj.oid for e in expected]
            assert [e.score for e in actual] == [e.score for e in expected]

    def test_medium_database_many_queries(self, medium_db, medium_scorer, medium_setrtree):
        engine = BestFirstTopK(medium_setrtree, medium_scorer)
        oracle = BruteForceTopK(medium_scorer)
        for q in random_queries(medium_db, 15, seed=99, k=10):
            assert [e.obj.oid for e in engine.search(q)] == [
                e.obj.oid for e in oracle.search(q)
            ]

    def test_irtree_engine_matches_oracle_for_cosine(self, small_db):
        model = CosineTfIdfSimilarity(
            small_db.keyword_document_frequencies(), len(small_db)
        )
        scorer = Scorer(small_db, text_model=model)
        tree = IRTree.build(small_db, text_model=model, max_entries=8)
        engine = BestFirstTopK(tree, scorer)
        oracle = BruteForceTopK(scorer)
        for q in random_queries(small_db, 10, seed=5, k=8):
            assert [e.obj.oid for e in engine.search(q)] == [
                e.obj.oid for e in oracle.search(q)
            ]

    def test_tie_heavy_database(self, tiny_db):
        # Five objects, many score ties — the priority queue's node-first
        # ordering must still reproduce the oracle order exactly.
        scorer = Scorer(tiny_db)
        tree = SetRTree.build(tiny_db, max_entries=2)
        engine = BestFirstTopK(tree, scorer)
        oracle = BruteForceTopK(scorer)
        for q in random_queries(tiny_db, 20, seed=8, k=5):
            assert [e.obj.oid for e in engine.search(q)] == [
                e.obj.oid for e in oracle.search(q)
            ]


class TestSearchStats:
    def test_stats_reset_per_search(self, medium_db, medium_scorer, medium_setrtree):
        engine = BestFirstTopK(medium_setrtree, medium_scorer)
        q = random_queries(medium_db, 1, seed=4, k=5)[0]
        engine.search(q)
        first = engine.stats.nodes_expanded
        engine.search(q)
        assert engine.stats.nodes_expanded == first  # reset, not accumulated

    def test_best_first_prunes_compared_to_full_scan(
        self, medium_db, medium_scorer, medium_setrtree
    ):
        engine = BestFirstTopK(medium_setrtree, medium_scorer)
        q = random_queries(medium_db, 1, seed=6, k=5)[0]
        engine.search(q)
        # Far fewer objects scored than a full scan would need.
        assert engine.stats.objects_scored < len(medium_db)

    def test_heap_pushes_counted(self, small_db, small_scorer, small_setrtree):
        engine = BestFirstTopK(small_setrtree, small_scorer)
        engine.search(random_queries(small_db, 1, seed=7, k=3)[0])
        assert engine.stats.heap_pushes >= engine.stats.nodes_expanded


class TestEdgeCases:
    def test_k_exceeding_database_via_index(self, small_db, small_scorer, small_setrtree):
        q = random_queries(small_db, 1, seed=11, k=len(small_db) + 50)[0]
        result = BestFirstTopK(small_setrtree, small_scorer).search(q)
        assert len(result) == len(small_db)

    def test_single_object_database(self):
        from tests.conftest import make_tiny_db

        db = make_tiny_db().filter(lambda o: o.oid == 0)
        scorer = Scorer(db)
        tree = SetRTree.build(db)
        result = BestFirstTopK(tree, scorer).search(
            random_queries(db, 1, seed=1, k=1)[0]
        )
        assert len(result) == 1
        assert result[0].obj.oid == 0

    def test_keywords_absent_from_vocabulary(self, small_db, small_scorer, small_setrtree):
        # A query whose keywords match nothing still ranks spatially.
        q = SpatialKeywordQuery(
            small_db.objects[0].loc, frozenset({"zz-not-a-keyword"}), 3
        )
        engine = BestFirstTopK(small_setrtree, small_scorer)
        oracle = BruteForceTopK(small_scorer)
        assert [e.obj.oid for e in engine.search(q)] == [
            e.obj.oid for e in oracle.search(q)
        ]
        assert all(e.tsim == 0.0 for e in engine.search(q))
