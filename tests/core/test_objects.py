"""Unit tests for :mod:`repro.core.objects`."""

import pytest

from repro.core.geometry import Point, Rect
from repro.core.objects import SpatialDatabase, SpatialObject


def obj(oid, x=0.0, y=0.0, doc=("a",), name=None):
    return SpatialObject(oid=oid, loc=Point(x, y), doc=frozenset(doc), name=name)


class TestSpatialObject:
    def test_negative_oid_rejected(self):
        with pytest.raises(ValueError):
            obj(-1)

    def test_doc_coerced_to_frozenset(self):
        o = SpatialObject(oid=0, loc=Point(0, 0), doc={"a", "b"})
        assert isinstance(o.doc, frozenset)
        assert o.doc == frozenset({"a", "b"})

    def test_label_uses_name_when_present(self):
        assert obj(3, name="Cafe").label == "Cafe"
        assert obj(3).label == "object-3"

    def test_describe_mentions_keywords_sorted(self):
        text = obj(1, doc=("b", "a")).describe()
        assert "[a, b]" in text


class TestDatabaseConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SpatialDatabase([])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            SpatialDatabase([obj(1), obj(1, x=1.0)])

    def test_dataspace_defaults_to_mbr(self):
        db = SpatialDatabase([obj(0, 0, 0), obj(1, 4, 3)])
        assert db.dataspace.as_tuple() == (0, 0, 4, 3)

    def test_margin_expands_default_dataspace(self):
        db = SpatialDatabase([obj(0, 0, 0), obj(1, 1, 1)], margin=0.5)
        assert db.dataspace.as_tuple() == (-0.5, -0.5, 1.5, 1.5)

    def test_explicit_dataspace_wins(self):
        space = Rect(-10, -10, 10, 10)
        db = SpatialDatabase([obj(0)], dataspace=space)
        assert db.dataspace == space


class TestDatabaseLookup:
    @pytest.fixture()
    def db(self):
        return SpatialDatabase([
            obj(0, 0, 0, ("a",), "Alpha"),
            obj(7, 1, 1, ("b",), "Beta"),
            obj(3, 2, 2, ("c",)),
        ])

    def test_len_iter_contains(self, db):
        assert len(db) == 3
        assert {o.oid for o in db} == {0, 7, 3}
        assert 7 in db
        assert 99 not in db
        assert db.get(7) in db

    def test_get_unknown_raises_keyerror(self, db):
        with pytest.raises(KeyError):
            db.get(99)

    def test_find_by_name(self, db):
        assert db.find_by_name("Beta").oid == 7
        assert db.find_by_name("Nope") is None

    def test_resolve_by_id_name_and_object(self, db):
        assert db.resolve(0).name == "Alpha"
        assert db.resolve("Beta").oid == 7
        assert db.resolve(db.get(3)).oid == 3

    def test_resolve_unknown_name_raises(self, db):
        with pytest.raises(KeyError):
            db.resolve("Missing Hotel")


class TestDistanceNormalisation:
    def test_normalised_distance_in_unit_range(self):
        db = SpatialDatabase([obj(0, 0, 0), obj(1, 3, 4)])
        assert db.distance_normaliser == 5.0
        assert db.normalized_distance(Point(0, 0), Point(3, 4)) == 1.0
        assert db.normalized_distance(Point(0, 0), Point(0, 0)) == 0.0

    def test_distance_clamped_at_one_outside_dataspace(self):
        db = SpatialDatabase([obj(0, 0, 0), obj(1, 1, 0)])
        assert db.normalized_distance(Point(0, 0), Point(100, 0)) == 1.0

    def test_single_point_dataspace_normalises_to_zero(self):
        db = SpatialDatabase([obj(0, 5, 5)])
        assert db.normalized_distance(Point(5, 5), Point(5, 5)) == 0.0


class TestCorpusStatistics:
    def test_vocabulary_union(self):
        db = SpatialDatabase([obj(0, doc=("a", "b")), obj(1, x=1, doc=("b", "c"))])
        assert db.vocabulary() == frozenset({"a", "b", "c"})

    def test_document_frequencies(self):
        db = SpatialDatabase([obj(0, doc=("a", "b")), obj(1, x=1, doc=("b",))])
        assert db.keyword_document_frequencies() == {"a": 1, "b": 2}

    def test_summary_fields(self):
        db = SpatialDatabase([obj(0, doc=("a",)), obj(1, x=2, y=1, doc=("a", "b", "c"))])
        summary = db.summary()
        assert summary["objects"] == 2
        assert summary["vocabulary"] == 3
        assert summary["min_doc_len"] == 1
        assert summary["max_doc_len"] == 3
        assert summary["avg_doc_len"] == 2.0


class TestFilter:
    def test_filter_keeps_dataspace(self):
        db = SpatialDatabase([obj(0, 0, 0), obj(1, 4, 3, doc=("b",))])
        filtered = db.filter(lambda o: "b" in o.doc)
        assert len(filtered) == 1
        assert filtered.dataspace == db.dataspace
        assert filtered.distance_normaliser == db.distance_normaliser

    def test_filter_to_empty_raises(self):
        db = SpatialDatabase([obj(0)])
        with pytest.raises(ValueError):
            db.filter(lambda o: False)
