"""Unit tests for :mod:`repro.core.scoring` (Eqn. 1 and the dual view)."""

import pytest

from repro.core.geometry import Point, Rect
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import SpatialKeywordQuery, Weights
from repro.core.scoring import Scorer
from repro.text.similarity import CosineTfIdfSimilarity


@pytest.fixture()
def db():
    return SpatialDatabase(
        [
            SpatialObject(0, Point(0.0, 0.0), frozenset({"a", "b"})),
            SpatialObject(1, Point(3.0, 4.0), frozenset({"b", "c"})),
            SpatialObject(2, Point(1.0, 1.0), frozenset({"x"})),
        ],
        dataspace=Rect(0, 0, 3, 4),
    )


@pytest.fixture()
def scorer(db):
    return Scorer(db)


def query(x=0.0, y=0.0, doc=("a", "b"), k=2, ws=0.5):
    return SpatialKeywordQuery(Point(x, y), frozenset(doc), k, Weights.from_spatial(ws))


class TestComponents:
    def test_sdist_is_normalised(self, scorer, db):
        q = query()
        assert scorer.sdist(db.get(0), q) == 0.0
        assert scorer.sdist(db.get(1), q) == 1.0  # full diagonal away

    def test_tsim_is_jaccard(self, scorer, db):
        q = query(doc=("a", "b"))
        assert scorer.tsim(db.get(0), q.doc) == 1.0
        assert scorer.tsim(db.get(1), q.doc) == pytest.approx(1 / 3)
        assert scorer.tsim(db.get(2), q.doc) == 0.0

    def test_score_is_convex_combination(self, scorer, db):
        q = query(ws=0.3)
        breakdown = scorer.breakdown(db.get(1), q)
        expected = 0.3 * (1.0 - breakdown.sdist) + 0.7 * breakdown.tsim
        assert breakdown.score == pytest.approx(expected)

    def test_score_in_unit_interval(self, scorer, db):
        for obj in db:
            for ws in (0.1, 0.5, 0.9):
                assert 0.0 <= scorer.score(obj, query(ws=ws)) <= 1.0

    def test_perfect_object_scores_one(self, scorer, db):
        q = query(x=0.0, y=0.0, doc=("a", "b"))
        assert scorer.score(db.get(0), q) == pytest.approx(1.0)


class TestDualView:
    def test_dual_point_components(self, scorer, db):
        q = query()
        dual = scorer.dual_point(db.get(1), q)
        assert dual.oid == 1
        assert dual.a == pytest.approx(1.0 - scorer.sdist(db.get(1), q))
        assert dual.b == pytest.approx(scorer.tsim(db.get(1), q.doc))

    def test_dual_score_matches_scorer_bitwise(self, scorer, db):
        # The preference module depends on this equality being exact.
        for ws in (0.15, 0.5, 0.85):
            q = query(ws=ws)
            for obj in db:
                dual = scorer.dual_point(obj, q)
                assert q.ws * dual.a + q.wt * dual.b == scorer.score(obj, q)

    def test_dual_points_cover_database(self, scorer):
        duals = scorer.dual_points(query())
        assert sorted(d.oid for d in duals) == [0, 1, 2]

    def test_crossover_solves_line_intersection(self, scorer, db):
        q = query()
        d0 = scorer.dual_point(db.get(0), q)
        d1 = scorer.dual_point(db.get(1), q)
        w = d0.crossover_with(d1)
        if w is not None:
            assert d0.score_at(w) == pytest.approx(d1.score_at(w), abs=1e-12)

    def test_crossover_parallel_lines_is_none(self):
        from repro.core.scoring import DualPoint

        a = DualPoint(0, 0.5, 0.25)
        b = DualPoint(1, 0.75, 0.5)  # same slope 0.25 (exactly representable)
        assert a.crossover_with(b) is None

    def test_slope(self):
        from repro.core.scoring import DualPoint

        assert DualPoint(0, 0.7, 0.2).slope == pytest.approx(0.5)


class TestRanking:
    def test_rank_all_is_total_order(self, scorer):
        ranking = scorer.rank_all(query())
        assert [e.rank for e in ranking] == [1, 2, 3]
        for earlier, later in zip(ranking, ranking[1:]):
            assert (earlier.score, -earlier.obj.oid) >= (later.score, -later.obj.oid)

    def test_top_k_prefix_of_rank_all(self, scorer):
        q = query(k=2)
        ranking = scorer.rank_all(q)
        result = scorer.top_k(q)
        assert [e.obj.oid for e in result] == [e.obj.oid for e in ranking[:2]]

    def test_rank_of_matches_rank_all(self, scorer, db):
        q = query()
        ranking = {e.obj.oid: e.rank for e in scorer.rank_all(q)}
        for obj in db:
            assert scorer.rank_of(obj, q) == ranking[obj.oid]

    def test_worst_rank_is_max_of_ranks(self, scorer, db):
        q = query()
        ranks = {oid: scorer.rank_of(db.get(oid), q) for oid in (0, 1, 2)}
        assert scorer.worst_rank([db.get(1), db.get(2)], q) == max(ranks[1], ranks[2])

    def test_worst_rank_empty_raises(self, scorer):
        with pytest.raises(ValueError):
            scorer.worst_rank([], query())

    def test_tie_break_by_oid(self):
        # Two objects at identical locations with identical docs tie in
        # score; the smaller oid must rank first.
        db = SpatialDatabase(
            [
                SpatialObject(5, Point(0, 0), frozenset({"a"})),
                SpatialObject(2, Point(0, 0), frozenset({"a"})),
            ],
            dataspace=Rect(0, 0, 1, 1),
        )
        scorer = Scorer(db)
        ranking = scorer.rank_all(query(doc=("a",)))
        assert [e.obj.oid for e in ranking] == [2, 5]

    def test_result_from_objects_attaches_ranks(self, scorer, db):
        q = query(k=2)
        expected = scorer.top_k(q)
        rebuilt = scorer.result_from_objects(q, [e.obj for e in expected])
        assert [e.rank for e in rebuilt] == [1, 2]
        assert [e.score for e in rebuilt] == [e.score for e in expected]


class TestAlternativeModels:
    def test_cosine_model_scores_differently_but_in_range(self, db):
        model = CosineTfIdfSimilarity(db.keyword_document_frequencies(), len(db))
        scorer = Scorer(db, text_model=model)
        q = query()
        for obj in db:
            assert 0.0 <= scorer.score(obj, q) <= 1.0
