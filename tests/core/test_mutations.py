"""Unit tests for the live-mutation substrate (repro.core.mutations)."""

from __future__ import annotations

import threading

import pytest

from repro.core.geometry import Point, Rect
from repro.core.kernel import ScoringKernel
from repro.core.mutations import (
    BatchSummary,
    MissingTargetError,
    MutableDatabase,
    Mutation,
    MutationError,
    ReadWriteLock,
)
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.scoring import Scorer
from repro.text.similarity import JACCARD
from tests.conftest import make_query, make_tiny_db


def obj(oid: int, x: float = 0.5, y: float = 0.5, *keywords: str, name=None):
    return SpatialObject(oid, Point(x, y), frozenset(keywords or ("kw",)), name)


class TestMutationValidation:
    def test_kinds_are_validated(self):
        with pytest.raises(MutationError):
            Mutation(kind="upsert", oid=1, obj=obj(1))

    def test_delete_carries_no_payload(self):
        with pytest.raises(MutationError):
            Mutation(kind="delete", oid=1, obj=obj(1))

    def test_insert_requires_payload(self):
        with pytest.raises(MutationError):
            Mutation(kind="insert", oid=1)

    def test_oid_must_match_object(self):
        with pytest.raises(MutationError):
            Mutation(kind="insert", oid=2, obj=obj(1))


class TestBatchNormalisation:
    def make(self):
        db = make_tiny_db()
        return db, MutableDatabase(db, model_code="jaccard")

    def test_insert_then_delete_is_a_noop(self):
        db, mutable = self.make()
        before = db.objects
        change = mutable.apply(
            [Mutation.insert(obj(9)), Mutation.delete(9), Mutation.insert(obj(10))]
        )
        assert change.inserted_count == 2 and change.deleted_count == 1
        assert [o.oid for o in db.objects] == [o.oid for o in before] + [10]

    def test_delete_then_insert_nets_to_update(self):
        db, mutable = self.make()
        replacement = obj(0, 0.9, 0.9, "swapped")
        change = mutable.apply(
            [Mutation.delete(0), Mutation.insert(replacement)]
        )
        assert change.removed[0].oid == 0
        assert change.appended == (replacement,)
        assert db.get(0) is replacement
        # Order rule: the replaced object moved to the end.
        assert db.objects[-1] is replacement

    def test_duplicate_insert_rejected(self):
        _, mutable = self.make()
        with pytest.raises(MutationError, match="already in use"):
            mutable.apply([Mutation.insert(obj(0))])

    def test_update_unknown_is_missing_target(self):
        _, mutable = self.make()
        with pytest.raises(MissingTargetError):
            mutable.apply([Mutation.update(obj(99))])

    def test_delete_unknown_is_missing_target(self):
        _, mutable = self.make()
        with pytest.raises(MissingTargetError):
            mutable.apply([Mutation.delete(99)])

    def test_batch_must_not_empty_database(self):
        _, mutable = self.make()
        with pytest.raises(MutationError, match="empty"):
            mutable.apply([Mutation.delete(oid) for oid in range(5)])

    def test_empty_batch_rejected(self):
        _, mutable = self.make()
        with pytest.raises(MutationError):
            mutable.apply([])

    def test_failed_batch_leaves_generation_untouched(self):
        _, mutable = self.make()
        with pytest.raises(MutationError):
            mutable.apply([Mutation.insert(obj(0))])
        assert mutable.generation == 0

    def test_generation_is_monotone(self):
        _, mutable = self.make()
        for expected in (1, 2, 3):
            mutable.apply([Mutation.insert(obj(100 + expected))])
            assert mutable.generation == expected


class TestDatabaseMaintenance:
    def test_name_lookup_follows_mutations(self):
        db = make_tiny_db()
        mutable = MutableDatabase(db)
        mutable.apply([Mutation.delete(0)])
        assert db.find_by_name("o1") is None
        mutable.apply([Mutation.insert(obj(50, 0.3, 0.3, "x", name="o1"))])
        assert db.find_by_name("o1").oid == 50

    def test_vocabulary_extends_append_only(self):
        db = make_tiny_db()
        _ = db.doc_masks  # force interning
        before = db.vocabulary_index.keywords
        mutable = MutableDatabase(db)
        mutable.apply([Mutation.insert(obj(50, 0.3, 0.3, "aaa_new"))])
        after = db.vocabulary_index.keywords
        assert after[: len(before)] == before  # old positions untouched
        assert "aaa_new" in after
        assert db.doc_masks[-1] == 1 << after.index("aaa_new")

    def test_dataspace_and_normaliser_are_pinned(self):
        db = make_tiny_db()
        mutable = MutableDatabase(db)
        before = db.distance_normaliser
        mutable.apply([Mutation.insert(obj(50, 5.0, 5.0, "far"))])
        assert db.dataspace == Rect(0.0, 0.0, 1.0, 1.0)
        assert db.distance_normaliser == before


class TestKernelMaintenance:
    def make(self):
        db = make_tiny_db()
        kernel = ScoringKernel(db, JACCARD, compaction_threshold=0.5)
        mutable = MutableDatabase(db, model_code="jaccard")
        mutable.register_listener(kernel)
        return db, kernel, mutable

    def test_tombstones_then_threshold_compaction(self):
        db, kernel, mutable = self.make()
        mutable.apply([Mutation.delete(1)])
        info = kernel.mutation_info()
        assert info["tombstones"] == 1 and info["compactions"] == 0
        assert kernel.live_count == 4
        mutable.apply([Mutation.delete(2), Mutation.delete(3)])
        info = kernel.mutation_info()
        # 3 dead of 5 rows > 0.5 threshold → compacted.
        assert info["tombstones"] == 0 and info["compactions"] == 1
        assert info["rows"] == 2

    def test_compacted_rows_match_database_order(self):
        db = make_tiny_db()
        kernel = ScoringKernel(db, JACCARD, compaction_threshold=0.2)
        mutable = MutableDatabase(db, model_code="jaccard")
        mutable.register_listener(kernel)
        mutable.apply(
            [
                Mutation.delete(0),
                Mutation.delete(2),
                Mutation.delete(4),
                Mutation.insert(obj(7, 0.4, 0.4, "restaurant")),
            ]
        )
        assert kernel.mutation_info()["tombstones"] == 0
        assert list(kernel.row_objects) == list(db.objects)

    def test_tombstoned_rows_never_rank(self):
        db, kernel, mutable = self.make()
        scorer = Scorer(db)
        object.__setattr__  # quiet lint; scorer built pre-mutation below
        mutable.register_listener(scorer.kernel)
        mutable.apply([Mutation.delete(1)])
        query = make_query(keywords=("restaurant",), k=10)
        ranked = scorer.rank_all(query)
        assert [entry.obj.oid for entry in ranked] == sorted(
            o.oid for o in db.objects
        ) or len(ranked) == 4
        assert all(entry.obj.oid != 1 for entry in ranked)
        top = scorer.top_k(make_query(keywords=("restaurant",), k=10))
        assert len(top.entries) == 4


class TestBatchSummary:
    def summary(self, mutable: MutableDatabase, mutations) -> BatchSummary:
        return mutable.apply(mutations).summary

    def test_removed_member_always_affects(self):
        db = make_tiny_db()
        mutable = MutableDatabase(db, model_code="jaccard")
        summary = self.summary(mutable, [Mutation.delete(0)])

        class Meta:
            loc = Point(0.1, 0.1)
            doc = frozenset({"restaurant"})
            ws = wt = 0.5
            kth_score = 0.4
            result_oids = frozenset({0, 1})
            full = True

        assert summary.affects_topk(Meta())
        Meta.result_oids = frozenset({1, 2})
        assert not summary.affects_topk(Meta())  # pure delete, not a member

    def test_distant_irrelevant_insert_does_not_affect(self):
        db = make_tiny_db()
        mutable = MutableDatabase(db, model_code="jaccard")
        summary = self.summary(
            mutable, [Mutation.insert(obj(50, 0.95, 0.95, "zzz"))]
        )

        class Meta:
            loc = Point(0.05, 0.05)
            doc = frozenset({"chinese"})
            ws = wt = 0.5
            kth_score = 0.45
            result_oids = frozenset({0, 1})
            full = True

        # Proximity bound: 1 − hypot(0.9, 0.9)/√2 ≈ 0.1; tsim bound 0
        # (no keyword overlap) → 0.5·0.1 < 0.45 ⇒ provably unaffected.
        assert not summary.affects_topk(Meta())
        # The same insert near the query must affect it.
        Meta.loc = Point(0.94, 0.94)
        assert summary.affects_topk(Meta())

    def test_partial_result_is_always_affected_by_inserts(self):
        db = make_tiny_db()
        mutable = MutableDatabase(db, model_code="jaccard")
        summary = self.summary(
            mutable, [Mutation.insert(obj(50, 0.95, 0.95, "zzz"))]
        )

        class Meta:
            loc = Point(0.05, 0.05)
            doc = frozenset({"chinese"})
            ws = wt = 0.5
            kth_score = 0.45
            result_oids = frozenset({0, 1})
            full = False

        assert summary.affects_topk(Meta())

    def test_unknown_model_code_is_conservative(self):
        db = make_tiny_db()
        mutable = MutableDatabase(db, model_code=None)
        summary = self.summary(
            mutable, [Mutation.insert(obj(50, 0.95, 0.95, "zzz"))]
        )

        class Meta:
            loc = Point(0.05, 0.05)
            doc = frozenset({"chinese"})
            ws = wt = 0.5
            kth_score = 0.99
            result_oids = frozenset({0})
            full = True

        assert summary.affects_topk(Meta())


class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = ReadWriteLock()
        order: list[str] = []
        entered = threading.Barrier(3)

        def reader():
            with lock.read():
                entered.wait(timeout=5)  # both readers inside together
                order.append("read")

        threads = [threading.Thread(target=reader) for _ in range(2)]
        with lock.read():  # main thread is the third concurrent reader
            for thread in threads:
                thread.start()
            entered.wait(timeout=5)
        for thread in threads:
            thread.join(timeout=5)
        assert order == ["read", "read"]

    def test_nested_read_on_one_thread(self):
        lock = ReadWriteLock()
        with lock.read():
            with lock.read():  # the why-not → top-k re-entry pattern
                pass

    def test_writer_waits_for_readers(self):
        lock = ReadWriteLock()
        wrote = threading.Event()
        release = threading.Event()
        seen: list[str] = []

        def reader():
            with lock.read():
                seen.append("reader")
                release.wait(timeout=5)

        def writer():
            with lock.write():
                seen.append("writer")
                wrote.set()

        r = threading.Thread(target=reader)
        r.start()
        while not seen:
            pass
        w = threading.Thread(target=writer)
        w.start()
        assert not wrote.wait(timeout=0.05)  # blocked behind the reader
        release.set()
        assert wrote.wait(timeout=5)
        r.join(timeout=5)
        w.join(timeout=5)
        assert seen == ["reader", "writer"]


class TestNoopBatchesAndPreCommit:
    """Regressions for the durability tier's sequential-semantics fix.

    A batch whose *net* effect is empty must not bump the generation
    (or notify anyone): the WAL never logs it, so replaying the log
    reproduces the exact generation sequence of the original run.
    """

    def make(self):
        db = make_tiny_db()
        return db, MutableDatabase(db, model_code="jaccard")

    def test_net_empty_batch_is_a_noop(self):
        db, mutable = self.make()
        before = db.objects
        change = mutable.apply([Mutation.insert(obj(9)), Mutation.delete(9)])
        assert change.is_noop
        assert change.generation == 0
        assert mutable.generation == 0
        assert db.objects == before
        # The per-op counts are still reported faithfully.
        assert change.inserted_count == 1
        assert change.deleted_count == 1
        # ...but the cumulative stats never saw a batch.
        assert mutable.stats.to_dict()["batches"] == 0

    def test_noop_batch_skips_listeners_and_pre_commit(self):
        _, mutable = self.make()
        calls: list = []

        class Listener:
            def apply_mutations(self, change):
                calls.append(("listener", change.generation))

        mutable.register_listener(Listener())
        mutable.apply(
            [Mutation.insert(obj(9)), Mutation.delete(9)],
            pre_commit=lambda gen, muts: calls.append(("pre_commit", gen)),
        )
        assert calls == []

    def test_generations_stay_contiguous_across_noops(self):
        _, mutable = self.make()
        mutable.apply([Mutation.insert(obj(9))])
        noop = mutable.apply([Mutation.insert(obj(10)), Mutation.delete(10)])
        real = mutable.apply([Mutation.insert(obj(11))])
        assert noop.generation == 1
        assert real.generation == 2  # no gap where the no-op sat

    def test_pre_commit_sees_the_next_generation(self):
        _, mutable = self.make()
        seen: list[int] = []
        mutable.apply(
            [Mutation.insert(obj(9))],
            pre_commit=lambda gen, muts: seen.append(gen),
        )
        assert seen == [1]
        assert mutable.generation == 1

    def test_pre_commit_failure_abandons_the_batch(self):
        db, mutable = self.make()
        before = db.objects

        def refuse(gen, muts):
            raise RuntimeError("log unavailable")

        with pytest.raises(RuntimeError, match="log unavailable"):
            mutable.apply([Mutation.insert(obj(9))], pre_commit=refuse)
        assert mutable.generation == 0
        assert db.objects == before
        assert mutable.stats.to_dict()["batches"] == 0

    def test_start_generation_resumes_a_snapshot(self):
        db = make_tiny_db()
        mutable = MutableDatabase(db, start_generation=7)
        assert mutable.generation == 7
        change = mutable.apply([Mutation.insert(obj(9))])
        assert change.generation == 8

    def test_negative_start_generation_rejected(self):
        with pytest.raises(ValueError):
            MutableDatabase(make_tiny_db(), start_generation=-1)
