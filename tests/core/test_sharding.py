"""Unit tests for :mod:`repro.core.sharding`.

The bit-for-bit parity of whole engines is covered by
``tests/properties/test_prop_sharding.py``; here the partitioners, the
shard summaries, the pruning bounds' *safety* (never below a true shard
maximum) and the router bookkeeping are pinned down directly.
"""

import math

import pytest

from repro.core.geometry import Point, Rect
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import SpatialKeywordQuery, Weights
from repro.core.scoring import Scorer
from repro.core.sharding import (
    PARTITIONERS,
    ShardRouter,
    ShardedKernel,
    grid_partition,
    round_robin_partition,
)
from repro.datasets.generators import SyntheticDatasetBuilder
from repro.text.similarity import (
    JACCARD,
    CosineTfIdfSimilarity,
    DiceSimilarity,
    OverlapSimilarity,
)

DICE = DiceSimilarity()
OVERLAP = OverlapSimilarity()


@pytest.fixture(scope="module")
def clustered_db() -> SpatialDatabase:
    return SyntheticDatasetBuilder(seed=5).build(
        400, vocabulary_size=40, doc_length=(2, 6),
        spatial="clustered", clusters=6,
    )


def assert_disjoint_cover(assignments, n):
    seen = set()
    for rows in assignments:
        assert rows, "no shard may be empty"
        assert rows == sorted(rows), "rows must ascend within a shard"
        assert not (seen & set(rows)), "shards must be disjoint"
        seen.update(rows)
    assert seen == set(range(n)), "shards must cover every row"


class TestPartitioners:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 5, 6, 8])
    def test_grid_is_a_balanced_disjoint_cover(self, clustered_db, shards):
        assignments = grid_partition(clustered_db, shards)
        assert len(assignments) == shards
        assert_disjoint_cover(assignments, len(clustered_db))
        sizes = sorted(len(rows) for rows in assignments)
        assert sizes[-1] - sizes[0] <= 2  # quantile tiles stay balanced

    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7])
    def test_round_robin_is_a_disjoint_cover(self, clustered_db, shards):
        assignments = round_robin_partition(clustered_db, shards)
        assert len(assignments) == shards
        assert_disjoint_cover(assignments, len(clustered_db))

    def test_more_shards_than_objects_clamps(self, tiny_db):
        assert len(grid_partition(tiny_db, 50)) == len(tiny_db)
        assert len(round_robin_partition(tiny_db, 50)) == len(tiny_db)

    def test_zero_shards_rejected(self, tiny_db):
        with pytest.raises(ValueError):
            grid_partition(tiny_db, 0)

    def test_grid_tiles_are_spatially_coherent(self, clustered_db):
        """Quantile tiles must not overlap in their split dimension."""
        assignments = grid_partition(clustered_db, 4)
        objects = clustered_db.objects
        xs = [
            sorted(objects[row].loc.x for row in rows)
            for rows in assignments
        ]
        # 4 = 2x2: the first two shards share an x-slice, the last two
        # the other; slices must not interleave in x.
        assert max(xs[0] + xs[1]) <= min(xs[2] + xs[3]) + 1e-12

    def test_registry_names(self):
        assert set(PARTITIONERS) == {"grid", "round-robin"}


class TestRouter:
    def test_shards_inherit_dataspace_and_normaliser(self, clustered_db):
        router = ShardRouter(clustered_db, shards=4, text_model=JACCARD)
        for shard in router.shards:
            assert shard.database.dataspace == clustered_db.dataspace
            assert (
                shard.database.distance_normaliser
                == clustered_db.distance_normaliser
            )

    def test_shard_summaries(self, clustered_db):
        router = ShardRouter(clustered_db, shards=3, text_model=JACCARD)
        masks = clustered_db.doc_masks
        for shard in router.shards:
            union = 0
            lengths = []
            for row in shard.rows:
                union |= masks[row]
                lengths.append(len(clustered_db.objects[row].doc))
                assert shard.mbr.contains_point(clustered_db.objects[row].loc)
            assert shard.vocab_mask == union
            assert shard.min_doc_len == min(lengths)
            assert shard.max_doc_len == max(lengths)

    def test_locate_round_trips(self, clustered_db):
        router = ShardRouter(clustered_db, shards=4, text_model=JACCARD)
        for row in range(len(clustered_db)):
            shard_index, local = router.locate(row)
            assert router.shards[shard_index].rows[local] == row

    def test_rejects_unknown_partitioner(self, clustered_db):
        with pytest.raises(ValueError, match="unknown partitioner"):
            ShardRouter(clustered_db, shards=2, partitioner="zorder",
                        text_model=JACCARD)

    def test_rejects_kernel_free_model(self, clustered_db):
        cosine = CosineTfIdfSimilarity(
            clustered_db.keyword_document_frequencies(), len(clustered_db)
        )
        with pytest.raises(ValueError, match="columnar kernel"):
            ShardRouter(clustered_db, shards=2, text_model=cosine)

    def test_rejects_bad_custom_partition(self, clustered_db):
        def overlapping(database, shards):
            rows = list(range(len(database)))
            return [rows, rows]

        with pytest.raises(ValueError, match="disjoint cover"):
            ShardRouter(clustered_db, shards=2, partitioner=overlapping,
                        text_model=JACCARD)

    def test_to_dict_shape(self, clustered_db):
        router = ShardRouter(clustered_db, shards=4, text_model=JACCARD)
        payload = router.to_dict()
        assert payload["count"] == 4
        assert payload["partitioner"] == "grid"
        assert sum(payload["objects"]) == len(clustered_db)
        assert payload["topk_searches"] == 0


class TestBoundSafety:
    """The static bounds must dominate every true shard value.

    Skips rest on these inequalities; a violation would silently break
    result parity, so they are pinned against brute-force maxima across
    models, partitioners and many random queries.
    """

    @pytest.mark.parametrize("model", [JACCARD, DICE, OVERLAP],
                             ids=["jaccard", "dice", "overlap"])
    @pytest.mark.parametrize("partitioner", ["grid", "round-robin"])
    def test_score_upper_bounds_dominate(
        self, clustered_db, model, partitioner
    ):
        router = ShardRouter(
            clustered_db, shards=5, partitioner=partitioner, text_model=model
        )
        scorer = Scorer(clustered_db, text_model=model, use_kernel=False)
        vocab = sorted(clustered_db.vocabulary())
        import random

        rng = random.Random(99)
        for trial in range(25):
            doc = frozenset(rng.sample(vocab, rng.randint(1, 4)))
            if trial % 5 == 0:
                doc |= {"never-seen-keyword"}
            query = SpatialKeywordQuery(
                loc=Point(rng.random(), rng.random()),
                doc=doc,
                k=3,
                weights=Weights.from_spatial(rng.uniform(0.05, 0.95)),
            )
            bounds = router.score_upper_bounds(query)
            for shard, bound in zip(router.shards, bounds):
                true_max = max(
                    scorer.score(obj, query) for obj in shard.database
                )
                assert bound >= true_max - 1e-12, (
                    f"unsafe bound for {model.name}: {bound} < {true_max}"
                )

    def test_proximity_bound_clamps_like_the_kernel(self):
        objects = [
            SpatialObject(0, Point(0.0, 0.0), frozenset({"a"})),
            SpatialObject(1, Point(0.1, 0.1), frozenset({"b"})),
        ]
        db = SpatialDatabase(objects, dataspace=Rect(0.0, 0.0, 0.2, 0.2))
        router = ShardRouter(db, shards=1, text_model=JACCARD)
        # A query far outside the dataspace: SDist clamps at 1, so the
        # proximity bound must clamp to 0, never go negative.
        bound = router.shards[0].proximity_upper_bound(
            50.0, 50.0, db.distance_normaliser
        )
        assert bound == 0.0


class TestShardedKernel:
    def test_maybe_build_falls_back_without_router(self, clustered_db):
        kernel = ShardedKernel.maybe_build(clustered_db, JACCARD, None)
        assert kernel is not None and not isinstance(kernel, ShardedKernel)

    def test_maybe_build_none_for_unsupported_model(self, clustered_db):
        model = CosineTfIdfSimilarity(
            clustered_db.keyword_document_frequencies(), len(clustered_db)
        )
        assert ShardedKernel.maybe_build(clustered_db, model, None) is None

    def test_router_database_mismatch_rejected(self, clustered_db, small_db):
        router = ShardRouter(small_db, shards=2, text_model=JACCARD)
        with pytest.raises(ValueError, match="same database"):
            ShardedKernel(clustered_db, JACCARD, router)

    def test_proximity_column_is_database_ordered(self, clustered_db):
        router = ShardRouter(clustered_db, shards=4, text_model=JACCARD)
        sharded = Scorer(clustered_db, shard_router=router)
        plain = Scorer(clustered_db)
        keyword = sorted(clustered_db.vocabulary())[0]
        query = SpatialKeywordQuery(
            loc=Point(0.4, 0.6), doc=frozenset({keyword}), k=2
        )
        column = sharded.kernel.proximities(query)
        assert list(column) == plain.kernel.proximities(query)
        assert len(column.shard_slices) == 4
        for piece, top in zip(column.shard_slices, column.shard_maxima):
            assert top == max(piece)

    def test_skip_counters_move(self, clustered_db):
        router = ShardRouter(clustered_db, shards=4, text_model=JACCARD)
        scorer = Scorer(clustered_db, shard_router=router)
        vocab = sorted(clustered_db.vocabulary())
        query = SpatialKeywordQuery(
            loc=Point(0.1, 0.1), doc=frozenset(vocab[:2]), k=3,
            weights=Weights.from_spatial(0.9),
        )
        target = clustered_db.objects[0]
        scorer.rank_of(target, query)
        stats = router.stats.to_dict()
        assert stats["count_passes"] == 1
        assert (
            stats["count_shards_scanned"] + stats["count_shards_skipped"] == 4
        )
