"""Unit tests for :mod:`repro.core.query` (Weights, queries, results)."""

import math

import pytest

from repro.core.geometry import Point
from repro.core.objects import SpatialObject
from repro.core.query import (
    DEFAULT_WEIGHTS,
    QueryResult,
    RankedObject,
    SpatialKeywordQuery,
    Weights,
)


class TestWeights:
    def test_valid_interior_weights(self):
        w = Weights(0.3, 0.7)
        assert w.ws == 0.3 and w.wt == 0.7

    @pytest.mark.parametrize("ws,wt", [(0.0, 1.0), (1.0, 0.0), (-0.1, 1.1), (1.1, -0.1)])
    def test_boundary_and_outside_rejected(self, ws, wt):
        with pytest.raises(ValueError):
            Weights(ws, wt)

    def test_sum_must_be_one(self):
        with pytest.raises(ValueError):
            Weights(0.4, 0.4)

    def test_from_spatial(self):
        w = Weights.from_spatial(0.25)
        assert w.ws == 0.25
        assert w.wt == 0.75

    def test_balanced_is_paper_default(self):
        assert Weights.balanced() == DEFAULT_WEIGHTS == Weights(0.5, 0.5)

    def test_distance_is_l2(self):
        a, b = Weights.from_spatial(0.2), Weights.from_spatial(0.6)
        # Both components move by 0.4 in opposite directions.
        assert a.distance_to(b) == pytest.approx(0.4 * math.sqrt(2))

    def test_distance_symmetric_and_zero_on_self(self):
        a, b = Weights.from_spatial(0.3), Weights.from_spatial(0.8)
        assert a.distance_to(b) == b.distance_to(a)
        assert a.distance_to(a) == 0.0

    def test_penalty_normaliser_formula(self):
        w = Weights(0.5, 0.5)
        assert w.penalty_normaliser == pytest.approx(math.sqrt(1.5))

    def test_penalty_normaliser_bounds_any_weight_change(self):
        # Eqn. (3): Δw is provably ≤ sqrt(1 + ws² + wt²); check over a grid.
        base = Weights.from_spatial(0.5)
        for ws in (0.01, 0.25, 0.5, 0.75, 0.99):
            other = Weights.from_spatial(ws)
            assert base.distance_to(other) <= base.penalty_normaliser

    def test_iteration_and_tuple(self):
        assert tuple(Weights(0.4, 0.6)) == (0.4, 0.6)
        assert Weights(0.4, 0.6).as_tuple() == (0.4, 0.6)


class TestSpatialKeywordQuery:
    def test_construction_and_accessors(self):
        q = SpatialKeywordQuery(Point(1, 2), frozenset({"a"}), 3, Weights(0.6, 0.4))
        assert q.ws == 0.6 and q.wt == 0.4
        assert q.k == 3

    def test_doc_coercion(self):
        q = SpatialKeywordQuery(Point(0, 0), {"a", "b"}, 1)
        assert isinstance(q.doc, frozenset)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            SpatialKeywordQuery(Point(0, 0), frozenset({"a"}), 0)

    def test_empty_doc_rejected(self):
        with pytest.raises(ValueError):
            SpatialKeywordQuery(Point(0, 0), frozenset(), 1)

    def test_with_k_with_weights_with_doc_are_copies(self):
        q = SpatialKeywordQuery(Point(0, 0), frozenset({"a"}), 1)
        q2 = q.with_k(5)
        q3 = q.with_weights(Weights.from_spatial(0.9))
        q4 = q.with_doc({"x", "y"})
        assert q.k == 1 and q2.k == 5
        assert q3.ws == 0.9 and q.ws == 0.5
        assert q4.doc == frozenset({"x", "y"}) and q.doc == frozenset({"a"})

    def test_describe_mentions_parameters(self):
        q = SpatialKeywordQuery(Point(0.5, 0.25), frozenset({"b", "a"}), 7)
        text = q.describe()
        assert "top-7" in text and "[a, b]" in text


def _entry(oid, score, rank):
    o = SpatialObject(oid, Point(0, 0), frozenset({"a"}))
    return RankedObject(obj=o, score=score, sdist=0.0, tsim=0.0, rank=rank)


class TestQueryResult:
    def _query(self, k=3):
        return SpatialKeywordQuery(Point(0, 0), frozenset({"a"}), k)

    def test_entries_must_be_rank_ordered(self):
        with pytest.raises(ValueError):
            QueryResult(self._query(), [_entry(0, 1.0, 2)])

    def test_accessors(self):
        entries = [_entry(4, 0.9, 1), _entry(2, 0.8, 2)]
        result = QueryResult(self._query(), entries)
        assert len(result) == 2
        assert result[0].obj.oid == 4
        assert result.objects[1].oid == 2
        assert result.object_ids == frozenset({2, 4})
        assert [e.rank for e in result] == [1, 2]

    def test_contains_by_oid_and_object(self):
        result = QueryResult(self._query(), [_entry(4, 0.9, 1)])
        assert result.contains(4)
        assert result.contains(SpatialObject(4, Point(0, 0), frozenset({"a"})))
        assert not result.contains(5)

    def test_kth_score(self):
        result = QueryResult(self._query(), [_entry(0, 0.9, 1), _entry(1, 0.7, 2)])
        assert result.kth_score == 0.7

    def test_kth_score_empty(self):
        result = QueryResult(self._query(), [])
        assert result.kth_score == -math.inf

    def test_sort_key_orders_by_score_then_oid(self):
        high = _entry(9, 0.9, 1)
        tied_small = _entry(1, 0.5, 1)
        tied_large = _entry(2, 0.5, 1)
        assert high.sort_key < tied_small.sort_key < tied_large.sort_key
