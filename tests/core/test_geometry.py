"""Unit tests for :mod:`repro.core.geometry`."""

import math

import pytest

from repro.core.geometry import Point, Rect


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-0.5, 7.25)
        assert a.distance_to(b) == b.distance_to(a)

    def test_distance_to_self_is_zero(self):
        p = Point(2.5, 3.5)
        assert p.distance_to(p) == 0.0

    def test_squared_distance_matches_distance(self):
        a, b = Point(1, 2), Point(4, 6)
        assert a.squared_distance_to(b) == pytest.approx(a.distance_to(b) ** 2)

    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_distance_to(Point(3, -4)) == 7.0

    def test_translated(self):
        assert Point(1, 2).translated(0.5, -1.0) == Point(1.5, 1.0)

    def test_as_tuple_and_iter(self):
        p = Point(1.0, 2.0)
        assert p.as_tuple() == (1.0, 2.0)
        assert tuple(p) == (1.0, 2.0)

    def test_points_are_hashable_value_objects(self):
        assert Point(1, 2) == Point(1, 2)
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2


class TestRectConstruction:
    def test_degenerate_rect_rejected(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            Rect(0.0, 1.0, 1.0, 0.0)

    def test_point_rect_allowed(self):
        rect = Rect(1.0, 2.0, 1.0, 2.0)
        assert rect.area == 0.0
        assert rect.diagonal == 0.0

    def test_from_point(self):
        rect = Rect.from_point(Point(3, 4))
        assert rect.as_tuple() == (3, 4, 3, 4)

    def test_from_points(self):
        rect = Rect.from_points([Point(1, 5), Point(3, 2), Point(-1, 4)])
        assert rect.as_tuple() == (-1, 2, 3, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.from_points([])

    def test_union_all(self):
        rect = Rect.union_all([Rect(0, 0, 1, 1), Rect(2, -1, 3, 0.5)])
        assert rect.as_tuple() == (0, -1, 3, 1)

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.union_all([])


class TestRectMeasures:
    def test_width_height_area_perimeter(self):
        rect = Rect(1, 2, 4, 8)
        assert rect.width == 3
        assert rect.height == 6
        assert rect.area == 18
        assert rect.perimeter == 18

    def test_diagonal(self):
        assert Rect(0, 0, 3, 4).diagonal == 5.0

    def test_center(self):
        assert Rect(0, 0, 4, 2).center == Point(2, 1)

    def test_corners(self):
        corners = Rect(0, 0, 1, 2).corners()
        assert corners == (Point(0, 0), Point(1, 0), Point(1, 2), Point(0, 2))


class TestRectPredicates:
    def test_contains_point_inside_and_boundary(self):
        rect = Rect(0, 0, 2, 2)
        assert rect.contains_point(Point(1, 1))
        assert rect.contains_point(Point(0, 0))
        assert rect.contains_point(Point(2, 2))
        assert not rect.contains_point(Point(2.1, 1))

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains_rect(Rect(1, 1, 9, 9))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(5, 5, 11, 9))

    def test_intersects(self):
        a = Rect(0, 0, 2, 2)
        assert a.intersects(Rect(1, 1, 3, 3))
        assert a.intersects(Rect(2, 2, 3, 3))  # corner touch
        assert not a.intersects(Rect(3, 3, 4, 4))

    def test_intersects_is_symmetric(self):
        a, b = Rect(0, 0, 2, 2), Rect(1.5, -1, 5, 0.5)
        assert a.intersects(b) == b.intersects(a)


class TestRectCombination:
    def test_union(self):
        assert Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3)).as_tuple() == (0, 0, 3, 3)

    def test_union_point(self):
        assert Rect(0, 0, 1, 1).union_point(Point(-1, 2)).as_tuple() == (-1, 0, 1, 2)

    def test_intersection_overlap(self):
        overlap = Rect(0, 0, 2, 2).intersection(Rect(1, 1, 3, 3))
        assert overlap is not None
        assert overlap.as_tuple() == (1, 1, 2, 2)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_enlargement(self):
        base = Rect(0, 0, 2, 2)
        assert base.enlargement(Rect(1, 1, 2, 2)) == 0.0
        assert base.enlargement(Rect(0, 0, 4, 2)) == pytest.approx(4.0)

    def test_expanded(self):
        assert Rect(0, 0, 1, 1).expanded(0.5).as_tuple() == (-0.5, -0.5, 1.5, 1.5)

    def test_expanded_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).expanded(-0.1)


class TestRectDistances:
    def test_min_distance_inside_is_zero(self):
        assert Rect(0, 0, 2, 2).min_distance_to_point(Point(1, 1)) == 0.0

    def test_min_distance_axis_aligned(self):
        assert Rect(0, 0, 2, 2).min_distance_to_point(Point(5, 1)) == 3.0
        assert Rect(0, 0, 2, 2).min_distance_to_point(Point(1, -2)) == 2.0

    def test_min_distance_corner(self):
        assert Rect(0, 0, 2, 2).min_distance_to_point(Point(5, 6)) == 5.0

    def test_max_distance_reaches_far_corner(self):
        rect = Rect(0, 0, 2, 2)
        assert rect.max_distance_to_point(Point(0, 0)) == pytest.approx(math.hypot(2, 2))
        assert rect.max_distance_to_point(Point(1, 1)) == pytest.approx(math.hypot(1, 1))

    def test_min_le_max_everywhere(self):
        rect = Rect(-1, -2, 3, 4)
        for point in (Point(0, 0), Point(10, 10), Point(-5, 1), Point(3, 4)):
            assert rect.min_distance_to_point(point) <= rect.max_distance_to_point(point)

    def test_distance_bounds_bracket_member_points(self):
        rect = Rect(0, 0, 4, 4)
        query = Point(7, -3)
        for member in (Point(0, 0), Point(4, 4), Point(2, 1), Point(3.9, 0.1)):
            distance = query.distance_to(member)
            assert rect.min_distance_to_point(query) <= distance + 1e-12
            assert distance <= rect.max_distance_to_point(query) + 1e-12
