"""Property-based tests for the penalty functions (Eqns. 3 and 4)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Point
from repro.core.objects import SpatialObject
from repro.core.query import SpatialKeywordQuery, Weights
from repro.whynot.penalty import KeywordPenalty, PreferencePenalty

from tests.properties.strategies import ALPHABET

lams = st.floats(min_value=0.0, max_value=1.0)
ws_values = st.floats(min_value=0.05, max_value=0.95)
query_docs = st.sets(st.sampled_from(ALPHABET), min_size=1, max_size=4)
missing_docs = st.lists(
    st.sets(st.sampled_from(ALPHABET), min_size=1, max_size=6),
    min_size=1,
    max_size=3,
)


@st.composite
def preference_setups(draw):
    k = draw(st.integers(min_value=1, max_value=10))
    worst = draw(st.integers(min_value=k + 1, max_value=k + 50))
    query = SpatialKeywordQuery(
        Point(0, 0), frozenset(draw(query_docs)), k,
        Weights.from_spatial(draw(ws_values)),
    )
    return query, worst, draw(lams)


@settings(max_examples=100, deadline=None)
@given(preference_setups(), ws_values, st.integers(min_value=1, max_value=80))
def test_preference_penalty_unit_range_when_rank_improves(setup, refined_ws, rank):
    query, worst, lam = setup
    penalty = PreferencePenalty(query, worst, lam)
    if rank <= worst:  # Δk never exceeds its normaliser for such ranks
        value = penalty(rank, Weights.from_spatial(refined_ws))
        assert 0.0 <= value <= 1.0 + 1e-9


@settings(max_examples=100, deadline=None)
@given(preference_setups(), ws_values)
def test_preference_penalty_monotone_in_rank(setup, refined_ws):
    query, worst, lam = setup
    penalty = PreferencePenalty(query, worst, lam)
    weights = Weights.from_spatial(refined_ws)
    values = [penalty(rank, weights) for rank in range(1, worst + 5)]
    assert values == sorted(values)


@settings(max_examples=100, deadline=None)
@given(preference_setups())
def test_preference_penalty_monotone_in_weight_distance(setup):
    query, worst, lam = setup
    penalty = PreferencePenalty(query, worst, lam)
    base = query.ws
    # Walk away from the initial weight on one side.
    steps = [w for w in (base, base + 0.01, base + 0.02, base + 0.04) if w < 1.0]
    values = [penalty(worst, Weights.from_spatial(w)) for w in steps]
    assert values == sorted(values)


@st.composite
def keyword_setups(draw):
    k = draw(st.integers(min_value=1, max_value=10))
    worst = draw(st.integers(min_value=k + 1, max_value=k + 50))
    query = SpatialKeywordQuery(
        Point(0, 0), frozenset(draw(query_docs)), k,
    )
    missing = [
        SpatialObject(oid, Point(0.5, 0.5), frozenset(doc))
        for oid, doc in enumerate(draw(missing_docs))
    ]
    return query, missing, worst, draw(lams)


@settings(max_examples=100, deadline=None)
@given(keyword_setups(), st.sets(st.sampled_from(ALPHABET), min_size=1, max_size=6))
def test_keyword_penalty_unit_range_for_in_space_candidates(setup, candidate):
    query, missing, worst, lam = setup
    penalty = KeywordPenalty(query, missing, worst, lam=lam)
    candidate_set = frozenset(candidate) & (
        query.doc | penalty.missing_doc
    )
    if not candidate_set:
        return
    for rank in (1, query.k, worst):
        value = penalty(rank, candidate_set)
        assert 0.0 <= value <= 1.0 + 1e-9


@settings(max_examples=100, deadline=None)
@given(keyword_setups())
def test_keyword_penalty_monotone_in_edits(setup):
    query, missing, worst, lam = setup
    penalty = KeywordPenalty(query, missing, worst, lam=lam)
    values = [penalty.modification_term_for_edits(e) for e in range(6)]
    assert values == sorted(values)


@settings(max_examples=100, deadline=None)
@given(keyword_setups())
def test_keyword_delta_doc_symmetric_difference(setup):
    query, missing, worst, lam = setup
    penalty = KeywordPenalty(query, missing, worst, lam=lam)
    for candidate in (query.doc, penalty.missing_doc, query.doc | penalty.missing_doc):
        if candidate:
            assert penalty.delta_doc(candidate) == len(query.doc ^ candidate)
