"""Property-based tests for both why-not refinement models.

The why-not scenario is drawn adversarially by hypothesis: any database,
any query, any choice of missing objects outside the result.  Both
models must (a) revive every missing object and (b) never be beaten by
their baseline (sampling / exhaustive enumeration).
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.scoring import Scorer
from repro.core.topk import BruteForceTopK
from repro.index.kcrtree import KcRTree
from repro.whynot.baselines import SamplingPreferenceAdjuster, exhaustive_keyword_adapter
from repro.whynot.keyword import KeywordAdapter
from repro.whynot.preference import PreferenceAdjuster

from tests.properties.strategies import databases_with_queries


@st.composite
def whynot_cases(draw):
    """(database, query, missing objects, λ) with genuinely missing M."""
    database, query = draw(databases_with_queries(min_size=8, max_size=30))
    scorer = Scorer(database)
    ranking = scorer.rank_all(query)
    outside = ranking[query.k :]
    assume(len(outside) >= 1)
    missing_count = draw(st.integers(min_value=1, max_value=min(2, len(outside))))
    indexes = draw(
        st.lists(
            st.integers(min_value=0, max_value=len(outside) - 1),
            min_size=missing_count,
            max_size=missing_count,
            unique=True,
        )
    )
    missing = [outside[i].obj for i in indexes]
    lam = draw(st.sampled_from([0.1, 0.5, 0.9]))
    return database, scorer, query, missing, lam


@settings(max_examples=40, deadline=None)
@given(whynot_cases())
def test_preference_refinement_revives_and_dominates_sampling(case):
    database, scorer, query, missing, lam = case
    adjuster = PreferenceAdjuster(scorer)
    refinement = adjuster.refine(query, missing, lam=lam)

    result = BruteForceTopK(scorer).search(refinement.refined_query)
    assert all(result.contains(m) for m in missing)

    sampler = SamplingPreferenceAdjuster(scorer, samples=60)
    sampled = sampler.refine(query, missing, lam=lam)
    assert refinement.penalty <= sampled.penalty + 1e-9

    # Penalty can never exceed the pure-k-enlargement fallback.
    assert refinement.penalty <= lam + 1e-12


@settings(max_examples=30, deadline=None)
@given(whynot_cases())
def test_keyword_adaption_revives_and_matches_exhaustive(case):
    database, scorer, query, missing, lam = case
    tree = KcRTree.build(database, max_entries=4)
    adapter = KeywordAdapter(scorer, tree)
    refinement = adapter.refine(query, missing, lam=lam)

    result = BruteForceTopK(scorer).search(refinement.refined_query)
    assert all(result.contains(m) for m in missing)

    exhaustive = exhaustive_keyword_adapter(scorer, tree).refine(
        query, missing, lam=lam
    )
    assert abs(refinement.penalty - exhaustive.penalty) <= 1e-12
    assert refinement.refined_query.doc == exhaustive.refined_query.doc

    assert refinement.penalty <= lam + 1e-12


@settings(max_examples=30, deadline=None)
@given(whynot_cases())
def test_reported_worst_rank_is_exact(case):
    database, scorer, query, missing, lam = case
    adjuster = PreferenceAdjuster(scorer)
    refinement = adjuster.refine(query, missing, lam=lam)
    assert refinement.refined_worst_rank == scorer.worst_rank(
        missing, refinement.refined_query
    )


@settings(max_examples=25, deadline=None)
@given(whynot_cases())
def test_combined_refinement_revives(case):
    from repro.whynot.combined import CombinedRefiner

    database, scorer, query, missing, lam = case
    tree = KcRTree.build(database, max_entries=4)
    refiner = CombinedRefiner(
        scorer, PreferenceAdjuster(scorer), KeywordAdapter(scorer, tree)
    )
    refinement = refiner.refine(query, missing, lam=lam)
    result = BruteForceTopK(scorer).search(refinement.refined_query)
    assert all(result.contains(m) for m in missing)
    assert 0.0 <= refinement.penalty <= 1.0 + 1e-9


@settings(max_examples=25, deadline=None)
@given(whynot_cases())
def test_viable_intervals_consistent_with_oracle(case):
    from repro.core.query import Weights

    database, scorer, query, missing, lam = case
    adjuster = PreferenceAdjuster(scorer)
    intervals = adjuster.viable_weight_intervals(query, missing[0])
    for lo, hi in intervals:
        if hi - lo < 1e-9:
            continue
        mid = (lo + hi) / 2.0
        refined = query.with_weights(Weights.from_spatial(mid))
        assert scorer.rank_of(missing[0], refined) <= query.k
