"""Shared hypothesis strategies for the property-based test suite."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.geometry import Point, Rect
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import SpatialKeywordQuery, Weights

#: A compact keyword alphabet keeps intersections/unions non-trivial.
ALPHABET = [f"t{i}" for i in range(12)]

coordinates = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)

points = st.builds(Point, coordinates, coordinates)

docs = st.sets(st.sampled_from(ALPHABET), min_size=1, max_size=6).map(frozenset)


@st.composite
def databases(draw, min_size: int = 2, max_size: int = 40) -> SpatialDatabase:
    """A random database over the unit square with alphabet keywords."""
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    objects = []
    for oid in range(size):
        objects.append(
            SpatialObject(oid=oid, loc=draw(points), doc=draw(docs))
        )
    return SpatialDatabase(objects, dataspace=Rect(0.0, 0.0, 1.0, 1.0))


@st.composite
def queries(draw, k_max: int = 10) -> SpatialKeywordQuery:
    """A random query over the same alphabet and unit square."""
    doc = draw(st.sets(st.sampled_from(ALPHABET), min_size=1, max_size=4))
    ws = draw(st.floats(min_value=0.05, max_value=0.95))
    return SpatialKeywordQuery(
        loc=draw(points),
        doc=frozenset(doc),
        k=draw(st.integers(min_value=1, max_value=k_max)),
        weights=Weights.from_spatial(ws),
    )


@st.composite
def databases_with_queries(draw, min_size: int = 2, max_size: int = 40):
    return draw(databases(min_size=min_size, max_size=max_size)), draw(queries())
