"""Property suite: answer maintenance serves bit-for-bit cold answers.

The patch-on-write contract (:meth:`QueryExecutor.maintain`): after ANY
mutation history, every cached top-k result the maintenance pass kept or
patched — and every why-not answer it repaired — must be *bit-for-bit*
the answer a cold rescan of the post-mutation engine produces: same
objects, same score/sdist/tsim floats, same tie order, same ranks,
counts and viable-weight intervals.  Across skyband widths Δ (including
Δ=0), across the unsharded kernel engine, the sharded thread scatter and
the process worker pool — maintenance arithmetic never sees engine
internals, so the scatter shape must be undetectable.

The slow hammer at the bottom adds the concurrency half: readers racing
a mutator must only ever observe *some* generation's exact answer —
never a torn skyband mixing two generations.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.geometry import Point, Rect
from repro.core.mutations import Mutation
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.service.api import YaskEngine
from repro.service.executor import QueryExecutor, WhyNotExecutor, WhyNotQuestion
from tests.properties.strategies import ALPHABET, databases, queries

FRESH_WORDS = [f"fresh{i}" for i in range(4)]

coordinates = st.floats(
    min_value=-0.2, max_value=1.2, allow_nan=False, allow_infinity=False
)
mutation_docs = st.sets(
    st.sampled_from(ALPHABET + FRESH_WORDS), min_size=1, max_size=5
).map(frozenset)


def draw_batches(draw, database: SpatialDatabase) -> list[list[Mutation]]:
    """1-3 batches of 1-5 valid mutations against the live id set."""
    live = {obj.oid for obj in database.objects}
    next_oid = max(live) + 1
    batches: list[list[Mutation]] = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        batch: list[Mutation] = []
        for _ in range(draw(st.integers(min_value=1, max_value=5))):
            kind = draw(
                st.sampled_from(["insert", "insert", "update", "delete"])
            )
            if kind == "insert" or len(live) <= 2:
                obj = SpatialObject(
                    next_oid,
                    Point(draw(coordinates), draw(coordinates)),
                    draw(mutation_docs),
                )
                next_oid += 1
                live.add(obj.oid)
                batch.append(Mutation.insert(obj))
            elif kind == "update":
                oid = draw(st.sampled_from(sorted(live)))
                batch.append(
                    Mutation.update(
                        SpatialObject(
                            oid,
                            Point(draw(coordinates), draw(coordinates)),
                            draw(mutation_docs),
                        )
                    )
                )
            else:
                oid = draw(st.sampled_from(sorted(live)))
                live.discard(oid)
                batch.append(Mutation.delete(oid))
        if batch:
            batches.append(batch)
    return batches


def entry_tuple(entry):
    return (entry.obj.oid, entry.score, entry.sdist, entry.tsim, entry.rank)


def result_tuples(result):
    return tuple(entry_tuple(entry) for entry in result.entries)


@st.composite
def skyband_scenarios(draw):
    database = draw(databases(min_size=4, max_size=24))
    query_set = draw(
        st.lists(queries(k_max=5), min_size=1, max_size=4)
    )
    delta = draw(st.integers(min_value=0, max_value=4))
    return database, query_set, delta


def run_maintenance_history(engine, query_set, delta, data) -> None:
    """Cache, mutate+maintain per batch, then assert cold parity."""
    executor = QueryExecutor(engine, cache_capacity=64, skyband_delta=delta)
    whynot = WhyNotExecutor(engine, executor, cache_capacity=32)
    try:
        for query in query_set:
            executor.execute(query)
        # Cache why-not answers for objects outside each query's result
        # (explain exercises rank repair, preference the dominance keep).
        questions = []
        for query in query_set:
            result = engine.query(query)
            in_result = {entry.obj.oid for entry in result.entries}
            outside = [
                obj.oid
                for obj in engine.database.objects
                if obj.oid not in in_result
            ]
            if not outside:
                continue
            for model in ("explain", "preference"):
                question = WhyNotQuestion(
                    query=query, missing=(outside[-1],), model=model
                )
                whynot.execute(question)
                questions.append(question)

        for batch in draw_batches(data.draw, engine.database):
            report = engine.apply_mutations(batch)
            executor.maintain(report.change)

            for query in query_set:
                warm = executor.execute(query)
                cold = engine.query(query)
                assert result_tuples(warm.result) == result_tuples(cold)

            live_oids = {obj.oid for obj in engine.database.objects}
            for question in questions:
                missing_oid = question.missing[0]
                if missing_oid not in live_oids:
                    continue
                initial = engine.query(question.query)
                if missing_oid in {e.obj.oid for e in initial.entries}:
                    continue  # no longer missing: the question is moot
                warm_answer = whynot.execute(question).answer
                cold_answer = engine.answer_whynot(question)
                assert warm_answer == cold_answer
    finally:
        whynot.close()
        executor.close()
        engine.close()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(scenario=skyband_scenarios(), data=st.data())
def test_maintained_answers_match_cold_rescan_unsharded(scenario, data):
    database, query_set, delta = scenario
    engine = YaskEngine(
        SpatialDatabase(database.objects, dataspace=database.dataspace),
        max_entries=4,
    )
    run_maintenance_history(engine, query_set, delta, data)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(scenario=skyband_scenarios(), data=st.data())
def test_maintained_answers_match_cold_rescan_sharded_threads(scenario, data):
    database, query_set, delta = scenario
    engine = YaskEngine(
        SpatialDatabase(database.objects, dataspace=database.dataspace),
        max_entries=4,
        shards=3,
        shard_workers=2,
    )
    run_maintenance_history(engine, query_set, delta, data)


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(scenario=skyband_scenarios(), data=st.data())
def test_maintained_answers_match_cold_rescan_proc_workers(scenario, data):
    database, query_set, delta = scenario
    engine = YaskEngine(
        SpatialDatabase(database.objects, dataspace=database.dataspace),
        max_entries=4,
        shards=2,
        shard_workers="proc",
    )
    run_maintenance_history(engine, query_set, delta, data)


def test_underflow_falls_back_to_rescan_and_recovers():
    """Deleting past the skyband evicts (rescan) — never serves short."""
    objects = [
        SpatialObject(i, Point(0.1 * i, 0.1 * i), frozenset({"t0", "t1"}))
        for i in range(8)
    ]
    engine = YaskEngine(
        SpatialDatabase(objects, dataspace=Rect(0.0, 0.0, 1.0, 1.0)),
        max_entries=4,
    )
    executor = QueryExecutor(engine, cache_capacity=8, skyband_delta=1)
    from repro.core.query import SpatialKeywordQuery

    query = SpatialKeywordQuery(
        loc=Point(0.0, 0.0), doc=frozenset({"t0"}), k=3
    )
    executor.execute(query)
    members = [entry.obj.oid for entry in engine.query(query).entries]
    # Delete two members: k+Δ = 4-entry buffer drops to 2 < k = 3.
    report = engine.apply_mutations(
        [Mutation.delete(members[0]), Mutation.delete(members[1])]
    )
    tally = executor.maintain(report.change)
    assert tally["rescans"] == 1
    assert executor.stats().skyband_rescans == 1
    refreshed = executor.execute(query)
    assert refreshed.source == "engine"
    assert result_tuples(refreshed.result) == result_tuples(
        engine.query(query)
    )
    executor.close()
    engine.close()


def test_delta_zero_degrades_to_scoped_drop_on_write():
    """``skyband_delta=0`` is a true ablation: maintain() never patches."""
    objects = [
        SpatialObject(i, Point(0.1 * i, 0.1 * i), frozenset({"t0", "t1"}))
        for i in range(8)
    ]
    engine = YaskEngine(
        SpatialDatabase(objects, dataspace=Rect(0.0, 0.0, 1.0, 1.0)),
        max_entries=4,
    )
    executor = QueryExecutor(engine, cache_capacity=8, skyband_delta=0)
    from repro.core.query import SpatialKeywordQuery

    query = SpatialKeywordQuery(
        loc=Point(0.0, 0.0), doc=frozenset({"t0"}), k=3
    )
    executor.execute(query)
    # An insert landing on the query: drop-on-write must evict, the
    # maintained path would have patched.
    report = engine.apply_mutations(
        [
            Mutation.insert(
                SpatialObject(900, Point(0.0, 0.0), frozenset({"t0"}))
            )
        ]
    )
    tally = executor.maintain(report.change)
    assert tally["patched"] == 0 and tally["rescans"] == 0
    assert tally["dropped"] == 1
    stats = executor.stats()
    assert stats.scoped_invalidations == 1
    assert stats.maintenance_passes == 0
    assert stats.maintained_patched == 0
    refreshed = executor.execute(query)
    assert refreshed.source == "engine"
    assert result_tuples(refreshed.result) == result_tuples(
        engine.query(query)
    )
    executor.close()
    engine.close()


@pytest.mark.slow
def test_mutate_while_querying_never_serves_torn_skyband():
    """Readers racing the mutator only ever see whole-generation answers.

    A torn skyband — an entry mixing pre- and post-batch members or
    floats — would produce a served result matching *no* generation's
    cold answer.  The validation set holds every generation's exact
    answer per query; each concurrent read must hit the set.
    """
    import random

    rng = random.Random(20160830)
    objects = [
        SpatialObject(
            oid,
            Point(rng.random(), rng.random()),
            frozenset(rng.sample(ALPHABET, 3)),
        )
        for oid in range(60)
    ]
    from repro.core.query import SpatialKeywordQuery

    engine = YaskEngine(
        SpatialDatabase(objects, dataspace=Rect(0.0, 0.0, 1.0, 1.0)),
        max_entries=8,
    )
    executor = QueryExecutor(engine, cache_capacity=16, skyband_delta=3)
    query_set = [
        SpatialKeywordQuery(
            loc=Point(rng.random(), rng.random()),
            doc=frozenset(rng.sample(ALPHABET, 2)),
            k=5,
        )
        for _ in range(4)
    ]
    valid: dict[int, set[tuple]] = {}
    valid_lock = threading.Lock()
    for index, query in enumerate(query_set):
        executor.execute(query)
        valid[index] = {result_tuples(engine.query(query))}

    violations: list[tuple] = []
    stop = threading.Event()

    def reader() -> None:
        local_rng = random.Random(threading.get_ident())
        while not stop.is_set():
            index = local_rng.randrange(len(query_set))
            served = result_tuples(executor.execute(query_set[index]).result)
            with valid_lock:
                known = set(valid[index])
            if served not in known:
                # Re-check against the freshest set: the mutator may
                # have registered the new generation after our read.
                with valid_lock:
                    known = set(valid[index])
                if served not in known:
                    violations.append((index, served))

    readers = [threading.Thread(target=reader) for _ in range(3)]
    for thread in readers:
        thread.start()

    next_oid = 1000
    try:
        for _ in range(12):
            batch = []
            for _ in range(3):
                if rng.random() < 0.6:
                    batch.append(
                        Mutation.insert(
                            SpatialObject(
                                next_oid,
                                Point(rng.random(), rng.random()),
                                frozenset(rng.sample(ALPHABET, 3)),
                            )
                        )
                    )
                    next_oid += 1
                else:
                    live = [obj.oid for obj in engine.database.objects]
                    batch.append(Mutation.delete(rng.choice(live)))
            report = engine.apply_mutations(batch)
            # Register the new generation's exact answers BEFORE
            # maintenance patches entries to it: a reader observing a
            # freshly patched entry must already find it valid.
            with valid_lock:
                for index, query in enumerate(query_set):
                    valid[index].add(result_tuples(engine.query(query)))
            executor.maintain(report.change)
    finally:
        stop.set()
        for thread in readers:
            thread.join()
        executor.close()
        engine.close()

    assert not violations, f"torn results observed: {violations[:3]}"
