"""Property-based tests: index summaries stay exact under arbitrary churn.

The SetR-tree and KcR-tree summaries are the foundation of every bound
in the system; these tests subject the maintenance code (insert, split,
delete, condense, re-insert) to hypothesis-generated operation sequences
and verify every node's summary against a from-scratch recomputation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Rect
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.index.kcrtree import KcRTree, KcSummary
from repro.index.setrtree import SetRTree, SetSummary

from tests.properties.strategies import databases


def walk_nodes(tree):
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if node.rect is not None:
            yield node
        if not node.is_leaf:
            stack.extend(node.children)


def objects_under(node):
    stack = [node]
    while stack:
        current = stack.pop()
        if current.is_leaf:
            for entry in current.entries:
                yield entry.item
        else:
            stack.extend(current.children)


def check_set_summaries(tree: SetRTree) -> None:
    for node in walk_nodes(tree):
        docs = [obj.doc for obj in objects_under(node)]
        if not docs:
            continue
        expected_union = frozenset().union(*docs)
        expected_intersection = docs[0]
        for doc in docs[1:]:
            expected_intersection &= doc
        summary: SetSummary = node.summary
        assert summary.union == expected_union
        assert summary.intersection == expected_intersection
        assert summary.count == len(docs)
        assert summary.min_doc_len == min(len(d) for d in docs)
        assert summary.max_doc_len == max(len(d) for d in docs)


def check_kc_summaries(tree: KcRTree) -> None:
    for node in walk_nodes(tree):
        docs = [obj.doc for obj in objects_under(node)]
        if not docs:
            continue
        expected: dict[str, int] = {}
        for doc in docs:
            for keyword in doc:
                expected[keyword] = expected.get(keyword, 0) + 1
        summary: KcSummary = node.summary
        assert dict(summary.keyword_counts) == expected
        assert summary.cnt == len(docs)


@settings(max_examples=25, deadline=None)
@given(databases(min_size=5, max_size=35), st.data())
def test_setrtree_summaries_exact_under_churn(database, data):
    tree = SetRTree(database=database, max_entries=4)
    inserted: list[SpatialObject] = []
    for obj in database:
        tree.insert(obj, obj.loc)
        inserted.append(obj)
    check_set_summaries(tree)

    victims = data.draw(
        st.lists(
            st.sampled_from(inserted), unique_by=lambda o: o.oid,
            max_size=len(inserted) - 1,
        )
    )
    for victim in victims:
        assert tree.delete(victim, victim.loc)
    tree.check_invariants()
    check_set_summaries(tree)


@settings(max_examples=25, deadline=None)
@given(databases(min_size=5, max_size=35), st.data())
def test_kcrtree_summaries_exact_under_churn(database, data):
    tree = KcRTree(database=database, max_entries=4)
    inserted: list[SpatialObject] = []
    for obj in database:
        tree.insert(obj, obj.loc)
        inserted.append(obj)
    check_kc_summaries(tree)

    victims = data.draw(
        st.lists(
            st.sampled_from(inserted), unique_by=lambda o: o.oid,
            max_size=len(inserted) - 1,
        )
    )
    for victim in victims:
        assert tree.delete(victim, victim.loc)
    tree.check_invariants()
    check_kc_summaries(tree)


@settings(max_examples=25, deadline=None)
@given(databases(min_size=2, max_size=40))
def test_bulk_loaded_summaries_exact(database):
    check_set_summaries(SetRTree.build(database, max_entries=4))
    check_kc_summaries(KcRTree.build(database, max_entries=4))
