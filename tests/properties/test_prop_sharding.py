"""Property suite: the sharded engine is bit-for-bit the unsharded one.

Every sharded primitive — scatter-gather top-k, the pruned rank
primitives, the dual-space sweep substrate and whole why-not answers —
must produce *identical* values to the plain-kernel path (which PR 3's
suite in turn pins to the set-based semantics oracle).  Shard skipping
is only sound if no skipped shard could have contributed, so these
tests are the safety net for every bound in ``repro.core.sharding``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scoring import Scorer
from repro.core.sharding import ShardRouter
from repro.service.api import YaskEngine
from repro.service.sharded import ShardedEngine
from tests.properties.strategies import databases, databases_with_queries, queries

shard_counts = st.integers(min_value=1, max_value=5)
partitioners = st.sampled_from(["grid", "round-robin"])


def make_pair(database, shards, partitioner):
    """(plain scorer, sharded scorer) over one database."""
    router = ShardRouter(
        database, shards=shards, partitioner=partitioner,
        text_model=Scorer(database).text_model,
    )
    return Scorer(database), Scorer(database, shard_router=router), router


@settings(max_examples=60, deadline=None)
@given(data=databases_with_queries(), shards=shard_counts, part=partitioners)
def test_scatter_gather_topk_matches_oracle(data, shards, part):
    database, query = data
    plain, sharded, router = make_pair(database, shards, part)
    engine = ShardedEngine(router, sharded, max_workers=1)
    expected = plain.top_k(query)
    actual = engine.search(query)
    assert [tuple(e) for e in actual] == [tuple(e) for e in expected]


@settings(max_examples=25, deadline=None)
@given(data=databases_with_queries(), shards=shard_counts)
def test_parallel_scatter_matches_sequential(data, shards):
    database, query = data
    plain, sharded, router = make_pair(database, shards, "grid")
    sequential = ShardedEngine(router, sharded, max_workers=1)
    parallel = ShardedEngine(router, sharded, max_workers=3)
    try:
        assert [tuple(e) for e in parallel.search(query)] == [
            tuple(e) for e in sequential.search(query)
        ]
    finally:
        parallel.close()


@settings(max_examples=60, deadline=None)
@given(data=databases_with_queries(), shards=shard_counts, part=partitioners)
def test_rank_primitives_match(data, shards, part):
    database, query = data
    plain, sharded, _ = make_pair(database, shards, part)
    for obj in database:
        assert sharded.rank_of(obj, query) == plain.rank_of(obj, query)
    targets = list(database.objects[:3])
    assert sharded.worst_rank(targets, query) == plain.worst_rank(
        targets, query
    )


@settings(max_examples=40, deadline=None)
@given(
    data=databases_with_queries(),
    shards=shard_counts,
    part=partitioners,
    ws=st.floats(min_value=0.02, max_value=0.98),
)
def test_dual_view_primitives_match(data, shards, part, ws):
    database, query = data
    plain, sharded, _ = make_pair(database, shards, part)
    plain_view = plain.kernel.dual_view(query)
    sharded_view = sharded.kernel.dual_view(query)

    assert sharded_view.dual_points() == plain_view.dual_points()

    oids = [obj.oid for obj in database.objects[:4]]
    wt = 1.0 - ws
    assert sharded_view.ranks_at(ws, wt, oids) == plain_view.ranks_at(
        ws, wt, oids
    )
    for oid in oids:
        assert sharded_view.dual_point_of(oid) == plain_view.dual_point_of(oid)
        assert sharded_view.crossing_candidates(
            oid
        ) == plain_view.crossing_candidates(oid)
        assert sharded_view.strictly_above_at_zero(
            oid
        ) == plain_view.strictly_above_at_zero(oid)
        assert sharded_view.permanent_ties_smaller(
            oid
        ) == plain_view.permanent_ties_smaller(oid)


@settings(max_examples=30, deadline=None)
@given(data=databases_with_queries(), shards=shard_counts, part=partitioners)
def test_doc_rank_scans_match(data, shards, part):
    database, query = data
    plain, sharded, _ = make_pair(database, shards, part)
    plain_prox = plain.kernel.proximities(query)
    sharded_prox = sharded.kernel.proximities(query)
    assert list(sharded_prox) == plain_prox

    candidate = frozenset(list(query.doc)[:1]) | frozenset({"t0", "t7"})
    plain_ctx = plain.kernel.doc_context(candidate)
    sharded_ctx = sharded.kernel.doc_context(candidate)
    for obj in database.objects[:5]:
        assert sharded_ctx.rank_scan(
            query.ws, query.wt, sharded_prox, obj.oid
        ) == plain_ctx.rank_scan(query.ws, query.wt, plain_prox, obj.oid)


@settings(max_examples=20, deadline=None)
@given(
    db=databases(min_size=6, max_size=30),
    query=queries(k_max=3),
    shards=shard_counts,
    part=partitioners,
    lam=st.sampled_from([0.0, 0.3, 0.5, 1.0]),
)
def test_whynot_answers_match(db, query, shards, part, lam):
    """Whole why-not answers agree: explanation + both refinements."""
    plain_engine = YaskEngine(db)
    sharded_engine = YaskEngine(db, shards=shards, partitioner=part)
    ranking = plain_engine.scorer.rank_all(query)
    outside = [entry.obj for entry in ranking[query.k :]]
    if not outside:
        return
    missing = [outside[0].oid]

    expected = plain_engine.why_not(query, missing, lam=lam)
    actual = sharded_engine.why_not(query, missing, lam=lam)
    assert actual.preference == expected.preference
    assert actual.keyword == expected.keyword
    assert actual.best_model == expected.best_model
    assert actual.explanation.worst_rank == expected.explanation.worst_rank
    assert [
        (e.obj.oid, e.rank, e.reason, e.closer_objects, e.more_similar_objects)
        for e in actual.explanation.explanations
    ] == [
        (e.obj.oid, e.rank, e.reason, e.closer_objects, e.more_similar_objects)
        for e in expected.explanation.explanations
    ]


@settings(max_examples=30, deadline=None)
@given(db=databases(min_size=4, max_size=25), query=queries(k_max=4),
       shards=shard_counts)
def test_engine_query_matches_unsharded_engine(db, query, shards):
    plain = YaskEngine(db)
    sharded = YaskEngine(db, shards=shards)
    assert [tuple(e) for e in sharded.query(query)] == [
        tuple(e) for e in plain.query(query)
    ]
