"""Property-based tests: R-tree queries ≡ brute force on arbitrary data."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Point, Rect
from repro.index.rtree import RTree

from tests.properties.strategies import coordinates, points


@st.composite
def point_sets(draw, max_size=60):
    return draw(st.lists(points, min_size=1, max_size=max_size))


@st.composite
def windows(draw):
    x1, x2 = sorted((draw(coordinates), draw(coordinates)))
    y1, y2 = sorted((draw(coordinates), draw(coordinates)))
    return Rect(x1, y1, x2, y2)


@settings(max_examples=60, deadline=None)
@given(point_sets(), windows(), st.integers(min_value=2, max_value=6))
def test_range_search_equals_brute_force(pts, window, fanout):
    tree = RTree.bulk_load(
        list(range(len(pts))), key=lambda i: pts[i], max_entries=fanout * 2,
        min_entries=fanout,
    )
    expected = sorted(
        i for i, p in enumerate(pts) if window.contains_point(p)
    )
    assert sorted(tree.range_search(window)) == expected
    assert tree.count_in(window) == len(expected)


@settings(max_examples=60, deadline=None)
@given(point_sets(), points, st.integers(min_value=1, max_value=10))
def test_knn_equals_brute_force(pts, query, k):
    tree = RTree.bulk_load(
        list(range(len(pts))), key=lambda i: pts[i], max_entries=8
    )
    expected = sorted(
        range(len(pts)), key=lambda i: (query.distance_to(pts[i]), i)
    )[:k]
    assert tree.nearest_neighbors(query, k, tie_key=lambda i: i) == expected


@settings(max_examples=40, deadline=None)
@given(point_sets(max_size=40), st.data())
def test_invariants_under_mixed_operations(pts, data):
    tree = RTree(max_entries=4)
    alive: dict[int, Point] = {}
    for index, point in enumerate(pts):
        tree.insert(index, point)
        alive[index] = point
    tree.check_invariants()
    # Delete a random subset, checking structure after each removal.
    victims = data.draw(
        st.lists(st.sampled_from(sorted(alive)), unique=True, max_size=len(alive))
    )
    for victim in victims:
        assert tree.delete(victim, alive.pop(victim))
        tree.check_invariants()
    assert sorted(tree.iter_items()) == sorted(alive)


@settings(max_examples=40, deadline=None)
@given(point_sets(max_size=50))
def test_bulk_load_and_incremental_have_same_content(pts):
    bulk = RTree.bulk_load(
        list(range(len(pts))), key=lambda i: pts[i], max_entries=6,
        min_entries=3,
    )
    incremental = RTree(max_entries=6, min_entries=3)
    for index, point in enumerate(pts):
        incremental.insert(index, point)
    assert sorted(bulk.iter_items()) == sorted(incremental.iter_items())
    bulk.check_invariants()
    incremental.check_invariants()
