"""Property-based tests for the text similarity models (Eqn. 2 et al.)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.similarity import (
    DiceSimilarity,
    JaccardSimilarity,
    OverlapSimilarity,
    WeightedJaccardSimilarity,
)

from tests.properties.strategies import ALPHABET

keyword_sets = st.sets(st.sampled_from(ALPHABET), max_size=8).map(frozenset)
nonempty_sets = st.sets(st.sampled_from(ALPHABET), min_size=1, max_size=8).map(frozenset)

SET_MODELS = [
    JaccardSimilarity(),
    DiceSimilarity(),
    OverlapSimilarity(),
    WeightedJaccardSimilarity({"t0": 3.0, "t1": 0.25}, default_weight=1.0),
]


@settings(max_examples=100, deadline=None)
@given(keyword_sets, keyword_sets)
def test_similarity_in_unit_range_and_symmetric(a, b):
    for model in SET_MODELS:
        value = model.similarity(a, b)
        assert 0.0 <= value <= 1.0
        assert value == model.similarity(b, a)


@settings(max_examples=100, deadline=None)
@given(nonempty_sets)
def test_identity_scores_one(doc):
    for model in SET_MODELS:
        assert model.similarity(doc, doc) == 1.0


@settings(max_examples=100, deadline=None)
@given(keyword_sets, keyword_sets)
def test_disjoint_scores_zero(a, b):
    if not (a & b):
        for model in SET_MODELS:
            assert model.similarity(a, b) == 0.0


@settings(max_examples=100, deadline=None)
@given(
    st.lists(nonempty_sets, min_size=1, max_size=6),
    keyword_sets,
)
def test_interval_bounds_bracket_members(docs, query):
    """The SetR-tree contract: for any group of docs, the model's bounds
    computed from (∩, ∪) bracket every member's exact similarity."""
    intersection = frozenset(docs[0])
    union = frozenset()
    for doc in docs:
        intersection &= doc
        union |= doc
    for model in SET_MODELS:
        upper = model.upper_bound(intersection, union, query)
        lower = model.lower_bound(intersection, union, query)
        assert lower <= upper + 1e-12
        for doc in docs:
            value = model.similarity(doc, query)
            assert lower - 1e-9 <= value <= upper + 1e-9


@settings(max_examples=100, deadline=None)
@given(nonempty_sets, nonempty_sets, nonempty_sets)
def test_jaccard_triangle_like_monotonicity(a, b, c):
    """Jaccard distance (1 − sim) satisfies the triangle inequality."""
    model = JaccardSimilarity()
    d_ab = 1.0 - model.similarity(a, b)
    d_bc = 1.0 - model.similarity(b, c)
    d_ac = 1.0 - model.similarity(a, c)
    assert d_ac <= d_ab + d_bc + 1e-9
