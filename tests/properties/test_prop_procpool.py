"""Property suite: the process worker pool is bit-for-bit the thread path.

The proc tier (``shard_workers="proc"``) must be *undetectable* from
results: same top-k entries in the same tie order, same why-not
answers, and the same scatter statistics (scanned/skipped counts) as
the threaded scatter oracle — across random databases, random mutation
histories and every shard count.  Workers scan shared-memory column
attachments and replay generation-stamped deltas, so any drift here
means a torn or stale generation was served.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.geometry import Point
from repro.core.mutations import Mutation
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.service.api import YaskEngine
from tests.properties.strategies import (
    ALPHABET,
    coordinates,
    databases,
    databases_with_queries,
    queries,
)

pytestmark = pytest.mark.slow

shard_counts = st.integers(min_value=1, max_value=4)

#: Mutation docs reach beyond the build-time alphabet so histories
#: exercise vocabulary growth (new mask bits) across the pipe protocol.
FRESH_WORDS = [f"fresh{i}" for i in range(4)]
mutation_docs = st.sets(
    st.sampled_from(ALPHABET + FRESH_WORDS), min_size=1, max_size=5
).map(frozenset)


def copy_database(database: SpatialDatabase) -> SpatialDatabase:
    """An independent database over the same objects and dataspace.

    The proc and oracle engines must not share mutable state — each
    applies the same mutation history to its own copy.
    """
    return SpatialDatabase(database.objects, dataspace=database.dataspace)


def make_pair(database, shards):
    """(proc engine, threaded oracle engine) over equal databases.

    The oracle forces ``shard_workers=2`` so it takes the *parallel*
    scatter shape (first shard sets the threshold, survivors fan) —
    the shape the proc path mirrors — rather than the sequential
    adaptive gather a single-core host would default to; scanned and
    skipped counters are only comparable between like shapes.
    """
    proc = YaskEngine(
        copy_database(database), shards=shards, shard_workers="proc"
    )
    oracle = YaskEngine(copy_database(database), shards=shards, shard_workers=2)
    return proc, oracle


def scatter_counters(engine) -> tuple[float, float]:
    stats = engine.shard_router.stats.to_dict()
    return stats["topk_shards_scanned"], stats["topk_shards_skipped"]


def draw_batches(draw, database: SpatialDatabase) -> list[list[Mutation]]:
    """1-3 batches of 1-5 valid mutations against the live id set."""
    live = {obj.oid for obj in database.objects}
    next_oid = max(live) + 1
    batches: list[list[Mutation]] = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        batch: list[Mutation] = []
        for _ in range(draw(st.integers(min_value=1, max_value=5))):
            kind = draw(
                st.sampled_from(["insert", "insert", "update", "delete"])
            )
            if kind == "insert" or len(live) <= 2:
                obj = SpatialObject(
                    next_oid,
                    Point(draw(coordinates), draw(coordinates)),
                    draw(mutation_docs),
                )
                next_oid += 1
                live.add(obj.oid)
                batch.append(Mutation.insert(obj))
            elif kind == "update":
                oid = draw(st.sampled_from(sorted(live)))
                batch.append(
                    Mutation.update(
                        SpatialObject(
                            oid,
                            Point(draw(coordinates), draw(coordinates)),
                            draw(mutation_docs),
                        )
                    )
                )
            else:
                oid = draw(st.sampled_from(sorted(live)))
                live.discard(oid)
                batch.append(Mutation.delete(oid))
        if batch:
            batches.append(batch)
    return batches


@settings(max_examples=20, deadline=None)
@given(data=databases_with_queries(), shards=shard_counts)
def test_procpool_topk_matches_threaded_oracle(data, shards):
    """Entries, tie order and scatter counters are all identical."""
    database, query = data
    proc, oracle = make_pair(database, shards)
    try:
        expected = [tuple(e) for e in oracle.query(query)]
        actual = [tuple(e) for e in proc.query(query)]
        assert actual == expected
        assert scatter_counters(proc) == scatter_counters(oracle)
    finally:
        proc.close()
        oracle.close()


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    db=databases(min_size=4, max_size=24),
    query=queries(k_max=6),
    shards=shard_counts,
    data=st.data(),
)
def test_procpool_matches_oracle_through_mutation_history(
    db, query, shards, data
):
    """After every batch the workers serve the post-batch generation.

    Both engines apply an identical random mutation history; a query
    after each batch must agree bit for bit, which fails if a worker
    ever serves a torn, stale or mis-encoded delta.
    """
    proc, oracle = make_pair(db, shards)
    try:
        batches = draw_batches(data.draw, db)
        for batch in batches:
            proc.apply_mutations(list(batch))
            oracle.apply_mutations(list(batch))
            assert [tuple(e) for e in proc.query(query)] == [
                tuple(e) for e in oracle.query(query)
            ]
        assert scatter_counters(proc) == scatter_counters(oracle)
        pool_stats = proc.worker_pool.to_dict()
        assert pool_stats["restarts"] == 0
    finally:
        proc.close()
        oracle.close()


@settings(max_examples=8, deadline=None)
@given(
    db=databases(min_size=6, max_size=30),
    query=queries(k_max=3),
    shards=shard_counts,
    lam=st.sampled_from([0.0, 0.5, 1.0]),
)
def test_procpool_whynot_matches_oracle(db, query, shards, lam):
    """Whole why-not answers agree across the process boundary."""
    proc, oracle = make_pair(db, shards)
    try:
        ranking = oracle.scorer.rank_all(query)
        outside = [entry.obj for entry in ranking[query.k :]]
        if not outside:
            return
        missing = [outside[0].oid]
        expected = oracle.why_not(query, missing, lam=lam)
        actual = proc.why_not(query, missing, lam=lam)
        assert actual.preference == expected.preference
        assert actual.keyword == expected.keyword
        assert actual.best_model == expected.best_model
        assert (
            actual.explanation.worst_rank == expected.explanation.worst_rank
        )
        assert [
            (e.obj.oid, e.rank, e.reason)
            for e in actual.explanation.explanations
        ] == [
            (e.obj.oid, e.rank, e.reason)
            for e in expected.explanation.explanations
        ]
    finally:
        proc.close()
        oracle.close()


@settings(max_examples=10, deadline=None)
@given(data=databases_with_queries(), shards=shard_counts)
def test_procpool_frees_segments_on_close(data, shards):
    """Shutdown unlinks every shared-memory segment it created."""
    import os

    database, query = data
    proc = YaskEngine(
        copy_database(database), shards=shards, shard_workers="proc"
    )
    try:
        proc.query(query)
        names = proc.worker_pool.segment_names()
        assert len(names) == len(proc.shard_router.shards)
    finally:
        proc.close()
    leaked = [n for n in names if os.path.exists(f"/dev/shm/{n}")]
    assert leaked == []
