"""The crash-point recovery property (the durability tier's contract).

For ANY sequence of mutation batches logged through the write-ahead
log — with or without a snapshot taken mid-stream — and ANY crash
point (after every record boundary AND at drawn byte offsets *inside*
a record, simulating a torn write), recovery must reconstruct an
engine that is *bit-for-bit* indistinguishable from a fresh engine
built from the state the surviving log prefix describes:

* the recovered generation is exactly the last fully-durable one
  (never a gap, never a partial batch);
* top-k results match float-for-float, tie-order included, against a
  fresh kernel engine, a set-path oracle and a sharded recovery;
* why-not answers match through their wire serialisations.

Because ``draw_batches`` can produce a batch whose net effect is
empty (insert + delete of the same oid), this suite also pins the
no-op/replay-idempotence fix: no-op batches never reach the log, so
logged generations stay contiguous and every replay lands exactly.

Budget: ``YASK_RECOVERY_EXAMPLES`` (default 8; ``make test-recovery``
raises it) — each example exercises every crash point of its log.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.objects import SpatialDatabase
from repro.core.scoring import Scorer
from repro.service.api import YaskEngine
from repro.service.protocol import result_to_dict, whynot_answer_to_dict
from repro.service.wal import (
    _HEADER,
    WriteAheadLog,
    load_snapshot,
    recover_engine,
)
from tests.properties.strategies import databases, queries
from tests.properties.test_prop_mutations import draw_batches, entry_tuple

MAX_EXAMPLES = int(os.environ.get("YASK_RECOVERY_EXAMPLES", "8"))

RECOVERY_SETTINGS = settings(
    max_examples=MAX_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def recovery_scenarios(draw):
    database = draw(databases(min_size=4, max_size=16))
    query = draw(queries(k_max=5))
    # 1-byte segments force one record per segment (multi-segment
    # layout, compaction has bite); the default keeps one segment.
    segment_bytes = draw(st.sampled_from([1, 4 << 20]))
    return database, query, segment_bytes


def _segment_paths(directory: Path) -> list[Path]:
    return sorted(directory.glob("wal-*.log"))


def _record_frames(raw: bytes) -> list[tuple[int, int]]:
    """``(end_offset, generation)`` per record, via the frame headers."""
    import json

    frames = []
    offset = 0
    while offset < len(raw):
        length, _ = _HEADER.unpack_from(raw, offset)
        start = offset + _HEADER.size
        payload = json.loads(raw[start : start + length])
        offset = start + length
        frames.append((offset, payload["g"]))
    return frames


def _crash_copies(wal_dir: Path, data) -> list[tuple[Path, int]]:
    """Every crash point of the log: ``(crashed copy, expected gen)``.

    For each segment, one crash at every record boundary (offset 0 =
    "the segment file exists but holds nothing durable yet") plus one
    drawn byte offset strictly inside a record — the torn write.  The
    expected generation is the last record wholly below the crash
    point, floored by the snapshot generation: a snapshot is only ever
    written *after* the records it covers, so a surviving snapshot
    implies its generation was durable.
    """
    snapshot = load_snapshot(wal_dir)
    snapshot_generation = snapshot[0] if snapshot is not None else 0
    segments = [
        (path, _record_frames(path.read_bytes()))
        for path in _segment_paths(wal_dir)
    ]
    copies: list[tuple[Path, int]] = []
    previous_generation = 0
    for index, (path, frames) in enumerate(segments):
        offsets = [0] + [end for end, _ in frames]
        starts = [0] + [end for end, _ in frames[:-1]]
        if frames:
            # One torn write per segment: a byte inside a drawn record.
            victim = data.draw(
                st.integers(min_value=0, max_value=len(frames) - 1)
            )
            torn = data.draw(
                st.integers(
                    min_value=starts[victim] + 1,
                    max_value=frames[victim][0] - 1,
                )
            )
            offsets.append(torn)
        for offset in offsets:
            durable = [g for end, g in frames if end <= offset]
            expected = max(
                snapshot_generation,
                durable[-1] if durable else previous_generation,
            )
            copy = Path(tempfile.mkdtemp(prefix="yask-crash-"))
            copy.rmdir()
            shutil.copytree(wal_dir, copy)
            with open(copy / path.name, "r+b") as handle:
                handle.truncate(offset)
            for later, _ in segments[index + 1 :]:
                (copy / later.name).unlink()
            copies.append((copy, expected))
        previous_generation = frames[-1][1] if frames else previous_generation
    return copies


@RECOVERY_SETTINGS
@given(scenario=recovery_scenarios(), data=st.data())
def test_every_crash_point_recovers_bit_for_bit(scenario, data):
    database, query, segment_bytes = scenario
    dataspace = database.dataspace
    wal_dir = Path(tempfile.mkdtemp(prefix="yask-wal-"))
    crashes: list[tuple[Path, int]] = []
    try:
        primary = YaskEngine(
            SpatialDatabase(database.objects, dataspace=dataspace),
            max_entries=4,
            wal=WriteAheadLog(
                wal_dir, fsync="never", segment_bytes=segment_bytes
            ),
        )
        states = {0: database.objects}
        batches = draw_batches(data.draw, primary.database)
        snapshot_after = data.draw(
            st.one_of(st.none(), st.integers(0, len(batches)))
        )
        for index, batch in enumerate(batches):
            if snapshot_after == index:
                primary.snapshot()
            report = primary.apply_mutations(batch)
            states[report.generation] = primary.database.objects
        if snapshot_after == len(batches):
            primary.snapshot()
        final_generation = primary.generation
        live_result = result_to_dict(primary.query(query))
        primary.close()

        # No-op batches never bump nor log: generations are gap-free.
        assert sorted(states) == list(range(final_generation + 1))

        crashes = _crash_copies(wal_dir, data)
        seed = lambda: SpatialDatabase(database.objects, dataspace=dataspace)
        for copy, expected_generation in crashes:
            recovered, report = recover_engine(
                copy, database=seed(), max_entries=4
            )
            oracle = YaskEngine(
                SpatialDatabase(
                    states[expected_generation], dataspace=dataspace
                ),
                max_entries=4,
            )
            try:
                assert recovered.generation == expected_generation
                assert report.generation == expected_generation
                got = recovered.query(query)
                want = oracle.query(query)
                assert list(map(entry_tuple, got.entries)) == list(
                    map(entry_tuple, want.entries)
                )
                assert result_to_dict(got) == result_to_dict(want)
                ranked = oracle.scorer.rank_all(query)
                missing = [
                    e.obj.oid for e in ranked if e.rank > query.k
                ]
                if missing:
                    assert whynot_answer_to_dict(
                        recovered.why_not(query, [missing[-1]])
                    ) == whynot_answer_to_dict(
                        oracle.why_not(query, [missing[-1]])
                    )
            finally:
                recovered.close()
                oracle.close()

        # The uncrashed log: recovery (sharded and unsharded) must be
        # indistinguishable from the live pre-close engine, and from
        # the set-path oracle.
        plain, _ = recover_engine(wal_dir, database=seed(), max_entries=4)
        sharded, _ = recover_engine(
            wal_dir, database=seed(), max_entries=4, shards=3, attach=False
        )
        set_oracle = Scorer(
            SpatialDatabase(states[final_generation], dataspace=dataspace),
            use_kernel=False,
        )
        try:
            assert plain.generation == final_generation
            assert sharded.generation == final_generation
            assert result_to_dict(plain.query(query)) == live_result
            assert result_to_dict(sharded.query(query)) == live_result
            assert result_to_dict(set_oracle.top_k(query)) == live_result
        finally:
            plain.close()
            sharded.close()
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)
        for copy, _ in crashes:
            shutil.rmtree(copy, ignore_errors=True)
