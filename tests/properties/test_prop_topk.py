"""Property-based tests: index top-k ≡ brute-force top-k on arbitrary data."""

from hypothesis import given, settings

from repro.core.scoring import Scorer
from repro.core.topk import BestFirstTopK, BruteForceTopK
from repro.index.irtree import IRTree
from repro.index.setrtree import SetRTree
from repro.text.similarity import CosineTfIdfSimilarity

from tests.properties.strategies import databases_with_queries


@settings(max_examples=60, deadline=None)
@given(databases_with_queries())
def test_setrtree_best_first_equals_brute_force(db_and_query):
    database, query = db_and_query
    scorer = Scorer(database)
    tree = SetRTree.build(database, max_entries=4)
    engine = BestFirstTopK(tree, scorer)
    oracle = BruteForceTopK(scorer)
    actual = engine.search(query)
    expected = oracle.search(query)
    assert [e.obj.oid for e in actual] == [e.obj.oid for e in expected]
    assert [e.score for e in actual] == [e.score for e in expected]


@settings(max_examples=40, deadline=None)
@given(databases_with_queries())
def test_irtree_best_first_equals_brute_force(db_and_query):
    database, query = db_and_query
    model = CosineTfIdfSimilarity(
        database.keyword_document_frequencies(), len(database)
    )
    scorer = Scorer(database, text_model=model)
    tree = IRTree.build(database, text_model=model, max_entries=4)
    engine = BestFirstTopK(tree, scorer)
    oracle = BruteForceTopK(scorer)
    assert [e.obj.oid for e in engine.search(query)] == [
        e.obj.oid for e in oracle.search(query)
    ]


@settings(max_examples=60, deadline=None)
@given(databases_with_queries())
def test_definition_1_holds(db_and_query):
    """∀o ∈ R, ∀o' ∈ D − R: ST(o, q) ≥ ST(o', q)."""
    database, query = db_and_query
    scorer = Scorer(database)
    result = scorer.top_k(query)
    if not len(result):
        return
    threshold = min(entry.score for entry in result)
    for obj in database:
        if obj.oid not in result.object_ids:
            assert scorer.score(obj, query) <= threshold + 1e-15


@settings(max_examples=60, deadline=None)
@given(databases_with_queries())
def test_rank_of_consistent_with_rank_all(db_and_query):
    database, query = db_and_query
    scorer = Scorer(database)
    full = {entry.obj.oid: entry.rank for entry in scorer.rank_all(query)}
    for obj in database:
        assert scorer.rank_of(obj, query) == full[obj.oid]
