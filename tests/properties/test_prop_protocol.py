"""Property-based fuzzing of the JSON wire protocol.

The server must never crash on malformed payloads — every parse failure
must surface as :class:`ProtocolError` (HTTP 400), and every valid query
must round-trip through the wire format.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Point
from repro.core.query import SpatialKeywordQuery, Weights
from repro.service.protocol import ProtocolError, query_from_dict, query_to_dict

from tests.properties.strategies import ALPHABET

import pytest

pytestmark = pytest.mark.slow

# Arbitrary JSON-shaped values to throw at the parser.
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)
fuzzy_payloads = st.dictionaries(
    st.sampled_from(["x", "y", "keywords", "k", "ws", "wt", "junk"]),
    json_values,
    max_size=7,
)


@settings(max_examples=200, deadline=None)
@given(fuzzy_payloads)
def test_parser_never_crashes(payload):
    """Any dict either parses to a valid query or raises ProtocolError."""
    try:
        query = query_from_dict(payload)
    except ProtocolError:
        return
    assert isinstance(query, SpatialKeywordQuery)
    assert query.k >= 1
    assert query.doc
    assert 0.0 < query.ws < 1.0


@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=-180, max_value=180, allow_nan=False),
    st.floats(min_value=-90, max_value=90, allow_nan=False),
    st.sets(st.sampled_from(ALPHABET), min_size=1, max_size=5),
    st.integers(min_value=1, max_value=100),
    st.floats(min_value=0.05, max_value=0.95),
)
def test_valid_queries_round_trip(x, y, keywords, k, ws):
    query = SpatialKeywordQuery(
        Point(x, y), frozenset(keywords), k, Weights.from_spatial(ws)
    )
    wire = json.loads(json.dumps(query_to_dict(query)))
    parsed = query_from_dict(wire)
    assert parsed.loc == query.loc
    assert parsed.doc == query.doc
    assert parsed.k == query.k
    assert abs(parsed.ws - query.ws) < 1e-12


@settings(max_examples=100, deadline=None)
@given(fuzzy_payloads)
def test_parser_is_deterministic(payload):
    def attempt():
        try:
            return ("ok", query_to_dict(query_from_dict(payload)))
        except ProtocolError as exc:
            return ("err", str(exc))

    assert attempt() == attempt()
