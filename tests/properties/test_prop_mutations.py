"""The mutation parity property (the live-mutation tier's contract).

After ANY sequence of insert/update/delete batches, the mutated engine
must be *bit-for-bit* indistinguishable from a fresh engine built from
the final object set over the same dataspace:

* top-k results: same objects, same score/sdist/tsim floats, same tie
  order — across the unsharded kernel engine, the sharded scatter-gather
  engine and the set-path oracle;
* all three why-not refinement paths (preference, keywords, combined)
  plus the explanation, compared through their wire serialisations.

This is the property that makes every incremental structure — the
append-only vocabulary, the tombstoned kernel columns, the widened shard
summaries, the Guttman-maintained trees — an *optimisation* rather than
a semantics change.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.geometry import Point, Rect
from repro.core.mutations import Mutation
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.scoring import Scorer
from repro.service.api import YaskEngine
from repro.service.protocol import result_to_dict, whynot_answer_to_dict
from tests.properties.strategies import ALPHABET, databases, queries

#: Extra keywords only mutations introduce — exercises the append-only
#: vocabulary growth path (new bit positions beyond the built corpus).
FRESH_WORDS = [f"fresh{i}" for i in range(4)]

coordinates = st.floats(
    min_value=-0.2, max_value=1.2, allow_nan=False, allow_infinity=False
)
mutation_docs = st.sets(
    st.sampled_from(ALPHABET + FRESH_WORDS), min_size=1, max_size=5
).map(frozenset)


def draw_batches(draw, database: SpatialDatabase) -> list[list[Mutation]]:
    """Draw 1-3 batches of 1-5 valid mutations against the live id set."""
    live = {obj.oid for obj in database.objects}
    next_oid = max(live) + 1
    batches: list[list[Mutation]] = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        batch: list[Mutation] = []
        for _ in range(draw(st.integers(min_value=1, max_value=5))):
            kind = draw(st.sampled_from(["insert", "insert", "update", "delete"]))
            if kind == "insert" or len(live) <= 2:
                obj = SpatialObject(
                    next_oid,
                    Point(draw(coordinates), draw(coordinates)),
                    draw(mutation_docs),
                )
                next_oid += 1
                live.add(obj.oid)
                batch.append(Mutation.insert(obj))
            elif kind == "update":
                oid = draw(st.sampled_from(sorted(live)))
                batch.append(
                    Mutation.update(
                        SpatialObject(
                            oid,
                            Point(draw(coordinates), draw(coordinates)),
                            draw(mutation_docs),
                        )
                    )
                )
            else:
                oid = draw(st.sampled_from(sorted(live)))
                live.discard(oid)
                batch.append(Mutation.delete(oid))
        if batch:
            batches.append(batch)
    return batches


def entry_tuple(entry):
    return (entry.obj.oid, entry.score, entry.sdist, entry.tsim, entry.rank)


@st.composite
def mutation_scenarios(draw):
    database = draw(databases(min_size=4, max_size=24))
    query = draw(queries(k_max=6))
    return database, query


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(scenario=mutation_scenarios(), data=st.data())
def test_mutated_engines_match_fresh_rebuild(scenario, data):
    database, query = scenario
    initial_objects = database.objects

    live_plain = YaskEngine(
        SpatialDatabase(initial_objects, dataspace=database.dataspace),
        max_entries=4,
    )
    live_sharded = YaskEngine(
        SpatialDatabase(initial_objects, dataspace=database.dataspace),
        max_entries=4,
        shards=3,
    )
    batches = draw_batches(data.draw, live_plain.database)
    for batch in batches:
        live_plain.apply_mutations(batch)
        live_sharded.apply_mutations(list(batch))

    final_objects = live_plain.database.objects
    assert final_objects == live_sharded.database.objects

    fresh = YaskEngine(
        SpatialDatabase(final_objects, dataspace=database.dataspace),
        max_entries=4,
    )
    oracle = Scorer(
        SpatialDatabase(final_objects, dataspace=database.dataspace),
        use_kernel=False,
    )

    # --- top-k parity: plain, sharded, fresh, set-path oracle ---------
    expected = fresh.query(query)
    for engine in (live_plain, live_sharded):
        got = engine.query(query)
        assert list(map(entry_tuple, got.entries)) == list(
            map(entry_tuple, expected.entries)
        )
    assert result_to_dict(oracle.top_k(query)) == result_to_dict(expected)

    # --- why-not parity over all refinement paths ---------------------
    ranked = fresh.scorer.rank_all(query)
    missing_candidates = [
        entry.obj.oid for entry in ranked if entry.rank > query.k
    ]
    if missing_candidates:
        missing = [missing_candidates[-1]]
        expected_answer = whynot_answer_to_dict(fresh.why_not(query, missing))
        for engine in (live_plain, live_sharded):
            got_answer = whynot_answer_to_dict(engine.why_not(query, missing))
            assert got_answer == expected_answer

    live_plain.close()
    live_sharded.close()
    fresh.close()


@settings(max_examples=25, deadline=None)
@given(scenario=mutation_scenarios(), data=st.data())
def test_mutated_scorer_matches_set_path_oracle(scenario, data):
    """rank_all on the mutated kernel equals the set path on the final set."""
    database, query = scenario
    live = SpatialDatabase(database.objects, dataspace=database.dataspace)
    scorer = Scorer(live)
    from repro.core.mutations import MutableDatabase

    mutable = MutableDatabase(live, model_code=scorer.kernel.model_code)
    mutable.register_listener(scorer.kernel)
    for batch in draw_batches(data.draw, live):
        mutable.apply(batch)
    oracle = Scorer(
        SpatialDatabase(live.objects, dataspace=live.dataspace),
        use_kernel=False,
    )
    got = scorer.rank_all(query)
    want = oracle.rank_all(query)
    assert list(map(entry_tuple, got)) == list(map(entry_tuple, want))
    assert scorer.dual_points(query) == oracle.dual_points(query)
