"""Property tests: the columnar kernel ≡ the object-at-a-time scorer.

The kernel is pure optimisation — for every database, query and
supported text model it must reproduce the set-based path *exactly*:
identical score/sdist/tsim floats (no tolerance), identical
(score desc, oid asc) tie order, identical ranks, and identical why-not
refinements.  Databases here include empty keyword sets and duplicated
(location, doc) pairs so tie-breaks and the 0/0 corner cases are
actually exercised, and queries mix in out-of-vocabulary keywords.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Point, Rect
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import SpatialKeywordQuery, Weights
from repro.core.scoring import Scorer
from repro.index.kcrtree import KcRTree
from repro.text.similarity import (
    DiceSimilarity,
    JaccardSimilarity,
    OverlapSimilarity,
)
from repro.whynot.keyword import KeywordAdapter
from repro.whynot.preference import PreferenceAdjuster

from tests.properties.strategies import ALPHABET, coordinates, points

#: The kernel-supported set models, one instance each.
MODELS = [JaccardSimilarity(), DiceSimilarity(), OverlapSimilarity()]

models = st.sampled_from(MODELS)

#: Unlike the shared ``docs`` strategy this one allows *empty* object
#: keyword sets — the 0/0 corners of Jaccard/Dice/Overlap.
sparse_docs = st.sets(st.sampled_from(ALPHABET), min_size=0, max_size=6).map(
    frozenset
)

#: Query keywords drawn from the corpus alphabet plus words no object
#: can ever carry (out-of-vocabulary still counts towards |q.doc|).
query_keywords = st.sets(
    st.sampled_from(ALPHABET + ["zz-unseen", "zz-rare"]),
    min_size=1,
    max_size=4,
)


@st.composite
def kernel_databases(draw, min_size: int = 2, max_size: int = 30):
    """Databases with possibly-empty docs and shuffled, gappy oids."""
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    oids = draw(st.permutations(range(0, 2 * size, 2)).map(lambda p: p[:size]))
    objects = [
        SpatialObject(oid=oid, loc=draw(points), doc=draw(sparse_docs))
        for oid in oids
    ]
    return SpatialDatabase(objects, dataspace=Rect(0.0, 0.0, 1.0, 1.0))


@st.composite
def kernel_queries(draw, k_max: int = 8):
    return SpatialKeywordQuery(
        loc=draw(points),
        doc=frozenset(draw(query_keywords)),
        k=draw(st.integers(min_value=1, max_value=k_max)),
        weights=Weights.from_spatial(
            draw(st.floats(min_value=0.05, max_value=0.95))
        ),
    )


def scorer_pair(database, model):
    return (
        Scorer(database, text_model=model),
        Scorer(database, text_model=model, use_kernel=False),
    )


@settings(max_examples=80, deadline=None)
@given(kernel_databases(), kernel_queries(), models)
def test_components_match_breakdown_exactly(database, query, model):
    fast, slow = scorer_pair(database, model)
    assert fast.kernel is not None
    sdists, tsims, scores = fast.kernel.components_all(query)
    for row, obj in enumerate(database):
        breakdown = slow.breakdown(obj, query)
        assert sdists[row] == breakdown.sdist
        assert tsims[row] == breakdown.tsim
        assert scores[row] == breakdown.score
        assert fast.score(obj, query) == breakdown.score


@settings(max_examples=80, deadline=None)
@given(kernel_databases(), kernel_queries(), models)
def test_rank_all_bit_identical(database, query, model):
    fast, slow = scorer_pair(database, model)
    fast_entries = [tuple(entry) for entry in fast.rank_all(query)]
    slow_entries = [tuple(entry) for entry in slow.rank_all(query)]
    assert fast_entries == slow_entries


@settings(max_examples=80, deadline=None)
@given(kernel_databases(), kernel_queries(), models)
def test_top_k_is_rank_all_prefix(database, query, model):
    fast, slow = scorer_pair(database, model)
    assert [tuple(e) for e in fast.top_k(query)] == [
        tuple(e) for e in slow.top_k(query)
    ]


@settings(max_examples=60, deadline=None)
@given(kernel_databases(), kernel_queries(), models)
def test_dual_points_and_ranks_match(database, query, model):
    fast, slow = scorer_pair(database, model)
    assert fast.dual_points(query) == slow.dual_points(query)
    for obj in database:
        assert fast.rank_of(obj, query) == slow.rank_of(obj, query)
    targets = list(database.objects)[:3]
    assert fast.worst_rank(targets, query) == slow.worst_rank(targets, query)


@settings(max_examples=40, deadline=None)
@given(kernel_databases(min_size=4), kernel_queries(k_max=3), models)
def test_dual_view_rank_oracle_matches(database, query, model):
    """DualView.ranks_at ≡ PreferenceAdjuster._ranks_at_weights."""
    fast, slow = scorer_pair(database, model)
    view = fast.kernel.dual_view(query)
    duals = slow.dual_points(query)
    target_oids = [obj.oid for obj in list(database.objects)[:3]]
    by_oid = {dual.oid: dual for dual in duals}
    for ws in (0.1, query.ws, 0.9):
        weights = Weights.from_spatial(ws)
        expected = PreferenceAdjuster._ranks_at_weights(
            weights, [by_oid[oid] for oid in target_oids], duals
        )
        assert view.ranks_at(weights.ws, weights.wt, target_oids) == dict(
            expected
        )


@settings(max_examples=25, deadline=None)
@given(kernel_databases(min_size=5), kernel_queries(k_max=2))
def test_preference_refinement_parity(database, query):
    fast, slow = scorer_pair(database, JaccardSimilarity())
    worst = max(slow.rank_of(obj, query) for obj in database)
    missing = [
        obj for obj in database if slow.rank_of(obj, query) == worst
    ][:1]
    if slow.worst_rank(missing, query) <= query.k:
        return  # nothing is missing under this draw
    refined_fast = PreferenceAdjuster(fast).refine(query, missing, lam=0.5)
    refined_slow = PreferenceAdjuster(slow).refine(query, missing, lam=0.5)
    assert refined_fast == refined_slow


@settings(max_examples=15, deadline=None)
@given(kernel_databases(min_size=5, max_size=14), kernel_queries(k_max=2))
def test_keyword_refinement_parity(database, query):
    fast, slow = scorer_pair(database, JaccardSimilarity())
    worst = max(slow.rank_of(obj, query) for obj in database)
    missing = [
        obj for obj in database if slow.rank_of(obj, query) == worst
    ][:1]
    if slow.worst_rank(missing, query) <= query.k:
        return
    tree = KcRTree.build(database, max_entries=4)
    adapter_fast = KeywordAdapter(fast, tree, max_edit_count=2)
    adapter_slow = KeywordAdapter(slow, tree, max_edit_count=2)
    refined_fast = adapter_fast.refine(query, missing, lam=0.5)
    refined_slow = adapter_slow.refine(query, missing, lam=0.5)
    assert refined_fast.refined_query == refined_slow.refined_query
    assert refined_fast.penalty == refined_slow.penalty
    assert refined_fast.refined_worst_rank == refined_slow.refined_worst_rank
    assert refined_fast.added == refined_slow.added
    assert refined_fast.removed == refined_slow.removed
