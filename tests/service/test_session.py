"""Tests for sessions, the query cache and the query log."""

import threading

import pytest

from repro.core.geometry import Point
from repro.core.query import QueryResult, SpatialKeywordQuery
from repro.service.session import QueryLog, SessionManager


def query(k=3):
    return SpatialKeywordQuery(Point(0, 0), frozenset({"a"}), k)


def empty_result(q):
    return QueryResult(q, [])


class TestQueryLog:
    def test_sequence_numbers_increment(self):
        log = QueryLog()
        first = log.record("top-k query", {"k": 3}, 1.5)
        second = log.record("why-not explanation", {}, 2.5)
        assert (first.sequence, second.sequence) == (1, 2)

    def test_entries_are_snapshots(self):
        log = QueryLog()
        log.record("a", {}, 1.0)
        snapshot = log.entries
        log.record("b", {}, 1.0)
        assert len(snapshot) == 1
        assert len(log.entries) == 2

    def test_describe_includes_penalty_and_time(self):
        log = QueryLog()
        log.record("keyword adaption", {"lambda": 0.5}, 12.25, penalty=0.125)
        text = log.describe()
        assert "penalty=0.1250" in text
        assert "time=12.25ms" in text
        assert "lambda=0.5" in text

    def test_concurrent_records_unique_sequences(self):
        log = QueryLog()

        def worker():
            for _ in range(50):
                log.record("x", {}, 0.0)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sequences = [entry.sequence for entry in log.entries]
        assert len(sequences) == 200
        assert len(set(sequences)) == 200


class TestSessionManager:
    def test_create_and_get(self):
        manager = SessionManager()
        q = query()
        session = manager.create(q, empty_result(q))
        assert manager.get(session.session_id) is session
        assert session.initial_query is q

    def test_unknown_session_raises(self):
        manager = SessionManager()
        with pytest.raises(KeyError):
            manager.get("nope")

    def test_drop(self):
        manager = SessionManager()
        q = query()
        session = manager.create(q, empty_result(q))
        assert manager.drop(session.session_id)
        assert not manager.drop(session.session_id)
        with pytest.raises(KeyError):
            manager.get(session.session_id)

    def test_capacity_evicts_stalest(self):
        manager = SessionManager(capacity=2)
        q = query()
        first = manager.create(q, empty_result(q))
        second = manager.create(q, empty_result(q))
        manager.get(first.session_id)  # refresh first → second is stalest
        third = manager.create(q, empty_result(q))
        assert len(manager) == 2
        with pytest.raises(KeyError):
            manager.get(second.session_id)
        assert manager.get(first.session_id) is first
        assert manager.get(third.session_id) is third

    def test_session_ids_unique(self):
        manager = SessionManager()
        q = query()
        ids = {manager.create(q, empty_result(q)).session_id for _ in range(20)}
        assert len(ids) == 20

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SessionManager(capacity=0)

    def test_active_ids(self):
        manager = SessionManager()
        q = query()
        session = manager.create(q, empty_result(q))
        assert session.session_id in manager.active_ids()
