"""Tests for the caching/deduplicating/batching :class:`QueryExecutor`."""

import threading

import pytest

from repro.core.geometry import Point
from repro.core.query import SpatialKeywordQuery, Weights
from repro.service.api import YaskEngine
from repro.service.executor import QueryExecutor, query_fingerprint


def make_query(x: float, *, k: int = 3, keywords=("kw000", "kw001")) -> SpatialKeywordQuery:
    return SpatialKeywordQuery(
        loc=Point(x, 0.5), doc=frozenset(keywords), k=k
    )


class CountingEngine:
    """Engine stub that counts executions and can block mid-query."""

    def __init__(self, *, gate: threading.Event | None = None) -> None:
        self.calls = 0
        self._lock = threading.Lock()
        self._gate = gate

    def query(self, query):
        with self._lock:
            self.calls += 1
        if self._gate is not None:
            self._gate.wait(timeout=10.0)
        return ("result-for", query_fingerprint(query))


class TestFingerprint:
    def test_keyword_order_is_canonical(self):
        a = make_query(0.1, keywords=("b", "a"))
        b = make_query(0.1, keywords=("a", "b"))
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_every_parameter_distinguishes(self):
        base = make_query(0.1)
        assert query_fingerprint(base) != query_fingerprint(make_query(0.2))
        assert query_fingerprint(base) != query_fingerprint(make_query(0.1, k=4))
        assert query_fingerprint(base) != query_fingerprint(
            base.with_weights(Weights.from_spatial(0.3))
        )
        assert query_fingerprint(base) != query_fingerprint(
            base.with_doc({"kw000"})
        )

    def test_separator_characters_in_keywords_cannot_collide(self):
        # HTTP payloads carry arbitrary strings: {"a", "b"} must not
        # share a fingerprint with the single keyword "a,b" (or "a|b").
        assert query_fingerprint(
            make_query(0.1, keywords=("a", "b"))
        ) != query_fingerprint(make_query(0.1, keywords=("a,b",)))
        assert query_fingerprint(
            make_query(0.1, keywords=("a", "b"))
        ) != query_fingerprint(make_query(0.1, keywords=("a|b",)))


class TestCaching:
    def test_repeat_query_is_a_cache_hit(self):
        engine = CountingEngine()
        executor = QueryExecutor(engine)
        first = executor.execute(make_query(0.1))
        second = executor.execute(make_query(0.1))
        assert engine.calls == 1
        assert first.source == "engine" and not first.cached
        assert second.source == "cache" and second.cached
        assert second.result == first.result
        stats = executor.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_lru_eviction_order(self):
        engine = CountingEngine()
        executor = QueryExecutor(engine, cache_capacity=2)
        q1, q2, q3 = make_query(0.1), make_query(0.2), make_query(0.3)
        executor.execute(q1)
        executor.execute(q2)
        executor.execute(q1)  # refresh q1: q2 is now least recently used
        executor.execute(q3)  # evicts q2
        assert executor.cached_fingerprints() == (
            query_fingerprint(q1),
            query_fingerprint(q3),
        )
        assert executor.stats().evictions == 1
        assert executor.execute(q1).cached
        assert not executor.execute(q2).cached  # q2 must re-execute

    def test_capacity_zero_disables_caching(self):
        engine = CountingEngine()
        executor = QueryExecutor(engine, cache_capacity=0)
        executor.execute(make_query(0.1))
        executor.execute(make_query(0.1))
        assert engine.calls == 2
        assert executor.stats().size == 0

    def test_invalidate_forces_reexecution(self):
        engine = CountingEngine()
        executor = QueryExecutor(engine)
        executor.execute(make_query(0.1))
        assert executor.invalidate() == 1
        execution = executor.execute(make_query(0.1))
        assert not execution.cached
        assert engine.calls == 2
        stats = executor.stats()
        assert stats.invalidations == 1
        assert stats.size == 1

    def test_invalidation_during_flight_bars_stale_insert(self):
        gate = threading.Event()
        engine = CountingEngine(gate=gate)
        executor = QueryExecutor(engine)
        done = []

        def run():
            done.append(executor.execute(make_query(0.1)))

        worker = threading.Thread(target=run)
        worker.start()
        while engine.calls == 0:  # leader is inside engine.query
            pass
        executor.invalidate()  # dataset changed mid-execution
        gate.set()
        worker.join(timeout=10.0)
        assert done and done[0].source == "engine"
        # The in-flight result must not have been cached post-invalidation.
        assert executor.stats().size == 0
        executor.execute(make_query(0.1))
        assert engine.calls == 2

    def test_leader_failure_propagates_and_is_not_cached(self):
        class FailingEngine:
            calls = 0

            def query(self, query):
                self.calls += 1
                raise RuntimeError("index offline")

        engine = FailingEngine()
        executor = QueryExecutor(engine)
        with pytest.raises(RuntimeError):
            executor.execute(make_query(0.1))
        assert executor.stats().size == 0
        with pytest.raises(RuntimeError):
            executor.execute(make_query(0.1))
        assert engine.calls == 2


class TestInflightDedup:
    def test_post_invalidation_request_does_not_join_stale_flight(self):
        """A request issued after invalidate() must re-execute, not
        piggy-back on an in-flight execution from the old generation."""
        gate = threading.Event()

        class OnceBlockingEngine:
            def __init__(self):
                self.calls = 0
                self._lock = threading.Lock()

            def query(self, query):
                with self._lock:
                    self.calls += 1
                    call = self.calls
                if call == 1:
                    gate.wait(timeout=10.0)
                return ("result-of-call", call)

        engine = OnceBlockingEngine()
        executor = QueryExecutor(engine)
        query = make_query(0.1)
        stale = []

        leader = threading.Thread(
            target=lambda: stale.append(executor.execute(query))
        )
        leader.start()
        while engine.calls == 0:
            pass
        executor.invalidate()  # dataset changed while call 1 is in flight

        # This request starts after the invalidation: it must see the
        # new dataset (a second engine call), not the stale flight.
        fresh = executor.execute(query)
        assert fresh.source == "engine"
        assert fresh.result == ("result-of-call", 2)

        gate.set()
        leader.join(timeout=10.0)
        assert stale[0].result == ("result-of-call", 1)
        # Only the post-invalidation result may live in the cache.
        assert executor.execute(query).result == ("result-of-call", 2)


    def test_concurrent_identical_queries_execute_once(self):
        gate = threading.Event()
        engine = CountingEngine(gate=gate)
        executor = QueryExecutor(engine)
        query = make_query(0.1)
        executions = []
        executions_lock = threading.Lock()

        def run():
            execution = executor.execute(query)
            with executions_lock:
                executions.append(execution)

        threads = [threading.Thread(target=run) for _ in range(8)]
        for thread in threads:
            thread.start()
        while engine.calls == 0:
            pass
        # Give the followers a chance to register against the leader,
        # then release everyone.
        while len(executor._inflight) == 0:
            pass
        gate.set()
        for thread in threads:
            thread.join(timeout=10.0)

        assert len(executions) == 8
        assert engine.calls == 1
        sources = sorted(execution.source for execution in executions)
        assert sources.count("engine") == 1
        assert all(s in ("engine", "inflight", "cache") for s in sources)
        assert len({id(execution.result) for execution in executions}) == 1


class TestBatch:
    def test_batch_preserves_order_and_dedups(self):
        engine = CountingEngine()
        executor = QueryExecutor(engine, max_workers=4)
        queries = [
            make_query(0.1),
            make_query(0.2),
            make_query(0.1),  # duplicate of the first
            make_query(0.3),
        ]
        batch = executor.execute_batch(queries)
        assert len(batch) == 4
        assert [e.fingerprint for e in batch.executions] == [
            query_fingerprint(q) for q in queries
        ]
        assert engine.calls == 3  # the duplicate never reached the engine
        assert batch.total_ms >= 0.0

    def test_empty_batch(self):
        executor = QueryExecutor(CountingEngine())
        batch = executor.execute_batch([])
        assert len(batch) == 0 and batch.total_ms == 0.0

    def test_single_worker_batch_is_sequential(self):
        engine = CountingEngine()
        executor = QueryExecutor(engine, max_workers=1)
        batch = executor.execute_batch([make_query(0.1), make_query(0.2)])
        assert engine.calls == 2
        assert len(batch.results) == 2


class TestRealEngine:
    def test_cached_result_matches_fresh_result(self, small_db):
        engine = YaskEngine(small_db, max_entries=8)
        executor = QueryExecutor(engine)
        query = engine.make_query(Point(0.5, 0.5), {"kw000", "kw001"}, 5)
        fresh = executor.execute(query)
        cached = executor.execute(query)
        assert cached.cached
        assert cached.result is fresh.result
        assert [e.obj.oid for e in cached.result] == [
            e.obj.oid for e in engine.query(query)
        ]

    def test_executor_audit_covers_cached_results(self, small_db):
        engine = YaskEngine(small_db, max_entries=8)
        executor = QueryExecutor(engine)
        query = engine.make_query(Point(0.5, 0.5), {"kw000"}, 4)
        executor.execute(query)
        execution, report = executor.audit(query)
        assert execution.cached
        assert report.ok

    def test_engine_query_batch_matches_single_queries(self, small_db):
        engine = YaskEngine(small_db, max_entries=8)
        queries = [
            engine.make_query(Point(0.2 + 0.1 * i, 0.5), {"kw000", "kw001"}, 3)
            for i in range(5)
        ]
        timed = engine.query_batch(queries, max_workers=4)
        assert len(timed) == 5
        for query, entry in zip(queries, timed):
            expected = engine.query(query)
            assert [e.obj.oid for e in entry.value] == [
                e.obj.oid for e in expected
            ]
            assert entry.response_ms >= 0.0


class TestValidation:
    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueryExecutor(CountingEngine(), cache_capacity=-1)

    def test_bad_workers_rejected(self):
        with pytest.raises(ValueError):
            QueryExecutor(CountingEngine(), max_workers=0)

    def test_audit_requires_scorer(self):
        executor = QueryExecutor(CountingEngine())
        with pytest.raises(TypeError):
            executor.audit(make_query(0.1))


class TestInvalidationDuringBatch:
    """Regression: the generation counter must cover the batch path —
    no request issued after invalidate() may be served a result
    computed against the pre-invalidation dataset."""

    def test_invalidate_mid_batch_bars_stale_results(self):
        class VersionedEngine:
            """Answers carry a dataset version; the first call blocks."""

            def __init__(self):
                self.version = 1
                self.first_started = threading.Event()
                self.release = threading.Event()
                self.calls = 0
                self._lock = threading.Lock()

            def query(self, query):
                with self._lock:
                    self.calls += 1
                    first = self.calls == 1
                if first:
                    self.first_started.set()
                    self.release.wait(timeout=10.0)
                return (self.version, query_fingerprint(query))

        engine = VersionedEngine()
        executor = QueryExecutor(engine, max_workers=4)
        queries = [make_query(0.1), make_query(0.2), make_query(0.3)]

        batches = []
        worker = threading.Thread(
            target=lambda: batches.append(executor.execute_batch(queries))
        )
        worker.start()
        assert engine.first_started.wait(timeout=10.0)

        # The dataset changes while the batch is in flight.
        engine.version = 2
        executor.invalidate()
        engine.release.set()
        worker.join(timeout=10.0)
        assert batches and len(batches[0]) == 3

        # Every request issued *after* the invalidation must observe the
        # new dataset: nothing the batch computed under generation 0 may
        # be served from the cache, for any member of the batch.
        for query in queries:
            execution = executor.execute(query)
            assert execution.result[0] == 2, (
                f"stale pre-invalidation result served for {execution.fingerprint}"
            )

    def test_post_invalidation_request_does_not_join_batch_flight(self):
        """A single execute() racing a still-running batch member from
        the old generation must start a fresh engine execution."""

        class OnceBlockingEngine:
            def __init__(self):
                self.version = 1
                self.first_started = threading.Event()
                self.release = threading.Event()
                self.calls = 0
                self._lock = threading.Lock()

            def query(self, query):
                with self._lock:
                    self.calls += 1
                    first = self.calls == 1
                    seen_version = self.version  # dataset at call start
                if first:
                    self.first_started.set()
                    self.release.wait(timeout=10.0)
                return (seen_version, query_fingerprint(query))

        engine = OnceBlockingEngine()
        executor = QueryExecutor(engine, max_workers=2)
        query = make_query(0.7)

        batches = []
        worker = threading.Thread(
            target=lambda: batches.append(executor.execute_batch([query]))
        )
        worker.start()
        assert engine.first_started.wait(timeout=10.0)

        engine.version = 2
        executor.invalidate()

        # Issued after the invalidation, while the batch member is still
        # inside the engine: must not piggy-back on its stale flight.
        fresh = executor.execute(query)
        assert fresh.source == "engine"
        assert fresh.result[0] == 2

        engine.release.set()
        worker.join(timeout=10.0)
        # The batch member itself (asked pre-invalidation) may carry the
        # old version, but it must not have populated the cache.
        assert batches[0].executions[0].result[0] == 1
        assert executor.execute(query).result[0] == 2
