"""Service-tier tests for the sharded engine (`YaskEngine(shards=N)`).

Covers the wiring the property suite does not: the engine facade,
the executor tier's "no extra search" guarantee on cached why-not
questions (scatter counters stand in for ``SearchStats``), the
``GET /api/stats`` ``shards`` section and the CLI ``--shards`` flag.
"""

import json

import pytest

from repro.core.query import SpatialKeywordQuery
from repro.datasets.hotels import hong_kong_hotels
from repro.service.api import YaskEngine
from repro.service.cli import main
from repro.service.client import YaskClient
from repro.service.executor import QueryExecutor, WhyNotExecutor, WhyNotQuestion
from repro.service.server import YaskHTTPServer
from repro.text.similarity import CosineTfIdfSimilarity


@pytest.fixture(scope="module")
def hotels():
    return hong_kong_hotels()


@pytest.fixture(scope="module")
def sharded_hotels_engine(hotels):
    return YaskEngine(hotels, shards=4)


@pytest.fixture(scope="module")
def plain_hotels_engine(hotels):
    return YaskEngine(hotels)


class TestEngineFacade:
    def test_hotels_topk_parity(
        self, sharded_hotels_engine, plain_hotels_engine
    ):
        for keywords, k in [({"clean", "comfortable"}, 3), ({"harbour"}, 5)]:
            query = plain_hotels_engine.make_query(
                hong_kong_hotels().objects[7].loc, keywords, k
            )
            expected = plain_hotels_engine.query(query)
            actual = sharded_hotels_engine.query(query)
            assert [tuple(e) for e in actual] == [tuple(e) for e in expected]

    def test_shard_router_exposed(self, sharded_hotels_engine):
        router = sharded_hotels_engine.shard_router
        assert router is not None
        assert len(router) == 4
        assert sum(router.shard_sizes()) == 539

    def test_unsharded_engine_has_no_router(self, plain_hotels_engine):
        assert plain_hotels_engine.shard_router is None

    def test_whynot_parity(self, sharded_hotels_engine, plain_hotels_engine):
        query = plain_hotels_engine.make_query(
            hong_kong_hotels().objects[7].loc, {"clean", "comfortable"}, 3
        )
        missing = ["Grand Victoria Harbour Hotel"]
        expected = plain_hotels_engine.why_not(query, missing)
        actual = sharded_hotels_engine.why_not(query, missing)
        assert actual.preference == expected.preference
        assert actual.keyword == expected.keyword
        assert actual.best_model == expected.best_model

    def test_audit_passes_on_sharded_results(self, sharded_hotels_engine):
        result = sharded_hotels_engine.top_k(
            hong_kong_hotels().objects[0].loc, {"clean"}, 4
        )
        assert sharded_hotels_engine.audit(result).ok

    def test_kernel_free_model_rejected(self, hotels):
        cosine = CosineTfIdfSimilarity(
            hotels.keyword_document_frequencies(), len(hotels)
        )
        with pytest.raises(ValueError, match="columnar kernel"):
            YaskEngine(hotels, text_model=cosine, shards=2)

    def test_shards_excludes_use_index_false(self, hotels):
        with pytest.raises(ValueError, match="mutually exclusive"):
            YaskEngine(hotels, shards=2, use_index=False)

    def test_close_releases_scatter_pool(self, hotels):
        engine = YaskEngine(hotels, shards=2, shard_workers=2)
        pool = engine.topk_engine._pool
        assert pool is not None
        engine.close()
        engine.close()  # idempotent
        assert pool._shutdown
        # Unsharded engines close as a no-op.
        YaskEngine(hotels).close()

    def test_round_robin_partitioner(self, hotels, plain_hotels_engine):
        engine = YaskEngine(hotels, shards=3, partitioner="round-robin")
        query = engine.make_query(hotels.objects[3].loc, {"harbour"}, 4)
        assert [tuple(e) for e in engine.query(query)] == [
            tuple(e) for e in plain_hotels_engine.query(query)
        ]


class TestCachedWhyNotRunsNoScatter:
    """PR 2's "no extra search" contract, restated for the scatter tier.

    A why-not question whose underlying query is already cached must
    charge zero scatter-gather searches — the scatter counters are the
    sharded engine's ``SearchStats``.
    """

    def test_cached_query_charges_no_scatter(self, hotels):
        engine = YaskEngine(hotels, shards=4)
        topk = QueryExecutor(engine, max_workers=1)
        whynot = WhyNotExecutor(engine, topk, max_workers=1)
        query = engine.make_query(hotels.objects[7].loc, {"clean"}, 3)
        topk.execute(query)
        router = engine.shard_router
        searches_before = router.stats.to_dict()["topk_searches"]

        ranking = engine.scorer.rank_all(query)
        missing = (ranking[query.k].obj.oid,)
        execution = whynot.execute(
            WhyNotQuestion(query=query, missing=missing, model="explain")
        )
        assert execution.topk_source == "cache"
        assert (
            router.stats.to_dict()["topk_searches"] == searches_before
        ), "a cached query's why-not must not re-run the scatter"

        # And a repeated question is a pure cache hit: no scatter, no
        # why-not computation.
        repeat = whynot.execute(
            WhyNotQuestion(query=query, missing=missing, model="explain")
        )
        assert repeat.source == "cache"
        assert router.stats.to_dict()["topk_searches"] == searches_before
        whynot.close()
        topk.close()


class TestStatsEndpoint:
    @pytest.fixture()
    def server(self, hotels):
        from tests.service.conftest import running_server

        with running_server(YaskEngine(hotels, shards=4), port=0) as server:
            yield server

    def test_shards_section(self, server):
        client = YaskClient(server.endpoint)
        client.query(x=114.17, y=22.29, keywords=["clean"], k=3)
        stats = client._call("GET", "/api/stats")
        shards = stats["shards"]
        assert shards["count"] == 4
        assert shards["partitioner"] == "grid"
        assert sum(shards["objects"]) == 539
        assert shards["topk_searches"] >= 1
        assert (
            shards["topk_shards_scanned"] + shards["topk_shards_skipped"]
            >= shards["topk_searches"]
        )
        assert shards["topk_scatter_ms"] >= 0.0

    def test_unsharded_server_reports_null(self, hotels):
        from tests.service.conftest import running_server

        with running_server(YaskEngine(hotels), port=0) as server:
            client = YaskClient(server.endpoint)
            stats = client._call("GET", "/api/stats")
            assert stats["shards"] is None
            assert stats["procpool"] is None


class TestCli:
    def test_shards_flag_parity(self, capsys):
        argv = [
            "query", "--dataset", "coffee", "--x", "114.158", "--y", "22.282",
            "--keywords", "coffee", "--k", "3",
        ]
        assert main(argv) == 0
        plain = json.loads(capsys.readouterr().out)
        assert main(argv + ["--shards", "3"]) == 0
        sharded = json.loads(capsys.readouterr().out)
        assert sharded == plain

    def test_partitioner_choices_validated(self):
        with pytest.raises(SystemExit):
            main(
                ["query", "--dataset", "coffee", "--x", "0", "--y", "0",
                 "--keywords", "coffee", "--shards", "2",
                 "--partitioner", "hash"]
            )
