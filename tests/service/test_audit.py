"""Tests for the result audit (:mod:`repro.service.audit`)."""

import pytest

from repro.core.query import QueryResult, RankedObject
from repro.service.api import YaskEngine
from repro.service.audit import audit_result

from tests.conftest import random_queries


@pytest.fixture(scope="module")
def engine(small_db):
    return YaskEngine(small_db, max_entries=8)


class TestCleanAudits:
    def test_index_results_pass_audit(self, small_db, engine):
        for q in random_queries(small_db, 8, seed=250, k=5):
            report = engine.audit(engine.query(q))
            assert report.ok, report.describe()
            assert report.findings == ()

    def test_brute_force_results_pass_audit(self, small_db):
        brute = YaskEngine(small_db, use_index=False)
        for q in random_queries(small_db, 4, seed=251, k=7):
            assert brute.audit(brute.query(q)).ok

    def test_describe_mentions_ok(self, small_db, engine):
        q = random_queries(small_db, 1, seed=252, k=3)[0]
        text = engine.audit(engine.query(q)).describe()
        assert "audit ok" in text


class TestCorruptionDetection:
    def _tamper(self, result, *, drop_first=False, swap_score=False):
        entries = list(result.entries)
        if drop_first:
            entries = entries[1:]
            entries = [
                RankedObject(
                    obj=e.obj, score=e.score, sdist=e.sdist, tsim=e.tsim,
                    rank=i,
                )
                for i, e in enumerate(entries, start=1)
            ]
        if swap_score:
            first = entries[0]
            entries[0] = RankedObject(
                obj=first.obj, score=first.score + 0.125, sdist=first.sdist,
                tsim=first.tsim, rank=1,
            )
        return QueryResult(result.query, entries)

    def test_detects_missing_entry(self, small_db, engine):
        q = random_queries(small_db, 1, seed=253, k=5)[0]
        tampered = self._tamper(engine.query(q), drop_first=True)
        report = engine.audit(tampered)
        assert not report.ok
        kinds = {finding.kind for finding in report.findings}
        assert "size-mismatch" in kinds or "wrong-object" in kinds

    def test_detects_score_drift(self, small_db, engine):
        q = random_queries(small_db, 1, seed=254, k=5)[0]
        tampered = self._tamper(engine.query(q), swap_score=True)
        report = engine.audit(tampered)
        assert not report.ok
        assert any(f.kind == "score-drift" for f in report.findings)
        assert "audit FAILED" in report.describe()

    def test_detects_wrong_object_order(self, small_db, engine):
        q = random_queries(small_db, 1, seed=255, k=5)[0]
        result = engine.query(q)
        entries = list(result.entries)
        # Swap positions 1 and 2 (re-ranked to stay structurally valid).
        swapped = [
            RankedObject(obj=entries[1].obj, score=entries[1].score,
                         sdist=entries[1].sdist, tsim=entries[1].tsim, rank=1),
            RankedObject(obj=entries[0].obj, score=entries[0].score,
                         sdist=entries[0].sdist, tsim=entries[0].tsim, rank=2),
            *entries[2:],
        ]
        report = engine.audit(QueryResult(q, swapped))
        if entries[0].obj.oid != entries[1].obj.oid:
            assert not report.ok
            assert any(f.kind == "wrong-object" for f in report.findings)

    def test_stale_index_detected(self, small_db, tmp_path):
        # Persist an index, rebuild the database with a permuted object
        # (simulating drift between disk index and database), and audit.
        from repro.core.geometry import Point
        from repro.core.objects import SpatialDatabase, SpatialObject
        from repro.core.scoring import Scorer
        from repro.core.topk import BestFirstTopK
        from repro.index.persistence import save_index, load_index
        from repro.index.setrtree import SetRTree

        tree = SetRTree.build(small_db, max_entries=8)
        path = tmp_path / "stale.json"
        save_index(tree, path)

        # New database: object 0 moved far away but same id.
        moved = [
            SpatialObject(
                obj.oid,
                Point(obj.loc.x + 0.9, obj.loc.y) if obj.oid == 0 else obj.loc,
                obj.doc,
                obj.name,
            )
            for obj in small_db
        ]
        drifted_db = SpatialDatabase(moved, dataspace=small_db.dataspace)
        # The loaded index recomputes summaries from the *new* database,
        # so structure is stale but bounds are honest: results may be
        # suboptimal in node visit order yet must still audit clean.
        loaded = load_index(path, drifted_db)
        scorer = Scorer(drifted_db)
        q = random_queries(drifted_db, 1, seed=256, k=5)[0]
        served = BestFirstTopK(loaded, scorer).search(q)
        report = audit_result(scorer, served)
        # Bounds recomputed on load keep correctness: audit passes.
        assert report.ok
