"""Tests for the ``yask`` CLI (:mod:`repro.service.cli`)."""

import json

import pytest

from repro.service.cli import build_parser, load_dataset, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_args(self):
        args = build_parser().parse_args(
            ["query", "--x", "1.0", "--y", "2.0", "--keywords", "a,b", "--k", "4"]
        )
        assert args.command == "query"
        assert args.k == 4

    def test_whynot_args(self):
        args = build_parser().parse_args(
            [
                "whynot", "--x", "1", "--y", "2", "--keywords", "a",
                "--missing", "Grand Victoria Harbour Hotel", "--lambda", "0.3",
            ]
        )
        assert args.lam == 0.3
        assert args.model == "both"


class TestDatasets:
    def test_builtin_names(self):
        assert len(load_dataset("hotels")) == 539
        assert len(load_dataset("coffee")) == 60

    def test_json_path(self, tmp_path, small_db):
        from repro.datasets.loaders import save_json

        path = tmp_path / "db.json"
        save_json(small_db, path)
        assert len(load_dataset(str(path))) == len(small_db)


class TestCommands:
    def test_query_command_outputs_json(self, capsys):
        code = main(
            [
                "query", "--dataset", "coffee", "--x", "114.158", "--y", "22.282",
                "--keywords", "coffee", "--k", "3",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["entries"]) == 3

    def test_whynot_command_both_models(self, capsys):
        code = main(
            [
                "whynot", "--dataset", "coffee", "--x", "114.158", "--y", "22.282",
                "--keywords", "coffee", "--k", "3", "--ws", "0.15",
                "--missing", "Starbucks Central",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "explanation" in payload
        assert "preference" in payload
        assert "keywords" in payload
        assert payload["preference"]["penalty"] <= 0.5 + 1e-12

    def test_whynot_not_missing_exits_2(self, capsys):
        # Ask why-not about an object that is already in the result.
        code = main(
            [
                "whynot", "--dataset", "coffee", "--x", "114.158", "--y", "22.282",
                "--keywords", "coffee", "--k", "60",
                "--missing", "Starbucks Central",
            ]
        )
        assert code == 2
        assert "why-not error" in capsys.readouterr().err

    def test_demo_command_renders_panels(self, capsys):
        assert main(["demo", "--width", "60"]) == 0
        out = capsys.readouterr().out
        assert "Panel 1: map" in out
        assert "Refined queries" in out

    def test_whynot_missing_by_id(self, capsys):
        code = main(
            [
                "whynot", "--dataset", "coffee", "--x", "114.158", "--y", "22.282",
                "--keywords", "coffee", "--k", "3", "--ws", "0.15",
                "--missing", "0", "--model", "preference",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "preference" in payload and "keywords" not in payload

    def test_stats_command(self, capsys):
        assert main(["stats", "--dataset", "coffee"]) == 0
        out = capsys.readouterr().out
        assert "SetR-tree:" in out and "KcR-tree:" in out
        assert "objects = 60" in out

    def test_audit_command_passes_on_clean_engine(self, capsys):
        code = main(
            [
                "audit", "--dataset", "coffee", "--x", "114.158", "--y", "22.282",
                "--keywords", "coffee", "--k", "5",
            ]
        )
        assert code == 0
        assert "audit ok" in capsys.readouterr().out


class TestBatchCommands:
    def test_batch_command_repeats_hit_the_cache(self, capsys, tmp_path):
        workload = [
            {"x": 114.158, "y": 22.282, "keywords": ["coffee"], "k": 3},
            {"x": 114.160, "y": 22.284, "keywords": ["espresso"], "k": 2},
        ]
        path = tmp_path / "queries.json"
        path.write_text(json.dumps(workload))
        code = main(
            [
                "batch", "--dataset", "coffee", "--file", str(path),
                "--repeat", "2",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["batches"]) == 2
        assert payload["cache"]["hits"] >= len(workload)

    def test_whynot_batch_command(self, capsys, tmp_path):
        workload = [
            {
                "x": 114.158, "y": 22.282, "keywords": ["coffee"], "k": 3,
                "missing": ["Cup & Co 26"],
            },
            {
                "x": 114.158, "y": 22.282, "keywords": ["coffee"], "k": 3,
                "missing": ["Cup & Co 26"], "model": "preference",
            },
        ]
        path = tmp_path / "questions.json"
        path.write_text(json.dumps(workload))
        code = main(
            [
                "whynot-batch", "--dataset", "coffee", "--file", str(path),
                "--repeat", "2",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert len(payload["batches"]) == 2
        first_batch = payload["batches"][0]["results"]
        assert first_batch[0]["model"] == "full"
        assert first_batch[1]["model"] == "preference"
        # The second repeat is served entirely from the why-not cache.
        assert all(
            entry["cached"] for entry in payload["batches"][1]["results"]
        )
        assert payload["whynot_cache"]["hits"] >= len(workload)

    def test_whynot_batch_rejects_bad_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"x": 1.0}]))
        with pytest.raises(SystemExit):
            main(["whynot-batch", "--dataset", "coffee", "--file", str(path)])


class TestDurabilityCommands:
    def mutations_file(self, tmp_path):
        path = tmp_path / "mutations.json"
        path.write_text(
            json.dumps(
                [
                    {
                        "op": "insert",
                        "oid": 9000,
                        "x": 114.15,
                        "y": 22.28,
                        "keywords": ["espresso"],
                        "name": "logged cafe",
                    }
                ]
            )
        )
        return str(path)

    def test_serve_parses_wal_args(self):
        args = build_parser().parse_args(
            [
                "serve", "--wal-dir", "/tmp/wal", "--fsync", "never",
                "--snapshot-every", "16",
            ]
        )
        assert args.wal_dir == "/tmp/wal"
        assert args.fsync == "never"
        assert args.snapshot_every == 16

    def test_serve_snapshot_cadence_requires_wal(self):
        with pytest.raises(SystemExit, match="--wal-dir"):
            main(["serve", "--snapshot-every", "4"])

    def test_recover_and_follow_parse(self):
        args = build_parser().parse_args(
            ["recover", "--wal-dir", "/tmp/wal", "--snapshot"]
        )
        assert args.command == "recover"
        assert args.snapshot
        args = build_parser().parse_args(["follow", "--wal-dir", "/tmp/wal"])
        assert args.command == "follow"
        assert args.port == 8081

    def test_mutate_with_wal_dir_logs_and_recovers(self, capsys, tmp_path):
        wal_dir = str(tmp_path / "wal")
        code = main(
            [
                "mutate", "--dataset", "coffee",
                "--file", self.mutations_file(tmp_path),
                "--wal-dir", wal_dir, "--fsync", "never",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "recovered generation 0" in captured.err
        payload = json.loads(captured.out)
        assert payload["batches"][0]["generation"] == 1

        # The batch is durable: `yask recover` reports it without the
        # mutation file.
        code = main(
            ["recover", "--wal-dir", wal_dir, "--dataset", "coffee"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["generation"] == 1
        assert report["records_replayed"] == 1
        assert report["objects"] == 61  # 60 cafes + the logged insert

    def test_recover_with_snapshot_compacts(self, capsys, tmp_path):
        wal_dir = str(tmp_path / "wal")
        main(
            [
                "mutate", "--dataset", "coffee",
                "--file", self.mutations_file(tmp_path),
                "--wal-dir", wal_dir, "--fsync", "never",
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "recover", "--wal-dir", wal_dir, "--dataset", "coffee",
                "--snapshot",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["durability"]["snapshot_generation"] == 1
        # A snapshot now covers the log: recovery no longer needs the
        # seed dataset at all.
        code = main(["recover", "--wal-dir", wal_dir])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["generation"] == 1

    def test_recover_corrupt_log_exits_2(self, capsys, tmp_path):
        wal_dir = tmp_path / "wal"
        main(
            [
                "mutate", "--dataset", "coffee",
                "--file", self.mutations_file(tmp_path),
                "--wal-dir", str(wal_dir), "--fsync", "never",
            ]
        )
        capsys.readouterr()
        (wal_dir / "MANIFEST.json").write_text("{broken")
        code = main(["recover", "--wal-dir", str(wal_dir)])
        assert code == 2
        assert "recovery failed" in capsys.readouterr().err

    def test_recover_without_seed_or_snapshot_exits_2(self, capsys, tmp_path):
        wal_dir = str(tmp_path / "wal")
        main(
            [
                "mutate", "--dataset", "coffee",
                "--file", self.mutations_file(tmp_path),
                "--wal-dir", wal_dir, "--fsync", "never",
            ]
        )
        capsys.readouterr()
        code = main(["recover", "--wal-dir", wal_dir])
        assert code == 2
        assert "seed database" in capsys.readouterr().err

    def test_follow_missing_directory_exits_2(self, capsys, tmp_path):
        code = main(
            ["follow", "--wal-dir", str(tmp_path / "nope")]
        )
        assert code == 2
        assert "follower bootstrap failed" in capsys.readouterr().err
