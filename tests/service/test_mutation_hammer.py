"""Concurrent mutation vs. query/stats hammer (torn-read detector).

Writer threads apply mutation batches through the engine (with scoped
executor invalidation, exactly as the HTTP tier does) while reader
threads run ``query_batch``, ``whynot_batch`` and ``consistent_stats``.
The engine's read/write lock promises each reader a *consistent
snapshot*: every result it sees must be internally coherent (ranks
contiguous, members distinct, each entry's score recomputable from its
own components) and generation numbers must be monotone from every
thread's point of view.
"""

from __future__ import annotations

import math
import threading

from repro.core.geometry import Point
from repro.core.mutations import Mutation
from repro.core.objects import SpatialObject
from repro.core.query import SpatialKeywordQuery
from repro.datasets.generators import SyntheticDatasetBuilder
from repro.service.api import YaskEngine
from repro.service.executor import (
    QueryExecutor,
    WhyNotExecutor,
    WhyNotQuestion,
    consistent_stats,
)
from repro.whynot.errors import WhyNotError

import pytest

pytestmark = pytest.mark.slow

DURATION_S = 1.2


def test_mutation_query_hammer():
    database = SyntheticDatasetBuilder(seed=77).build(
        150, vocabulary_size=24, doc_length=(2, 5)
    )
    engine = YaskEngine(database, max_entries=8)
    topk = QueryExecutor(engine, cache_capacity=64, max_workers=4)
    whynot = WhyNotExecutor(engine, topk, cache_capacity=32, max_workers=4)

    queries = [
        SpatialKeywordQuery(
            loc=Point(0.1 * i, 1.0 - 0.1 * i),
            doc=frozenset({f"kw{i % 24:03d}", "kw000"}),
            k=5,
        )
        for i in range(8)
    ]
    # A stable target the writers never touch; sometimes it is in the
    # top-k (NotMissingError), which is a legitimate outcome, not a tear.
    stable_oid = database.objects[0].oid
    questions = [
        WhyNotQuestion(query=query, missing=(stable_oid,), model="preference")
        for query in queries[:3]
    ]

    stop = threading.Event()
    failures: list[str] = []
    # One generation log per writer: appends happen outside the engine's
    # write lock, so a single shared list could interleave out of order
    # even though the generations themselves are strictly monotone.
    writer_generations: dict[int, list[int]] = {10_000: [], 50_000: []}

    def fail(message: str) -> None:
        failures.append(message)
        stop.set()

    def writer(base_oid: int) -> None:
        generations = writer_generations[base_oid]
        owned: list[int] = []
        next_oid = base_oid
        while not stop.is_set():
            try:
                batch: list[Mutation] = []
                for _ in range(3):
                    if owned and len(owned) > 5:
                        batch.append(Mutation.delete(owned.pop(0)))
                    else:
                        obj = SpatialObject(
                            next_oid,
                            Point(
                                (next_oid % 97) / 97.0, (next_oid % 89) / 89.0
                            ),
                            frozenset({f"kw{next_oid % 24:03d}"}),
                        )
                        owned.append(next_oid)
                        next_oid += 1
                        batch.append(Mutation.insert(obj))
                report = engine.apply_mutations(batch)
                topk.invalidate_scoped(report.change.summary)
                generations.append(report.generation)
            except Exception as exc:  # noqa: BLE001 - the test's whole point
                fail(f"writer raised: {exc!r}")
                return

    def check_result(result) -> None:
        entries = result.entries
        oids = [entry.obj.oid for entry in entries]
        if len(set(oids)) != len(oids):
            fail(f"duplicate members in result: {oids}")
        if [entry.rank for entry in entries] != list(
            range(1, len(entries) + 1)
        ):
            fail(f"non-contiguous ranks: {[e.rank for e in entries]}")
        query = result.query
        for entry in entries:
            if not math.isfinite(entry.score):
                fail(f"non-finite score {entry.score}")
            recomputed = query.ws * (1.0 - entry.sdist) + query.wt * entry.tsim
            if recomputed != entry.score:
                fail(
                    f"torn entry: score {entry.score} != recomputed "
                    f"{recomputed} for oid {entry.obj.oid}"
                )
        scores = [entry.score for entry in entries]
        if scores != sorted(scores, reverse=True):
            fail(f"scores out of order: {scores}")

    def query_reader() -> None:
        last_generation = 0
        while not stop.is_set():
            try:
                batch = topk.execute_batch(queries)
                for execution in batch:
                    check_result(execution.result)
                generation = engine.generation
                if generation < last_generation:
                    fail(
                        f"generation went backwards: {generation} < "
                        f"{last_generation}"
                    )
                last_generation = generation
            except Exception as exc:  # noqa: BLE001
                fail(f"query reader raised: {exc!r}")
                return

    def whynot_reader() -> None:
        while not stop.is_set():
            try:
                batch = whynot.execute_batch(questions)
                for execution in batch:
                    if execution.source == "error":
                        continue  # e.g. NotMissing after a nearby insert
                    answer = execution.answer
                    if answer is None:
                        fail("non-error execution without an answer")
            except WhyNotError:
                pass
            except Exception as exc:  # noqa: BLE001
                fail(f"whynot reader raised: {exc!r}")
                return

    def stats_reader() -> None:
        while not stop.is_set():
            try:
                topk_stats, whynot_stats = consistent_stats(topk, whynot)
                # Every domain invalidation hits the linked why-not
                # cache exactly once — full invalidations cascade a full
                # drop, scoped invalidations a scoped one — so the
                # invalidation totals move in lockstep; a
                # mixed-generation snapshot would break this identity.
                expected = (
                    topk_stats.invalidations + topk_stats.scoped_invalidations
                )
                observed = (
                    whynot_stats.invalidations
                    + whynot_stats.scoped_invalidations
                )
                if observed != expected:
                    fail(
                        "mixed-generation stats snapshot: whynot "
                        f"{observed} != {expected}"
                    )
            except Exception as exc:  # noqa: BLE001
                fail(f"stats reader raised: {exc!r}")
                return

    threads = [
        threading.Thread(target=writer, args=(10_000,)),
        threading.Thread(target=writer, args=(50_000,)),
        threading.Thread(target=query_reader),
        threading.Thread(target=query_reader),
        threading.Thread(target=whynot_reader),
        threading.Thread(target=stats_reader),
    ]
    for thread in threads:
        thread.start()
    stop.wait(timeout=DURATION_S)
    stop.set()
    for thread in threads:
        thread.join(timeout=20)
    whynot.close()
    topk.close()
    engine.close()

    assert not failures, failures[:5]
    all_generations = sorted(
        generation
        for generations in writer_generations.values()
        for generation in generations
    )
    assert all_generations, "writers never applied a batch"
    for generations in writer_generations.values():
        assert generations == sorted(generations)  # monotone per writer
    # Generations are globally unique and gap-free across both writers.
    assert all_generations == list(range(1, len(all_generations) + 1))
    assert engine.generation == len(all_generations)
    # The post-hammer engine still answers exactly like a fresh rebuild.
    from repro.core.objects import SpatialDatabase

    fresh = YaskEngine(
        SpatialDatabase(
            engine.database.objects, dataspace=engine.database.dataspace
        ),
        max_entries=8,
    )
    for query in queries:
        got = engine.query(query)
        want = fresh.query(query)
        assert [
            (e.obj.oid, e.score, e.sdist, e.tsim) for e in got.entries
        ] == [(e.obj.oid, e.score, e.sdist, e.tsim) for e in want.entries]
    fresh.close()
