"""Concurrency tests: the threaded server under parallel browser sessions.

The paper's browser-server model implies concurrent users; the server is
a ThreadingHTTPServer over a thread-safe SessionManager.  These tests
drive several full sessions in parallel and check isolation.
"""

import threading

import pytest

from repro.service.api import YaskEngine
from repro.service.client import YaskClient
from repro.service.server import YaskHTTPServer


@pytest.fixture(scope="module")
def server(small_db):
    from tests.service.conftest import running_server

    with running_server(YaskEngine(small_db, max_entries=8)) as server:
        yield server


@pytest.fixture(scope="module")
def scenario(small_db):
    from repro.core.scoring import Scorer
    from repro.bench.workloads import generate_whynot_scenarios

    return generate_whynot_scenarios(
        Scorer(small_db), count=1, k=5, missing_count=1, seed=260,
        rank_window=25,
    )[0]


class TestParallelSessions:
    def test_parallel_full_interactions(self, server, scenario):
        errors: list[Exception] = []
        session_ids: list[str] = []
        lock = threading.Lock()

        def interaction(worker: int) -> None:
            try:
                client = YaskClient(server.endpoint)
                q = scenario.query
                response = client.query(q.loc.x, q.loc.y, sorted(q.doc), q.k, ws=q.ws)
                session_id = response["session_id"]
                with lock:
                    session_ids.append(session_id)
                missing = [m.oid for m in scenario.missing]
                client.explain(session_id, missing)
                client.refine_preference(session_id, missing)
                log = client.query_log(session_id)
                assert len(log) == 3
            except Exception as exc:  # pragma: no cover - surfaced below
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=interaction, args=(worker,))
            for worker in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert len(set(session_ids)) == 8  # every worker got its own session

    def test_logs_do_not_leak_across_sessions(self, server, scenario):
        client = YaskClient(server.endpoint)
        q = scenario.query
        first = client.query(q.loc.x, q.loc.y, sorted(q.doc), q.k, ws=q.ws)
        second = client.query(q.loc.x, q.loc.y, sorted(q.doc), q.k, ws=q.ws)
        client.explain(first["session_id"], [m.oid for m in scenario.missing])
        second_log = client.query_log(second["session_id"])
        assert all(entry["kind"] == "top-k query" for entry in second_log)
