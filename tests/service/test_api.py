"""Tests for the YaskEngine facade (:mod:`repro.service.api`)."""

import pytest

from repro.core.geometry import Point
from repro.core.query import Weights
from repro.core.scoring import Scorer
from repro.core.topk import BruteForceTopK
from repro.service.api import YaskEngine
from repro.text.similarity import CosineTfIdfSimilarity, DiceSimilarity


@pytest.fixture(scope="module")
def engine(small_db):
    return YaskEngine(small_db, max_entries=8)


class TestTopK:
    def test_matches_brute_force(self, small_db, engine):
        scorer = Scorer(small_db)
        oracle = BruteForceTopK(scorer)
        from tests.conftest import random_queries

        for q in random_queries(small_db, 10, seed=160, k=5):
            assert [e.obj.oid for e in engine.query(q)] == [
                e.obj.oid for e in oracle.search(q)
            ]

    def test_top_k_convenience(self, small_db, engine):
        loc = small_db.objects[0].loc
        keywords = set(list(small_db.vocabulary())[:2])
        result = engine.top_k(loc, keywords, 4)
        assert len(result) == 4
        assert result.query.weights == engine.default_weights

    def test_make_query_uses_server_default_weights(self, small_db):
        engine = YaskEngine(small_db, default_weights=Weights.from_spatial(0.7))
        q = engine.make_query(Point(0.5, 0.5), {"kw000"}, 3)
        assert q.ws == 0.7

    def test_explicit_weights_override_default(self, engine):
        q = engine.make_query(
            Point(0.5, 0.5), {"kw000"}, 3, weights=Weights.from_spatial(0.9)
        )
        assert q.ws == 0.9

    def test_timed_query_reports_milliseconds(self, small_db, engine):
        q = engine.make_query(Point(0.5, 0.5), {"kw000"}, 3)
        timed = engine.timed_query(q)
        assert timed.response_ms >= 0.0
        assert len(timed.value) == 3


class TestEngineVariants:
    def test_unindexed_engine_matches_indexed(self, small_db):
        indexed = YaskEngine(small_db, max_entries=8)
        brute = YaskEngine(small_db, use_index=False)
        q = indexed.make_query(Point(0.4, 0.6), {"kw001", "kw002"}, 5)
        assert [e.obj.oid for e in indexed.query(q)] == [
            e.obj.oid for e in brute.query(q)
        ]
        assert brute.set_rtree is None or brute.set_rtree is not None  # smoke

    def test_cosine_model_uses_ir_tree(self, small_db):
        model = CosineTfIdfSimilarity(
            small_db.keyword_document_frequencies(), len(small_db)
        )
        engine = YaskEngine(small_db, text_model=model)
        assert engine.ir_tree is not None
        q = engine.make_query(Point(0.5, 0.5), {"kw000"}, 3)
        scorer = Scorer(small_db, text_model=model)
        assert [e.obj.oid for e in engine.query(q)] == [
            e.obj.oid for e in BruteForceTopK(scorer).search(q)
        ]

    def test_dice_model_falls_back_gracefully(self, small_db):
        engine = YaskEngine(small_db, text_model=DiceSimilarity())
        q = engine.make_query(Point(0.5, 0.5), {"kw000"}, 3)
        assert len(engine.query(q)) == 3

    def test_indexes_exposed(self, engine, small_db):
        assert engine.kcr_tree is not None
        assert len(engine.kcr_tree) == len(small_db)
        assert engine.set_rtree is not None


class TestWhyNotIntegration:
    def _scenario(self, small_db, engine):
        from repro.bench.workloads import generate_whynot_scenarios

        return generate_whynot_scenarios(
            engine.scorer, count=1, k=5, missing_count=1, seed=161,
            rank_window=25,
        )[0]

    def test_full_why_not_flow(self, small_db, engine):
        s = self._scenario(small_db, engine)
        answer = engine.why_not(s.query, [m.oid for m in s.missing])
        assert answer.preference is not None and answer.keyword is not None
        for refinement in (answer.preference, answer.keyword):
            refined = engine.query(refinement.refined_query)
            assert all(refined.contains(m) for m in s.missing)

    def test_explain_only(self, small_db, engine):
        s = self._scenario(small_db, engine)
        explanation = engine.explain(s.query, [m.oid for m in s.missing])
        assert explanation.worst_rank > s.query.k

    def test_single_model_calls(self, small_db, engine):
        s = self._scenario(small_db, engine)
        missing_ids = [m.oid for m in s.missing]
        pref = engine.refine_preference(s.query, missing_ids, lam=0.3)
        kw = engine.refine_keywords(s.query, missing_ids, lam=0.3)
        assert pref.lam == 0.3 and kw.lam == 0.3
