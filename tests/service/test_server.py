"""End-to-end HTTP tests: the browser-server round trip of Fig. 1.

A real YaskHTTPServer is started on an ephemeral localhost port and
driven through the YaskClient, covering every endpoint and the error
paths (bad JSON, unknown sessions, not-missing objects).
"""

import json
from urllib import request

import pytest

from repro.service.api import YaskEngine
from repro.service.client import YaskClient, YaskClientError
from repro.service.server import YaskHTTPServer


@pytest.fixture(scope="module")
def server(small_db):
    from tests.service.conftest import running_server

    with running_server(YaskEngine(small_db, max_entries=8)) as server:
        yield server


@pytest.fixture(scope="module")
def client(server):
    return YaskClient(server.endpoint)


@pytest.fixture(scope="module")
def scenario(small_db):
    from repro.core.scoring import Scorer
    from repro.bench.workloads import generate_whynot_scenarios

    return generate_whynot_scenarios(
        Scorer(small_db), count=1, k=5, missing_count=1, seed=170,
        rank_window=25,
    )[0]


def open_session(client, scenario):
    q = scenario.query
    return client.query(
        q.loc.x, q.loc.y, sorted(q.doc), q.k, ws=q.ws
    )


class TestBasicEndpoints:
    def test_health(self, client, small_db):
        payload = client.health()
        assert payload["status"] == "ok"
        assert payload["objects"] == len(small_db)

    def test_objects_lists_all_markers(self, client, small_db):
        objects = client.objects()
        assert len(objects) == len(small_db)
        assert {"oid", "name", "x", "y", "keywords"} <= set(objects[0])

    def test_unknown_path_404(self, server):
        with pytest.raises(YaskClientError) as exc:
            YaskClient(server.endpoint)._call("GET", "/api/nope")
        assert exc.value.status == 404


class TestQueryEndpoint:
    def test_query_returns_session_and_result(self, client, scenario):
        response = open_session(client, scenario)
        assert response["session_id"].startswith("s")
        assert len(response["result"]["entries"]) == scenario.query.k
        assert response["response_ms"] >= 0.0

    def test_result_entries_are_rank_ordered(self, client, scenario):
        response = open_session(client, scenario)
        ranks = [entry["rank"] for entry in response["result"]["entries"]]
        assert ranks == sorted(ranks)

    def test_malformed_body_is_400(self, server):
        req = request.Request(
            f"{server.endpoint}/api/query",
            data=b"this is not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(Exception) as exc:
            request.urlopen(req)
        assert exc.value.code == 400

    def test_missing_fields_is_400(self, client):
        with pytest.raises(YaskClientError) as exc:
            client._call("POST", "/api/query", {"x": 0})
        assert exc.value.status == 400

    def test_empty_body_is_400(self, server):
        req = request.Request(f"{server.endpoint}/api/query", data=b"", method="POST")
        with pytest.raises(Exception) as exc:
            request.urlopen(req)
        assert exc.value.code == 400


class TestWhyNotEndpoints:
    def test_explain_flow(self, client, scenario):
        session_id = open_session(client, scenario)["session_id"]
        response = client.explain(
            session_id, [m.oid for m in scenario.missing]
        )
        explanation = response["explanation"]
        assert explanation["worst_rank"] > scenario.query.k
        assert explanation["objects"][0]["rank"] == scenario.missing_ranks[0]

    def test_preference_flow_revives_missing(self, client, scenario):
        session_id = open_session(client, scenario)["session_id"]
        response = client.refine_preference(
            session_id, [m.oid for m in scenario.missing], lam=0.5
        )
        refined_ids = {
            entry["object"]["oid"]
            for entry in response["refined_result"]["entries"]
        }
        assert {m.oid for m in scenario.missing} <= refined_ids
        assert 0.0 <= response["refinement"]["penalty"] <= 1.0

    def test_keyword_flow_revives_missing(self, client, scenario):
        session_id = open_session(client, scenario)["session_id"]
        response = client.refine_keywords(
            session_id, [m.oid for m in scenario.missing], lam=0.5
        )
        refined_ids = {
            entry["object"]["oid"]
            for entry in response["refined_result"]["entries"]
        }
        assert {m.oid for m in scenario.missing} <= refined_ids

    def test_not_missing_object_is_422(self, client, scenario):
        response = open_session(client, scenario)
        session_id = response["session_id"]
        top_oid = response["result"]["entries"][0]["object"]["oid"]
        with pytest.raises(YaskClientError) as exc:
            client.explain(session_id, [top_oid])
        assert exc.value.status == 422

    def test_unknown_session_is_404(self, client):
        with pytest.raises(YaskClientError) as exc:
            client.explain("s999999", [1])
        assert exc.value.status == 404

    def test_bad_lambda_is_400(self, client, scenario):
        session_id = open_session(client, scenario)["session_id"]
        with pytest.raises(YaskClientError) as exc:
            client._call(
                "POST",
                "/api/whynot/preference",
                {"session_id": session_id, "missing": [1], "lambda": 3.0},
            )
        assert exc.value.status == 400

    def test_empty_missing_is_400(self, client, scenario):
        session_id = open_session(client, scenario)["session_id"]
        with pytest.raises(YaskClientError) as exc:
            client._call(
                "POST",
                "/api/whynot/explain",
                {"session_id": session_id, "missing": []},
            )
        assert exc.value.status == 400


class TestBatchEndpoint:
    def make_payloads(self, scenario, count=3):
        q = scenario.query
        payloads = [
            {
                "x": q.loc.x + 0.001 * i,
                "y": q.loc.y,
                "keywords": sorted(q.doc),
                "k": q.k,
                "ws": q.ws,
            }
            for i in range(count)
        ]
        return payloads

    def test_batch_returns_per_query_results_in_order(self, client, scenario):
        payloads = self.make_payloads(scenario)
        response = client.query_batch(payloads)
        assert response["count"] == len(payloads)
        assert response["total_ms"] >= 0.0
        assert len(response["results"]) == len(payloads)
        for payload, entry in zip(payloads, response["results"]):
            assert entry["result"]["query"]["x"] == payload["x"]
            assert len(entry["result"]["entries"]) == payload["k"]
            assert entry["response_ms"] >= 0.0
            assert entry["source"] in ("engine", "cache", "inflight")

    def test_batch_duplicates_share_one_execution(self, client, scenario):
        payload = self.make_payloads(scenario, count=1)[0]
        payload["x"] += 7.0  # a location no other test queries
        response = client.query_batch([payload] * 4)
        cached = [entry["cached"] for entry in response["results"]]
        assert cached.count(False) == 1  # one engine execution, three reuses
        oids = [
            [e["object"]["oid"] for e in entry["result"]["entries"]]
            for entry in response["results"]
        ]
        assert all(o == oids[0] for o in oids)

    def test_repeat_single_query_is_cache_hit(self, client, scenario):
        payload = self.make_payloads(scenario, count=1)[0]
        payload["y"] += 5.0  # unique to this test
        first = client.query(
            payload["x"], payload["y"], payload["keywords"], payload["k"],
            ws=payload["ws"],
        )
        second = client.query(
            payload["x"], payload["y"], payload["keywords"], payload["k"],
            ws=payload["ws"],
        )
        assert first["cached"] is False
        assert second["cached"] is True
        log = client.query_log(second["session_id"])
        assert log[0]["cached"] is True

    def test_stats_endpoint_reports_counters(self, client, scenario):
        stats = client.stats()
        assert {"hits", "misses", "evictions", "size", "capacity"} <= set(stats)
        before = stats["hits"]
        payload = self.make_payloads(scenario, count=1)[0]
        payload["x"] += 11.0
        client.query_batch([payload])
        client.query_batch([payload])
        after = client.stats()
        assert after["hits"] >= before + 1

    def test_empty_batch_is_400(self, client):
        with pytest.raises(YaskClientError) as exc:
            client.query_batch([])
        assert exc.value.status == 400

    def test_malformed_batch_element_is_400_with_index(self, client):
        with pytest.raises(YaskClientError) as exc:
            client.query_batch([{"x": 1.0}])
        assert exc.value.status == 400
        assert "queries[0]" in str(exc.value)

    def test_oversized_batch_is_400(self, client, scenario):
        payload = self.make_payloads(scenario, count=1)[0]
        with pytest.raises(YaskClientError) as exc:
            client.query_batch([payload] * 300)
        assert exc.value.status == 400


class TestSessionLifecycle:
    def test_query_log_records_interactions(self, client, scenario):
        session_id = open_session(client, scenario)["session_id"]
        client.explain(session_id, [m.oid for m in scenario.missing])
        client.refine_preference(session_id, [m.oid for m in scenario.missing])
        log = client.query_log(session_id)
        kinds = [entry["kind"] for entry in log]
        assert kinds[0] == "top-k query"
        assert "why-not explanation" in kinds
        assert "preference adjustment" in kinds
        refinement_entries = [e for e in log if e["kind"] == "preference adjustment"]
        assert refinement_entries[0]["penalty"] is not None

    def test_close_session(self, client, scenario):
        session_id = open_session(client, scenario)["session_id"]
        assert client.close_session(session_id)
        with pytest.raises(YaskClientError) as exc:
            client.explain(session_id, [1])
        assert exc.value.status == 404

    def test_sessions_are_isolated(self, client, scenario):
        first = open_session(client, scenario)["session_id"]
        second = open_session(client, scenario)["session_id"]
        assert first != second
        client.explain(first, [m.oid for m in scenario.missing])
        assert all(
            entry["kind"] != "why-not explanation"
            for entry in client.query_log(second)
        )


class TestWhyNotBatchEndpoint:
    def make_question_payload(self, scenario, **overrides):
        q = scenario.query
        payload = {
            "x": q.loc.x,
            "y": q.loc.y,
            "keywords": sorted(q.doc),
            "k": q.k,
            "ws": q.ws,
            "missing": [m.oid for m in scenario.missing],
        }
        payload.update(overrides)
        return payload

    def test_batch_answers_in_order_with_models(self, client, scenario):
        payloads = [
            self.make_question_payload(scenario),
            self.make_question_payload(scenario, model="explain"),
            self.make_question_payload(scenario, model="preference"),
        ]
        response = client.whynot_batch(payloads)
        assert response["count"] == 3
        full, explain, preference = response["results"]
        assert full["model"] == "full"
        assert full["answer"]["best_model"] in (
            "preference adjustment", "keyword adaption"
        )
        assert explain["model"] == "explain"
        assert explain["answer"]["worst_rank"] > scenario.query.k
        assert preference["model"] == "preference"
        assert 0.0 <= preference["answer"]["penalty"] <= 1.0
        for entry in response["results"]:
            assert entry["source"] in ("engine", "cache", "inflight")
            assert entry["response_ms"] >= 0.0

    def test_repeated_question_is_served_from_cache(self, client, scenario):
        payload = self.make_question_payload(scenario, model="keywords")
        first = client.whynot_batch([payload])["results"][0]
        second = client.whynot_batch([payload])["results"][0]
        assert second["cached"] is True
        assert second["answer"] == first["answer"]

    def test_batch_reuses_cached_topk_result(self, client, scenario):
        # Prime the top-k cache through the ordinary query endpoint,
        # then ask why-not about the same query: the fresh computation
        # must report its initial result came from the top-k cache.
        q = scenario.query
        x = q.loc.x + 0.0005  # a query no other test asks about
        client.query(x, q.loc.y, sorted(q.doc), q.k, ws=q.ws)
        payload = self.make_question_payload(scenario, model="explain", x=x)
        entry = client.whynot_batch([payload])["results"][0]
        assert entry["source"] == "engine"
        assert entry["topk_source"] == "cache"

    def test_explain_lambda_does_not_fragment_the_cache(self, client, scenario):
        # λ does not influence an explanation; two explain questions
        # differing only in λ must share one cache entry.
        payload = self.make_question_payload(
            scenario, model="explain", y=scenario.query.loc.y + 0.0007
        )
        client.query(
            payload["x"], payload["y"], payload["keywords"], payload["k"],
            ws=payload["ws"],
        )
        first = client.whynot_batch([dict(payload, **{"lambda": 0.2})])
        second = client.whynot_batch([dict(payload, **{"lambda": 0.8})])
        assert first["results"][0]["source"] == "engine"
        assert second["results"][0]["source"] == "cache"

    def test_ill_posed_member_does_not_fail_the_batch(self, client, scenario):
        response = client.whynot_batch(
            [
                self.make_question_payload(scenario),
                self.make_question_payload(scenario, missing=["No Such Hotel"]),
            ]
        )
        good, bad = response["results"]
        assert good["answer"] is not None
        assert bad["answer"] is None
        assert bad["source"] == "error"
        assert "No Such Hotel" in bad["error"]

    def test_stats_report_both_caches(self, client):
        full = client._call("GET", "/api/stats")
        assert {"cache", "whynot_cache", "kernel"} <= set(full)
        whynot = client.whynot_stats()
        assert {"hits", "misses", "evictions", "size", "capacity"} <= set(whynot)

    def test_stats_report_kernel_counters(self, client, scenario):
        """The compute tier under the caches surfaces its work counters."""
        payload = self.make_question_payload(scenario, model="preference")
        client.whynot_batch([payload])
        kernel = client._call("GET", "/api/stats")["kernel"]
        assert kernel is not None
        assert {
            "full_passes", "score_passes", "point_scores", "dual_views",
        } <= set(kernel)
        assert kernel["dual_views"] >= 1  # the preference sweep ran columnar

    def test_malformed_member_is_400_with_index(self, client, scenario):
        with pytest.raises(YaskClientError) as exc:
            client.whynot_batch(
                [self.make_question_payload(scenario), {"x": 1.0}]
            )
        assert exc.value.status == 400
        assert "questions[1]" in str(exc.value)

    def test_unknown_model_is_400(self, client, scenario):
        with pytest.raises(YaskClientError) as exc:
            client.whynot_batch(
                [self.make_question_payload(scenario, model="telepathy")]
            )
        assert exc.value.status == 400

    def test_oversized_batch_is_400(self, client, scenario):
        payload = self.make_question_payload(scenario)
        with pytest.raises(YaskClientError) as exc:
            client.whynot_batch([payload] * 100)
        assert exc.value.status == 400

    def test_empty_batch_is_400(self, client):
        with pytest.raises(YaskClientError) as exc:
            client.whynot_batch([])
        assert exc.value.status == 400


class TestSessionWhyNotCaching:
    def test_repeated_session_question_is_cached_and_logged(
        self, client, scenario
    ):
        session_id = open_session(client, scenario)["session_id"]
        missing = [m.oid for m in scenario.missing]
        first = client.refine_combined(session_id, missing, lam=0.125)
        second = client.refine_combined(session_id, missing, lam=0.125)
        assert second["cached"] is True
        assert second["refinement"] == first["refinement"]
        log = client.query_log(session_id)
        combined = [e for e in log if e["kind"] == "combined refinement"]
        assert [entry["cached"] for entry in combined] == [False, True]

    def test_cache_is_shared_across_sessions(self, client, scenario):
        # Two users asking the same why-not question: the second answer
        # comes from the shared cache, exactly like top-k queries.
        missing = [m.oid for m in scenario.missing]
        first_session = open_session(client, scenario)["session_id"]
        second_session = open_session(client, scenario)["session_id"]
        client.explain(first_session, missing)
        response = client.explain(second_session, missing)
        assert response["cached"] is True


class TestDurabilityOverHTTP:
    def test_stats_report_durability_disabled_by_default(self, client):
        response = json.loads(
            request.urlopen(client._base_url + "/api/stats").read()
        )
        assert response["durability"] == {"enabled": False}

    def test_min_generation_on_a_primary(self, client, scenario):
        q = scenario.query
        # The current generation is always satisfiable...
        response = client.query(
            q.loc.x, q.loc.y, sorted(q.doc), q.k, min_generation=0
        )
        assert "result" in response
        # ...a future one is a structured 503, not stale data.
        with pytest.raises(YaskClientError) as exc:
            client.query(
                q.loc.x, q.loc.y, sorted(q.doc), q.k, min_generation=10**6
            )
        assert exc.value.status == 503
        assert "retry" in str(exc.value)

    def test_invalid_token_is_400(self, client, scenario):
        q = scenario.query
        payload = {
            "x": q.loc.x,
            "y": q.loc.y,
            "keywords": sorted(q.doc),
            "k": q.k,
            "min_generation": -3,
        }
        with pytest.raises(YaskClientError) as exc:
            client._call("POST", "/api/query", payload)
        assert exc.value.status == 400

    def test_durable_server_snapshots_on_cadence(self, tmp_path, small_db):
        from repro.core.objects import SpatialDatabase
        from repro.service.wal import WriteAheadLog

        engine = YaskEngine(
            SpatialDatabase(small_db.objects, dataspace=small_db.dataspace),
            wal=WriteAheadLog(tmp_path, fsync="never"),
        )
        from tests.service.conftest import running_server

        with running_server(engine, snapshot_every=2) as server:
            durable = YaskClient(server.endpoint)
            first = durable.mutate([{"op": "delete", "oid": 0}])
            assert "snapshot" not in first  # cadence of 2 not yet due
            second = durable.mutate([{"op": "delete", "oid": 1}])
            assert second["snapshot"]["generation"] == 2
            stats = durable.durability_stats()
            assert stats["role"] == "primary"
            assert stats["last_generation"] == 2
            assert stats["snapshot_generation"] == 2
            assert stats["snapshots_written"] == 1

    def test_snapshot_every_requires_a_wal(self, small_db):
        from repro.core.objects import SpatialDatabase

        engine = YaskEngine(
            SpatialDatabase(small_db.objects, dataspace=small_db.dataspace)
        )
        with pytest.raises(ValueError, match="snapshot_every"):
            YaskHTTPServer(engine, snapshot_every=2)
        engine.close()
