"""Tests for the JSON protocol (:mod:`repro.service.protocol`)."""

import json

import pytest

from repro.core.geometry import Point
from repro.core.query import DEFAULT_WEIGHTS, SpatialKeywordQuery, Weights
from repro.service.protocol import (
    ProtocolError,
    explanation_to_dict,
    keyword_refinement_to_dict,
    preference_refinement_to_dict,
    query_from_dict,
    query_to_dict,
    result_to_dict,
)


class TestQueryRoundTrip:
    def test_round_trip_preserves_fields(self):
        q = SpatialKeywordQuery(
            Point(1.25, -2.5), frozenset({"b", "a"}), 7, Weights.from_spatial(0.3)
        )
        parsed = query_from_dict(query_to_dict(q))
        assert parsed.loc == q.loc
        assert parsed.doc == q.doc
        assert parsed.k == q.k
        assert parsed.weights.ws == pytest.approx(q.weights.ws)

    def test_payload_is_json_serialisable(self):
        q = SpatialKeywordQuery(Point(0, 0), frozenset({"a"}), 1)
        json.dumps(query_to_dict(q))

    def test_weights_default_to_server_parameter(self):
        parsed = query_from_dict({"x": 0, "y": 0, "keywords": ["a"], "k": 1})
        assert parsed.weights == DEFAULT_WEIGHTS

    def test_custom_default_weights(self):
        parsed = query_from_dict(
            {"x": 0, "y": 0, "keywords": ["a"], "k": 1},
            default_weights=Weights.from_spatial(0.7),
        )
        assert parsed.ws == 0.7

    def test_ws_only_implies_wt(self):
        parsed = query_from_dict(
            {"x": 0, "y": 0, "keywords": ["a"], "k": 1, "ws": 0.25}
        )
        assert parsed.wt == 0.75

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"x": 0, "y": 0, "k": 1},                        # no keywords
            {"x": 0, "y": 0, "keywords": "abc", "k": 1},     # keywords not a list
            {"x": 0, "y": 0, "keywords": ["a"]},             # no k
            {"x": "no", "y": 0, "keywords": ["a"], "k": 1},  # bad type
            {"x": 0, "y": 0, "keywords": ["a"], "k": 0},     # invalid k
            {"x": 0, "y": 0, "keywords": [], "k": 1},        # empty keywords
            {"x": 0, "y": 0, "keywords": ["a"], "k": 1, "ws": 1.5},
        ],
    )
    def test_malformed_payload_raises_protocol_error(self, payload):
        with pytest.raises(ProtocolError):
            query_from_dict(payload)


class TestResponseSerialisation:
    @pytest.fixture(scope="class")
    def scenario(self, small_scorer):
        from repro.bench.workloads import generate_whynot_scenarios

        return generate_whynot_scenarios(
            small_scorer, count=1, k=5, missing_count=1, seed=150, rank_window=25
        )[0]

    def test_result_to_dict_shape(self, small_scorer, scenario):
        result = small_scorer.top_k(scenario.query)
        payload = result_to_dict(result)
        json.dumps(payload)
        assert len(payload["entries"]) == len(result)
        first = payload["entries"][0]
        assert first["rank"] == 1
        assert set(first) == {"rank", "score", "sdist", "tsim", "object"}

    def test_explanation_to_dict_shape(
        self, small_scorer, small_setrtree, scenario
    ):
        from repro.whynot.explanation import ExplanationGenerator

        generator = ExplanationGenerator(small_scorer, small_setrtree)
        explanation = generator.explain(scenario.query, scenario.missing)
        payload = explanation_to_dict(explanation)
        json.dumps(payload)
        assert payload["worst_rank"] == explanation.worst_rank
        assert payload["objects"][0]["reason"] in {
            "too-far", "low-text-relevance", "too-far-and-low-relevance",
            "preference-imbalance",
        }

    def test_preference_refinement_to_dict(self, small_scorer, scenario):
        from repro.whynot.preference import PreferenceAdjuster

        refinement = PreferenceAdjuster(small_scorer).refine(
            scenario.query, scenario.missing
        )
        payload = preference_refinement_to_dict(refinement)
        json.dumps(payload)
        assert payload["model"] == "preference-adjustment"
        assert payload["penalty"] == pytest.approx(refinement.penalty)

    def test_keyword_refinement_to_dict(
        self, small_scorer, small_kcrtree, scenario
    ):
        from repro.whynot.keyword import KeywordAdapter

        refinement = KeywordAdapter(small_scorer, small_kcrtree).refine(
            scenario.query, scenario.missing
        )
        payload = keyword_refinement_to_dict(refinement)
        json.dumps(payload)
        assert payload["model"] == "keyword-adaption"
        assert payload["added"] == sorted(refinement.added)


class TestMutationWireRoundTrip:
    """mutation_to_dict (the WAL's record shape) inverts mutation_from_dict."""

    def roundtrip(self, mutation):
        from repro.service.protocol import mutation_from_dict, mutation_to_dict

        payload = mutation_to_dict(mutation)
        assert json.loads(json.dumps(payload)) == payload  # JSON-clean
        return mutation_from_dict(payload)

    def test_insert_round_trips(self):
        from repro.core.mutations import Mutation
        from repro.core.objects import SpatialObject

        original = Mutation.insert(
            SpatialObject(
                7, Point(0.125, 0.375), frozenset({"b", "a"}), "named"
            )
        )
        assert self.roundtrip(original) == original

    def test_update_without_name_round_trips(self):
        from repro.core.mutations import Mutation
        from repro.core.objects import SpatialObject

        original = Mutation.update(
            SpatialObject(3, Point(0.1, 0.9), frozenset({"only"}))
        )
        restored = self.roundtrip(original)
        assert restored == original
        assert restored.obj.name is None

    def test_delete_round_trips(self):
        from repro.core.mutations import Mutation

        original = Mutation.delete(11)
        assert self.roundtrip(original) == original

    def test_awkward_floats_survive_bit_for_bit(self):
        # JSON float repr round-trips exactly — the property replay
        # parity depends on it.
        from repro.core.mutations import Mutation
        from repro.core.objects import SpatialObject

        original = Mutation.insert(
            SpatialObject(
                7, Point(0.1 + 0.2, 1.0 / 3.0), frozenset({"w"})
            )
        )
        restored = self.roundtrip(original)
        assert restored.obj.loc.x == original.obj.loc.x
        assert restored.obj.loc.y == original.obj.loc.y


class TestMinGenerationToken:
    def parse(self, payload):
        from repro.service.protocol import min_generation_from_dict

        return min_generation_from_dict(payload)

    def test_absent_means_any(self):
        assert self.parse({}) is None
        assert self.parse({"min_generation": None}) is None

    def test_valid_tokens(self):
        assert self.parse({"min_generation": 0}) == 0
        assert self.parse({"min_generation": 12}) == 12

    @pytest.mark.parametrize(
        "bad", [True, False, -1, 1.5, "3", [3], {}]
    )
    def test_invalid_tokens_are_protocol_errors(self, bad):
        with pytest.raises(ProtocolError, match="min_generation"):
            self.parse({"min_generation": bad})
