"""Tests for the caching/deduplicating/batching :class:`WhyNotExecutor`."""

import threading

import pytest

from repro.core.geometry import Point
from repro.core.query import SpatialKeywordQuery
from repro.service.api import YaskEngine
from repro.service.executor import (
    QueryExecutor,
    WhyNotExecutor,
    WhyNotQuestion,
    query_fingerprint,
    whynot_fingerprint,
)
from repro.whynot.errors import NotMissingError, UnknownObjectError


def make_query(x: float, *, k: int = 3, keywords=("kw000", "kw001")):
    return SpatialKeywordQuery(loc=Point(x, 0.5), doc=frozenset(keywords), k=k)


def make_question(x: float = 0.1, *, missing=(7,), model="full", lam=0.5):
    return WhyNotQuestion(
        query=make_query(x), missing=tuple(missing), model=model, lam=lam
    )


class StubEngine:
    """Minimal SupportsQuery + SupportsWhyNot engine for executor tests.

    ``resolve_missing_oids`` treats string refs named ``"name-of-N"`` as
    aliases of id ``N`` (mirroring database name resolution) and rejects
    negative ids like the real engine rejects unknown references.
    """

    def __init__(self, *, gate: threading.Event | None = None) -> None:
        self.query_calls = 0
        self.whynot_calls = 0
        self.initial_results_seen = []
        self._lock = threading.Lock()
        self._gate = gate

    def query(self, query):
        with self._lock:
            self.query_calls += 1
        return ("topk-result", query_fingerprint(query))

    def resolve_missing_oids(self, references):
        oids = set()
        for ref in references:
            if isinstance(ref, str):
                if not ref.startswith("name-of-"):
                    raise UnknownObjectError(ref)
                ref = int(ref.removeprefix("name-of-"))
            if ref < 0:
                raise UnknownObjectError(ref)
            oids.add(ref)
        return tuple(sorted(oids))

    def answer_whynot(self, question, *, initial_result=None):
        with self._lock:
            self.whynot_calls += 1
            self.initial_results_seen.append(initial_result)
        if self._gate is not None:
            self._gate.wait(timeout=10.0)
        return ("whynot-answer", question.model, question.lam)


def make_executors(engine=None, **kwargs):
    engine = engine if engine is not None else StubEngine()
    topk = QueryExecutor(engine, max_workers=kwargs.pop("topk_workers", 2))
    return engine, topk, WhyNotExecutor(engine, topk, **kwargs)


class TestQuestionValidation:
    def test_empty_missing_rejected(self):
        with pytest.raises(ValueError):
            make_question(missing=())

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            make_question(model="telepathy")

    def test_bad_lambda_rejected(self):
        with pytest.raises(ValueError):
            make_question(lam=1.5)


class TestFingerprint:
    def test_missing_order_and_duplicates_are_canonical(self):
        assert whynot_fingerprint(
            make_query(0.1), [3, 1, 2], "full", 0.5
        ) == whynot_fingerprint(make_query(0.1), [1, 2, 3, 2], "full", 0.5)

    def test_name_and_id_share_a_fingerprint(self):
        engine, _, executor = make_executors()
        by_id = make_question(missing=(4, 9))
        by_name = make_question(missing=("name-of-9", 4))
        assert executor.fingerprint(by_id) == executor.fingerprint(by_name)

    def test_every_parameter_distinguishes(self):
        base = whynot_fingerprint(make_query(0.1), [1], "full", 0.5)
        assert base != whynot_fingerprint(make_query(0.2), [1], "full", 0.5)
        assert base != whynot_fingerprint(make_query(0.1), [2], "full", 0.5)
        assert base != whynot_fingerprint(make_query(0.1), [1], "explain", 0.5)
        assert base != whynot_fingerprint(make_query(0.1), [1], "full", 0.25)

    def test_lambda_is_canonicalised_for_models_that_ignore_it(self):
        # An explanation does not depend on λ: questions differing only
        # in λ share a cache entry instead of recomputing.
        engine, _, executor = make_executors()
        a = make_question(model="explain", lam=0.2)
        b = make_question(model="explain", lam=0.8)
        assert executor.fingerprint(a) == executor.fingerprint(b)
        executor.execute(a)
        assert executor.execute(b).cached
        assert engine.whynot_calls == 1
        # ...but λ still distinguishes the refinement models.
        assert executor.fingerprint(
            make_question(model="preference", lam=0.2)
        ) != executor.fingerprint(make_question(model="preference", lam=0.8))

    def test_unknown_reference_raises_before_touching_the_cache(self):
        engine, _, executor = make_executors()
        with pytest.raises(UnknownObjectError):
            executor.execute(make_question(missing=(-1,)))
        assert executor.stats().requests == 0
        assert executor.stats().size == 0


class TestCaching:
    def test_repeat_question_is_a_cache_hit(self):
        engine, _, executor = make_executors()
        first = executor.execute(make_question())
        second = executor.execute(make_question())
        assert engine.whynot_calls == 1
        assert first.source == "engine" and not first.cached
        assert second.source == "cache" and second.cached
        assert second.answer == first.answer
        stats = executor.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_distinct_models_cache_separately(self):
        engine, _, executor = make_executors()
        executor.execute(make_question(model="full"))
        executor.execute(make_question(model="preference"))
        assert engine.whynot_calls == 2
        assert executor.stats().size == 2

    def test_lru_eviction(self):
        engine, _, executor = make_executors(cache_capacity=2)
        q1, q2, q3 = (make_question(x) for x in (0.1, 0.2, 0.3))
        executor.execute(q1)
        executor.execute(q2)
        executor.execute(q1)  # refresh q1: q2 is least recently used
        executor.execute(q3)  # evicts q2
        assert executor.stats().evictions == 1
        assert executor.execute(q1).cached
        assert not executor.execute(q2).cached


class TestTopKReuse:
    def test_full_answer_reuses_cached_topk(self):
        """Acceptance: a why-not question whose underlying top-k query
        is already cached must not re-execute the top-k search."""
        engine, topk, executor = make_executors()
        question = make_question()
        topk.execute(question.query)  # prime the top-k cache
        assert engine.query_calls == 1

        execution = executor.execute(question)
        assert execution.topk_source == "cache"
        assert engine.query_calls == 1  # the search never re-ran
        stats = topk.stats()
        assert stats.hits == 1 and stats.misses == 1
        # The executor really handed the cached result to the engine.
        assert engine.initial_results_seen == [
            ("topk-result", query_fingerprint(question.query))
        ]

    def test_cold_question_primes_the_topk_cache(self):
        engine, topk, executor = make_executors()
        question = make_question()
        execution = executor.execute(question)
        assert execution.topk_source == "engine"
        assert topk.execute(question.query).cached

    def test_refiner_models_skip_the_topk_fetch(self):
        # preference/keywords/combined rank in dual space: no initial
        # result is needed, so none may be charged.
        engine, topk, executor = make_executors()
        for model in ("preference", "keywords", "combined"):
            execution = executor.execute(make_question(model=model))
            assert execution.topk_source is None
        assert engine.query_calls == 0
        assert topk.stats().requests == 0

    def test_real_engine_search_stats_prove_no_retraversal(self, small_db):
        """Same acceptance against the real index: SearchStats'
        nodes_expanded must not move when the why-not answer starts
        from an already-cached top-k result."""
        engine = YaskEngine(small_db, max_entries=8)
        topk = QueryExecutor(engine)
        executor = WhyNotExecutor(engine, topk)
        query = engine.make_query(Point(0.5, 0.5), {"kw000", "kw001"}, 3)
        topk.execute(query)  # prime: one best-first traversal
        expanded_after_prime = engine.topk_engine.stats.nodes_expanded

        # A rank just outside the top-k makes a well-posed question.
        ranking = engine.scorer.rank_all(query)
        missing_oid = ranking[5].obj.oid
        execution = executor.execute(
            WhyNotQuestion(query=query, missing=(missing_oid,), model="explain")
        )
        assert execution.topk_source == "cache"
        assert engine.topk_engine.stats.nodes_expanded == expanded_after_prime
        assert topk.stats().hits == 1


class TestErrorHandling:
    def test_engine_rejections_propagate_and_are_not_cached(self, small_db):
        engine = YaskEngine(small_db, max_entries=8)
        topk = QueryExecutor(engine)
        executor = WhyNotExecutor(engine, topk)
        query = engine.make_query(Point(0.5, 0.5), {"kw000"}, 3)
        top_oid = engine.query(query).entries[0].obj.oid
        question = WhyNotQuestion(query=query, missing=(top_oid,))
        with pytest.raises(NotMissingError):
            executor.execute(question)
        assert executor.stats().size == 0

    def test_batch_captures_errors_per_member(self):
        engine, _, executor = make_executors()
        batch = executor.execute_batch(
            [
                make_question(0.1),
                make_question(0.2, missing=("untranslatable",)),
                make_question(0.3),
            ]
        )
        assert len(batch) == 3
        good_first, bad, good_last = batch.executions
        assert good_first.ok and good_last.ok
        assert not bad.ok
        assert bad.source == "error" and bad.answer is None
        assert "untranslatable" in bad.error


class TestSharedInvalidation:
    def test_topk_invalidation_drops_whynot_cache(self):
        engine, topk, executor = make_executors()
        executor.execute(make_question())
        assert executor.stats().size == 1
        topk.invalidate()
        assert executor.stats().size == 0
        assert executor.stats().invalidations == 1
        assert not executor.execute(make_question()).cached

    def test_whynot_invalidation_drops_topk_cache(self):
        engine, topk, executor = make_executors()
        executor.execute(make_question())  # populates both caches
        assert topk.stats().size == 1
        dropped = executor.invalidate()
        assert dropped == 1
        assert topk.stats().size == 0
        assert executor.stats().size == 0

    def test_invalidation_during_flight_bars_stale_answer(self):
        gate = threading.Event()
        engine = StubEngine(gate=gate)
        _, topk, executor = make_executors(engine)
        done = []
        worker = threading.Thread(
            target=lambda: done.append(executor.execute(make_question()))
        )
        worker.start()
        while engine.whynot_calls == 0:
            pass
        executor.invalidate()  # dataset changed mid-computation
        gate.set()
        worker.join(timeout=10.0)
        assert done and done[0].source == "engine"
        assert executor.stats().size == 0  # the stale answer was not cached


class TestConcurrency:
    def test_concurrent_identical_questions_compute_once(self):
        gate = threading.Event()
        engine = StubEngine(gate=gate)
        _, topk, executor = make_executors(engine)
        question = make_question()
        executions = []
        executions_lock = threading.Lock()

        def run():
            execution = executor.execute(question)
            with executions_lock:
                executions.append(execution)

        threads = [threading.Thread(target=run) for _ in range(8)]
        for thread in threads:
            thread.start()
        while engine.whynot_calls == 0:
            pass
        while len(executor._inflight) == 0:
            pass
        gate.set()
        for thread in threads:
            thread.join(timeout=10.0)

        assert len(executions) == 8
        assert engine.whynot_calls == 1
        sources = sorted(execution.source for execution in executions)
        assert sources.count("engine") == 1
        assert all(s in ("engine", "inflight", "cache") for s in sources)

    def test_stats_stay_consistent_under_threads(self):
        engine, _, executor = make_executors()
        questions = [make_question(0.1 * (1 + i % 4)) for i in range(4)]
        per_thread = 25
        threads = [
            threading.Thread(
                target=lambda: [
                    executor.execute(question)
                    for _ in range(per_thread)
                    for question in questions
                ]
            )
            for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        stats = executor.stats()
        total = 6 * per_thread * len(questions)
        # Every request is accounted for exactly once.
        assert stats.hits + stats.misses + stats.inflight_waits == total
        # At most one computation per distinct question ever reached the
        # engine (identical concurrent questions dedup or hit).
        assert stats.misses == len(questions)
        assert engine.whynot_calls == len(questions)
        assert stats.size == len(questions)

    def test_concurrent_batches_dedup_across_batches(self):
        engine, _, executor = make_executors(max_workers=4)
        questions = [make_question(0.1), make_question(0.2)]
        results = []
        results_lock = threading.Lock()

        def run():
            batch = executor.execute_batch(questions * 3)
            with results_lock:
                results.append(batch)

        threads = [threading.Thread(target=run) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert len(results) == 4
        assert all(len(batch) == 6 for batch in results)
        assert engine.whynot_calls == 2  # one computation per question, ever


class TestBatch:
    def test_batch_preserves_order(self):
        engine, _, executor = make_executors(max_workers=4)
        questions = [
            make_question(0.1),
            make_question(0.2),
            make_question(0.1),  # duplicate of the first
        ]
        batch = executor.execute_batch(questions)
        assert len(batch) == 3
        fingerprints = [e.fingerprint for e in batch.executions]
        assert fingerprints == [executor.fingerprint(q) for q in questions]
        assert engine.whynot_calls == 2  # the duplicate never recomputed

    def test_empty_batch(self):
        _, _, executor = make_executors()
        batch = executor.execute_batch([])
        assert len(batch) == 0 and batch.total_ms == 0.0

    def test_single_worker_batch_is_sequential(self):
        engine, _, executor = make_executors(max_workers=1)
        batch = executor.execute_batch([make_question(0.1), make_question(0.2)])
        assert engine.whynot_calls == 2
        assert len(batch.answers) == 2


class TestRealEngine:
    def test_cached_answer_matches_fresh_answer(self, small_db):
        engine = YaskEngine(small_db, max_entries=8)
        topk = QueryExecutor(engine)
        executor = WhyNotExecutor(engine, topk)
        query = engine.make_query(Point(0.5, 0.5), {"kw000", "kw001"}, 3)
        ranking = engine.scorer.rank_all(query)
        missing_oid = ranking[6].obj.oid
        question = WhyNotQuestion(query=query, missing=(missing_oid,))
        fresh = executor.execute(question)
        cached = executor.execute(question)
        assert cached.cached
        assert cached.answer is fresh.answer
        direct = engine.why_not(query, [missing_oid])
        assert cached.answer.best_model == direct.best_model
        assert cached.answer.explanation.worst_rank == direct.explanation.worst_rank

    def test_refinement_survives_the_audit(self, small_db):
        from repro.service.audit import audit_refinement

        engine = YaskEngine(small_db, max_entries=8)
        topk = QueryExecutor(engine)
        executor = WhyNotExecutor(engine, topk)
        query = engine.make_query(Point(0.5, 0.5), {"kw000", "kw001"}, 3)
        missing_oid = engine.scorer.rank_all(query)[6].obj.oid
        execution = executor.execute(
            WhyNotQuestion(
                query=query, missing=(missing_oid,), model="preference"
            )
        )
        report = audit_refinement(
            engine.scorer, execution.answer, [missing_oid]
        )
        assert report.ok, report.describe()

    def test_engine_whynot_batch_matches_single_answers(self, small_db):
        engine = YaskEngine(small_db, max_entries=8)
        query = engine.make_query(Point(0.5, 0.5), {"kw000", "kw001"}, 3)
        ranking = engine.scorer.rank_all(query)
        questions = [
            WhyNotQuestion(query=query, missing=(ranking[r].obj.oid,))
            for r in (5, 6, 7)
        ]
        timed = engine.whynot_batch(questions, max_workers=3)
        assert len(timed) == 3
        for question, entry in zip(questions, timed):
            expected = engine.why_not(question.query, list(question.missing))
            assert entry.value.best_model == expected.best_model
            assert entry.value.preference.penalty == expected.preference.penalty
            assert entry.response_ms >= 0.0


class TestValidation:
    def test_bad_capacity_rejected(self):
        engine = StubEngine()
        topk = QueryExecutor(engine)
        with pytest.raises(ValueError):
            WhyNotExecutor(engine, topk, cache_capacity=-1)

    def test_bad_workers_rejected(self):
        engine = StubEngine()
        topk = QueryExecutor(engine)
        with pytest.raises(ValueError):
            WhyNotExecutor(engine, topk, max_workers=0)
