"""Wall-clock snapshot cadence (``--snapshot-interval-secs``).

ROADMAP item 2 follow-up: the record-count cadence (``snapshot_every``)
never checkpoints a burst followed by silence — the Nth-next batch that
would trigger it may be hours away.  The interval timer closes that
hole: a server-loop test drives real mutations through the HTTP tier
and watches the background thread checkpoint them with no further
writes arriving.
"""

from __future__ import annotations

import json
import time
import urllib.request

import pytest

from repro.datasets.hotels import hong_kong_hotels
from repro.service.api import YaskEngine
from repro.service.server import YaskHTTPServer
from repro.service.wal import WriteAheadLog


def _post(endpoint: str, route: str, payload: dict) -> dict:
    request = urllib.request.Request(
        endpoint + route,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def _mutation(oid: int) -> dict:
    return {
        "mutations": [
            {"op": "insert", "oid": oid, "x": 0.42, "y": 0.42, "keywords": ["spa"]}
        ]
    }


def test_interval_requires_wal() -> None:
    engine = YaskEngine(hong_kong_hotels(), shards=2)
    try:
        with pytest.raises(ValueError, match="write-ahead log"):
            YaskHTTPServer(
                engine, host="127.0.0.1", port=0, snapshot_interval_secs=0.05
            )
    finally:
        engine.close()


def test_interval_must_be_positive(tmp_path) -> None:
    engine = YaskEngine(hong_kong_hotels(), shards=2)
    engine.attach_wal(WriteAheadLog(tmp_path / "wal"))
    try:
        with pytest.raises(ValueError, match="positive"):
            YaskHTTPServer(
                engine, host="127.0.0.1", port=0, snapshot_interval_secs=0.0
            )
    finally:
        engine.close()


def test_server_loop_snapshots_on_interval(tmp_path) -> None:
    """A burst of writes is checkpointed by wall clock, not by count."""
    wal = WriteAheadLog(tmp_path / "wal")
    engine = YaskEngine(hong_kong_hotels(), shards=2)
    engine.attach_wal(wal)
    from tests.service.conftest import running_server

    with running_server(
        engine,
        host="127.0.0.1",
        port=0,
        # Count cadence far out of reach: only the timer can checkpoint.
        snapshot_every=10_000,
        snapshot_interval_secs=0.05,
    ) as server:
        assert wal.snapshot_generation == 0
        _post(server.endpoint, "/api/mutations", _mutation(95001))
        _post(server.endpoint, "/api/mutations", _mutation(95002))
        deadline = time.monotonic() + 5.0
        while wal.snapshot_generation < 2 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert wal.snapshot_generation == 2
        # Quiet period: no further records, so the timer must not
        # write redundant snapshots for the same generation.
        settled = wal.manifest_writes if hasattr(wal, "manifest_writes") else None
        time.sleep(0.2)
        assert wal.snapshot_generation == 2
        if settled is not None:
            assert wal.manifest_writes == settled


def test_interval_timer_stops_on_close(tmp_path) -> None:
    wal = WriteAheadLog(tmp_path / "wal")
    engine = YaskEngine(hong_kong_hotels(), shards=2)
    engine.attach_wal(wal)
    server = YaskHTTPServer(
        engine, host="127.0.0.1", port=0, snapshot_interval_secs=0.05
    )
    server.start_background()
    timer = server._snapshot_timer
    assert timer is not None and timer.is_alive()
    server.shutdown()
    server.server_close()
    assert not timer.is_alive()


def test_cli_flag_requires_wal_dir() -> None:
    from repro.service.cli import main

    with pytest.raises(SystemExit, match="snapshot-interval-secs"):
        main(["serve", "--snapshot-interval-secs", "5"])


def test_cli_parser_accepts_interval() -> None:
    from repro.service.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--wal-dir", "/tmp/x", "--snapshot-interval-secs", "2.5"]
    )
    assert args.snapshot_interval_secs == 2.5
