"""Fault-injecting file wrapper for durability tests.

:class:`FlakyOpener` stands in for the write-ahead log's ``opener``
hook and wraps every handle it opens in a :class:`FlakyFile`.  Faults
are armed on the opener and fire exactly once (or persistently, for
read errors), so a test can line up "the next fsync fails" or "the
next write stops short after N bytes" and then assert the log rolled
back cleanly.

``FlakyFile.sync()`` exists because :meth:`WriteAheadLog._sync`
prefers a handle-level ``sync`` over ``os.fsync`` — precisely so this
wrapper can simulate durability failures without touching the real
disk (the un-armed ``sync`` is a no-op; per-append ``flush`` already
covers process-crash durability in tests).
"""

from __future__ import annotations

from typing import Any

__all__ = ["FlakyFile", "FlakyOpener"]


class FlakyFile:
    """Delegating file wrapper whose faults are armed on the opener."""

    def __init__(self, handle: Any, opener: "FlakyOpener") -> None:
        self._handle = handle
        self._opener = opener

    # -- faultable operations ------------------------------------------
    def write(self, data: bytes) -> int:
        short = self._opener.take_short_write()
        if short is not None:
            # A short write that *errors*: part of the frame lands on
            # disk (the torn tail a crash would leave), then the device
            # reports failure.
            self._handle.write(data[:short])
            self._handle.flush()
            raise OSError(28, "injected device full mid-write")
        if self._opener.take_write_error():
            raise OSError(5, "injected write error")
        return self._handle.write(data)

    def sync(self) -> None:
        if self._opener.take_sync_error():
            raise OSError(5, "injected fsync failure")
        # Un-armed: durability is simulated; flush already happened.

    def read(self, *args: Any) -> bytes:
        if self._opener.fail_reads:
            raise OSError(5, "injected read error (EIO)")
        return self._handle.read(*args)

    def truncate(self, size: int | None = None) -> int:
        if self._opener.take_truncate_error():
            raise OSError(5, "injected truncate failure")
        return self._handle.truncate(size)

    # -- transparent delegation ----------------------------------------
    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()

    def seek(self, *args: Any) -> int:
        return self._handle.seek(*args)

    def tell(self) -> int:
        return self._handle.tell()

    def fileno(self) -> int:
        return self._handle.fileno()

    def __enter__(self) -> "FlakyFile":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class FlakyOpener:
    """An ``open``-alike that wraps handles and dispenses armed faults."""

    def __init__(self) -> None:
        self.short_write_bytes: int | None = None
        self.write_errors = 0
        self.sync_errors = 0
        self.truncate_errors = 0
        self.fail_reads = False
        self.opened = 0

    def __call__(self, path: str, mode: str) -> FlakyFile:
        self.opened += 1
        return FlakyFile(open(path, mode), self)

    # -- one-shot fault dispensers -------------------------------------
    def take_short_write(self) -> int | None:
        short, self.short_write_bytes = self.short_write_bytes, None
        return short

    def take_write_error(self) -> bool:
        if self.write_errors > 0:
            self.write_errors -= 1
            return True
        return False

    def take_sync_error(self) -> bool:
        if self.sync_errors > 0:
            self.sync_errors -= 1
            return True
        return False

    def take_truncate_error(self) -> bool:
        if self.truncate_errors > 0:
            self.truncate_errors -= 1
            return True
        return False
