"""Live-server fixtures must never leak the listening socket.

The server constructor binds the socket, so any exit path that skips
``server_close`` — an assertion firing mid-test, ``shutdown`` raising,
``start_background`` failing — leaks a file descriptor into the rest
of the session.  These tests pin the :func:`running_server` teardown
contract with ``ResourceWarning`` promoted to an error, the runtime's
own unclosed-socket detector.
"""

from __future__ import annotations

import gc
import socket
import warnings

import pytest

from repro.service.api import YaskEngine
from repro.service.client import YaskClient
from tests.conftest import make_tiny_db
from tests.service.conftest import running_server


def test_lifecycle_emits_no_resource_warning():
    """A full serve/query/teardown cycle leaves no unclosed socket."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", ResourceWarning)
        with running_server(
            YaskEngine(make_tiny_db(), max_entries=4), port=0
        ) as server:
            client = YaskClient(server.endpoint)
            assert client.query(x=0.1, y=0.1, keywords=["chinese"], k=2)
        # Unclosed sockets surface as ResourceWarning at collection
        # time; force a full pass so a leak fails *this* test, not an
        # unrelated later one.
        gc.collect()


def test_assertion_inside_the_context_still_closes_the_socket():
    """The failure path tears down as thoroughly as the happy path."""
    captured = {}
    with warnings.catch_warnings():
        warnings.simplefilter("error", ResourceWarning)
        with pytest.raises(AssertionError, match="mid-test failure"):
            with running_server(
                YaskEngine(make_tiny_db(), max_entries=4), port=0
            ) as server:
                captured["server"] = server
                captured["port"] = server.server_address[1]
                raise AssertionError("mid-test failure")
        gc.collect()
    # The listening descriptor is gone...
    assert captured["server"].socket.fileno() == -1
    # ...and the port is immediately rebindable.
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind(("127.0.0.1", captured["port"]))
    finally:
        probe.close()


def test_chaos_running_server_shares_the_contract():
    """The chaos suite's helper closes on failure exactly the same way."""
    from tests.chaos.conftest import make_chaos_db
    from tests.chaos.conftest import running_server as chaos_running_server

    captured = {}
    with pytest.raises(AssertionError):
        with chaos_running_server(YaskEngine(make_chaos_db())) as server:
            captured["server"] = server
            raise AssertionError("boom")
    assert captured["server"].socket.fileno() == -1
