"""Executor-tier scoped invalidation + the index rebuild fallback."""

from __future__ import annotations

from repro.core.geometry import Point
from repro.core.mutations import Mutation
from repro.core.objects import SpatialObject
from repro.core.query import SpatialKeywordQuery
from repro.datasets.generators import SyntheticDatasetBuilder
from repro.service.api import YaskEngine
from repro.service.executor import QueryExecutor, WhyNotExecutor, WhyNotQuestion
from tests.conftest import make_tiny_db


def query_at(x: float, y: float, *keywords: str, k: int = 2):
    return SpatialKeywordQuery(loc=Point(x, y), doc=frozenset(keywords), k=k)


class TestScopedInvalidation:
    def make(self):
        engine = YaskEngine(make_tiny_db(), max_entries=4)
        executor = QueryExecutor(engine, cache_capacity=16)
        return engine, executor

    def test_unaffected_entries_survive_affected_drop(self):
        engine, executor = self.make()
        near_sw = query_at(0.1, 0.1, "chinese")
        near_ne = query_at(0.9, 0.9, "spanish")
        executor.execute(near_sw)
        executor.execute(near_ne)
        report = engine.apply_mutations(
            [
                Mutation.insert(
                    SpatialObject(10, Point(0.88, 0.9), frozenset({"spanish"}))
                )
            ]
        )
        tally = executor.invalidate_scoped(report.change.summary)
        assert tally == {
            "dropped": 1,
            "kept": 1,
            "linked_dropped": 0,
            "linked_kept": 0,
        }
        assert executor.execute(near_sw).source == "cache"
        refreshed = executor.execute(near_ne)
        assert refreshed.source == "engine"
        assert 10 in [e.obj.oid for e in refreshed.result.entries]
        stats = executor.stats()
        assert stats.scoped_invalidations == 1
        assert stats.scoped_dropped == 1 and stats.scoped_kept == 1
        executor.close()
        engine.close()

    def test_deleting_a_result_member_drops_only_its_entries(self):
        engine, executor = self.make()
        member_query = query_at(0.1, 0.1, "chinese")  # o1/o2 in result
        other_query = query_at(0.9, 0.9, "spanish")
        executor.execute(member_query)
        executor.execute(other_query)
        report = engine.apply_mutations([Mutation.delete(0)])
        tally = executor.invalidate_scoped(report.change.summary)
        assert tally["dropped"] == 1 and tally["kept"] == 1
        assert executor.execute(other_query).source == "cache"
        refreshed = executor.execute(member_query)
        assert refreshed.source == "engine"
        assert all(e.obj.oid != 0 for e in refreshed.result.entries)
        executor.close()
        engine.close()

    def test_linked_whynot_cache_scoped_keep_for_disjoint_batch(self):
        """A batch provably unable to affect a why-not answer keeps it.

        The inserted object sits in the far corner with a keyword
        outside the question's keyword universe: the dominance test in
        ``BatchSummary.affects_whynot`` proves it cannot cross any
        missing object at any weight, so the linked scoped invalidation
        keeps the entry (``scoped_kept > 0``) instead of dropping the
        why-not cache wholesale.
        """
        engine, executor = self.make()
        whynot = WhyNotExecutor(engine, executor, cache_capacity=8)
        question = WhyNotQuestion(
            query=query_at(0.1, 0.1, "chinese", k=2),
            missing=(4,),
            model="preference",
        )
        whynot.execute(question)
        assert whynot.stats().size == 1
        report = engine.apply_mutations(
            [
                Mutation.insert(
                    SpatialObject(11, Point(0.9, 0.9), frozenset({"zzz"}))
                )
            ]
        )
        tally = executor.invalidate_scoped(report.change.summary)
        assert tally["linked_kept"] == 1 and tally["linked_dropped"] == 0
        stats = whynot.stats()
        assert stats.size == 1 and stats.scoped_kept > 0
        # The kept answer is still exactly what a cold computation gives.
        kept = whynot.execute(question)
        assert kept.source == "cache"
        assert kept.answer == engine.answer_whynot(question)
        whynot.close()
        executor.close()
        engine.close()

    def test_linked_whynot_cache_drops_when_batch_touches_missing(self):
        """Deleting a missing object invalidates its cached answer."""
        engine, executor = self.make()
        whynot = WhyNotExecutor(engine, executor, cache_capacity=8)
        question = WhyNotQuestion(
            query=query_at(0.1, 0.1, "chinese", k=2),
            missing=(4,),
            model="preference",
        )
        whynot.execute(question)
        report = engine.apply_mutations([Mutation.delete(4)])
        tally = executor.invalidate_scoped(report.change.summary)
        assert tally["linked_dropped"] == 1
        assert whynot.stats().size == 0
        whynot.close()
        executor.close()
        engine.close()

    def test_inflight_result_not_cached_across_scoped_invalidation(self):
        """A computation racing a mutation must not populate the cache."""
        engine, executor = self.make()
        query = query_at(0.5, 0.5, "restaurant")
        cache = executor._cache
        flight_result = engine.query(query)

        # Simulate the race: a leader computed pre-mutation, the scoped
        # invalidation lands, then the leader tries to publish.
        from repro.service.executor import _Inflight, _QueryMeta, query_fingerprint

        key = query_fingerprint(query)
        flight = _Inflight(cache._generation)
        cache.inflight[key] = flight
        report = engine.apply_mutations(
            [
                Mutation.insert(
                    SpatialObject(12, Point(0.5, 0.5), frozenset({"x"}))
                )
            ]
        )
        executor.invalidate_scoped(report.change.summary)
        published = cache._compute_as_leader(
            key, flight, lambda: flight_result, _QueryMeta.of
        )
        assert published is flight_result  # the waiter still gets a value
        assert executor.stats().size == 0  # but the cache stayed clean
        executor.close()
        engine.close()


class TestIndexRebuildFallback:
    def test_delete_heavy_batch_triggers_rebuild(self):
        database = SyntheticDatasetBuilder(seed=3).build(
            600, vocabulary_size=30, doc_length=(2, 5)
        )
        engine = YaskEngine(database, max_entries=4, index_rebuild_slack=0)
        oids = [obj.oid for obj in database.objects][:590]
        report = engine.apply_mutations(
            [Mutation.delete(oid) for oid in oids]
        )
        assert "set_rtree" in report.indexes_rebuilt
        assert "kcr_tree" in report.indexes_rebuilt
        # Rebuilt in place: the engines' references see the new structure
        # and it is exactly the STR ideal again.
        assert engine.set_rtree.height() == engine.set_rtree.ideal_height()
        engine.set_rtree.check_invariants()
        engine.kcr_tree.check_invariants()
        assert engine.mutation_stats()["indexes_rebuilt"] >= 2
        # And answers still match a fresh engine.
        from repro.core.objects import SpatialDatabase

        fresh = YaskEngine(
            SpatialDatabase(
                engine.database.objects, dataspace=engine.database.dataspace
            ),
            max_entries=4,
        )
        probe = query_at(0.5, 0.5, "kw000", "kw001", k=5)
        assert [
            (e.obj.oid, e.score) for e in engine.query(probe).entries
        ] == [(e.obj.oid, e.score) for e in fresh.query(probe).entries]
        engine.close()
        fresh.close()
