"""Regression: ``GET /api/stats`` snapshots must be generation-consistent.

The top-k and why-not caches form one invalidation domain, dropped
sequentially (top-k first, then the linked why-not cache).  A stats
reader racing ``invalidate()`` could therefore observe the top-k side
already invalidated while the why-not side is not — a mixed-generation
view.  :func:`repro.service.executor.consistent_stats` closes that
window; these tests hammer it with a concurrent invalidator and assert
the invariant, plus pin the plain-read race shape it guards against.
"""

import threading

from repro.core.query import QueryResult
from repro.service.executor import (
    QueryExecutor,
    WhyNotExecutor,
    consistent_stats,
)


class _StubEngine:
    """Minimal engine: enough for both executors to run."""

    def query(self, query):  # pragma: no cover - trivial
        return QueryResult(query, [])

    def resolve_missing_oids(self, references):
        return tuple(sorted(int(ref) for ref in references))

    def answer_whynot(self, question, *, initial_result=None):
        return {"answer": question.missing}


def make_executors():
    engine = _StubEngine()
    topk = QueryExecutor(engine, max_workers=1)
    whynot = WhyNotExecutor(engine, topk, max_workers=1)
    return topk, whynot


class TestConsistentStats:
    def test_quiet_snapshot_is_consistent(self):
        topk, whynot = make_executors()
        for _ in range(3):
            topk.invalidate()
        cache_stats, whynot_stats = consistent_stats(topk, whynot)
        assert cache_stats.invalidations == whynot_stats.invalidations == 3

    def test_whynot_invalidate_cascades_and_stays_consistent(self):
        topk, whynot = make_executors()
        whynot.invalidate()
        cache_stats, whynot_stats = consistent_stats(topk, whynot)
        assert cache_stats.invalidations == whynot_stats.invalidations == 1

    def test_never_mixed_under_concurrent_invalidation(self):
        """The satellite regression: hammer invalidate() while reading.

        Every snapshot pair returned by ``consistent_stats`` must show
        equal invalidation counters — no reader may see the top-k cache
        from one generation and the why-not cache from another.
        """
        topk, whynot = make_executors()
        stop = threading.Event()
        mixed: list[tuple[int, int]] = []

        def invalidator():
            while not stop.is_set():
                topk.invalidate()

        def reader():
            for _ in range(400):
                cache_stats, whynot_stats = consistent_stats(topk, whynot)
                if cache_stats.invalidations != whynot_stats.invalidations:
                    mixed.append(
                        (cache_stats.invalidations, whynot_stats.invalidations)
                    )

        threads = [threading.Thread(target=invalidator) for _ in range(2)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads + readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        for thread in threads:
            thread.join()
        assert not mixed, f"mixed-generation snapshots observed: {mixed[:5]}"

    def test_invalidation_cascade_is_atomic_to_snapshots(self):
        """Deterministically recreate the race the lock closes.

        An invalidation is parked *between* dropping the top-k cache
        and its linked why-not cache; a concurrent snapshot must block
        until the cascade completes rather than reporting the top-k
        side invalidated and the why-not side not.
        """
        topk, whynot = make_executors()
        mid_cascade = threading.Event()
        release = threading.Event()
        original_drop, original_scoped, original_maintain = (
            topk._linked_invalidations[0]
        )

        def parked_drop() -> int:
            mid_cascade.set()
            release.wait(timeout=5.0)
            return original_drop()

        topk._linked_invalidations[0] = (
            parked_drop,
            original_scoped,
            original_maintain,
        )
        invalidator = threading.Thread(target=topk.invalidate)
        invalidator.start()
        assert mid_cascade.wait(timeout=5.0)

        observed: list[tuple[int, int]] = []

        def snapshot():
            cache_stats, whynot_stats = consistent_stats(topk, whynot)
            observed.append(
                (cache_stats.invalidations, whynot_stats.invalidations)
            )

        reader = threading.Thread(target=snapshot)
        reader.start()
        reader.join(timeout=0.2)
        assert reader.is_alive(), "snapshot must wait out the cascade"
        release.set()
        reader.join(timeout=5.0)
        invalidator.join(timeout=5.0)
        assert observed == [(1, 1)]
