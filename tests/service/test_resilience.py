"""Unit tests for admission control and the WAL circuit breaker.

Both primitives read :func:`repro.faults.now`, so every cooldown test
here runs on an armed plan's virtual clock — no wall-clock sleeps.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.faults import FaultPlan
from repro.service.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    InflightGauge,
)


class TestInflightGauge:
    def test_unbounded_by_default(self):
        gauge = InflightGauge()
        assert all(gauge.try_enter() for _ in range(1000))
        assert gauge.shed == 0

    def test_sheds_beyond_the_limit(self):
        gauge = InflightGauge(2)
        assert gauge.try_enter()
        assert gauge.try_enter()
        assert not gauge.try_enter()
        assert gauge.inflight == 2
        assert gauge.shed == 1
        gauge.exit()
        assert gauge.try_enter()

    def test_counters(self):
        gauge = InflightGauge(1)
        gauge.try_enter()
        gauge.try_enter()  # shed
        gauge.exit()
        stats = gauge.to_dict()
        assert stats == {
            "limit": 1,
            "inflight": 0,
            "peak": 1,
            "admitted": 1,
            "shed": 1,
        }


class TestCircuitBreaker:
    def test_starts_closed_and_admits(self):
        breaker = CircuitBreaker()
        assert breaker.state == CLOSED
        admitted, retry_after = breaker.allow()
        assert admitted and retry_after is None

    def test_opens_after_threshold_failures(self):
        plan = FaultPlan()
        with faults.armed(plan):
            breaker = CircuitBreaker(failure_threshold=3, cooldown_ms=1000.0)
            for _ in range(2):
                breaker.record_failure()
            assert breaker.state == CLOSED
            breaker.record_failure()
            assert breaker.state == OPEN
            admitted, retry_after = breaker.allow()
            assert not admitted
            assert retry_after is not None and retry_after >= 1.0

    def test_half_open_probe_and_recovery(self):
        plan = FaultPlan()
        with faults.armed(plan):
            breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=500.0)
            breaker.record_failure()
            assert breaker.state == OPEN
            plan.advance(499.0)
            assert not breaker.allow()[0]
            plan.advance(1.0)
            # Cooldown elapsed: exactly one probe is admitted.
            assert breaker.allow()[0]
            assert breaker.state == HALF_OPEN
            assert not breaker.allow()[0]
            breaker.record_success()
            assert breaker.state == CLOSED
            assert breaker.allow()[0]

    def test_failed_probe_reopens(self):
        plan = FaultPlan()
        with faults.armed(plan):
            breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=500.0)
            breaker.record_failure()
            plan.advance(500.0)
            assert breaker.allow()[0]  # the probe
            breaker.record_failure()
            assert breaker.state == OPEN
            assert not breaker.allow()[0]
            plan.advance(500.0)
            assert breaker.allow()[0]
            breaker.record_success()
            assert breaker.state == CLOSED

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_to_dict(self):
        plan = FaultPlan()
        with faults.armed(plan):
            breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=250.0)
            breaker.record_failure()
            stats = breaker.to_dict()
        assert stats["state"] == OPEN
        assert stats["consecutive_failures"] == 1
        assert stats["failure_threshold"] == 1
        assert stats["cooldown_ms"] == 250.0
        assert stats["trips"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_ms=0)
