"""Shared fixtures for the service-tier test suite.

:func:`running_server` is the one sanctioned way to stand up a live
HTTP server in a test: construction already binds the listening
socket, so teardown must be reached from *every* exit path — including
an assertion firing mid-test or ``start_background`` itself failing —
or the socket leaks into the rest of the session.  The hygiene
contract is pinned under ``-W error::ResourceWarning`` by
``test_socket_hygiene.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.service.server import YaskHTTPServer


@contextmanager
def running_server(engine: Any, **kwargs: Any) -> Iterator[YaskHTTPServer]:
    """A live background server, always torn down (no leaked sockets).

    ``server_close`` runs even when ``shutdown`` raises, and
    ``shutdown`` is only attempted once the serving thread exists
    (``BaseServer.shutdown`` blocks forever if ``serve_forever`` never
    ran).
    """
    server = YaskHTTPServer(engine, **kwargs)
    started = False
    try:
        server.start_background()
        started = True
        yield server
    finally:
        try:
            if started:
                server.shutdown()
        finally:
            server.server_close()
