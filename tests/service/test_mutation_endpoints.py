"""HTTP surface of the live-mutation tier + the 404 mapping regression."""

from __future__ import annotations

import pytest

from repro.core.geometry import Point, Rect
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.service.api import YaskEngine
from repro.service.client import YaskClient, YaskClientError
from repro.service.server import YaskHTTPServer
from repro.text.similarity import CosineTfIdfSimilarity
from tests.conftest import make_tiny_db


@pytest.fixture()
def served():
    from tests.service.conftest import running_server

    with running_server(
        YaskEngine(make_tiny_db(), max_entries=4), port=0
    ) as server:
        yield server, YaskClient(server.endpoint)


class TestObjectLookup:
    def test_get_object_by_id_and_name(self, served):
        _, client = served
        assert client.get_object(0)["name"] == "o1"
        assert client.get_object("o4")["oid"] == 3

    def test_unknown_oid_is_structured_404_not_500(self, served):
        """Regression: SpatialDatabase.get's KeyError must map to a 404."""
        _, client = served
        with pytest.raises(YaskClientError) as excinfo:
            client.get_object(999)
        assert excinfo.value.status == 404
        assert "no object with id 999" in str(excinfo.value)

    def test_unknown_name_is_structured_404_not_500(self, served):
        _, client = served
        with pytest.raises(YaskClientError) as excinfo:
            client.get_object("no-such-place")
        assert excinfo.value.status == 404
        assert "no object named" in str(excinfo.value)


class TestInsertRoute:
    def test_insert_single_object(self, served):
        server, client = served
        report = client.insert_objects(
            [{"oid": 10, "x": 0.5, "y": 0.5, "keywords": ["thai"], "name": "t"}]
        )
        assert report["inserted"] == 1
        assert report["generation"] == 1
        assert report["objects"] == 6
        assert client.get_object(10)["keywords"] == ["thai"]
        assert len(server.engine.database) == 6

    def test_bare_object_payload_accepted(self, served):
        _, client = served
        report = client.mutate(
            [{"op": "insert", "oid": 11, "x": 0.1, "y": 0.9, "keywords": ["k"]}]
        )
        assert report["inserted"] == 1

    def test_duplicate_insert_is_409(self, served):
        _, client = served
        with pytest.raises(YaskClientError) as excinfo:
            client.insert_objects([{"oid": 0, "x": 0, "y": 0, "keywords": ["x"]}])
        assert excinfo.value.status == 409

    def test_malformed_object_is_400(self, served):
        _, client = served
        with pytest.raises(YaskClientError) as excinfo:
            client.insert_objects([{"oid": 12, "x": 0.5, "keywords": ["x"]}])
        assert excinfo.value.status == 400

    def test_insert_route_enforces_batch_cap(self, served):
        """The write lock guard: /api/objects caps like /api/mutations."""
        _, client = served
        oversized = [
            {"oid": 100_000 + index, "x": 0.5, "y": 0.5, "keywords": ["x"]}
            for index in range(257)
        ]
        with pytest.raises(YaskClientError) as excinfo:
            client.insert_objects(oversized)
        assert excinfo.value.status == 400
        assert "batch too large" in str(excinfo.value)

    def test_non_decimal_digit_reference_is_404_not_crash(self, served):
        """'²' passes str.isdigit() but not int(); must still 404 cleanly."""
        _, client = served
        with pytest.raises(YaskClientError) as excinfo:
            client.get_object("²")
        assert excinfo.value.status == 404

    def test_numeric_name_reachable_when_oid_free(self, served):
        """An object *named* '7100' must resolve when no oid 7100 exists."""
        server, client = served
        client.insert_objects(
            [{"oid": 70, "x": 0.5, "y": 0.5, "keywords": ["x"],
              "name": "7100"}]
        )
        assert client.get_object("7100")["oid"] == 70
        report = client.delete_object("7100")
        assert report["deleted"] == 1
        assert server.engine.database.find_by_name("7100") is None


class TestDeleteRoute:
    def test_delete_by_id_then_404_on_lookup(self, served):
        _, client = served
        report = client.delete_object(2)
        assert report["deleted"] == 1
        with pytest.raises(YaskClientError) as excinfo:
            client.get_object(2)
        assert excinfo.value.status == 404

    def test_delete_by_name(self, served):
        server, client = served
        report = client.delete_object("o5")
        assert report["deleted"] == 1
        assert server.engine.database.find_by_name("o5") is None

    def test_delete_unknown_is_404(self, served):
        _, client = served
        with pytest.raises(YaskClientError) as excinfo:
            client.delete_object(999)
        assert excinfo.value.status == 404


class TestMutationBatchRoute:
    def test_mixed_batch_applies_atomically(self, served):
        server, client = served
        report = client.mutate(
            [
                {"op": "insert", "oid": 20, "x": 0.4, "y": 0.4,
                 "keywords": ["restaurant", "thai"]},
                {"op": "update", "oid": 0, "x": 0.12, "y": 0.12,
                 "keywords": ["chinese"], "name": "o1"},
                {"op": "delete", "oid": 4},
            ]
        )
        assert (report["inserted"], report["updated"], report["deleted"]) == (
            1, 1, 1,
        )
        db = server.engine.database
        assert len(db) == 5
        assert db.get(0).doc == frozenset({"chinese"})

    def test_failed_batch_changes_nothing(self, served):
        server, client = served
        with pytest.raises(YaskClientError) as excinfo:
            client.mutate(
                [
                    {"op": "insert", "oid": 21, "x": 0.4, "y": 0.4,
                     "keywords": ["x"]},
                    {"op": "delete", "oid": 999},
                ]
            )
        assert excinfo.value.status == 404
        assert len(server.engine.database) == 5
        assert client.mutation_stats()["generation"] == 0

    def test_queries_see_mutations_immediately(self, served):
        _, client = served
        before = client.query(0.5, 0.5, ["sushi"], 1)
        assert before["result"]["entries"][0]["tsim"] == 0.0
        client.insert_objects(
            [{"oid": 30, "x": 0.5, "y": 0.5, "keywords": ["sushi"]}]
        )
        after = client.query(0.5, 0.5, ["sushi"], 1)
        entry = after["result"]["entries"][0]
        assert entry["object"]["oid"] == 30 and entry["tsim"] == 1.0


class TestAnswerMaintenance:
    def test_cached_queries_stay_warm_through_local_insert(self, served):
        server, client = served
        # Warm two cached results: one near the batch, one far away with
        # disjoint keywords.
        far = client.query(0.05, 0.05, ["chinese"], 2)
        near = client.query(0.9, 0.9, ["spanish"], 2)
        assert not far["cached"] and not near["cached"]
        report = client.insert_objects(
            [{"oid": 40, "x": 0.92, "y": 0.88, "keywords": ["spanish"]}]
        )
        maintenance = report["cache_maintenance"]
        assert maintenance["patched"] >= 1
        assert maintenance["patched"] + maintenance["kept"] == 2
        # The legacy invalidation summary counts maintained entries kept.
        assert report["cache_invalidation"]["kept"] == 2
        assert report["cache_invalidation"]["dropped"] == 0
        # The distant, keyword-disjoint query is still served warm...
        assert client.query(0.05, 0.05, ["chinese"], 2)["cached"]
        # ...and so is the nearby one — its cached entry was *patched*
        # in place and already sees object 40, no recompute charged.
        refreshed = client.query(0.9, 0.9, ["spanish"], 2)
        assert refreshed["cached"]
        assert 40 in [
            e["object"]["oid"] for e in refreshed["result"]["entries"]
        ]
        stats = client.stats()
        assert stats["maintenance_passes"] == 1
        assert stats["maintained_patched"] >= 1

    def test_mutations_stats_section(self, served):
        _, client = served
        client.insert_objects(
            [{"oid": 50, "x": 0.3, "y": 0.3, "keywords": ["k"]}]
        )
        stats = client.mutation_stats()
        assert stats["supported"] is True
        assert stats["generation"] == 1
        assert stats["inserted"] == 1
        assert stats["kernel"]["live_rows"] == 6


class TestMutateCli:
    def test_mutate_command_applies_and_reports(self, tmp_path, capsys):
        import json

        from repro.service.cli import main

        ops = tmp_path / "ops.json"
        ops.write_text(
            json.dumps(
                [
                    {"op": "insert", "oid": 9001, "x": 0.1, "y": 0.2,
                     "keywords": ["espresso"], "name": "New Cafe"},
                    {"op": "delete", "oid": 1},
                ]
            )
        )
        assert main(["mutate", "--dataset", "coffee", "--file", str(ops)]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["batches"][0]["inserted"] == 1
        assert payload["batches"][0]["deleted"] == 1
        assert payload["stats"]["generation"] == 1
        assert "applied 2 mutation(s)" in captured.err

    def test_mutate_command_batched(self, tmp_path, capsys):
        import json

        from repro.service.cli import main

        ops = tmp_path / "ops.json"
        ops.write_text(
            json.dumps(
                [
                    {"op": "insert", "oid": 9100 + index, "x": 0.1,
                     "y": 0.2, "keywords": ["espresso"]}
                    for index in range(4)
                ]
            )
        )
        assert (
            main(
                ["mutate", "--dataset", "coffee", "--file", str(ops),
                 "--batch-size", "2"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["batches"]) == 2
        assert payload["stats"]["generation"] == 2

    def test_mutate_command_rejects_bad_batch(self, tmp_path, capsys):
        import json

        from repro.service.cli import main

        ops = tmp_path / "ops.json"
        ops.write_text(json.dumps([{"op": "delete", "oid": 424242}]))
        assert main(["mutate", "--dataset", "coffee", "--file", str(ops)]) == 2
        assert "mutation error" in capsys.readouterr().err

    def test_mutate_command_rejects_non_list_payload(self, tmp_path, capsys):
        """{"mutations": 5} must exit with the structured message, not a
        TypeError traceback."""
        import json

        from repro.service.cli import main

        ops = tmp_path / "ops.json"
        ops.write_text(json.dumps({"mutations": 5}))
        with pytest.raises(SystemExit, match="bad mutation payload"):
            main(["mutate", "--dataset", "coffee", "--file", str(ops)])


class TestUnsupportedEngine:
    def test_ir_tree_engine_reports_unsupported(self):
        database = make_tiny_db()
        engine = YaskEngine(
            database,
            text_model=CosineTfIdfSimilarity(
                database.keyword_document_frequencies(), len(database)
            ),
            max_entries=4,
        )
        from tests.service.conftest import running_server

        with running_server(engine, port=0) as server:
            client = YaskClient(server.endpoint)
            assert client.mutation_stats() == {"supported": False}
            with pytest.raises(YaskClientError) as excinfo:
                client.insert_objects(
                    [{"oid": 60, "x": 0.5, "y": 0.5, "keywords": ["x"]}]
                )
            assert excinfo.value.status == 501
