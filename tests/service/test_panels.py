"""Tests for the text-panel GUI substitute (:mod:`repro.service.panels`)."""

import pytest

from repro.service.panels import (
    render_demo_screen,
    render_explanation_panel,
    render_map,
    render_query_details,
    render_result_window,
)
from repro.service.session import QueryLog


@pytest.fixture(scope="module")
def demo_parts(hotels_db):
    from repro.core.geometry import Point
    from repro.service.api import YaskEngine
    from repro.datasets.hotels import GRAND_VICTORIA

    engine = YaskEngine(hotels_db)
    result = engine.top_k(Point(114.1722, 22.2975), {"clean", "comfortable"}, 3)
    answer = engine.why_not(result.query, [GRAND_VICTORIA])
    return engine, result, answer


class TestMap:
    def test_marker_priorities(self, demo_parts, hotels_db):
        engine, result, answer = demo_parts
        missing = [e.obj for e in answer.explanation.explanations]
        rendered = render_map(
            hotels_db, query=result.query, result=result, missing=missing,
            width=60, height=20,
        )
        assert "Q" in rendered           # red query marker
        assert "." in rendered           # grey objects
        assert "legend:" in rendered

    def test_plain_map_has_only_grey(self, hotels_db):
        rendered = render_map(hotels_db, width=40, height=12)
        assert "Q" not in rendered.replace("Q=query", "")
        assert "." in rendered

    def test_size_validation(self, hotels_db):
        with pytest.raises(ValueError):
            render_map(hotels_db, width=5, height=3)

    def test_all_lines_boxed(self, hotels_db):
        rendered = render_map(hotels_db, width=40, height=10)
        lines = rendered.splitlines()
        assert lines[0].startswith("+--")
        assert lines[-1].startswith("+")
        assert all(line.startswith(("|", "+")) for line in lines)


class TestPanels:
    def test_result_window_lists_all_entries(self, demo_parts):
        _, result, _ = demo_parts
        rendered = render_result_window(result)
        for entry in result:
            assert entry.obj.label in rendered
        assert "#1" in rendered

    def test_explanation_panel_mentions_models(self, demo_parts):
        _, _, answer = demo_parts
        rendered = render_explanation_panel(answer.explanation)
        assert "adjust the distance/keyword preference weights" in rendered
        assert "adapt the query keywords" in rendered
        assert "Suggested first:" in rendered

    def test_query_details_renders_log(self):
        log = QueryLog()
        log.record("top-k query", {"k": 3}, 1.25)
        rendered = render_query_details(log.entries)
        assert "top-k query" in rendered
        assert "time=1.25ms" in rendered

    def test_query_details_empty_log(self):
        rendered = render_query_details([])
        assert "(no queries yet)" in rendered


class TestDemoScreen:
    def test_full_screen_composition(self, demo_parts, hotels_db):
        _, result, answer = demo_parts
        log = QueryLog()
        log.record("top-k query", {"k": 3}, 0.8)
        rendered = render_demo_screen(
            hotels_db, result, answer, log.entries, width=70
        )
        assert "Panel 1: map" in rendered
        assert "Panel 2: results" in rendered
        assert "Panel 4: why-not explanation" in rendered
        assert "Panel 5: query log" in rendered
        assert "Refined queries" in rendered
        assert "lower-penalty model" in rendered

    def test_screen_without_answer(self, demo_parts, hotels_db):
        _, result, _ = demo_parts
        rendered = render_demo_screen(hotels_db, result, width=70)
        assert "Panel 4" not in rendered
        assert "Panel 2: results" in rendered
