"""Fault injection against the write-ahead log (satellite 2).

Every fault here asserts the same contract from a different angle: a
batch is either durable *and* applied, or neither — and the failure
surfaces as a structured error (WalWriteError in process, HTTP 503
over the wire), never as a half-logged batch or a half-mutated engine.
"""

from __future__ import annotations

import pytest

from repro.core.geometry import Point
from repro.core.mutations import Mutation
from repro.core.objects import SpatialObject
from repro.service.api import YaskEngine
from repro.service.wal import (
    WalError,
    WalWriteError,
    WriteAheadLog,
    read_records,
    recover_engine,
)
from repro.faults import FlakyOpener
from tests.conftest import make_tiny_db

DELETE_0 = {"op": "delete", "oid": 0}


def make_insert(oid: int) -> Mutation:
    return Mutation.insert(
        SpatialObject(oid, Point(0.4, 0.4), frozenset({"chinese"}), f"n{oid}")
    )


@pytest.fixture()
def flaky(tmp_path):
    opener = FlakyOpener()
    log = WriteAheadLog(tmp_path, fsync="always", opener=opener)
    yield log, opener, tmp_path
    log.close()


class TestLogFaults:
    def test_fsync_failure_rolls_back_the_frame(self, flaky):
        log, opener, tmp_path = flaky
        log.append(1, [DELETE_0])
        opener.sync_errors = 1
        with pytest.raises(WalWriteError, match="NOT applied"):
            log.append(2, [DELETE_0])
        # The partial frame was truncated away: the log is intact at
        # generation 1 and accepts the retry of generation 2.
        assert log.last_generation == 1
        assert not log.failed
        assert [r.generation for r in log.records()] == [1]
        log.append(2, [DELETE_0])
        assert [r.generation for r in log.records()] == [1, 2]

    def test_short_write_rolls_back_the_frame(self, flaky):
        log, opener, tmp_path = flaky
        log.append(1, [DELETE_0])
        opener.short_write_bytes = 7  # header + nothing useful
        with pytest.raises(WalWriteError):
            log.append(2, [DELETE_0])
        assert log.last_generation == 1
        assert [r.generation for r in log.records()] == [1]

    def test_unrollbackable_failure_poisons_the_writer(self, flaky):
        log, opener, tmp_path = flaky
        log.append(1, [DELETE_0])
        opener.short_write_bytes = 7
        opener.truncate_errors = 1  # rollback itself fails
        with pytest.raises(WalWriteError):
            log.append(2, [DELETE_0])
        assert log.failed
        with pytest.raises(WalWriteError, match="previously failed"):
            log.append(2, [DELETE_0])
        # Reopening performs torn-tail recovery over the stranded bytes
        # and the directory serves writes again.
        reopened = WriteAheadLog(tmp_path, fsync="never")
        assert reopened.last_generation == 1
        assert reopened.truncated_bytes > 0
        reopened.append(2, [DELETE_0])
        assert [r.generation for r in reopened.records()] == [1, 2]
        reopened.close()

    def test_read_eio_is_a_wal_error_not_silence(self, flaky):
        log, opener, tmp_path = flaky
        log.append(1, [DELETE_0])
        log.close()
        opener.fail_reads = True
        with pytest.raises(WalError, match="cannot read"):
            list(read_records(tmp_path, opener=opener))
        with pytest.raises(WalError, match="cannot read"):
            recover_engine(
                tmp_path, database=make_tiny_db(), opener=opener
            )


class TestEngineFaults:
    def test_failed_append_leaves_engine_untouched(self, tmp_path):
        opener = FlakyOpener()
        wal = WriteAheadLog(tmp_path, fsync="always", opener=opener)
        engine = YaskEngine(make_tiny_db(), wal=wal)
        before = engine.database.objects
        opener.sync_errors = 1
        with pytest.raises(WalWriteError):
            engine.apply_mutations([make_insert(900)])
        assert engine.generation == 0
        assert engine.database.objects == before
        with pytest.raises(KeyError):
            engine.database.get(900)
        # The fault cleared: the very same batch applies as generation 1.
        report = engine.apply_mutations([make_insert(900)])
        assert report.generation == 1
        assert engine.database.get(900).oid == 900
        assert [r.generation for r in wal.records()] == [1]
        engine.close()

    def test_half_logged_batch_never_replays(self, tmp_path):
        opener = FlakyOpener()
        wal = WriteAheadLog(tmp_path, fsync="always", opener=opener)
        engine = YaskEngine(make_tiny_db(), wal=wal)
        engine.apply_mutations([make_insert(900)])
        opener.short_write_bytes = 12
        opener.truncate_errors = 1  # leave the torn frame on disk
        with pytest.raises(WalWriteError):
            engine.apply_mutations([make_insert(901)])
        engine.close()
        # Recovery sees generation 1 only: the torn frame of the failed
        # batch is truncated, not replayed.
        recovered, report = recover_engine(tmp_path, database=make_tiny_db())
        assert report.generation == 1
        assert recovered.database.get(900).oid == 900
        with pytest.raises(KeyError):
            recovered.database.get(901)
        recovered.close()


class TestHTTPFaults:
    def test_wal_write_error_maps_to_structured_503(self, tmp_path):
        from repro.service.client import YaskClient, YaskClientError
        from tests.service.conftest import running_server

        opener = FlakyOpener()
        wal = WriteAheadLog(tmp_path, fsync="always", opener=opener)
        with running_server(YaskEngine(make_tiny_db(), wal=wal)) as server:
            # retries=0: this test pins the raw 503 contract; the client's
            # own retry loop is covered by the chaos suite.
            client = YaskClient(server.endpoint, retries=0)
            opener.sync_errors = 1
            with pytest.raises(YaskClientError) as exc:
                client.mutate([{"op": "delete", "oid": 0}])
            assert exc.value.status == 503
            assert "NOT applied" in str(exc.value)
            assert exc.value.retry_after is not None
            # The engine still serves its pre-batch state...
            assert client.get_object(0)["oid"] == 0
            assert client.mutation_stats()["generation"] == 0
            # ...and accepts the retry once the device recovers.
            report = client.mutate([{"op": "delete", "oid": 0}])
            assert report["generation"] == 1
            with pytest.raises(YaskClientError) as exc:
                client.get_object(0)
            assert exc.value.status == 404
