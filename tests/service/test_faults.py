"""Unit tests for the fault-injection and deadline substrate.

The chaos suite (``tests/chaos/``) exercises these primitives through
the whole serving stack; here each mechanism is pinned in isolation —
rule matching and ordering, virtual-clock arithmetic, scope semantics
and the zero-overhead unarmed paths.
"""

from __future__ import annotations

import threading

import pytest

from repro import faults
from repro.faults import Deadline, DeadlineExceeded, FaultPlan


class TestFaultPlan:
    def test_unarmed_trip_is_a_no_op(self):
        assert faults.active_plan() is None
        faults.trip("anything.at.all")  # must not raise

    def test_armed_plan_fires_matching_rule(self):
        plan = FaultPlan().fail("wal.sync")
        with faults.armed(plan):
            with pytest.raises(OSError, match="injected fault at wal.sync"):
                faults.trip("wal.sync")
        assert [e["site"] for e in plan.injections] == ["wal.sync"]

    def test_rules_match_by_fnmatch_pattern(self):
        plan = FaultPlan().fail("shard.scan.*", times=None)
        with faults.armed(plan):
            with pytest.raises(OSError):
                faults.trip("shard.scan.3")
            faults.trip("follower.poll")  # no match, no fire

    def test_rule_firing_budget_and_skip(self):
        plan = FaultPlan().fail("s", times=1, after=1)
        with faults.armed(plan):
            faults.trip("s")  # skipped
            with pytest.raises(OSError):
                faults.trip("s")  # fires
            faults.trip("s")  # exhausted

    def test_custom_exception_factory(self):
        plan = FaultPlan().fail("s", exc=lambda site: ValueError(site))
        with faults.armed(plan):
            with pytest.raises(ValueError, match="s"):
                faults.trip("s")

    def test_delay_advances_virtual_clock_without_sleeping(self):
        plan = FaultPlan().delay("slow", 250.0)
        with faults.armed(plan):
            t0 = faults.now()
            faults.trip("slow")
            assert faults.now() - t0 == pytest.approx(0.250)
        # Disarmed: back to the wall clock.
        assert faults.now() > 1.0

    def test_double_arming_is_refused(self):
        with faults.armed(FaultPlan()):
            with pytest.raises(RuntimeError, match="already armed"):
                with faults.armed(FaultPlan()):
                    pass

    def test_same_seed_reproduces_the_same_injections(self):
        def run(seed: int) -> tuple:
            plan = FaultPlan(seed)
            jitter = plan.rng.randrange(3)
            plan.fail("site.*", times=2, after=jitter)
            plan.delay("site.*", 10.0, times=1)
            with faults.armed(plan):
                for i in range(6):
                    try:
                        faults.trip(f"site.{i}")
                    except OSError:
                        pass  # the injected fault is the point
            return plan.injections

        assert run(42) == run(42)
        assert run(42) != run(43)


class TestDeadline:
    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0)

    def test_expiry_on_the_virtual_clock(self):
        plan = FaultPlan()
        with faults.armed(plan):
            deadline = Deadline(100.0)
            assert not deadline.expired()
            assert deadline.remaining_ms() == pytest.approx(100.0)
            plan.advance(99.0)
            assert not deadline.expired()
            plan.advance(1.0)
            assert deadline.expired()
            assert deadline.remaining_ms() == 0.0

    def test_ledger_and_envelope(self):
        deadline = Deadline(50.0)
        assert not deadline.degraded
        deadline.note_answered(3)
        deadline.note_skipped(2, "deadline")
        deadline.note_failed("shard 4: boom")
        assert deadline.degraded
        assert deadline.to_dict() == {
            "budget_ms": 50.0,
            "shards_answered": 3,
            "shards_skipped": 3,
            "reason": "deadline; shard 4: boom",
        }

    def test_fully_answered_is_not_degraded(self):
        deadline = Deadline(50.0)
        deadline.note_answered(4)
        assert not deadline.degraded


class TestDeadlineScopes:
    def test_no_scope_by_default(self):
        assert faults.current_deadline() is None
        assert faults.current_scope() is None
        faults.check_deadline()  # no-op

    def test_absorbing_and_strict_scopes(self):
        deadline = Deadline(10.0)
        with faults.deadline_scope(deadline):
            assert faults.current_scope() == (deadline, False)
        with faults.strict_deadline_scope(deadline):
            assert faults.current_scope() == (deadline, True)
        assert faults.current_scope() is None

    def test_shielded_clears_the_ambient_deadline(self):
        deadline = Deadline(10.0)
        with faults.deadline_scope(deadline):
            with faults.shielded():
                assert faults.current_deadline() is None
            assert faults.current_deadline() is deadline

    def test_check_deadline_raises_on_expiry(self):
        plan = FaultPlan()
        with faults.armed(plan):
            deadline = Deadline(5.0)
            with faults.strict_deadline_scope(deadline):
                faults.check_deadline()
                plan.advance(5.0)
                with pytest.raises(DeadlineExceeded, match="5ms exceeded"):
                    faults.check_deadline()

    def test_scope_is_thread_local(self):
        deadline = Deadline(10.0)
        seen: list[object] = []
        with faults.deadline_scope(deadline):
            thread = threading.Thread(
                target=lambda: seen.append(faults.current_deadline())
            )
            thread.start()
            thread.join()
        assert seen == [None]
