"""Follower (read-replica) tests: tailing, consistency tokens, lag.

Satellite 3's hammer lives here: one writer mutating a durable primary
while reader threads hit a follower of the same log directory with
``min_generation`` tokens.  Every read must be *paired* — the result
bit-for-bit equal to a fresh engine built at the generation the read
reported — and never staler than the reader's token.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.geometry import Point
from repro.core.mutations import Mutation
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.datasets.generators import SyntheticDatasetBuilder
from repro.service.api import YaskEngine
from repro.service.protocol import result_to_dict
from repro.service.wal import (
    FollowerEngine,
    FollowerLagError,
    WalCorruptionError,
    WriteAheadLog,
)
from tests.conftest import make_tiny_db

HAMMER_DURATION_S = 1.0


def make_insert(oid: int, x: float = 0.4, y: float = 0.4, words=("chinese",)):
    return Mutation.insert(
        SpatialObject(oid, Point(x, y), frozenset(words), f"n{oid}")
    )


def make_primary(tmp_path, database=None, **wal_kwargs) -> YaskEngine:
    wal_kwargs.setdefault("fsync", "never")
    return YaskEngine(
        database if database is not None else make_tiny_db(),
        wal=WriteAheadLog(tmp_path, **wal_kwargs),
    )


class TestTailing:
    def test_follower_tracks_the_primary(self, tmp_path):
        primary = make_primary(tmp_path)
        follower = FollowerEngine(tmp_path, database=make_tiny_db())
        assert follower.generation == 0

        primary.apply_mutations([make_insert(900)])
        assert follower.poll() == 1
        assert follower.generation == 1
        query = primary.make_query(Point(0.4, 0.4), frozenset({"chinese"}), 3)
        assert result_to_dict(follower.engine.query(query)) == result_to_dict(
            primary.query(query)
        )
        follower.close()
        primary.close()

    def test_idle_polls_are_cheap_skips(self, tmp_path):
        primary = make_primary(tmp_path)
        follower = FollowerEngine(tmp_path, database=make_tiny_db())
        before = follower.poll_skips
        assert follower.poll() == 0
        assert follower.poll() == 0
        assert follower.poll_skips == before + 2
        follower.close()
        primary.close()

    def test_follower_bootstraps_from_snapshot(self, tmp_path):
        primary = make_primary(tmp_path)
        primary.apply_mutations([make_insert(900)])
        primary.apply_mutations([Mutation.delete(0)])
        primary.snapshot()
        primary.apply_mutations([Mutation.delete(1)])
        # No seed database: the snapshot alone must suffice.
        follower = FollowerEngine(tmp_path)
        assert follower.generation == 3
        assert follower.engine.database.objects == primary.database.objects
        stats = follower.to_dict()
        assert stats["role"] == "follower"
        assert stats["snapshot_generation"] == 2
        assert stats["records_applied"] == 1
        follower.close()
        primary.close()

    def test_follower_engine_refuses_writes(self, tmp_path):
        primary = make_primary(tmp_path)
        follower = FollowerEngine(tmp_path, database=make_tiny_db())
        # The replica's engine carries no log; a stray local write can
        # not silently fork it from the primary.
        assert follower.engine.wal is None
        follower.close()
        primary.close()

    def test_compaction_outruns_a_stale_follower(self, tmp_path):
        """Satellite (a): the follower re-bootstraps itself in place.

        Compacting away the segments a stale follower still needs used
        to strand it behind a WalCorruptionError; now the poll detects
        that the manifest's snapshot is ahead of its replay cursor and
        rebuilds the serving engine from that snapshot, transparently.
        """
        primary = make_primary(tmp_path, segment_bytes=1)
        primary.apply_mutations([make_insert(900)])
        follower = FollowerEngine(tmp_path, database=make_tiny_db())
        assert follower.generation == 1
        stale_engine = follower.engine
        for oid in (0, 1, 2):
            primary.apply_mutations([Mutation.delete(oid)])
        primary.snapshot()  # compacts the segments the follower needs
        applied = follower.poll()
        assert applied == primary.generation - 1
        assert follower.generation == primary.generation
        assert follower.engine is not stale_engine
        assert follower.engine.database.objects == primary.database.objects
        assert follower.rebootstraps == 1
        assert follower.to_dict()["rebootstraps"] == 1
        # Subsequent polls are back to cheap incremental tailing.
        assert follower.poll() == 0
        assert follower.rebootstraps == 1
        follower.close()
        primary.close()

    def test_rebootstrap_requires_a_newer_snapshot(self, tmp_path):
        """A genuine log gap (no snapshot ahead) still raises."""
        primary = make_primary(tmp_path, segment_bytes=1)
        primary.apply_mutations([make_insert(900)])
        follower = FollowerEngine(tmp_path, database=make_tiny_db())
        primary.apply_mutations([Mutation.delete(0)])
        primary.apply_mutations([Mutation.delete(1)])
        # Remove the middle segment WITHOUT snapshotting: the tail now
        # has a genuine gap and nothing newer to re-bootstrap from, so
        # the error surfaces instead of a silent skip.
        sorted(tmp_path.glob("wal-*.log"))[1].unlink()
        with pytest.raises(WalCorruptionError):
            follower.poll()
        assert follower.rebootstraps == 0
        follower.close()
        primary.close()


class TestConsistencyToken:
    def test_read_honours_min_generation(self, tmp_path):
        primary = make_primary(tmp_path)
        follower = FollowerEngine(tmp_path, database=make_tiny_db())
        report = primary.apply_mutations([make_insert(900)])
        query = primary.make_query(Point(0.4, 0.4), frozenset({"chinese"}), 3)
        # The token the primary just acknowledged is satisfiable in one
        # poll, and the paired generation proves it.
        result, generation = follower.read(
            query, min_generation=report.generation
        )
        assert generation == report.generation
        assert 900 in {entry.obj.oid for entry in result.entries}
        follower.close()
        primary.close()

    def test_unreachable_token_raises_lag(self, tmp_path):
        primary = make_primary(tmp_path)
        follower = FollowerEngine(tmp_path, database=make_tiny_db())
        query = primary.make_query(Point(0.4, 0.4), frozenset({"chinese"}), 3)
        with pytest.raises(FollowerLagError, match="generation 0"):
            follower.read(query, min_generation=7)
        follower.close()
        primary.close()


class TestFollowerHammer:
    def test_tokened_reads_are_never_torn_or_stale(self, tmp_path):
        database = SyntheticDatasetBuilder(seed=61).build(
            40, vocabulary_size=12, doc_length=(2, 5)
        )
        dataspace = database.dataspace
        primary = make_primary(tmp_path, database=database)
        follower = FollowerEngine(
            tmp_path,
            database=SyntheticDatasetBuilder(seed=61).build(
                40, vocabulary_size=12, doc_length=(2, 5)
            ),
        )
        query = primary.make_query(
            Point(0.5, 0.5), frozenset({"kw000", "kw003"}), 4
        )

        states: dict[int, tuple] = {0: primary.database.objects}
        states_lock = threading.Lock()
        last_acked = [0]
        stop = threading.Event()
        failures: list[str] = []
        observed: list[tuple[int, dict]] = []
        observed_lock = threading.Lock()

        def writer() -> None:
            oid = 10_000
            words = ["kw000", "kw003", "kw007", "hammer"]
            try:
                while not stop.is_set():
                    batch = [
                        make_insert(
                            oid,
                            x=(oid % 13) / 13.0,
                            y=(oid % 7) / 7.0,
                            words=(words[oid % 4], words[(oid + 1) % 4]),
                        )
                    ]
                    if oid % 3 == 0 and oid > 10_001:
                        batch.append(Mutation.delete(oid - 2))
                    report = primary.apply_mutations(batch)
                    with states_lock:
                        states[report.generation] = primary.database.objects
                        last_acked[0] = report.generation
                    oid += 1
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(f"writer: {exc!r}")

        def reader() -> None:
            try:
                while not stop.is_set():
                    token = last_acked[0]
                    try:
                        result, generation = follower.read(
                            query, min_generation=token
                        )
                    except FollowerLagError:
                        continue  # healthy: merely behind, retry
                    if generation < token:
                        failures.append(
                            f"stale read: generation {generation} < "
                            f"token {token}"
                        )
                    with observed_lock:
                        observed.append((generation, result_to_dict(result)))
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(f"reader: {exc!r}")

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        time.sleep(HAMMER_DURATION_S)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures, failures[:5]
        assert observed, "hammer produced no reads"

        # The follower converges on the primary, gap-free.
        follower.poll()
        assert follower.generation == primary.generation
        assert sorted(states) == list(range(primary.generation + 1))

        # Every (generation, result) pair must be exactly that
        # generation's answer: rebuild a fresh engine per observed
        # generation (bounded sample) and compare bit-for-bit.
        distinct = sorted({generation for generation, _ in observed})
        sample = set(distinct[:: max(1, len(distinct) // 40)]) | {
            distinct[0],
            distinct[-1],
        }
        by_generation: dict[int, dict] = {}
        for generation in sample:
            fresh = YaskEngine(
                SpatialDatabase(states[generation], dataspace=dataspace)
            )
            by_generation[generation] = result_to_dict(fresh.query(query))
            fresh.close()
        checked = 0
        for generation, result in observed:
            if generation in by_generation:
                assert result == by_generation[generation], (
                    f"torn read at generation {generation}"
                )
                checked += 1
        assert checked > 0

        follower.close()
        primary.close()


class TestFollowerHTTP:
    @pytest.fixture()
    def replica_pair(self, tmp_path):
        from contextlib import ExitStack

        from repro.service.client import YaskClient
        from tests.service.conftest import running_server

        with ExitStack() as stack:
            primary = make_primary(tmp_path)
            primary_server = stack.enter_context(running_server(primary))
            follower = FollowerEngine(tmp_path, database=make_tiny_db())
            follower_server = stack.enter_context(
                running_server(follower.engine, follower=follower)
            )
            yield (
                YaskClient(primary_server.endpoint),
                YaskClient(follower_server.endpoint),
            )

    def test_write_to_primary_read_your_writes_on_follower(
        self, replica_pair
    ):
        primary, follower = replica_pair
        report = primary.mutate(
            [
                {
                    "op": "insert",
                    "oid": 900,
                    "x": 0.4,
                    "y": 0.4,
                    "keywords": ["chinese"],
                }
            ]
        )
        token = report["generation"]
        response = follower.query(
            0.4, 0.4, ["chinese"], 3, min_generation=token
        )
        oids = [e["object"]["oid"] for e in response["result"]["entries"]]
        assert 900 in oids
        stats = follower.durability_stats()
        assert stats["role"] == "follower"
        assert stats["generation"] >= token

    def test_follower_rejects_writes_with_403(self, replica_pair):
        from repro.service.client import YaskClientError

        _, follower = replica_pair
        with pytest.raises(YaskClientError) as exc:
            follower.mutate([{"op": "delete", "oid": 0}])
        assert exc.value.status == 403
        assert "read-only follower" in str(exc.value)
        with pytest.raises(YaskClientError) as exc:
            follower.delete_object(0)
        assert exc.value.status == 403

    def test_unreachable_token_is_structured_503(self, replica_pair):
        from repro.service.client import YaskClientError

        _, follower = replica_pair
        with pytest.raises(YaskClientError) as exc:
            follower.query(0.4, 0.4, ["chinese"], 3, min_generation=999)
        assert exc.value.status == 503
        assert "retry" in str(exc.value)

    def test_server_requires_matching_engine(self, tmp_path):
        from repro.service.server import YaskHTTPServer

        primary = make_primary(tmp_path)
        follower = FollowerEngine(tmp_path, database=make_tiny_db())
        other = YaskEngine(make_tiny_db())
        with pytest.raises(ValueError, match="follower"):
            YaskHTTPServer(other, follower=follower)
        other.close()
        follower.close()
        primary.close()
