"""Unit tests for the write-ahead log: framing, segments, snapshots.

The crash-point *property* suite lives in
``tests/properties/test_prop_recovery.py``; fault injection (short
writes, fsync failures) in ``tests/service/test_wal_faults.py``.  This
module pins the deterministic mechanics: record framing round trips,
torn-tail truncation, contiguity enforcement, segment rollover,
snapshot + manifest + compaction, and the engine-side write-ahead
contract (no-op batches are never logged, attach requires agreement).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.geometry import Point
from repro.core.mutations import Mutation
from repro.core.objects import SpatialObject
from repro.service.api import YaskEngine
from repro.service.wal import (
    RecoveryReport,
    WalCorruptionError,
    WalError,
    WalRecord,
    WriteAheadLog,
    load_snapshot,
    read_records,
    recover_engine,
    replay_into,
)
from tests.conftest import make_tiny_db

INSERT_900 = {
    "op": "insert",
    "oid": 900,
    "x": 0.5,
    "y": 0.5,
    "keywords": ["chinese", "noodles"],
}
DELETE_900 = {"op": "delete", "oid": 900}


def _append_n(log: WriteAheadLog, count: int, *, start: int = 1) -> None:
    for generation in range(start, start + count):
        log.append(generation, [{"op": "delete", "oid": generation}])


def _segment_files(directory) -> list[str]:
    return sorted(
        name for name in os.listdir(directory) if name.startswith("wal-")
    )


class TestFraming:
    def test_append_read_round_trip(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        log.append(1, [INSERT_900])
        log.append(2, [DELETE_900, INSERT_900])
        records = log.records()
        assert records == [
            WalRecord(1, (INSERT_900,)),
            WalRecord(2, (DELETE_900, INSERT_900)),
        ]
        assert log.last_generation == 2
        log.close()

    def test_reopen_resumes_generation(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        _append_n(log, 3)
        log.close()
        reopened = WriteAheadLog(tmp_path, fsync="never")
        assert reopened.last_generation == 3
        reopened.append(4, [DELETE_900])
        assert [r.generation for r in reopened.records()] == [1, 2, 3, 4]
        reopened.close()

    def test_non_contiguous_append_refused(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        log.append(1, [INSERT_900])
        with pytest.raises(WalError, match="non-contiguous"):
            log.append(3, [DELETE_900])
        with pytest.raises(WalError, match="non-contiguous"):
            log.append(1, [DELETE_900])
        log.close()

    def test_empty_batch_refused(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        with pytest.raises(WalError, match="empty"):
            log.append(1, [])
        log.close()

    def test_closed_log_refuses_appends(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        log.close()
        log.close()  # idempotent
        with pytest.raises(WalError, match="closed"):
            log.append(1, [INSERT_900])

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            WriteAheadLog(tmp_path, fsync="sometimes")

    def test_after_filter_and_covered_segment_skip(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never", segment_bytes=1)
        _append_n(log, 4)
        log.close()
        assert len(_segment_files(tmp_path)) == 4
        generations = [
            r.generation for r in read_records(tmp_path, after=2)
        ]
        assert generations == [3, 4]


class TestTornTail:
    def test_writer_truncates_torn_tail(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        _append_n(log, 2)
        log.close()
        segment = tmp_path / _segment_files(tmp_path)[-1]
        intact = segment.read_bytes()
        segment.write_bytes(intact + b"\x99\x12torn-partial-frame")
        reopened = WriteAheadLog(tmp_path, fsync="never")
        assert reopened.last_generation == 2
        assert reopened.truncated_bytes > 0
        assert segment.read_bytes() == intact
        reopened.append(3, [DELETE_900])
        assert [r.generation for r in reopened.records()] == [1, 2, 3]
        reopened.close()

    def test_mid_record_truncation_drops_only_the_tail(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        _append_n(log, 3)
        log.close()
        segment = tmp_path / _segment_files(tmp_path)[-1]
        raw = segment.read_bytes()
        segment.write_bytes(raw[: len(raw) - 5])  # tear record 3
        reopened = WriteAheadLog(tmp_path, fsync="never")
        assert [r.generation for r in reopened.records()] == [1, 2]
        assert reopened.last_generation == 2
        reopened.close()

    def test_torn_non_final_segment_is_corruption(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never", segment_bytes=1)
        _append_n(log, 3)
        log.close()
        first = tmp_path / _segment_files(tmp_path)[0]
        first.write_bytes(first.read_bytes()[:-3])
        with pytest.raises(WalCorruptionError):
            list(read_records(tmp_path))
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(tmp_path, fsync="never")

    def test_crc_mismatch_behind_intact_records(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never", segment_bytes=1)
        _append_n(log, 2)
        log.close()
        first = tmp_path / _segment_files(tmp_path)[0]
        raw = bytearray(first.read_bytes())
        raw[-1] ^= 0xFF  # flip a payload byte under the CRC
        first.write_bytes(bytes(raw))
        with pytest.raises(WalCorruptionError):
            list(read_records(tmp_path))

    def test_reader_tolerates_torn_final_segment(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        _append_n(log, 2)
        log.close()
        segment = tmp_path / _segment_files(tmp_path)[-1]
        segment.write_bytes(segment.read_bytes() + b"\x01\x02half")
        generations = [r.generation for r in read_records(tmp_path)]
        assert generations == [1, 2]


class TestCorruptionMessages:
    """Satellite (b): the two failure classes are named, with evidence.

    A recoverable torn tail and unrecoverable mid-log corruption demand
    opposite operator responses (reopen the writer vs restore from a
    snapshot/replica), so the messages must say which one occurred, in
    which segment, and why the scan stopped.
    """

    def test_torn_tail_message_names_segment_and_remedy(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        _append_n(log, 2)
        log.close()
        segment = tmp_path / _segment_files(tmp_path)[-1]
        segment.write_bytes(segment.read_bytes() + b"\x01\x02half")
        with pytest.raises(WalCorruptionError) as exc:
            list(read_records(tmp_path, tolerate_torn_tail=False))
        message = str(exc.value)
        assert message.startswith(
            f"recoverable torn tail in segment {segment.name}: "
        )
        assert "reopening the write-ahead log writer truncates it away" in message

    def test_mid_log_message_names_segment_and_remedy(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never", segment_bytes=1)
        _append_n(log, 3)
        log.close()
        first = tmp_path / _segment_files(tmp_path)[0]
        first.write_bytes(first.read_bytes()[:-3])
        with pytest.raises(WalCorruptionError) as exc:
            list(read_records(tmp_path))
        message = str(exc.value)
        assert message.startswith(
            f"mid-log corruption in segment {first.name}: "
        )
        assert "restore from a snapshot or a replica" in message
        assert "truncates it away" not in message

    def test_crc_mismatch_reports_offset_and_both_checksums(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never", segment_bytes=1)
        _append_n(log, 2)
        log.close()
        first = tmp_path / _segment_files(tmp_path)[0]
        raw = bytearray(first.read_bytes())
        raw[-1] ^= 0xFF  # flip a payload byte under the CRC
        first.write_bytes(bytes(raw))
        with pytest.raises(
            WalCorruptionError,
            match=(
                r"record checksum mismatch at offset \d+: "
                r"expected CRC 0x[0-9a-f]{8}, got 0x[0-9a-f]{8}"
            ),
        ):
            list(read_records(tmp_path))


class TestBatchTokens:
    """Idempotency tokens ride the log and survive recovery."""

    def test_token_round_trips_through_the_log(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        log.append(1, [INSERT_900], token="client-abc")
        log.append(2, [DELETE_900])
        records = log.records()
        assert records[0].token == "client-abc"
        assert records[1].token is None
        log.close()
        assert [r.token for r in read_records(tmp_path)] == ["client-abc", None]

    def test_engine_deduplicates_a_replayed_token(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        engine = YaskEngine(make_tiny_db(), wal=wal)
        first = engine.apply_mutations(
            [Mutation.delete(0)], batch_token="tok-1"
        )
        assert not first.deduplicated
        assert first.generation == 1
        # The exact same batch again, same token: acknowledged, not
        # re-applied, and nothing new reaches the log.
        replay = engine.apply_mutations(
            [Mutation.delete(0)], batch_token="tok-1"
        )
        assert replay.deduplicated
        assert replay.generation == 1
        assert replay.to_dict()["deduplicated"] is True
        assert replay.to_dict()["inserted"] == 0
        assert engine.generation == 1
        assert wal.last_generation == 1
        engine.close()

    def test_tokens_survive_recovery(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        engine = YaskEngine(make_tiny_db(), wal=wal)
        engine.apply_mutations([Mutation.delete(0)], batch_token="tok-9")
        engine.close()
        recovered, report = recover_engine(tmp_path, database=make_tiny_db())
        assert report.generation == 1
        replay = recovered.apply_mutations(
            [Mutation.delete(0)], batch_token="tok-9"
        )
        assert replay.deduplicated
        assert replay.generation == 1
        assert recovered.generation == 1
        recovered.close()

    def test_distinct_tokens_apply_normally(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="never")
        engine = YaskEngine(make_tiny_db(), wal=wal)
        engine.apply_mutations([Mutation.delete(0)], batch_token="a")
        report = engine.apply_mutations([Mutation.delete(1)], batch_token="b")
        assert not report.deduplicated
        assert report.generation == 2
        engine.close()


class TestSegments:
    def test_rollover_names_segments_by_start_generation(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never", segment_bytes=1)
        _append_n(log, 3)
        log.close()
        assert _segment_files(tmp_path) == [
            "wal-0000000000000001.log",
            "wal-0000000000000002.log",
            "wal-0000000000000003.log",
        ]

    def test_oversize_existing_segment_rolls_on_reopen(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        _append_n(log, 2)
        log.close()
        reopened = WriteAheadLog(tmp_path, fsync="never", segment_bytes=1)
        reopened.append(3, [DELETE_900])
        reopened.close()
        assert len(_segment_files(tmp_path)) == 2
        assert [r.generation for r in read_records(tmp_path)] == [1, 2, 3]


class TestSnapshots:
    def _database_payload(self) -> dict:
        from repro.index.persistence import database_to_dict

        return database_to_dict(make_tiny_db())

    def test_snapshot_round_trip_and_compaction(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never", segment_bytes=1)
        _append_n(log, 3)
        payload = self._database_payload()
        info = log.write_snapshot(2, payload)
        assert info["generation"] == 2
        assert info["segments_compacted"] == 2
        assert log.snapshot_generation == 2
        loaded = load_snapshot(tmp_path)
        assert loaded == (2, payload)
        # Records past the snapshot are still replayable.
        assert [r.generation for r in read_records(tmp_path, after=2)] == [3]
        log.close()

    def test_snapshot_never_deletes_active_segment(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        _append_n(log, 3)  # one segment holds everything
        log.write_snapshot(3, self._database_payload())
        assert len(_segment_files(tmp_path)) == 1
        log.append(4, [DELETE_900])
        assert [r.generation for r in log.records(after=3)] == [4]
        log.close()

    def test_new_snapshot_replaces_old_file(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        _append_n(log, 2)
        log.write_snapshot(1, self._database_payload())
        log.write_snapshot(2, self._database_payload())
        snapshots = [
            name
            for name in os.listdir(tmp_path)
            if name.startswith("snapshot-")
        ]
        assert snapshots == ["snapshot-0000000000000002.json"]
        log.close()

    def test_snapshot_regression_and_future_refused(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        _append_n(log, 2)
        log.write_snapshot(2, self._database_payload())
        with pytest.raises(WalError, match="regress"):
            log.write_snapshot(1, self._database_payload())
        with pytest.raises(WalError, match="ahead"):
            log.write_snapshot(5, self._database_payload())
        log.close()

    def test_manifest_naming_missing_snapshot_is_corruption(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        _append_n(log, 1)
        log.write_snapshot(1, self._database_payload())
        log.close()
        for name in os.listdir(tmp_path):
            if name.startswith("snapshot-"):
                (tmp_path / name).unlink()
        with pytest.raises(WalCorruptionError, match="missing"):
            load_snapshot(tmp_path)

    def test_garbage_manifest_is_corruption(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text("{not json")
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(tmp_path, fsync="never")

    def test_unsnapshotted_log_loads_none(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        _append_n(log, 1)
        log.close()
        assert load_snapshot(tmp_path) is None


class TestEngineContract:
    """The write-ahead contract as threaded through YaskEngine."""

    def _engine(self, tmp_path, **kwargs) -> YaskEngine:
        wal = WriteAheadLog(tmp_path, fsync="never")
        return YaskEngine(make_tiny_db(), wal=wal, **kwargs)

    def test_apply_logs_before_state_visible(self, tmp_path):
        engine = self._engine(tmp_path)
        report = engine.apply_mutations(
            [
                Mutation.insert(
                    SpatialObject(
                        900, Point(0.4, 0.4), frozenset({"chinese"}), "new"
                    )
                )
            ]
        )
        assert report.generation == 1
        assert engine.wal.last_generation == 1
        [record] = engine.wal.records()
        assert record.generation == 1
        assert record.mutations[0]["op"] == "insert"
        assert record.mutations[0]["oid"] == 900
        engine.close()

    def test_noop_batch_is_never_logged(self, tmp_path):
        engine = self._engine(tmp_path)
        obj = SpatialObject(900, Point(0.4, 0.4), frozenset({"chinese"}))
        report = engine.apply_mutations(
            [Mutation.insert(obj), Mutation.delete(900)]
        )
        assert report.change.is_noop
        assert report.generation == 0
        assert engine.generation == 0
        assert engine.wal.last_generation == 0
        assert engine.wal.records() == []
        engine.close()

    def test_attach_requires_generation_agreement(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        log.append(1, [DELETE_900])
        with pytest.raises(WalError, match="generation"):
            YaskEngine(make_tiny_db(), wal=log)
        log.close()

    def test_double_attach_refused(self, tmp_path):
        engine = self._engine(tmp_path)
        other = WriteAheadLog(tmp_path / "other", fsync="never")
        with pytest.raises(ValueError, match="already"):
            engine.attach_wal(other)
        other.close()
        engine.close()

    def test_snapshot_without_wal_refused(self):
        engine = YaskEngine(make_tiny_db())
        with pytest.raises(WalError, match="no write-ahead log"):
            engine.snapshot()
        assert engine.durability_stats() == {"enabled": False}
        engine.close()

    def test_durability_stats_report_primary_role(self, tmp_path):
        engine = self._engine(tmp_path)
        stats = engine.durability_stats()
        assert stats["enabled"] is True
        assert stats["role"] == "primary"
        assert stats["generation"] == 0
        engine.close()


class TestReplay:
    def test_double_replay_is_idempotent(self, tmp_path):
        engine = YaskEngine(make_tiny_db(), wal=WriteAheadLog(tmp_path, fsync="never"))
        engine.apply_mutations([Mutation.delete(0)])
        engine.apply_mutations([Mutation.delete(1)])
        records = engine.wal.records()
        engine.close()

        fresh = YaskEngine(make_tiny_db())
        assert replay_into(fresh, records) == (2, 2)
        assert fresh.generation == 2
        # Replaying the very same records again applies nothing.
        assert replay_into(fresh, records) == (0, 0)
        assert fresh.generation == 2
        fresh.close()

    def test_generation_gap_is_corruption(self):
        fresh = YaskEngine(make_tiny_db())
        with pytest.raises(WalCorruptionError, match="gap"):
            replay_into(fresh, [WalRecord(2, ({"op": "delete", "oid": 0},))])
        fresh.close()

    def test_malformed_logged_mutation_is_corruption(self):
        fresh = YaskEngine(make_tiny_db())
        with pytest.raises(WalCorruptionError, match="malformed"):
            replay_into(fresh, [WalRecord(1, ({"op": "levitate"},))])
        fresh.close()

    def test_logged_noop_record_is_corruption(self):
        # A record the log claims bumped the generation must not replay
        # as a no-op; sequential semantics would silently shift every
        # later generation.
        fresh = YaskEngine(make_tiny_db())
        batch = (
            {
                "op": "insert",
                "oid": 900,
                "x": 0.4,
                "y": 0.4,
                "keywords": ["chinese"],
            },
            {"op": "delete", "oid": 900},
        )
        with pytest.raises(WalCorruptionError, match="sequential"):
            replay_into(fresh, [WalRecord(1, batch)])
        fresh.close()


class TestRecoverEngine:
    def test_recovery_without_seed_or_snapshot_fails(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        log.append(1, [DELETE_900])
        log.close()
        with pytest.raises(WalError, match="seed database"):
            recover_engine(tmp_path)

    def test_fresh_directory_recovers_the_seed(self, tmp_path):
        engine, report = recover_engine(tmp_path, database=make_tiny_db())
        assert report == RecoveryReport(
            generation=0,
            snapshot_generation=0,
            records_replayed=0,
            mutations_replayed=0,
            objects=5,
        )
        assert engine.wal is not None
        engine.apply_mutations([Mutation.delete(0)])
        assert engine.wal.last_generation == 1
        engine.close()

    def test_detached_recovery_leaves_no_writer(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync="never")
        log.append(1, [{"op": "delete", "oid": 0}])
        log.close()
        engine, report = recover_engine(
            tmp_path, database=make_tiny_db(), attach=False
        )
        assert report.records_replayed == 1
        assert engine.wal is None
        engine.close()

    def test_report_serialises(self, tmp_path):
        _, report = recover_engine(tmp_path, database=make_tiny_db())
        assert json.loads(json.dumps(report.to_dict())) == report.to_dict()
