"""Persisting the server's state to disk (the 'Hard Disk' box of Fig. 1).

Saves the demonstration dataset and its two why-not indexes to JSON,
reloads them into a fresh process-equivalent engine, and shows (a) that
the reloaded indexes answer identically and (b) the weight-interval
analysis the explanation panel can render ("how would I have to weigh
distance vs keywords for this hotel to appear?").

    python examples/index_persistence.py
"""

import tempfile
from pathlib import Path

from repro import Point
from repro.core.scoring import Scorer
from repro.core.topk import BestFirstTopK
from repro.datasets import GRAND_VICTORIA, hong_kong_hotels
from repro.datasets.loaders import load_json, save_json
from repro.index.kcrtree import KcRTree
from repro.index.persistence import load_index, save_index
from repro.index.setrtree import SetRTree
from repro.whynot.preference import PreferenceAdjuster


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="yask-disk-"))
    print(f"persisting to {workdir}")

    # --- save: dataset + both indexes ---------------------------------
    database = hong_kong_hotels()
    set_tree = SetRTree.build(database, max_entries=32)
    kcr_tree = KcRTree.build(database, max_entries=32)
    save_json(database, workdir / "hotels.json")
    save_index(set_tree, workdir / "setrtree.json")
    save_index(kcr_tree, workdir / "kcrtree.json")
    for name in ("hotels.json", "setrtree.json", "kcrtree.json"):
        size_kb = (workdir / name).stat().st_size / 1024
        print(f"  wrote {name}: {size_kb:.1f} KiB")

    # --- load into a "fresh server" ------------------------------------
    loaded_db = load_json(workdir / "hotels.json")
    loaded_set = load_index(workdir / "setrtree.json", loaded_db)
    scorer = Scorer(loaded_db)

    from repro.core.query import SpatialKeywordQuery

    query = SpatialKeywordQuery(
        Point(114.1722, 22.2975), frozenset({"clean", "comfortable"}), 3
    )
    engine = BestFirstTopK(loaded_set, scorer)
    reloaded_result = engine.search(query)
    original_result = BestFirstTopK(set_tree, Scorer(database)).search(query)
    identical = [e.obj.oid for e in reloaded_result] == [
        e.obj.oid for e in original_result
    ]
    print(f"\nreloaded index answers identically: {identical}")
    assert identical

    # --- weight-interval analysis on the reloaded state ----------------
    adjuster = PreferenceAdjuster(scorer)
    hotel = loaded_db.resolve(GRAND_VICTORIA)
    intervals = adjuster.viable_weight_intervals(query, hotel)
    print(f"\n{hotel.label}: rank {scorer.rank_of(hotel, query)} under the query")
    if intervals:
        for lo, hi in intervals:
            print(f"  spatial weight in [{lo:.4f}, {hi:.4f}] would revive it")
    else:
        print("  no preference weighting alone revives it "
              "(keyword adaption or a larger k is needed)")


if __name__ == "__main__":
    main()
