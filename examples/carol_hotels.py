"""Example 2 of the paper: Carol, the conference hotels and keyword adaption.

"Carol issues a query to find the top-3 hotels that are close to the
conference venue and are described as 'clean' and 'comfortable.'  She is
surprised that the result contains only local hotels that are unknown to
her and that a well-known international hotel is not in the result. ...
The well-known hotel Carol could not see might be described better by
'luxury'; as such, the textual relevance of this hotel to the query
keywords is very low."  (Section 1, Example 2.)

This example shows the *keyword adaption* model fixing it, and sweeps λ
to show the Δk / Δdoc trade-off ("the impact of the setting of weight
parameter λ ... on the quality of refined queries", Section 4):

    python examples/carol_hotels.py
"""

from repro import Point, YaskEngine
from repro.bench.harness import Table
from repro.datasets import GRAND_VICTORIA, hong_kong_hotels


def main() -> None:
    database = hong_kong_hotels()
    engine = YaskEngine(database)
    hotel = database.resolve(GRAND_VICTORIA)

    # Carol queries from the conference venue with the default weights.
    venue = Point(114.1722, 22.2975)
    query = engine.make_query(venue, {"clean", "comfortable"}, k=3)
    result = engine.query(query)

    print("initial result (local hotels unknown to Carol):")
    print(result.describe())
    assert not result.contains(hotel), "scenario setup: hotel must be missing"

    explanation = engine.explain(query, [hotel])
    print("\n--- explanation ---")
    print(explanation.narrative())

    refinement = engine.refine_keywords(query, [hotel], lam=0.5)
    print("\n--- keyword adaption (λ=0.5) ---")
    print(refinement.describe())
    refined_result = engine.query(refinement.refined_query)
    assert refined_result.contains(hotel), "refinement must revive the hotel"
    print(f"\n{hotel.label} revived at rank "
          f"{[e.rank for e in refined_result if e.obj.oid == hotel.oid][0]} "
          f"of the refined top-{refinement.refined_query.k}")

    # λ sweep: low λ spends edits to keep k small; high λ keeps the
    # keywords and enlarges k instead.
    table = Table("lambda", "refined keywords", "Δdoc", "Δk", "penalty",
                  title="\nλ impact on the keyword-adapted refinement:")
    for lam in (0.1, 0.25, 0.5, 0.75, 0.9):
        sweep = engine.refine_keywords(query, [hotel], lam=lam)
        table.add_row(
            lam,
            ",".join(sorted(sweep.refined_query.doc)),
            sweep.delta_doc,
            sweep.delta_k,
            sweep.penalty,
        )
    print(table.render())


if __name__ == "__main__":
    main()
