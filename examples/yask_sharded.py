"""Sharded scatter-gather in action: parity first, then latency.

Two demonstrations:

1. **Hotels parity** — the 539-hotel dataset served by a 4-shard
   engine answers the paper's Example-2 query and a why-not question
   bit-for-bit identically to the unsharded engine, while the shard
   statistics show the scatter at work.
2. **Latency** — a 10k-object clustered corpus compares cold top-k and
   cold preference why-not between the scatter machinery at 1 shard
   (one full columnar scan) and at 4 shards (bound-ordered gather with
   shard skipping), the E12 experiment in miniature.

Run with ``PYTHONPATH=src python examples/yask_sharded.py``.
"""

import time

from repro.bench.workloads import QueryWorkload, generate_whynot_scenarios
from repro.core.geometry import Point
from repro.datasets.generators import SyntheticDatasetBuilder
from repro.datasets.hotels import hong_kong_hotels
from repro.service.api import YaskEngine
from repro.whynot.preference import PreferenceAdjuster


def hotels_parity() -> None:
    print("=== Hong Kong hotels: 4-shard engine vs unsharded engine ===")
    hotels = hong_kong_hotels()
    plain = YaskEngine(hotels)
    sharded = YaskEngine(hotels, shards=4)

    venue = Point(114.1722, 22.2975)  # the "conference venue" of Example 2
    query = plain.make_query(venue, {"clean", "comfortable"}, k=3)
    plain_result = plain.query(query)
    sharded_result = sharded.query(query)
    topk_match = [tuple(e) for e in plain_result] == [
        tuple(e) for e in sharded_result
    ]

    missing = ["Grand Victoria Harbour Hotel"]
    plain_answer = plain.why_not(query, missing)
    sharded_answer = sharded.why_not(query, missing)
    whynot_match = (
        plain_answer.preference == sharded_answer.preference
        and plain_answer.keyword == sharded_answer.keyword
        and plain_answer.best_model == sharded_answer.best_model
    )

    for entry in sharded_result:
        print(f"  {entry.describe()}")
    stats = sharded.shard_router.to_dict()
    print(f"  shards: {stats['count']} x {stats['objects']} objects")
    print(
        f"  scatter: {stats['topk_shards_scanned']} shard scans, "
        f"{stats['topk_shards_skipped']} skipped by bounds"
    )
    print(f"  top-k parity check: {topk_match}")
    print(f"  why-not parity check: {whynot_match}")
    print(f"  suggested refinement: {sharded_answer.best_model}")


def latency_comparison() -> None:
    print()
    print("=== 10k clustered objects: 1 shard vs 4 shards (cold) ===")
    database = SyntheticDatasetBuilder(seed=2016).build(
        10_000, vocabulary_size=50, doc_length=(4, 8),
        spatial="clustered", clusters=12,
    )
    one = YaskEngine(database, shards=1)
    four = YaskEngine(database, shards=4)
    workload = QueryWorkload(
        database, seed=7, k=10, keywords_per_query=(1, 2),
        location_jitter=0.01,
    )
    queries = list(workload.queries(10))

    parity = all(
        [tuple(e) for e in one.query(q)] == [tuple(e) for e in four.query(q)]
        for q in queries
    )

    def best_of(callable_, repeat=3):
        best = float("inf")
        for _ in range(repeat):
            started = time.perf_counter()
            callable_()
            best = min(best, time.perf_counter() - started)
        return best * 1000.0

    topk_one = best_of(lambda: [one.query(q) for q in queries])
    topk_four = best_of(lambda: [four.query(q) for q in queries])

    scenarios = generate_whynot_scenarios(
        one.scorer, count=2, k=10, missing_count=2, rank_window=20, seed=42
    )
    adjuster_one = PreferenceAdjuster(one.scorer)
    adjuster_four = PreferenceAdjuster(four.scorer)
    answers_match = [
        adjuster_one.refine(s.query, s.missing) for s in scenarios
    ] == [adjuster_four.refine(s.query, s.missing) for s in scenarios]
    whynot_one = best_of(
        lambda: [adjuster_one.refine(s.query, s.missing) for s in scenarios]
    )
    whynot_four = best_of(
        lambda: [adjuster_four.refine(s.query, s.missing) for s in scenarios]
    )

    stats = four.shard_router.to_dict()
    print(f"  parity check (top-k): {parity}")
    print(f"  parity check (why-not refinements): {answers_match}")
    print(
        f"  cold top-k, {len(queries)} queries: "
        f"1 shard {topk_one:.1f} ms -> 4 shards {topk_four:.1f} ms "
        f"({topk_one / topk_four:.2f}x)"
    )
    print(
        f"  cold why-not (preference), {len(scenarios)} scenarios: "
        f"1 shard {whynot_one:.1f} ms -> 4 shards {whynot_four:.1f} ms "
        f"({whynot_one / whynot_four:.2f}x)"
    )
    print(
        f"  shard scans skipped so far: {stats['topk_shards_skipped']} "
        f"(top-k), {stats['dual_shards_skipped']} (dual sweep)"
    )


if __name__ == "__main__":
    hotels_parity()
    latency_comparison()
