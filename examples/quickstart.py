"""Quickstart: issue a query, ask a why-not question, refine, verify.

Runs against the 539-hotel Hong Kong demonstration dataset (Section 4 of
the paper) entirely in-process through the public :class:`YaskEngine`
API — the same engine the HTTP service exposes.

    python examples/quickstart.py
"""

from repro import Point, YaskEngine
from repro.datasets import hong_kong_hotels


def main() -> None:
    # 1. Build the engine: loads the database and bulk-builds the
    #    SetR-tree (top-k + explanations) and KcR-tree (keyword adaption).
    database = hong_kong_hotels()
    engine = YaskEngine(database)
    print(f"database: {len(database)} hotels, "
          f"{len(database.vocabulary())} distinct keywords\n")

    # 2. Issue a spatial keyword top-3 query near Tsim Sha Tsui with the
    #    server-default preference weights <0.5, 0.5>.
    result = engine.top_k(Point(114.1722, 22.2975), {"clean", "comfortable"}, k=3)
    print("initial result:")
    print(result.describe())

    # 3. The user expected the Grand Victoria Harbour Hotel.  Ask why it
    #    is missing and get both refinement models in one call.
    missing_hotel = "Grand Victoria Harbour Hotel"
    answer = engine.why_not(result.query, [missing_hotel], lam=0.5)

    print("\nwhy-not explanation:")
    print(answer.explanation.narrative())

    print("\nrefinements:")
    print("  preference adjustment:", answer.preference.describe())
    print("  keyword adaption:     ", answer.keyword.describe())
    print(f"  lower-penalty model:   {answer.best_model}")

    # 4. Run the winning refined query and verify the hotel is revived.
    refined = (
        answer.keyword.refined_query
        if answer.best_model == "keyword adaption"
        else answer.preference.refined_query
    )
    refined_result = engine.query(refined)
    revived = refined_result.contains(database.resolve(missing_hotel))
    print(f"\nrefined result contains {missing_hotel!r}: {revived}")
    assert revived, "the refined query must revive the missing object"


if __name__ == "__main__":
    main()
