"""Live ingest and retirement over HTTP, with warm caches under writes.

Starts the YASK server on an ephemeral port, warms the top-k cache with
two neighbourhood queries, then mutates the database the way a live
service would — ingest a batch of new places, update one, retire one —
and shows the two properties the live-mutation tier promises:

* new objects are queryable the moment the batch returns (and answers
  match a fresh engine built from the new object set), and
* *scoped* cache invalidation keeps cached results the batch provably
  cannot affect: the distant query is still served warm after the
  write.

    python examples/yask_live_updates.py
"""

from repro import YaskEngine
from repro.datasets import hong_kong_hotels
from repro.service.client import YaskClient
from repro.service.server import YaskHTTPServer


def main() -> None:
    server = YaskHTTPServer(YaskEngine(hong_kong_hotels()))
    server.start_background()
    print(f"server up at {server.endpoint}")

    try:
        client = YaskClient(server.endpoint)
        before = client.health()["objects"]
        print(f"objects at startup: {before}")

        # Warm two cached results in different neighbourhoods.
        kowloon = dict(x=114.1722, y=22.2975, keywords=["clean"], k=3)
        island = dict(x=114.1655, y=22.2800, keywords=["harbour"], k=3)
        client.query(**kowloon)
        client.query(**island)

        # --- Ingest: three new places near the Kowloon query ----------
        report = client.insert_objects([
            {"oid": 910001, "x": 114.1725, "y": 22.2970,
             "keywords": ["clean", "rooftop", "bar"], "name": "Skyline Hostel"},
            {"oid": 910002, "x": 114.1730, "y": 22.2965,
             "keywords": ["clean", "budget"], "name": "Harbour Bunk"},
            {"oid": 910003, "x": 114.1710, "y": 22.2985,
             "keywords": ["rooftop", "pool"], "name": "Pool Deck Inn"},
        ])
        tally = report["cache_invalidation"]
        print(f"\ningested 3 places (generation {report['generation']}, "
              f"{report['response_ms']:.1f} ms server-side)")
        print(f"scoped invalidation: dropped {tally['dropped']} affected "
              f"cached result(s), kept {tally['kept']} warm")

        # Immediately queryable …
        top = client.query(x=114.1722, y=22.2975, keywords=["rooftop"], k=2)
        names = [e["object"]["name"] for e in top["result"]["entries"]]
        print(f"top-2 'rooftop' right after ingest: {names}")

        # … and the distant cached query survived the write.
        warm = client.query(**island)
        print(f"distant 'harbour' query cached after the write: "
              f"{warm['cached']}")

        # --- Update and retire ----------------------------------------
        client.mutate([
            {"op": "update", "oid": 910001, "x": 114.1725, "y": 22.2970,
             "keywords": ["clean", "rooftop", "bar", "renovated"],
             "name": "Skyline Hostel"},
            {"op": "delete", "oid": 910002},
        ])
        renovated = client.get_object("Skyline Hostel")
        print(f"\nafter update: {renovated['keywords']}")
        stats = client.mutation_stats()
        print(f"mutation stats: generation {stats['generation']}, "
              f"+{stats['inserted']} / ~{stats['updated']} / "
              f"-{stats['deleted']}, kernel rows {stats['kernel']['rows']} "
              f"({stats['kernel']['tombstones']} tombstones)")

        after = client.health()["objects"]
        print(f"objects now: {after} (started with {before})")
        assert after == before + 2  # 3 inserted, 1 deleted
    finally:
        server.shutdown()
        server.server_close()

    print("\ndone.")


if __name__ == "__main__":
    main()
