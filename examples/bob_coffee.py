"""Example 1 of the paper: Bob, the top-3 "coffee" query and the Starbucks.

"Bob visits New York for the first time, and he wants to find a nearby
cafe for a cup of coffee.  He issues a top-3 spatial query with keyword
'coffee.'  However, surprisingly, the Starbucks cafe down the street is
not in the result. ... the reason why Bob could not see the Starbucks
cafe could be that a very low importance was given to spatial proximity
in the scoring function."  (Section 1, Example 1 — our cafes are in Hong
Kong like the demo dataset, the scenario is identical.)

This example shows the *preference adjustment* model fixing it:

    python examples/bob_coffee.py
"""

from repro import Point, Weights, YaskEngine
from repro.datasets import STARBUCKS_CENTRAL, coffee_shops
from repro.service.panels import render_map, render_result_window


def main() -> None:
    database = coffee_shops()
    engine = YaskEngine(database)
    starbucks = database.resolve(STARBUCKS_CENTRAL)

    # The system parameter gives very low importance to spatial
    # proximity — exactly the misconfiguration Example 1 describes.
    query = engine.make_query(
        Point(114.158, 22.282), {"coffee"}, k=3,
        weights=Weights.from_spatial(0.15),
    )
    result = engine.query(query)

    print(render_map(database, query=query, result=result,
                     missing=[starbucks], width=64, height=16))
    print()
    print(render_result_window(result, width=64))

    assert not result.contains(starbucks), (
        "scenario setup: the Starbucks must be missing initially"
    )

    # Bob asks: why is the Starbucks down the street not in my result?
    explanation = engine.explain(query, [starbucks])
    print("\n--- explanation ---")
    print(explanation.narrative())

    # He requests a preference adjustment (λ = 0.5: equally averse to
    # enlarging k and to changing the weights).
    refinement = engine.refine_preference(query, [starbucks], lam=0.5)
    print("\n--- preference adjustment ---")
    print(refinement.describe())

    refined_result = engine.query(refinement.refined_query)
    print()
    print(render_result_window(refined_result, width=64))
    assert refined_result.contains(starbucks), "refinement must revive it"
    print(f"\n{starbucks.label} revived: True "
          f"(weights moved from ws=0.15 to ws={refinement.refined_query.ws:.3f})")


if __name__ == "__main__":
    main()
