"""The full demonstration walkthrough of Section 4, in text mode.

Reproduces the three demonstration scenarios on the 539-hotel Hong Kong
dataset with the text-panel substitute for the Google Maps GUI:

1. *Spatial Keyword Top-k Querying* (Fig. 3): the map with grey/green/red
   markers and the result window.
2. *Interacting with Why-Not Questions* (Figs. 4-5): black markers for
   the expected-but-missing hotels, the explanation panel and both
   refined queries, plus the query-log panel with parameters, penalties
   and response times.
3. *Query Refinement Effectiveness*: the λ sweep for both models.

    python examples/hk_hotels_demo.py
"""

import time

from repro import Point, YaskEngine
from repro.bench.harness import Table
from repro.datasets import GRAND_VICTORIA, hong_kong_hotels
from repro.service.panels import render_demo_screen
from repro.service.session import QueryLog


def main() -> None:
    database = hong_kong_hotels()
    engine = YaskEngine(database)
    log = QueryLog()

    # --- Scenario 1 + 2: query, then a why-not interaction ------------
    venue = Point(114.1722, 22.2975)
    started = time.perf_counter()
    result = engine.top_k(venue, {"clean", "comfortable"}, k=3)
    log.record("top-k query", {"k": 3, "keywords": "clean,comfortable"},
               (time.perf_counter() - started) * 1000.0)

    started = time.perf_counter()
    answer = engine.why_not(result.query, [GRAND_VICTORIA], lam=0.5)
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    log.record(
        "why-not (both models)",
        {
            "missing": GRAND_VICTORIA,
            "pref_ws": round(answer.preference.refined_query.ws, 4),
            "kw_added": ",".join(sorted(answer.keyword.added)),
        },
        elapsed_ms,
        penalty=min(answer.preference.penalty, answer.keyword.penalty),
    )

    print(render_demo_screen(database, result, answer, log.entries, width=72))

    # --- Scenario 3: refinement effectiveness (λ impact) --------------
    table = Table(
        "lambda", "pref Δw", "pref Δk", "pref penalty",
        "kw Δdoc", "kw Δk", "kw penalty",
        title="\nQuery Refinement Effectiveness (λ sweep, both models):",
    )
    for lam in (0.0, 0.25, 0.5, 0.75, 1.0):
        pref = engine.refine_preference(result.query, [GRAND_VICTORIA], lam=lam)
        keyword = engine.refine_keywords(result.query, [GRAND_VICTORIA], lam=lam)
        table.add_row(
            lam,
            round(pref.delta_w, 4), pref.delta_k, round(pref.penalty, 4),
            keyword.delta_doc, keyword.delta_k, round(keyword.penalty, 4),
        )
    print(table.render())
    print(
        "\nReading: λ→0 penalises weight/keyword edits only, so the models"
        "\nmodify the query freely to keep k small; λ→1 penalises enlarging"
        "\nk only, so the minimal change is preferred even at a large Δk."
    )


if __name__ == "__main__":
    main()
