"""The browser-server round trip of Fig. 1 over real HTTP.

Starts the YASK HTTP server on an ephemeral local port, then drives it
with the Python client exactly as the demonstration GUI would: issue the
initial top-k query (getting a cached session), ask for the explanation,
request both refinements, read the query log and close the session.
Finishes with the serving-tier additions: a batched query request, a
batched why-not request (cached, deduplicated, reusing the top-k
cache) and both executors' cache statistics.

    python examples/yask_server.py
"""

from repro import YaskEngine
from repro.datasets import GRAND_VICTORIA, hong_kong_hotels
from repro.service.client import YaskClient
from repro.service.server import YaskHTTPServer


def main() -> None:
    server = YaskHTTPServer(YaskEngine(hong_kong_hotels()))
    server.start_background()
    print(f"server up at {server.endpoint}")

    try:
        client = YaskClient(server.endpoint)
        print("health:", client.health())

        # Initial query — the server caches it and returns a session id.
        response = client.query(
            x=114.1722, y=22.2975, keywords=["clean", "comfortable"], k=3
        )
        session_id = response["session_id"]
        print(f"\nsession {session_id}, "
              f"server time {response['response_ms']:.2f} ms")
        for entry in response["result"]["entries"]:
            obj = entry["object"]
            print(f"  #{entry['rank']} {obj['name']}  score={entry['score']:.4f}")

        # Why is the Grand Victoria missing?
        explanation = client.explain(session_id, [GRAND_VICTORIA])
        first = explanation["explanation"]["objects"][0]
        print(f"\nexplanation: rank #{first['rank']}, reason: {first['reason']}")

        # Both refinement models.
        pref = client.refine_preference(session_id, [GRAND_VICTORIA], lam=0.5)
        print("\npreference adjustment:")
        print(f"  refined ws={pref['refinement']['refined_query']['ws']:.4f}, "
              f"k={pref['refinement']['refined_query']['k']}, "
              f"penalty={pref['refinement']['penalty']:.4f}")

        keywords = client.refine_keywords(session_id, [GRAND_VICTORIA], lam=0.5)
        print("keyword adaption:")
        print(f"  added={keywords['refinement']['added']}, "
              f"k={keywords['refinement']['refined_query']['k']}, "
              f"penalty={keywords['refinement']['penalty']:.4f}")
        revived = [
            entry["object"]["name"]
            for entry in keywords["refined_result"]["entries"]
            if entry["object"]["name"] == GRAND_VICTORIA
        ]
        print(f"  revived in refined result: {bool(revived)}")

        # The query-log panel (Fig. 4, Panel 5).
        print("\nquery log:")
        for entry in client.query_log(session_id):
            penalty = (
                f" penalty={entry['penalty']:.4f}" if entry["penalty"] else ""
            )
            print(f"  [{entry['sequence']}] {entry['kind']}"
                  f"{penalty} time={entry['response_ms']:.2f}ms")

        print("\nclosing session:", client.close_session(session_id))

        # The batch endpoint: many queries per round trip, deduplicated
        # and cached by the server's QueryExecutor.  The first payload
        # repeats the initial query, so it comes back as a cache hit.
        batch = client.query_batch(
            [
                {"x": 114.1722, "y": 22.2975,
                 "keywords": ["clean", "comfortable"], "k": 3},
                {"x": 114.1722, "y": 22.2975, "keywords": ["harbour"], "k": 2},
                {"x": 114.1722, "y": 22.2975,
                 "keywords": ["clean", "comfortable"], "k": 3},
            ]
        )
        print(f"\nbatch of {batch['count']} queries "
              f"in {batch['total_ms']:.2f} ms:")
        for index, entry in enumerate(batch["results"]):
            top = entry["result"]["entries"][0]["object"]["name"]
            print(f"  [{index}] top-1 {top!r}  source={entry['source']}  "
                  f"time={entry['response_ms']:.2f} ms")

        stats = client.stats()
        print(f"executor cache: {stats['hits']} hits, {stats['misses']} misses, "
              f"hit rate {stats['hit_rate']:.0%}")

        # The why-not batch endpoint: independent questions in one round
        # trip.  The first asks the session's question again (cache hit —
        # the session flow already computed it), the second asks for the
        # preference model only, at a different λ.
        whynot = client.whynot_batch(
            [
                {"x": 114.1722, "y": 22.2975,
                 "keywords": ["clean", "comfortable"], "k": 3,
                 "missing": [GRAND_VICTORIA], "model": "explain"},
                {"x": 114.1722, "y": 22.2975,
                 "keywords": ["clean", "comfortable"], "k": 3,
                 "missing": [GRAND_VICTORIA], "model": "preference",
                 "lambda": 0.3},
            ]
        )
        print(f"\nwhy-not batch of {whynot['count']} questions "
              f"in {whynot['total_ms']:.2f} ms:")
        for index, entry in enumerate(whynot["results"]):
            print(f"  [{index}] model={entry['model']} source={entry['source']} "
                  f"topk_source={entry['topk_source']} "
                  f"time={entry['response_ms']:.2f} ms")

        wstats = client.whynot_stats()
        print(f"why-not cache: {wstats['hits']} hits, {wstats['misses']} misses, "
              f"hit rate {wstats['hit_rate']:.0%}")
    finally:
        server.shutdown()
        server.server_close()
        print("server stopped")


if __name__ == "__main__":
    main()
