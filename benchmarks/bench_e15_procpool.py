"""E15 — process shard workers vs. the threaded scatter.

PR 9 moves shard scans out of the GIL: each shard's kernel columns are
exported once into a ``multiprocessing.shared_memory`` segment and a
long-lived worker process attaches them zero-copy
(``repro.service.procpool``).  The scatter then costs one pickled
request/response per surviving shard — the query scalars out, the
``(neg score, oid)`` pairs back — instead of a Python-bytecode scan
competing for one interpreter lock.

Correctness is asserted unconditionally, the speedup floor only where
it can physically exist:

* top-k parity with the threaded scatter is bit-for-bit, including tie
  order and the scanned/skipped scatter counters;
* why-not answers are identical across the process boundary;
* close() provably unlinks every shared segment (nothing left in
  ``/dev/shm``);
* on hosts with >= 4 cores, cold top-k through the worker pool must be
  at least 1.5x the threaded scatter at 4 shards.  A single-core
  container cannot demonstrate parallel speedup — there the floor is
  skipped (the parity and hygiene assertions still run) and CI's
  multi-core runners hold the line.

Run with
``PYTHONPATH=src python -m pytest benchmarks/bench_e15_procpool.py -q``
(add ``-s`` for the speedup table).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import Table, time_call
from repro.bench.workloads import QueryWorkload, generate_whynot_scenarios
from repro.datasets.generators import SyntheticDatasetBuilder
from repro.service.api import YaskEngine

#: Acceptance floor (ISSUE 9): proc vs threads at 4 shards, >= 4 cores.
PROC_FLOOR = 1.5

OBJECTS = 20_000
SHARDS = 4

multicore = pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason=f"parallel floor needs >= 4 cores, host has {os.cpu_count()}",
)


@pytest.fixture(scope="module")
def shard_db():
    """Same geo-local category-search corpus as E12."""
    return SyntheticDatasetBuilder(seed=2016).build(
        OBJECTS,
        vocabulary_size=50,
        doc_length=(4, 8),
        spatial="clustered",
        clusters=12,
    )


@pytest.fixture(scope="module")
def threaded_engine(shard_db):
    """The threaded scatter at its parallel shape — the oracle."""
    engine = YaskEngine(shard_db, shards=SHARDS, shard_workers=SHARDS)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def proc_engine(shard_db):
    engine = YaskEngine(shard_db, shards=SHARDS, shard_workers="proc")
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def topk_queries(shard_db):
    workload = QueryWorkload(
        shard_db, seed=7, k=10, keywords_per_query=(1, 2),
        location_jitter=0.01,
    )
    return list(workload.queries(12))


def test_e15_topk_parity_with_threaded_scatter(
    threaded_engine, proc_engine, topk_queries
):
    """Bit-for-bit entries and identical scatter counters."""
    threaded_engine.shard_router.stats.reset()
    proc_engine.shard_router.stats.reset()
    for query in topk_queries:
        assert [tuple(e) for e in proc_engine.query(query)] == [
            tuple(e) for e in threaded_engine.query(query)
        ]
    threaded = threaded_engine.shard_router.stats.to_dict()
    proc = proc_engine.shard_router.stats.to_dict()
    assert proc["topk_shards_scanned"] == threaded["topk_shards_scanned"]
    assert proc["topk_shards_skipped"] == threaded["topk_shards_skipped"]
    assert proc_engine.worker_pool.to_dict()["restarts"] == 0


def test_e15_whynot_parity(threaded_engine, proc_engine):
    """Whole why-not answers agree across the process boundary."""
    scenarios = generate_whynot_scenarios(
        threaded_engine.scorer, count=3, k=10, missing_count=2,
        rank_window=20, seed=42,
    )
    for scenario in scenarios:
        missing = [obj.oid for obj in scenario.missing]
        expected = threaded_engine.why_not(scenario.query, missing, lam=0.5)
        actual = proc_engine.why_not(scenario.query, missing, lam=0.5)
        assert actual.preference == expected.preference
        assert actual.keyword == expected.keyword
        assert actual.best_model == expected.best_model


@multicore
def test_e15_cold_topk_proc_1_5x(threaded_engine, proc_engine, topk_queries):
    """Acceptance: the worker pool >= 1.5x the threaded scatter."""

    def run(engine):
        return [engine.query(query) for query in topk_queries]

    proc_results, proc_timing = time_call(lambda: run(proc_engine), repeat=5)
    threaded_results, threaded_timing = time_call(
        lambda: run(threaded_engine), repeat=5
    )
    for fast, slow in zip(proc_results, threaded_results):
        assert [tuple(e) for e in fast] == [tuple(e) for e in slow]

    speedup = threaded_timing.best / proc_timing.best
    table = Table(
        "configuration", "best_ms", "median_ms",
        title=(
            f"E15: cold top-k, {SHARDS} shards "
            f"({OBJECTS} objects x {len(topk_queries)} queries)"
        ),
    )
    table.add_row(f"{SHARDS} threads (GIL-bound)", threaded_timing.best_ms,
                  threaded_timing.median_ms)
    table.add_row(f"{SHARDS} worker processes", proc_timing.best_ms,
                  proc_timing.median_ms)
    table.add_row(f"speedup {speedup:.2f}x (floor {PROC_FLOOR}x)", "", "")
    table.print()
    assert speedup >= PROC_FLOOR, (
        f"process scatter only {speedup:.2f}x the threaded scatter "
        f"({proc_timing.best_ms:.1f}ms vs {threaded_timing.best_ms:.1f}ms)"
    )


def test_e15_segments_freed_on_close(shard_db, topk_queries):
    """Shutdown provably unlinks every shared-memory segment."""
    engine = YaskEngine(shard_db, shards=SHARDS, shard_workers="proc")
    try:
        engine.query(topk_queries[0])
        names = engine.worker_pool.segment_names()
        assert len(names) == SHARDS
        for name in names:
            assert os.path.exists(f"/dev/shm/{name}")
    finally:
        engine.close()
    leaked = [name for name in names if os.path.exists(f"/dev/shm/{name}")]
    assert leaked == []
