"""E7 — the scalability claim of Section 4.

"While the YASK system and its algorithms are built to be scalable and
offer good performance for data sets with millions of objects [4-6], we
use a small and focussed data set ... for demonstrating the system."

The laptop-scale sweep checks the *shape* of that claim on this
reproduction: index build should be near O(n log n), indexed top-k far
sublinear in n, and both why-not modules' costs dominated by terms that
grow much more slowly than brute force.  Absolute numbers are not
comparable to the authors' Java/Tomcat testbed (see EXPERIMENTS.md).
"""

import pytest

from repro.bench.harness import Table, time_call
from repro.bench.workloads import QueryWorkload, generate_whynot_scenarios
from repro.core.scoring import Scorer
from repro.core.topk import BestFirstTopK
from repro.index.kcrtree import KcRTree
from repro.index.setrtree import SetRTree
from repro.whynot.keyword import KeywordAdapter
from repro.whynot.preference import PreferenceAdjuster

from benchmarks.conftest import build_database

SCALE_SIZES = (2_000, 10_000, 50_000, 100_000)


def test_e7_index_build_at_scale(benchmark):
    database = build_database(100_000)
    tree = benchmark.pedantic(
        SetRTree.build, args=(database,), kwargs={"max_entries": 32},
        rounds=2, iterations=1,
    )
    assert len(tree) == 100_000


def test_e7_topk_at_scale(benchmark):
    database = build_database(100_000)
    scorer = Scorer(database)
    tree = SetRTree.build(database, max_entries=32)
    engine = BestFirstTopK(tree, scorer)
    queries = list(
        QueryWorkload(database, seed=71, k=10, keyword_bias="uniform").queries(20)
    )

    def run():
        for query in queries:
            engine.search(query)

    benchmark(run)


def test_e7_preference_at_scale(benchmark):
    database = build_database(100_000)
    scorer = Scorer(database)
    scenarios = generate_whynot_scenarios(
        scorer, count=1, k=10, missing_count=1, rank_window=40, seed=72
    )
    adjuster = PreferenceAdjuster(scorer)
    scenario = scenarios[0]

    benchmark.pedantic(
        lambda: adjuster.refine(scenario.query, scenario.missing),
        rounds=2, iterations=1,
    )


def test_e7_keyword_at_scale(benchmark):
    database = build_database(100_000)
    scorer = Scorer(database)
    tree = KcRTree.build(database, max_entries=32)
    scenarios = generate_whynot_scenarios(
        scorer, count=1, k=10, missing_count=1, rank_window=40, seed=73
    )
    adapter = KeywordAdapter(scorer, tree)
    scenario = scenarios[0]

    benchmark.pedantic(
        lambda: adapter.refine(scenario.query, scenario.missing),
        rounds=2, iterations=1,
    )


def test_e7_report_scaling_shape(benchmark, capsys):
    """The headline E7 table: cost vs n for every engine."""
    table = Table(
        "n", "build ms", "top-10 ms", "preference ms", "keyword ms",
        "topk objects scored",
        title="E7: scaling shape (per-operation latency vs database size)",
    )
    topk_latencies = []
    for n in SCALE_SIZES:
        database = build_database(n)
        scorer = Scorer(database)

        tree, build_timing = time_call(
            lambda: SetRTree.build(database, max_entries=32), repeat=1, warmup=0
        )
        kcr = KcRTree.build(database, max_entries=32)
        engine = BestFirstTopK(tree, scorer)
        queries = list(
            QueryWorkload(database, seed=74, k=10, keyword_bias="uniform").queries(10)
        )

        def run_topk():
            for query in queries:
                engine.search(query)

        _, topk_timing = time_call(run_topk, repeat=3)
        engine.search(queries[0])

        scenario = generate_whynot_scenarios(
            scorer, count=1, k=10, missing_count=1, rank_window=40, seed=75
        )[0]
        adjuster = PreferenceAdjuster(scorer)
        adapter = KeywordAdapter(scorer, kcr)
        _, pref_timing = time_call(
            lambda: adjuster.refine(scenario.query, scenario.missing), repeat=2
        )
        _, keyword_timing = time_call(
            lambda: adapter.refine(scenario.query, scenario.missing), repeat=2
        )
        per_query_ms = topk_timing.best_ms / len(queries)
        topk_latencies.append(per_query_ms)
        table.add_row(
            n,
            round(build_timing.best_ms, 1),
            round(per_query_ms, 3),
            round(pref_timing.best_ms, 1),
            round(keyword_timing.best_ms, 1),
            engine.stats.objects_scored,
        )
    with capsys.disabled():
        table.print()

    # Scaling-shape assertion: a 50x larger database must not cost
    # anywhere near 50x per top-k query (the index is sublinear).
    assert topk_latencies[-1] < topk_latencies[0] * (
        SCALE_SIZES[-1] / SCALE_SIZES[0]
    ) * 0.5
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
