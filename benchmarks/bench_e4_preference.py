"""E4 — Figs. 4-5 / demonstration scenario 2: preference adjustment.

The exact weight-sweep algorithm (two dual-space range queries +
crossover sweep with the rank update theorem) versus the sampling
baseline, swept over k, |M| and λ.

Expected shape (EXPERIMENTS.md): the exact algorithm's penalty is never
worse than sampling's (it is the true optimum); its runtime is
comparable to moderate sampling and independent of the probe-count
accuracy trade-off that sampling faces.
"""

import pytest

from repro.bench.harness import Table, time_call
from repro.bench.workloads import generate_whynot_scenarios
from repro.whynot.baselines import SamplingPreferenceAdjuster
from repro.whynot.preference import PreferenceAdjuster


@pytest.mark.parametrize("k", [3, 10, 30], ids=lambda k: f"k={k}")
def test_e4_exact_by_k(benchmark, bench_scorer, k):
    scenarios = generate_whynot_scenarios(
        bench_scorer, count=3, k=k, missing_count=1, rank_window=40, seed=41
    )
    adjuster = PreferenceAdjuster(bench_scorer)

    def run():
        for s in scenarios:
            adjuster.refine(s.query, s.missing)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("missing", [1, 2, 4], ids=lambda m: f"M={m}")
def test_e4_exact_by_missing_count(benchmark, bench_scorer, missing):
    scenarios = generate_whynot_scenarios(
        bench_scorer, count=3, k=10, missing_count=missing, rank_window=40,
        seed=42,
    )
    adjuster = PreferenceAdjuster(bench_scorer)

    def run():
        for s in scenarios:
            adjuster.refine(s.query, s.missing)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("samples", [50, 200, 800], ids=lambda s: f"s={s}")
def test_e4_sampling_baseline(benchmark, bench_scorer, bench_scenarios, samples):
    sampler = SamplingPreferenceAdjuster(bench_scorer, samples=samples)
    scenarios = bench_scenarios[:2]

    def run():
        for s in scenarios:
            sampler.refine(s.query, s.missing)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)


def test_e4_report_quality_vs_runtime(benchmark, bench_scorer, bench_scenarios, capsys):
    """The headline E4 table: penalty optimality and runtime per method."""
    adjuster = PreferenceAdjuster(bench_scorer)
    table = Table(
        "method", "mean penalty", "optimality gap", "ms/question",
        title="E4: preference adjustment, exact weight-sweep vs sampling (λ=0.5)",
    )
    scenarios = bench_scenarios[:3]

    def run_exact():
        return [adjuster.refine(s.query, s.missing) for s in scenarios]

    exact_results, exact_timing = time_call(run_exact, repeat=3)
    exact_penalties = [r.penalty for r in exact_results]
    table.add_row(
        "exact weight-sweep",
        round(sum(exact_penalties) / len(exact_penalties), 4),
        0.0,
        round(exact_timing.best_ms / len(scenarios), 2),
    )

    for samples in (50, 200, 800):
        sampler = SamplingPreferenceAdjuster(bench_scorer, samples=samples)

        def run_sampled():
            return [sampler.refine(s.query, s.missing) for s in scenarios]

        sampled_results, sampled_timing = time_call(run_sampled, repeat=3)
        penalties = [r.penalty for r in sampled_results]
        gap = max(
            sampled - exact
            for sampled, exact in zip(penalties, exact_penalties)
        )
        table.add_row(
            f"sampling-{samples}",
            round(sum(penalties) / len(penalties), 4),
            round(gap, 4),
            round(sampled_timing.best_ms / len(scenarios), 2),
        )
        # The exact algorithm is optimal: sampling can never beat it.
        assert gap >= -1e-9
    with capsys.disabled():
        table.print()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
