"""E8 — ablations of the design choices Section 3.3 calls out.

Each ablation removes one ingredient of a YASK engine and measures what
it bought:

* SetR-tree keyword bounds → plain MINDIST-only bounds (text part
  bounded by 1.0) for top-k search,
* dual-space R-tree range queries → linear scan for crossover retrieval,
* KcR-tree rank bounds → exhaustive ranking per candidate (also E5),
* R-tree fanout sensitivity.
"""

import pytest

from repro.bench.harness import Table, time_call
from repro.bench.workloads import QueryWorkload
from repro.core.topk import BestFirstTopK
from repro.index.setrtree import SetRTree
from repro.whynot.preference import PreferenceAdjuster


class _MindistOnlyIndex:
    """SetR-tree wrapper that ignores keyword summaries (ablation)."""

    def __init__(self, tree: SetRTree) -> None:
        self._tree = tree

    @property
    def root(self):
        return self._tree.root

    def __len__(self) -> int:
        return len(self._tree)

    def score_upper_bound(self, node, query):
        assert node.rect is not None
        min_sdist = min(
            node.rect.min_distance_to_point(query.loc)
            / self._tree.database.distance_normaliser,
            1.0,
        )
        # No textual information: TSim bounded by 1 for every node.
        return query.ws * (1.0 - min_sdist) + query.wt * 1.0


def test_e8_topk_with_keyword_bounds(benchmark, bench_db, bench_scorer, bench_setrtree):
    engine = BestFirstTopK(bench_setrtree, bench_scorer)
    queries = list(QueryWorkload(bench_db, seed=81, k=10).queries(20))

    def run():
        for query in queries:
            engine.search(query)

    benchmark(run)


def test_e8_topk_without_keyword_bounds(benchmark, bench_db, bench_scorer, bench_setrtree):
    engine = BestFirstTopK(_MindistOnlyIndex(bench_setrtree), bench_scorer)
    queries = list(QueryWorkload(bench_db, seed=81, k=10).queries(20))

    def run():
        for query in queries:
            engine.search(query)

    benchmark(run)


@pytest.mark.parametrize("use_index", [True, False], ids=["dual-rtree", "linear-scan"])
def test_e8_crossover_retrieval(benchmark, bench_scorer, bench_scenarios, use_index):
    adjuster = PreferenceAdjuster(bench_scorer, use_dual_index=use_index)
    scenario = bench_scenarios[0]

    benchmark.pedantic(
        lambda: adjuster.refine(scenario.query, scenario.missing),
        rounds=3, iterations=1, warmup_rounds=1,
    )


@pytest.mark.parametrize("fanout", [8, 32, 128], ids=lambda f: f"M={f}")
def test_e8_fanout_sensitivity(benchmark, bench_db, bench_scorer, fanout):
    from repro.core.topk import BestFirstTopK

    tree = SetRTree.build(bench_db, max_entries=fanout)
    engine = BestFirstTopK(tree, bench_scorer)
    queries = list(QueryWorkload(bench_db, seed=82, k=10).queries(20))

    def run():
        for query in queries:
            engine.search(query)

    benchmark(run)


def test_e8_report_ablation_summary(
    benchmark, bench_db, bench_scorer, bench_setrtree, bench_scenarios, capsys
):
    table = Table(
        "configuration", "ms/op", "work metric",
        title="E8: ablation summary (10k objects)",
    )
    queries = list(QueryWorkload(bench_db, seed=83, k=10).queries(10))

    full = BestFirstTopK(bench_setrtree, bench_scorer)
    bare = BestFirstTopK(_MindistOnlyIndex(bench_setrtree), bench_scorer)

    def run_engine(engine):
        def run():
            for query in queries:
                engine.search(query)
        return run

    _, full_timing = time_call(run_engine(full), repeat=3)
    full.search(queries[0])
    full_scored = full.stats.objects_scored
    _, bare_timing = time_call(run_engine(bare), repeat=3)
    bare.search(queries[0])
    bare_scored = bare.stats.objects_scored
    table.add_row(
        "top-k, SetR-tree bounds",
        round(full_timing.best_ms / len(queries), 3),
        f"{full_scored} objects scored",
    )
    table.add_row(
        "top-k, MINDIST only",
        round(bare_timing.best_ms / len(queries), 3),
        f"{bare_scored} objects scored",
    )
    # The keyword bounds must pay for themselves in pruned work.
    assert full_scored <= bare_scored

    scenario = bench_scenarios[0]
    for use_index, label in ((True, "crossovers via dual R-tree"),
                             (False, "crossovers via linear scan")):
        adjuster = PreferenceAdjuster(bench_scorer, use_dual_index=use_index)
        result, timing = time_call(
            lambda: adjuster.refine(scenario.query, scenario.missing), repeat=2
        )
        table.add_row(label, round(timing.best_ms, 2), f"{result.crossovers} crossovers")
    with capsys.disabled():
        table.print()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
