"""E9 — the query-execution tier: cold vs. warm vs. batched throughput.

The executor exists to amortise repeated work across requests (the
ROADMAP's serving-tier direction): a warm cache answers a repeated
query without touching the index, and the batch endpoint moves many
queries per HTTP round trip instead of one.  This experiment quantifies
both claims and asserts the acceptance thresholds:

* warm-cache single-query latency at least 5x lower than cold, and
* batch-endpoint throughput at least 2x sequential single-query
  requests on the same workload.

Run with ``make bench-smoke`` or
``PYTHONPATH=src python -m pytest benchmarks/bench_e9_executor.py -q``.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.workloads import QueryWorkload
from repro.service.executor import QueryExecutor


@pytest.fixture(scope="module")
def bench_engine(bench_db):
    from repro.service.api import YaskEngine

    return YaskEngine(bench_db)


@pytest.fixture(scope="module")
def bench_queries(bench_db):
    workload = QueryWorkload(bench_db, seed=41, k=10, keywords_per_query=(2, 3))
    return list(workload.queries(20))


def test_e9_cold_query(benchmark, bench_engine, bench_queries):
    """Cold path: every request pays the full index traversal."""
    executor = QueryExecutor(bench_engine)
    query = bench_queries[0]

    def cold():
        executor.invalidate()
        return executor.execute(query)

    execution = benchmark(cold)
    assert execution.source == "engine"


def test_e9_warm_query(benchmark, bench_engine, bench_queries):
    """Warm path: the repeated query is an LRU lookup."""
    executor = QueryExecutor(bench_engine)
    query = bench_queries[0]
    executor.execute(query)  # prime

    execution = benchmark(executor.execute, query)
    assert execution.source == "cache"


def test_e9_warm_is_5x_faster_than_cold(bench_engine, bench_queries):
    """Acceptance: warm-cache latency >= 5x lower than cold."""
    executor = QueryExecutor(bench_engine)
    rounds = 5

    cold_times = []
    for query in bench_queries[:rounds]:
        executor.invalidate()
        started = time.perf_counter()
        executor.execute(query)
        cold_times.append(time.perf_counter() - started)

    warm_times = []
    for query in bench_queries[:rounds]:
        executor.execute(query)  # prime after the invalidations above
        started = time.perf_counter()
        execution = executor.execute(query)
        warm_times.append(time.perf_counter() - started)
        assert execution.cached

    cold = sorted(cold_times)[rounds // 2]
    warm = sorted(warm_times)[rounds // 2]
    assert warm * 5.0 <= cold, (
        f"warm median {warm * 1e3:.3f} ms not 5x below cold {cold * 1e3:.3f} ms"
    )


def test_e9_inprocess_batch(benchmark, bench_engine, bench_queries):
    """Reference number: executor batch over a 20-query workload."""
    executor = QueryExecutor(bench_engine, max_workers=8)

    def run():
        executor.invalidate()
        return executor.execute_batch(bench_queries)

    batch = benchmark(run)
    assert len(batch) == len(bench_queries)


def test_e9_batch_endpoint_2x_sequential_http(hotels_engine):
    """Acceptance: one batch request >= 2x the throughput of sequential
    single-query requests for the same workload.

    The workload is production-shaped: a handful of popular queries,
    each issued several times (users query where everyone queries).
    Each transport gets its own freshly started server, so both begin
    with a cold executor cache; sequential mode then pays one HTTP round
    trip per request while batch mode amortises the whole workload over
    one.
    """
    import random

    from repro.service.client import YaskClient
    from repro.service.server import YaskHTTPServer

    workload = QueryWorkload(
        hotels_engine.database, seed=43, k=5, keywords_per_query=(1, 2)
    )
    unique = list(workload.queries(8))
    queries = unique * 8  # 64 requests over 8 distinct queries
    random.Random(7).shuffle(queries)
    payloads = [
        {
            "x": q.loc.x,
            "y": q.loc.y,
            "keywords": sorted(q.doc),
            "k": q.k,
            "ws": q.ws,
        }
        for q in queries
    ]
    warmup = {"x": 114.0, "y": 22.0, "keywords": ["clean"], "k": 1}

    def timed_on_fresh_server(run):
        server = YaskHTTPServer(hotels_engine)
        server.start_background()
        client = YaskClient(server.endpoint)
        try:
            client.query(
                warmup["x"], warmup["y"], warmup["keywords"], warmup["k"]
            )
            started = time.perf_counter()
            outcome = run(client)
            return outcome, time.perf_counter() - started
        finally:
            server.shutdown()
            server.server_close()

    def sequential_run(client):
        responses = [
            client.query(
                payload["x"], payload["y"], payload["keywords"], payload["k"],
                ws=payload["ws"],
            )
            for payload in payloads
        ]
        return responses

    responses, sequential = timed_on_fresh_server(sequential_run)
    # Best of two cold-start batch runs: one scheduler hiccup inside the
    # single measured request otherwise dominates the comparison.
    (response, batched), (_, batched_2) = (
        timed_on_fresh_server(lambda client: client.query_batch(payloads))
        for _ in range(2)
    )
    batched = min(batched, batched_2)

    assert len(responses) == len(payloads)
    assert response["count"] == len(payloads)
    # Both transports served the same workload from the same cold start.
    assert sum(1 for r in response["results"] if not r["cached"]) <= len(unique)
    assert batched * 2.0 <= sequential, (
        f"batch {batched * 1e3:.1f} ms not 2x faster than "
        f"sequential {sequential * 1e3:.1f} ms for {len(payloads)} queries"
    )
