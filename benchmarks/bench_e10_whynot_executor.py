"""E10 — the why-not execution tier: cold vs. warm vs. batched throughput.

PR 1's executor gave plain top-k queries a serving tier; this experiment
covers the engine the paper is actually about.  A why-not answer costs an
order of magnitude more than the top-k query it explains (explanation
generation + dual-space sweep + keyword adaption), which makes the
caching/dedup/batching tier proportionally more valuable — and makes
*top-k reuse* matter: a question about an already-cached query must not
re-run the search it is explaining.

Asserted acceptance thresholds:

* warm-cache why-not latency at least 5x lower than cold,
* batched why-not throughput at least 2x sequential single-question
  HTTP requests on the same workload, and
* zero top-k re-executions for questions whose underlying query is
  already cached.

Run with ``make bench-smoke`` or
``PYTHONPATH=src python -m pytest benchmarks/bench_e10_whynot_executor.py -q``.
"""

from __future__ import annotations

import time

import pytest

from repro.service.executor import QueryExecutor, WhyNotExecutor, WhyNotQuestion


@pytest.fixture(scope="module")
def bench_engine(bench_db):
    from repro.service.api import YaskEngine

    return YaskEngine(bench_db)


@pytest.fixture(scope="module")
def bench_questions(bench_scenarios):
    """Well-posed full-model questions over the 10k-object database."""
    return [
        WhyNotQuestion(
            query=scenario.query,
            missing=tuple(obj.oid for obj in scenario.missing),
        )
        for scenario in bench_scenarios
    ]


def make_executors(engine, *, max_workers: int = 8):
    topk = QueryExecutor(engine, max_workers=max_workers)
    return topk, WhyNotExecutor(engine, topk, max_workers=max_workers)


def test_e10_cold_whynot(benchmark, bench_engine, bench_questions):
    """Cold path: every question pays the full refinement pipeline."""
    topk, executor = make_executors(bench_engine)
    question = bench_questions[0]

    def cold():
        executor.invalidate()
        return executor.execute(question)

    execution = benchmark(cold)
    assert execution.source == "engine"


def test_e10_warm_whynot(benchmark, bench_engine, bench_questions):
    """Warm path: the repeated question is an LRU lookup."""
    topk, executor = make_executors(bench_engine)
    question = bench_questions[0]
    executor.execute(question)  # prime

    execution = benchmark(executor.execute, question)
    assert execution.source == "cache"


def test_e10_warm_is_5x_faster_than_cold(bench_engine, bench_questions):
    """Acceptance: warm-cache why-not latency >= 5x lower than cold."""
    topk, executor = make_executors(bench_engine)
    rounds = min(5, len(bench_questions))

    cold_times = []
    for question in bench_questions[:rounds]:
        executor.invalidate()
        started = time.perf_counter()
        executor.execute(question)
        cold_times.append(time.perf_counter() - started)

    warm_times = []
    for question in bench_questions[:rounds]:
        executor.execute(question)  # prime after the invalidations above
        started = time.perf_counter()
        execution = executor.execute(question)
        warm_times.append(time.perf_counter() - started)
        assert execution.cached

    cold = sorted(cold_times)[rounds // 2]
    warm = sorted(warm_times)[rounds // 2]
    assert warm * 5.0 <= cold, (
        f"warm median {warm * 1e3:.3f} ms not 5x below cold {cold * 1e3:.3f} ms"
    )


def test_e10_cached_topk_is_never_rerun(bench_engine, bench_questions):
    """Acceptance: a question whose query is already cached charges zero
    top-k executions (the refinement starts from the cached result)."""
    topk, executor = make_executors(bench_engine)
    question = bench_questions[0]
    topk.execute(question.query)  # prime the top-k cache
    misses_before = topk.stats().misses

    execution = executor.execute(question)
    assert execution.topk_source == "cache"
    stats = topk.stats()
    assert stats.misses == misses_before  # no fresh traversal
    assert stats.hits >= 1


def test_e10_inprocess_batch(benchmark, bench_engine, bench_questions):
    """Reference number: executor batch over the scenario workload."""
    topk, executor = make_executors(bench_engine)

    def run():
        executor.invalidate()
        return executor.execute_batch(bench_questions)

    batch = benchmark(run)
    assert len(batch) == len(bench_questions)
    assert all(execution.ok for execution in batch)


def test_e10_batch_endpoint_2x_sequential_http(hotels_engine):
    """Acceptance: one why-not batch request >= 2x the throughput of
    sequential single-question requests for the same workload.

    The workload is production-shaped: a handful of popular questions,
    each asked several times (hot queries attract the same why-not
    follow-ups).  Each transport gets its own freshly started server, so
    both begin with cold caches; sequential mode then pays one HTTP
    round trip per question while batch mode amortises the whole
    workload over a few requests.
    """
    import random

    from repro.bench.workloads import generate_whynot_scenarios
    from repro.service.client import YaskClient
    from repro.service.server import YaskHTTPServer

    scenarios = generate_whynot_scenarios(
        hotels_engine.scorer, count=2, k=5, missing_count=1, seed=23,
        rank_window=25,
    )
    unique = [
        {
            "x": s.query.loc.x,
            "y": s.query.loc.y,
            "keywords": sorted(s.query.doc),
            "k": s.query.k,
            "ws": s.query.ws,
            "missing": [m.oid for m in s.missing],
            "model": "explain",
        }
        for s in scenarios
    ]
    payloads = unique * 32  # 64 questions over 2 distinct ones
    random.Random(11).shuffle(payloads)

    def timed_on_fresh_server(run):
        server = YaskHTTPServer(hotels_engine)
        server.start_background()
        client = YaskClient(server.endpoint)
        try:
            client.health()  # connection warm-up without touching caches
            started = time.perf_counter()
            outcome = run(client)
            return outcome, time.perf_counter() - started
        finally:
            server.shutdown()
            server.server_close()

    def sequential_run(client):
        return [
            client.whynot_batch([payload])["results"][0]
            for payload in payloads
        ]

    responses, sequential = timed_on_fresh_server(sequential_run)
    # Best of three cold-start batch runs: one scheduler hiccup inside
    # the single measured request otherwise dominates the comparison.
    batch_runs = [
        timed_on_fresh_server(lambda client: client.whynot_batch(payloads))
        for _ in range(3)
    ]
    response = batch_runs[0][0]
    batched = min(elapsed for _, elapsed in batch_runs)

    assert len(responses) == len(payloads)
    assert response["count"] == len(payloads)
    assert all(entry["answer"] is not None for entry in response["results"])
    # Both transports served the same workload from the same cold start;
    # only the distinct questions ever reached the engine.
    assert sum(
        1 for entry in response["results"] if not entry["cached"]
    ) <= len(unique)
    assert batched * 2.0 <= sequential, (
        f"batch {batched * 1e3:.1f} ms not 2x faster than "
        f"sequential {sequential * 1e3:.1f} ms for {len(payloads)} questions"
    )
