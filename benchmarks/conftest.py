"""Shared fixtures for the experiment benchmarks (E1-E8).

Datasets, indexes and scenario workloads are session-scoped: building a
50k-object index once and benchmarking many queries against it mirrors
how the demonstration server runs (indexes are built at startup,
Fig. 1), and keeps the suite's wall-clock dominated by the measured
operations.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import QueryWorkload, generate_whynot_scenarios
from repro.core.scoring import Scorer
from repro.datasets.generators import SyntheticDatasetBuilder
from repro.datasets.hotels import hong_kong_hotels
from repro.index.kcrtree import KcRTree
from repro.index.setrtree import SetRTree
from repro.service.api import YaskEngine

#: Cardinalities swept by E3/E7.  The paper claims the algorithms scale
#: to millions of objects [4-6]; the laptop-scale sweep checks the
#: scaling *shape* (see EXPERIMENTS.md).
SWEEP_SIZES = (2_000, 10_000, 50_000)


def build_database(n: int):
    return SyntheticDatasetBuilder(seed=2016).build(
        n,
        vocabulary_size=min(max(50, n // 50), 2_000),
        doc_length=(3, 8),
        spatial="clustered",
        clusters=12,
    )


@pytest.fixture(scope="session")
def hotels_engine():
    return YaskEngine(hong_kong_hotels())


@pytest.fixture(scope="session", params=SWEEP_SIZES, ids=lambda n: f"n={n}")
def sized_database(request):
    return build_database(request.param)


@pytest.fixture(scope="session")
def bench_db():
    """The default benchmark database (middle of the sweep)."""
    return build_database(10_000)


@pytest.fixture(scope="session")
def bench_scorer(bench_db):
    return Scorer(bench_db)


@pytest.fixture(scope="session")
def bench_setrtree(bench_db):
    return SetRTree.build(bench_db, max_entries=32)


@pytest.fixture(scope="session")
def bench_kcrtree(bench_db):
    return KcRTree.build(bench_db, max_entries=32)


@pytest.fixture(scope="session")
def bench_workload(bench_db):
    return QueryWorkload(bench_db, seed=7, k=10, keywords_per_query=(2, 3))


@pytest.fixture(scope="session")
def bench_scenarios(bench_scorer):
    """Why-not scenarios over the 10k database (shared by E4/E5/E6)."""
    return generate_whynot_scenarios(
        bench_scorer, count=5, k=10, missing_count=2, rank_window=40, seed=99
    )
