"""E5 — Figs. 4-5 / demonstration scenario 2: keyword adaption.

KcR-tree bound-and-prune versus the exhaustive full-scan baseline,
swept over |q.doc|, |M| and λ; reports the pruning ratio (candidates
abandoned before exact ranking) and per-candidate object-scoring work.

Expected shape (EXPERIMENTS.md): identical answers, with bound-and-prune
scoring a small fraction of the objects the exhaustive baseline scores;
the advantage grows with the candidate space (|q.doc| and |M|).
"""

import pytest

from repro.bench.harness import Table, time_call
from repro.bench.workloads import generate_whynot_scenarios
from repro.whynot.baselines import exhaustive_keyword_adapter
from repro.whynot.keyword import KeywordAdapter


@pytest.mark.parametrize("query_keywords", [2, 3, 4], ids=lambda c: f"qdoc={c}")
def test_e5_bound_prune_by_query_keywords(
    benchmark, bench_scorer, bench_kcrtree, query_keywords
):
    scenarios = generate_whynot_scenarios(
        bench_scorer, count=2, k=10, missing_count=1, rank_window=40,
        seed=51, keywords_per_query=(query_keywords, query_keywords),
    )
    adapter = KeywordAdapter(bench_scorer, bench_kcrtree)

    def run():
        for s in scenarios:
            adapter.refine(s.query, s.missing)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("missing", [1, 2], ids=lambda m: f"M={m}")
def test_e5_bound_prune_by_missing_count(
    benchmark, bench_scorer, bench_kcrtree, missing
):
    scenarios = generate_whynot_scenarios(
        bench_scorer, count=2, k=10, missing_count=missing, rank_window=40,
        seed=52,
    )
    adapter = KeywordAdapter(bench_scorer, bench_kcrtree)

    def run():
        for s in scenarios:
            adapter.refine(s.query, s.missing)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)


def test_e5_exhaustive_baseline(benchmark, bench_scorer, bench_kcrtree, bench_scenarios):
    baseline = exhaustive_keyword_adapter(bench_scorer, bench_kcrtree)
    scenario = bench_scenarios[0]

    benchmark.pedantic(
        lambda: baseline.refine(scenario.query, scenario.missing),
        rounds=3, iterations=1, warmup_rounds=1,
    )


def test_e5_report_prune_effectiveness(
    benchmark, bench_scorer, bench_kcrtree, bench_scenarios, capsys
):
    """The headline E5 table: same answer, fraction of the work."""
    adapter = KeywordAdapter(bench_scorer, bench_kcrtree)
    baseline = exhaustive_keyword_adapter(bench_scorer, bench_kcrtree)
    table = Table(
        "scenario", "penalty", "prune ratio",
        "objects scored (b&p)", "objects scored (exhaustive)", "work ratio",
        title="E5: keyword adaption, KcR-tree bound-and-prune vs exhaustive (λ=0.5)",
    )
    for index, scenario in enumerate(bench_scenarios[:3], start=1):
        pruned = adapter.refine(scenario.query, scenario.missing)
        exhaustive = baseline.refine(scenario.query, scenario.missing)
        assert abs(pruned.penalty - exhaustive.penalty) <= 1e-12
        work_ratio = (
            pruned.stats.objects_scored / exhaustive.stats.objects_scored
            if exhaustive.stats.objects_scored
            else 0.0
        )
        table.add_row(
            index,
            round(pruned.penalty, 4),
            round(pruned.stats.prune_ratio, 3),
            pruned.stats.objects_scored,
            exhaustive.stats.objects_scored,
            round(work_ratio, 4),
        )
        assert work_ratio < 1.0  # pruning must save object scorings
    with capsys.disabled():
        table.print()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e5_report_runtime_by_lambda(
    benchmark, bench_scorer, bench_kcrtree, bench_scenarios, capsys
):
    adapter = KeywordAdapter(bench_scorer, bench_kcrtree)
    table = Table(
        "lambda", "ms/question", "candidates", "pruned", "Δdoc", "Δk",
        title="E5b: keyword adaption cost vs λ",
    )
    scenario = bench_scenarios[0]
    for lam in (0.1, 0.3, 0.5, 0.7, 0.9):
        result, timing = time_call(
            lambda: adapter.refine(scenario.query, scenario.missing, lam=lam),
            repeat=3,
        )
        table.add_row(
            lam,
            round(timing.best_ms, 2),
            result.stats.candidates_generated,
            result.stats.candidates_pruned,
            result.delta_doc,
            result.delta_k,
        )
    with capsys.disabled():
        table.print()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
