"""E12 — scatter-gather sharding vs. the single-shard scan baseline.

PR 4 partitions the database into disjoint spatial shards
(``repro.core.sharding``) and runs top-k as a bound-ordered
scatter-gather, with the why-not rank primitives pruning whole shards.
On a multicore host the scatter additionally fans across a thread pool;
on the single-core reference container every speedup below is pure
**work elimination** — shards whose score upper bound cannot reach the
running threshold are never scanned — which is why the round-robin
ablation (spatially incoherent shards, bounds never fire) shows ~1x.

Acceptance floors at 4 shards / 20k objects, against the same engine
configured with 1 shard (the scatter baseline: one full columnar scan):

* cold top-k at least 1.8x faster, and
* a cold why-not question (preference model) at least 1.5x faster,

with bit-for-bit parity against the *unsharded* production engine
asserted first.

Workload notes (documented, deliberate):

* The top-k workload is geo-local category search — clustered objects,
  queries anchored near the data, one or two frequent keywords over
  short tag documents.  In this regime the shard text bound is tight
  (a perfect keyword match exists near every query), so the k-th score
  localises the answer and distant shards are provably irrelevant.
  This is the regime spatial partitioning exists for; text-dominated
  workloads with globally scattered matches scan more shards (the
  bounds degrade gracefully to a full scatter, never to a wrong
  answer).
* The why-not scenarios keep the missing objects within 20 ranks of
  the result ("the cafe down the street"), where the refinement
  sweep's crossover structure stays small.  Sharding prunes the
  *scan-bound* part of a why-not answer (rank verifications); the
  crossover sweep itself is rank arithmetic on events and is
  unaffected by partitioning.

Run with
``PYTHONPATH=src python -m pytest benchmarks/bench_e12_sharding.py -q``
(add ``-s`` for the speedup tables).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Table, time_call
from repro.bench.workloads import QueryWorkload, generate_whynot_scenarios
from repro.datasets.generators import SyntheticDatasetBuilder
from repro.service.api import YaskEngine
from repro.whynot.preference import PreferenceAdjuster

#: Acceptance floors (ISSUE 4): 4 shards vs 1 shard at 20k objects.
TOPK_FLOOR = 1.8
WHYNOT_FLOOR = 1.5

OBJECTS = 20_000
SHARDS = 4


@pytest.fixture(scope="module")
def shard_db():
    """Geo-local category-search corpus: clustered, short tag docs."""
    return SyntheticDatasetBuilder(seed=2016).build(
        OBJECTS,
        vocabulary_size=50,
        doc_length=(4, 8),
        spatial="clustered",
        clusters=12,
    )


@pytest.fixture(scope="module")
def unsharded_engine(shard_db):
    """The production single-index engine — the parity oracle."""
    return YaskEngine(shard_db)


@pytest.fixture(scope="module")
def baseline_engine(shard_db):
    """The scatter machinery at 1 shard: one full columnar scan."""
    return YaskEngine(shard_db, shards=1)


@pytest.fixture(scope="module")
def sharded_engine(shard_db):
    return YaskEngine(shard_db, shards=SHARDS)


@pytest.fixture(scope="module")
def topk_queries(shard_db):
    workload = QueryWorkload(
        shard_db, seed=7, k=10, keywords_per_query=(1, 2),
        location_jitter=0.01,
    )
    return list(workload.queries(12))


def test_e12_topk_parity_and_skipping(
    unsharded_engine, baseline_engine, sharded_engine, topk_queries
):
    """Bit-for-bit parity with the oracle, and shards really skip."""
    sharded_engine.shard_router.stats.reset()
    for query in topk_queries:
        expected = unsharded_engine.query(query)
        assert [tuple(e) for e in baseline_engine.query(query)] == [
            tuple(e) for e in expected
        ]
        assert [tuple(e) for e in sharded_engine.query(query)] == [
            tuple(e) for e in expected
        ]
    stats = sharded_engine.shard_router.to_dict()
    assert stats["topk_searches"] == len(topk_queries)
    assert stats["topk_shards_skipped"] > 0, (
        "grid shards must be skippable on the geo-local workload"
    )


def test_e12_cold_topk_1_8x(baseline_engine, sharded_engine, topk_queries):
    """Acceptance: 4-shard scatter >= 1.8x the 1-shard scan."""

    def run(engine):
        return [engine.query(query) for query in topk_queries]

    sharded_results, sharded_timing = time_call(
        lambda: run(sharded_engine), repeat=5
    )
    baseline_results, baseline_timing = time_call(
        lambda: run(baseline_engine), repeat=5
    )
    for fast, slow in zip(sharded_results, baseline_results):
        assert [tuple(e) for e in fast] == [tuple(e) for e in slow]

    speedup = baseline_timing.best / sharded_timing.best
    stats = sharded_engine.shard_router.to_dict()
    table = Table(
        "configuration", "best_ms", "median_ms",
        title=f"E12: cold top-k ({OBJECTS} objects x {len(topk_queries)} queries)",
    )
    table.add_row("1 shard (full scan)", baseline_timing.best_ms,
                  baseline_timing.median_ms)
    table.add_row(f"{SHARDS} shards (scatter)", sharded_timing.best_ms,
                  sharded_timing.median_ms)
    table.add_row(
        f"speedup {speedup:.2f}x (floor {TOPK_FLOOR}x), "
        f"skipped {stats['topk_shards_skipped']} shard scans", "", "",
    )
    table.print()
    assert speedup >= TOPK_FLOOR, (
        f"sharded top-k only {speedup:.2f}x faster "
        f"({sharded_timing.best_ms:.1f}ms vs {baseline_timing.best_ms:.1f}ms)"
    )


def test_e12_round_robin_ablation_does_not_skip(shard_db, topk_queries):
    """Spatial coherence is the mechanism: round-robin shards never skip."""
    ablation = YaskEngine(shard_db, shards=SHARDS, partitioner="round-robin")
    for query in topk_queries[:4]:
        ablation.query(query)
    stats = ablation.shard_router.to_dict()
    assert stats["topk_shards_skipped"] == 0
    assert stats["topk_shards_scanned"] == 4 * SHARDS


@pytest.fixture(scope="module")
def whynot_scenarios(unsharded_engine):
    return generate_whynot_scenarios(
        unsharded_engine.scorer, count=4, k=10, missing_count=2,
        rank_window=20, seed=42,
    )


def test_e12_cold_whynot_preference_1_5x(
    unsharded_engine, baseline_engine, sharded_engine, whynot_scenarios
):
    """Acceptance: cold preference why-not >= 1.5x, identical answers."""
    oracle = PreferenceAdjuster(unsharded_engine.scorer)
    baseline = PreferenceAdjuster(baseline_engine.scorer)
    sharded = PreferenceAdjuster(sharded_engine.scorer)

    def run(adjuster):
        return [
            adjuster.refine(s.query, s.missing, lam=0.5)
            for s in whynot_scenarios
        ]

    expected = run(oracle)
    sharded_refined, sharded_timing = time_call(lambda: run(sharded), repeat=5)
    baseline_refined, baseline_timing = time_call(
        lambda: run(baseline), repeat=5
    )
    assert sharded_refined == expected
    assert baseline_refined == expected

    speedup = baseline_timing.best / sharded_timing.best
    table = Table(
        "configuration", "best_ms", "median_ms",
        title=(
            f"E12: cold why-not, preference model "
            f"({OBJECTS} objects x {len(whynot_scenarios)} scenarios)"
        ),
    )
    table.add_row("1 shard (full scans)", baseline_timing.best_ms,
                  baseline_timing.median_ms)
    table.add_row(f"{SHARDS} shards (pruned scans)", sharded_timing.best_ms,
                  sharded_timing.median_ms)
    table.add_row(f"speedup {speedup:.2f}x (floor {WHYNOT_FLOOR}x)", "", "")
    table.print()
    assert speedup >= WHYNOT_FLOOR, (
        f"sharded cold why-not only {speedup:.2f}x faster "
        f"({sharded_timing.best_ms:.1f}ms vs {baseline_timing.best_ms:.1f}ms)"
    )


def test_e12_cached_whynot_runs_no_scatter(sharded_engine, whynot_scenarios):
    """The executor-tier guarantee survives sharding: a why-not question
    over a cached query charges zero scatter-gather searches."""
    from repro.service.executor import (
        QueryExecutor, WhyNotExecutor, WhyNotQuestion,
    )

    topk = QueryExecutor(sharded_engine, max_workers=1)
    whynot = WhyNotExecutor(sharded_engine, topk, max_workers=1)
    scenario = whynot_scenarios[0]
    topk.execute(scenario.query)
    router = sharded_engine.shard_router
    searches_before = router.stats.to_dict()["topk_searches"]
    execution = whynot.execute(
        WhyNotQuestion(
            query=scenario.query,
            missing=tuple(obj.oid for obj in scenario.missing),
            model="explain",
        )
    )
    assert execution.topk_source == "cache"
    assert router.stats.to_dict()["topk_searches"] == searches_before
    whynot.close()
    topk.close()
