"""E1 — Fig. 1: end-to-end request flow through the service architecture.

Measures the full browser-server pipeline on the 539-hotel demonstration
dataset: the initial top-k query, the explanation, each refinement model
and the combined why-not answer — the latency budget of one complete
demonstration interaction (Section 4).

Regenerates: the architecture walk of Fig. 1 / the response times shown
in the query-log panel (Fig. 4, Panel 5).
"""

import pytest

from repro.core.geometry import Point
from repro.datasets.hotels import GRAND_VICTORIA

VENUE = Point(114.1722, 22.2975)
KEYWORDS = frozenset({"clean", "comfortable"})


@pytest.fixture(scope="module")
def initial_query(hotels_engine):
    return hotels_engine.make_query(VENUE, KEYWORDS, 3)


def test_e1_topk_query(benchmark, hotels_engine, initial_query):
    result = benchmark(hotels_engine.query, initial_query)
    assert len(result) == 3


def test_e1_explanation(benchmark, hotels_engine, initial_query):
    explanation = benchmark(
        hotels_engine.explain, initial_query, [GRAND_VICTORIA]
    )
    assert explanation.worst_rank > 3


def test_e1_preference_refinement(benchmark, hotels_engine, initial_query):
    refinement = benchmark(
        hotels_engine.refine_preference, initial_query, [GRAND_VICTORIA]
    )
    assert refinement.penalty <= 0.5


def test_e1_keyword_refinement(benchmark, hotels_engine, initial_query):
    refinement = benchmark(
        hotels_engine.refine_keywords, initial_query, [GRAND_VICTORIA]
    )
    assert refinement.penalty <= 0.5


def test_e1_full_whynot_interaction(benchmark, hotels_engine, initial_query):
    answer = benchmark(
        hotels_engine.why_not, initial_query, [GRAND_VICTORIA]
    )
    assert answer.best_model is not None


def test_e1_http_round_trip(benchmark, hotels_engine):
    """One complete HTTP session: query → explain → refine → log."""
    from repro.service.client import YaskClient
    from repro.service.server import YaskHTTPServer

    server = YaskHTTPServer(hotels_engine)
    server.start_background()
    client = YaskClient(server.endpoint)

    def interaction():
        session = client.query(VENUE.x, VENUE.y, sorted(KEYWORDS), 3)
        session_id = session["session_id"]
        client.explain(session_id, [GRAND_VICTORIA])
        client.refine_keywords(session_id, [GRAND_VICTORIA])
        client.query_log(session_id)
        client.close_session(session_id)

    try:
        benchmark.pedantic(interaction, rounds=5, iterations=1, warmup_rounds=1)
    finally:
        server.shutdown()
        server.server_close()
