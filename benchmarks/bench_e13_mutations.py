"""E13 — live mutation: incremental ingest vs. rebuild, warm caches under writes.

PR 5 makes the engine mutable at every layer: the database grows its
vocabulary append-only, the columnar kernel tombstones + appends +
compacts instead of rebuilding, the R-tree family takes batched Guttman
inserts with one deferred summary pass, and the executor tier replaces
global invalidation with a *scoped* drop (spatial-region +
keyword-overlap + k-th-score test against the batch).

Acceptance floors at 20k objects:

* **Ingest**: applying 5% new objects (1 000) through
  ``YaskEngine.apply_mutations`` is at least **5x faster** than building
  a fresh engine over the final object set, with bit-for-bit identical
  answers afterwards.
* **Warm caches under writes**: in a mixed read/write workload, the
  post-write top-k cache hit rate stays **above 50%** — scoped
  invalidation only drops the results a batch could actually affect.

Workload notes (documented, deliberate):

* The ingest batch is *spatially clustered* — new POIs arriving in one
  district — which is both the realistic shape of geo ingest and the
  regime incremental R-tree maintenance is built for: the first insert
  into an STR-packed leaf splits it, its neighbours then land in
  half-full leaves.  Uniform-random ingest still wins over rebuild, but
  pays a split per touched leaf.
* The write traffic in the mixed workload carries *fresh* category
  keywords (a new POI type): the scoped-invalidation text bound then
  proves keyword-disjoint cached queries unaffected, leaving the drop
  decision to the spatial region alone — distant neighbourhoods stay
  warm, the written district recomputes.

Run with
``PYTHONPATH=src python -m pytest benchmarks/bench_e13_mutations.py -q``
(add ``-s`` for the tables).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.bench.harness import Table
from repro.bench.workloads import QueryWorkload
from repro.core.geometry import Point
from repro.core.mutations import Mutation
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.service.api import YaskEngine
from repro.service.executor import QueryExecutor

#: Acceptance floors (ISSUE 5).
INGEST_SPEEDUP_FLOOR = 5.0
WARM_HIT_RATE_FLOOR = 0.5

#: Acceptance floor (PR 10): at the highest write rate the maintained
#: (patch-on-write) cache must stay at least this many times warmer than
#: the drop-on-write scoped-invalidation baseline.
MAINTAINED_WARMTH_FLOOR = 2.0
#: Writes applied between read rounds — 10x to 50x the per-round reads
#: of a single query's refresh.
WRITE_RATE_SWEEP = (10, 30, 50)

OBJECTS = 20_000
INGEST_FRACTION = 0.05
INGEST_BATCHES = 4


@pytest.fixture(scope="module")
def base_db():
    from repro.datasets.generators import SyntheticDatasetBuilder

    return SyntheticDatasetBuilder(seed=2016).build(
        OBJECTS,
        vocabulary_size=50,
        doc_length=(4, 8),
        spatial="clustered",
        clusters=12,
    )


@pytest.fixture(scope="module")
def ingest_objects(base_db):
    """5% new objects clustered in one district, existing vocabulary."""
    rng = random.Random(4)
    vocabulary = sorted(base_db.vocabulary())
    count = int(OBJECTS * INGEST_FRACTION)
    return [
        SpatialObject(
            1_000_000 + i,
            Point(0.30 + rng.random() * 0.08, 0.60 + rng.random() * 0.08),
            frozenset(rng.sample(vocabulary, 5)),
        )
        for i in range(count)
    ]


def test_e13_incremental_ingest_5x_vs_rebuild(base_db, ingest_objects):
    """Acceptance: incremental 5% ingest >= 5x faster than full rebuild."""
    batch_size = len(ingest_objects) // INGEST_BATCHES

    def incremental() -> float:
        engine = YaskEngine(
            SpatialDatabase(base_db.objects, dataspace=base_db.dataspace)
        )
        started = time.perf_counter()
        for start in range(0, len(ingest_objects), batch_size):
            engine.apply_mutations(
                [
                    Mutation.insert(obj)
                    for obj in ingest_objects[start : start + batch_size]
                ]
            )
        elapsed = time.perf_counter() - started
        engine.close()
        return elapsed

    final_objects = list(base_db.objects) + ingest_objects

    def rebuild() -> float:
        started = time.perf_counter()
        engine = YaskEngine(
            SpatialDatabase(final_objects, dataspace=base_db.dataspace)
        )
        elapsed = time.perf_counter() - started
        engine.close()
        return elapsed

    incremental_s = min(incremental() for _ in range(3))
    rebuild_s = min(rebuild() for _ in range(3))
    speedup = rebuild_s / incremental_s

    table = Table(
        "path", "best_ms",
        title=(
            f"E13: ingest {len(ingest_objects)} objects into "
            f"{OBJECTS}-object engine ({INGEST_BATCHES} batches)"
        ),
    )
    table.add_row("full engine rebuild", rebuild_s * 1000.0)
    table.add_row("incremental apply_mutations", incremental_s * 1000.0)
    table.add_row(
        f"speedup {speedup:.1f}x (floor {INGEST_SPEEDUP_FLOOR}x)", ""
    )
    table.print()
    assert speedup >= INGEST_SPEEDUP_FLOOR, (
        f"incremental ingest only {speedup:.2f}x faster "
        f"({incremental_s * 1000:.0f}ms vs {rebuild_s * 1000:.0f}ms rebuild)"
    )


def test_e13_ingest_parity_with_rebuild(base_db, ingest_objects):
    """The speed is free: post-ingest answers equal the fresh rebuild's."""
    engine = YaskEngine(
        SpatialDatabase(base_db.objects, dataspace=base_db.dataspace)
    )
    engine.apply_mutations(
        [Mutation.insert(obj) for obj in ingest_objects]
    )
    fresh = YaskEngine(
        SpatialDatabase(
            list(base_db.objects) + ingest_objects,
            dataspace=base_db.dataspace,
        )
    )
    queries = list(
        QueryWorkload(
            base_db, seed=7, k=10, keywords_per_query=(1, 2),
            location_jitter=0.01,
        ).queries(8)
    )
    for query in queries:
        got = engine.query(query)
        want = fresh.query(query)
        assert [tuple(entry) for entry in got] == [
            tuple(entry) for entry in want
        ]
    engine.close()
    fresh.close()


def test_e13_warm_hit_rate_above_50_percent_under_writes(base_db):
    """Acceptance: scoped invalidation keeps the top-k cache >50% warm."""
    engine = YaskEngine(
        SpatialDatabase(base_db.objects, dataspace=base_db.dataspace)
    )
    executor = QueryExecutor(engine, cache_capacity=256, max_workers=1)
    queries = list(
        QueryWorkload(
            base_db, seed=21, k=10, keywords_per_query=(1, 2),
            location_jitter=0.01,
        ).queries(40)
    )
    for query in queries:  # prewarm
        executor.execute(query)

    rng = random.Random(99)
    vocabulary = sorted(base_db.vocabulary())
    next_oid = 2_000_000
    rounds = 6
    post_write_reads = 0
    post_write_hits = 0
    for round_index in range(rounds):
        # A write batch clustered in one district (a different district
        # each round): mostly fresh-category POIs — keyword-disjoint
        # from every cached query, so only the spatial bound matters —
        # plus a few short-document POIs carrying one real vocabulary
        # keyword, which *must* drop the cached queries that keyword
        # could now outrank.
        cx = 0.15 + 0.1 * round_index
        hot_keyword = vocabulary[(7 * round_index) % len(vocabulary)]
        batch = []
        for index in range(20):
            doc = (
                frozenset({hot_keyword})
                if index < 4
                else frozenset({f"popup{round_index}", "popup"})
            )
            batch.append(
                Mutation.insert(
                    SpatialObject(
                        next_oid,
                        Point(
                            cx + rng.random() * 0.05,
                            0.2 + rng.random() * 0.05,
                        ),
                        doc,
                    )
                )
            )
            next_oid += 1
        report = engine.apply_mutations(batch)
        executor.invalidate_scoped(report.change.summary)
        for query in queries:
            execution = executor.execute(query)
            post_write_reads += 1
            if execution.source == "cache":
                post_write_hits += 1

    hit_rate = post_write_hits / post_write_reads
    stats = executor.stats()
    table = Table(
        "metric", "value",
        title=(
            f"E13: mixed read/write ({rounds} write rounds x "
            f"{len(queries)} reads)"
        ),
    )
    table.add_row("post-write reads", post_write_reads)
    table.add_row("post-write cache hits", post_write_hits)
    table.add_row(f"hit rate {hit_rate:.0%} (floor {WARM_HIT_RATE_FLOOR:.0%})", "")
    table.add_row(
        f"scoped: dropped {stats.scoped_dropped}, kept {stats.scoped_kept}",
        "",
    )
    table.print()
    assert stats.scoped_dropped > 0, "writes must drop the local entries"
    assert stats.scoped_kept > 0, "distant entries must survive"
    assert hit_rate > WARM_HIT_RATE_FLOOR, (
        f"warm hit rate {hit_rate:.0%} under write traffic "
        f"(floor {WARM_HIT_RATE_FLOOR:.0%})"
    )
    # The hits were honest: a recomputation after the final batch agrees
    # with a fresh engine (the caches never served stale data).
    fresh = YaskEngine(
        SpatialDatabase(
            engine.database.objects, dataspace=engine.database.dataspace
        )
    )
    for query in queries[:5]:
        got = executor.execute(query).result
        want = fresh.query(query)
        assert [tuple(entry) for entry in got] == [
            tuple(entry) for entry in want
        ]
    fresh.close()
    executor.close()
    engine.close()


def _hit_rate_under_write_rate(
    base_db, queries, *, maintained: bool, rate: int, rounds: int = 3
) -> float:
    """Post-write cache hit rate with ``rate`` writes between read rounds.

    Every write lands *on top of* a cached query (same location, same
    keywords) — the adversarial regime for drop-on-write, the home turf
    of patch-on-write.
    """
    engine = YaskEngine(
        SpatialDatabase(base_db.objects, dataspace=base_db.dataspace)
    )
    executor = QueryExecutor(
        engine,
        cache_capacity=256,
        max_workers=1,
        skyband_delta=8 if maintained else 0,
    )
    rng = random.Random(1_000 + rate)
    next_oid = 3_000_000
    reads = 0
    hits = 0
    for query in queries:  # prewarm
        executor.execute(query)
    for _ in range(rounds):
        for _ in range(rate):
            target = rng.choice(queries)
            obj = SpatialObject(
                next_oid,
                Point(
                    min(max(target.loc.x + rng.uniform(-0.01, 0.01), 0.0), 1.0),
                    min(max(target.loc.y + rng.uniform(-0.01, 0.01), 0.0), 1.0),
                ),
                frozenset(target.doc),
            )
            next_oid += 1
            report = engine.apply_mutations([Mutation.insert(obj)])
            if maintained:
                executor.maintain(report.change)
            else:
                executor.invalidate_scoped(report.change.summary)
        for query in queries:
            reads += 1
            if executor.execute(query).source == "cache":
                hits += 1
    # The warmth was honest: served answers match a fresh engine.
    fresh = YaskEngine(
        SpatialDatabase(
            engine.database.objects, dataspace=engine.database.dataspace
        )
    )
    for query in queries[:5]:
        got = executor.execute(query).result
        want = fresh.query(query)
        assert [tuple(entry) for entry in got] == [
            tuple(entry) for entry in want
        ]
    fresh.close()
    executor.close()
    engine.close()
    return hits / reads


def test_e13_write_rate_sweep_maintained_vs_drop_on_write(base_db):
    """Acceptance (PR 10): maintained hit rate >= 2x drop-on-write at the
    highest write rate.

    Drop-on-write collapses as the write rate climbs — every batch that
    lands on a cached query evicts it, and at 50 writes per read round
    nearly every entry is cold by the time it is read.  Patch-on-write
    absorbs the same writes into the k-skyband in O(batch) and keeps
    serving warm.
    """
    queries = list(
        QueryWorkload(
            base_db, seed=33, k=10, keywords_per_query=(1, 2),
            location_jitter=0.01,
        ).queries(32)
    )
    table = Table(
        "write rate", "drop-on-write", "maintained",
        title="E13: warm hit rate vs write rate (writes per read round)",
    )
    sweep: dict[int, tuple[float, float]] = {}
    for rate in WRITE_RATE_SWEEP:
        baseline = _hit_rate_under_write_rate(
            base_db, queries, maintained=False, rate=rate
        )
        warm = _hit_rate_under_write_rate(
            base_db, queries, maintained=True, rate=rate
        )
        sweep[rate] = (baseline, warm)
        table.add_row(f"{rate}x", f"{baseline:.0%}", f"{warm:.0%}")
    table.print()
    top_rate = max(WRITE_RATE_SWEEP)
    baseline, warm = sweep[top_rate]
    assert warm >= MAINTAINED_WARMTH_FLOOR * baseline, (
        f"at {top_rate}x writes maintained hit rate {warm:.0%} is under "
        f"{MAINTAINED_WARMTH_FLOOR}x the drop-on-write {baseline:.0%}"
    )
    assert warm >= WARM_HIT_RATE_FLOOR, (
        f"maintained cache went cold at {top_rate}x writes ({warm:.0%})"
    )
