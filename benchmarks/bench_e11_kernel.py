"""E11 — the columnar scoring kernel vs. the object-at-a-time path.

PRs 1-2 made the *serving* tier fast; every cache miss still paid
object-at-a-time Python scoring for the Eqn. (1)/(3) hot loops.  The
kernel (interned keyword bitsets + flat coordinate arrays,
``repro.core.kernel``) attacks exactly those loops, and this experiment
asserts the acceptance floors against the pre-kernel path at 10k
objects:

* full-scan ``rank_all`` at least 3x faster, and
* a cold why-not question (preference model) at least 2x faster,

with bit-for-bit parity assertions — identical scores, tie order and
refinements — plus a SearchStats check that best-first search does the
*same* index work either way (the kernel changes how leaf entries are
scored, never which nodes are visited).

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_e11_kernel.py -q``
(add ``-s`` for the speedup tables).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import Table, time_call
from repro.bench.workloads import QueryWorkload, generate_whynot_scenarios
from repro.core.scoring import Scorer
from repro.core.topk import BestFirstTopK
from repro.whynot.preference import PreferenceAdjuster

#: Acceptance floors (ISSUE 3): kernel speedup over the pre-kernel path.
RANK_ALL_FLOOR = 3.0
WHYNOT_FLOOR = 2.0


@pytest.fixture(scope="module")
def fast_scorer(bench_db):
    scorer = Scorer(bench_db)
    assert scorer.kernel is not None, "bench model must have a kernel"
    return scorer


@pytest.fixture(scope="module")
def slow_scorer(bench_db):
    return Scorer(bench_db, use_kernel=False)


@pytest.fixture(scope="module")
def kernel_queries(bench_db):
    workload = QueryWorkload(bench_db, seed=17, k=10, keywords_per_query=(2, 3))
    return list(workload.queries(5))


def test_e11_rank_all_3x(fast_scorer, slow_scorer, kernel_queries):
    """Acceptance: full-scan ranking >= 3x, with bit-identical output."""
    queries = kernel_queries[:3]
    fast_rankings, fast_timing = time_call(
        lambda: [fast_scorer.rank_all(q) for q in queries], repeat=5
    )
    slow_rankings, slow_timing = time_call(
        lambda: [slow_scorer.rank_all(q) for q in queries], repeat=5
    )

    # Parity first: every entry identical — object, score, sdist, tsim, rank.
    for fast_ranking, slow_ranking in zip(fast_rankings, slow_rankings):
        assert [tuple(e) for e in fast_ranking] == [
            tuple(e) for e in slow_ranking
        ]

    speedup = slow_timing.best / fast_timing.best
    table = Table(
        "path", "best_ms", "median_ms", title="E11: full-scan rank_all (10k x 3 queries)"
    )
    table.add_row("object-at-a-time", slow_timing.best_ms, slow_timing.median_ms)
    table.add_row("columnar kernel", fast_timing.best_ms, fast_timing.median_ms)
    table.add_row(f"speedup {speedup:.2f}x (floor {RANK_ALL_FLOOR}x)", "", "")
    table.print()
    assert speedup >= RANK_ALL_FLOOR, (
        f"kernel rank_all only {speedup:.2f}x faster "
        f"({fast_timing.best_ms:.1f}ms vs {slow_timing.best_ms:.1f}ms)"
    )


def test_e11_cold_whynot_preference_2x(fast_scorer, slow_scorer):
    """Acceptance: cold preference-model why-not >= 2x, same refinements."""
    scenarios = generate_whynot_scenarios(
        fast_scorer, count=2, k=10, missing_count=2, rank_window=40, seed=99
    )
    fast_adjuster = PreferenceAdjuster(fast_scorer)
    slow_adjuster = PreferenceAdjuster(slow_scorer)

    def run(adjuster):
        return [
            adjuster.refine(s.query, s.missing, lam=0.5) for s in scenarios
        ]

    fast_refined, fast_timing = time_call(lambda: run(fast_adjuster), repeat=5)
    slow_refined, slow_timing = time_call(lambda: run(slow_adjuster), repeat=5)

    # The whole refinement must agree: query, penalty, ranks, diagnostics.
    assert fast_refined == slow_refined

    speedup = slow_timing.best / fast_timing.best
    table = Table(
        "path", "best_ms", "median_ms",
        title="E11: cold why-not, preference model (10k x 2 scenarios)",
    )
    table.add_row("object-at-a-time", slow_timing.best_ms, slow_timing.median_ms)
    table.add_row("columnar kernel", fast_timing.best_ms, fast_timing.median_ms)
    table.add_row(f"speedup {speedup:.2f}x (floor {WHYNOT_FLOOR}x)", "", "")
    table.print()
    assert speedup >= WHYNOT_FLOOR, (
        f"kernel cold why-not only {speedup:.2f}x faster "
        f"({fast_timing.best_ms:.1f}ms vs {slow_timing.best_ms:.1f}ms)"
    )


def test_e11_best_first_same_search_stats(
    bench_setrtree, fast_scorer, slow_scorer, kernel_queries
):
    """Kernel leaf scoring changes *how* leaves are scored, not *which*.

    SearchStats must be identical between the two scorers — same nodes
    expanded, same objects scored, same heap pushes — and the kernel's
    own counter must attribute exactly those leaf scorings.
    """
    fast_engine = BestFirstTopK(bench_setrtree, fast_scorer)
    slow_engine = BestFirstTopK(bench_setrtree, slow_scorer)
    fast_scorer.kernel.stats.reset()
    point_scores = 0
    for query in kernel_queries:
        fast_result = fast_engine.search(query)
        slow_result = slow_engine.search(query)
        assert [tuple(e) for e in fast_result] == [
            tuple(e) for e in slow_result
        ]
        assert fast_engine.stats == slow_engine.stats
        point_scores += fast_engine.stats.objects_scored
    assert fast_scorer.kernel.stats.point_scores == point_scores


def test_e11_batch_primitives_parity(fast_scorer, slow_scorer, kernel_queries):
    """score_all / rank_of_many / dual_points agree with the oracle."""
    query = kernel_queries[0]
    kernel = fast_scorer.kernel
    scores = kernel.score_all(query)
    database = fast_scorer.database
    for row, obj in enumerate(database):
        assert scores[row] == slow_scorer.score(obj, query)
    sample = [obj.oid for obj in list(database.objects)[:: len(database) // 7]]
    ranks = kernel.rank_of_many(sample, query)
    for oid in sample:
        assert ranks[oid] == slow_scorer.rank_of(database.get(oid), query)
    assert fast_scorer.dual_points(query) == slow_scorer.dual_points(query)
