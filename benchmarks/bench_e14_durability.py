"""E14 — durability: logged ingest overhead, snapshot-recovery speedup.

PR 6 threads a write-ahead log through ``YaskEngine.apply_mutations``
(append + flush before any state moves) and adds snapshot + replay
recovery.  Two floors make the tier honest:

* **Logged ingest** (``fsync="never"``): appending every batch to the
  log costs at most a modest slice of ingest throughput — logged
  ingest sustains at least **0.7x** the unlogged rate.  (The
  ``fsync="always"`` rate is also measured and reported, unasserted:
  it is bounded by the device's sync latency, not by this code.)
* **Recovery**: after a crash, the *only* way to rebuild the engine is
  from what is on disk.  Recovering a 20k-object dataset whose last 5%
  of mutations arrived after the snapshot is at least **5x faster**
  than the full rebuild path — replaying the entire ingest log from
  the seed through a live engine's per-batch index maintenance
  (``replay_into``), which is exactly what rebuilding a serving
  replica costs without the snapshot + bulk-recovery machinery — with
  bit-for-bit identical answers either way.  (``recover_engine``
  without a snapshot bulk-replays at the database layer and is
  reported too, unasserted: it shows how much of the win is the bulk
  replay and how much the snapshot.)

Workload notes (documented, deliberate):

* The dataset is *ingested*, not pre-built: a 50-object seed plus
  50-object mutation batches through the durable engine, the shape a
  durable deployment actually produces.  The log therefore holds the
  whole dataset, which is exactly what makes "full rebuild" = full-log
  replay well-defined after a crash (an in-memory rebuild needs the
  objects the crash just lost).
* The snapshot lands at the 95% point, so snapshot recovery still
  replays a real tail (20 batches) — measuring snapshot parse + engine
  build + tail replay, not just JSON loading.

Run with
``PYTHONPATH=src python -m pytest benchmarks/bench_e14_durability.py -q``
(add ``-s`` for the tables).
"""

from __future__ import annotations

import shutil
import time

import pytest

from repro.bench.harness import Table
from repro.bench.workloads import QueryWorkload
from repro.core.mutations import Mutation
from repro.core.objects import SpatialDatabase
from repro.service.api import YaskEngine
from repro.service.protocol import result_to_dict
from repro.service.wal import (
    WriteAheadLog,
    read_records,
    recover_engine,
    replay_into,
)

#: Acceptance floors (ISSUE 6).
LOGGED_THROUGHPUT_FLOOR = 0.7
RECOVERY_SPEEDUP_FLOOR = 5.0

OBJECTS = 20_000
SEED_OBJECTS = 50
BATCH = 50
TAIL_FRACTION = 0.05


@pytest.fixture(scope="module")
def full_db():
    from repro.datasets.generators import SyntheticDatasetBuilder

    return SyntheticDatasetBuilder(seed=2016).build(
        OBJECTS,
        vocabulary_size=50,
        doc_length=(4, 8),
        spatial="clustered",
        clusters=12,
    )


def _batches(objects, start: int) -> list[list[Mutation]]:
    return [
        [Mutation.insert(obj) for obj in objects[index : index + BATCH]]
        for index in range(start, len(objects), BATCH)
    ]


def test_e14_logged_ingest_at_least_70_percent_of_unlogged(
    full_db, tmp_path
):
    """Acceptance: WAL appends cost <=30% of ingest throughput."""
    objects = full_db.objects
    base = objects[: OBJECTS - 1_000]
    tail_batches = _batches(objects, OBJECTS - 1_000)

    def ingest(wal=None) -> float:
        engine = YaskEngine(
            SpatialDatabase(base, dataspace=full_db.dataspace), wal=wal
        )
        started = time.perf_counter()
        for batch in tail_batches:
            engine.apply_mutations(batch)
        elapsed = time.perf_counter() - started
        engine.close()
        return elapsed

    unlogged_s = min(ingest() for _ in range(3))
    logged_s = min(
        ingest(WriteAheadLog(tmp_path / f"never{i}", fsync="never"))
        for i in range(3)
    )
    synced_s = ingest(WriteAheadLog(tmp_path / "always", fsync="always"))
    ratio = unlogged_s / logged_s

    table = Table(
        "path", "best_ms",
        title=(
            f"E14: ingest 1000 objects ({len(tail_batches)} batches) "
            f"into a {len(base)}-object engine"
        ),
    )
    table.add_row("unlogged", unlogged_s * 1000.0)
    table.add_row('logged fsync="never"', logged_s * 1000.0)
    table.add_row('logged fsync="always" (unasserted)', synced_s * 1000.0)
    table.add_row(
        f"logged throughput {ratio:.2f}x of unlogged "
        f"(floor {LOGGED_THROUGHPUT_FLOOR}x)",
        "",
    )
    table.print()
    assert ratio >= LOGGED_THROUGHPUT_FLOOR, (
        f"logged ingest sustains only {ratio:.2f}x of unlogged throughput "
        f"({logged_s * 1000:.0f}ms vs {unlogged_s * 1000:.0f}ms)"
    )


def test_e14_snapshot_recovery_5x_vs_full_rebuild(full_db, tmp_path):
    """Acceptance: snapshot + 5% tail >= 5x faster than full rebuild.

    "Full rebuild" is replaying the entire ingest log from the seed
    through a live engine (``replay_into``: per-batch incremental index
    maintenance) — what rebuilding a serving replica costs without the
    snapshot + bulk-recovery machinery.
    """
    objects = full_db.objects
    seed = lambda: SpatialDatabase(
        objects[:SEED_OBJECTS], dataspace=full_db.dataspace
    )
    batches = _batches(objects, SEED_OBJECTS)
    tail_records = round(OBJECTS * TAIL_FRACTION / BATCH)
    wal_dir = tmp_path / "wal"

    primary = YaskEngine(
        seed(), wal=WriteAheadLog(wal_dir, fsync="never")
    )
    for index, batch in enumerate(batches):
        if index == len(batches) - tail_records:
            primary.snapshot()
        primary.apply_mutations(batch)
    final_generation = primary.generation
    queries = list(
        QueryWorkload(
            full_db, seed=7, k=10, keywords_per_query=(1, 2),
            location_jitter=0.01,
        ).queries(5)
    )
    live = [result_to_dict(primary.query(query)) for query in queries]
    primary.close()

    # A log copy without manifest/snapshot: the state a deployment that
    # never snapshotted is in, used by both full-rebuild measurements.
    replay_dir = tmp_path / "replay"
    shutil.copytree(wal_dir, replay_dir)
    (replay_dir / "MANIFEST.json").unlink()
    for path in replay_dir.glob("snapshot-*.json"):
        path.unlink()

    def recover(directory, database=None):
        started = time.perf_counter()
        engine, report = recover_engine(
            directory, database=database, attach=False
        )
        elapsed = time.perf_counter() - started
        return engine, report, elapsed

    snapshot_engine, snapshot_report, snapshot_s = recover(wal_dir)
    for _ in range(2):
        again, _, elapsed = recover(wal_dir)
        again.close()
        snapshot_s = min(snapshot_s, elapsed)

    started = time.perf_counter()
    rebuilt_engine = YaskEngine(seed())
    rebuilt_records, _ = replay_into(
        rebuilt_engine, read_records(replay_dir)
    )
    rebuild_s = time.perf_counter() - started

    bulk_engine, bulk_report, bulk_s = recover(replay_dir, seed())

    assert snapshot_report.generation == final_generation
    assert rebuilt_engine.generation == final_generation
    assert bulk_report.generation == final_generation
    assert snapshot_report.records_replayed == tail_records
    assert rebuilt_records == len(batches)
    for query, want in zip(queries, live):
        assert result_to_dict(snapshot_engine.query(query)) == want
        assert result_to_dict(rebuilt_engine.query(query)) == want
        assert result_to_dict(bulk_engine.query(query)) == want
    snapshot_engine.close()
    rebuilt_engine.close()
    bulk_engine.close()

    speedup = rebuild_s / snapshot_s
    table = Table(
        "path", "best_ms",
        title=(
            f"E14: recover {OBJECTS}-object engine at generation "
            f"{final_generation}"
        ),
    )
    table.add_row(
        f"full rebuild: live-engine replay ({len(batches)} records)",
        rebuild_s * 1000.0,
    )
    table.add_row(
        "bulk recovery, no snapshot (unasserted)", bulk_s * 1000.0
    )
    table.add_row(
        f"recovery: snapshot + {tail_records}-record tail",
        snapshot_s * 1000.0,
    )
    table.add_row(
        f"speedup {speedup:.1f}x (floor {RECOVERY_SPEEDUP_FLOOR}x)", ""
    )
    table.print()
    assert speedup >= RECOVERY_SPEEDUP_FLOOR, (
        f"snapshot recovery only {speedup:.2f}x faster than a full "
        f"rebuild ({snapshot_s * 1000:.0f}ms vs {rebuild_s * 1000:.0f}ms)"
    )
