"""E6 — Section 4 "Query Refinement Effectiveness": the impact of λ.

"We are able to show how the initial queries are minimally modified to
revive the missing hotels and to demonstrate the impact of the setting
of weight parameter λ in the penalty functions (Eqns. (3) and (4)) on
the quality of refined queries."

The report prints the (Δk, Δw) / (Δk, Δdoc) trade-off per λ for both
models, on the demonstration dataset — the quantitative version of the
demo's effectiveness walkthrough.  The asserted shape: as λ grows, the
models shift from modifying the query (λ→0) to enlarging k (λ→1), with
Δk weakly decreasing in λ and the modification magnitude weakly
increasing.
"""

import pytest

from repro.bench.harness import Table
from repro.core.geometry import Point
from repro.datasets.hotels import GRAND_VICTORIA

LAMBDAS = (0.0, 0.25, 0.5, 0.75, 1.0)


@pytest.fixture(scope="module")
def demo_query(hotels_engine):
    return hotels_engine.make_query(
        Point(114.1722, 22.2975), {"clean", "comfortable"}, 3
    )


@pytest.mark.parametrize("lam", LAMBDAS, ids=lambda l: f"lam={l}")
def test_e6_preference_by_lambda(benchmark, hotels_engine, demo_query, lam):
    refinement = benchmark(
        hotels_engine.refine_preference, demo_query, [GRAND_VICTORIA], lam=lam
    )
    assert refinement.penalty <= lam + 1e-12


@pytest.mark.parametrize("lam", LAMBDAS, ids=lambda l: f"lam={l}")
def test_e6_keyword_by_lambda(benchmark, hotels_engine, demo_query, lam):
    refinement = benchmark(
        hotels_engine.refine_keywords, demo_query, [GRAND_VICTORIA], lam=lam
    )
    assert refinement.penalty <= lam + 1e-12


def test_e6_report_tradeoff(benchmark, hotels_engine, demo_query, capsys):
    table = Table(
        "lambda",
        "pref Δw", "pref Δk", "pref penalty",
        "kw Δdoc", "kw Δk", "kw penalty",
        title="E6: λ impact on refinement quality (Grand Victoria scenario)",
    )
    pref_delta_ks, kw_delta_ks = [], []
    pref_delta_ws, kw_delta_docs = [], []
    for lam in LAMBDAS:
        pref = hotels_engine.refine_preference(
            demo_query, [GRAND_VICTORIA], lam=lam
        )
        keyword = hotels_engine.refine_keywords(
            demo_query, [GRAND_VICTORIA], lam=lam
        )
        pref_delta_ks.append(pref.delta_k)
        kw_delta_ks.append(keyword.delta_k)
        pref_delta_ws.append(pref.delta_w)
        kw_delta_docs.append(keyword.delta_doc)
        table.add_row(
            lam,
            round(pref.delta_w, 4), pref.delta_k, round(pref.penalty, 4),
            keyword.delta_doc, keyword.delta_k, round(keyword.penalty, 4),
        )
    with capsys.disabled():
        table.print()

    # The paper's claimed trade-off shape: growing λ moves both models
    # away from enlarging k and towards modifying the query.
    assert pref_delta_ks == sorted(pref_delta_ks, reverse=True)
    assert kw_delta_ks == sorted(kw_delta_ks, reverse=True)
    assert pref_delta_ws == sorted(pref_delta_ws)
    assert kw_delta_docs == sorted(kw_delta_docs)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e6_report_synthetic_scenarios(
    benchmark, bench_scorer, bench_kcrtree, bench_scenarios, capsys
):
    """The same λ sweep averaged over synthetic why-not scenarios."""
    from repro.whynot.keyword import KeywordAdapter
    from repro.whynot.preference import PreferenceAdjuster

    adjuster = PreferenceAdjuster(bench_scorer)
    adapter = KeywordAdapter(bench_scorer, bench_kcrtree)
    scenarios = bench_scenarios[:3]
    table = Table(
        "lambda", "pref mean Δk", "pref mean Δw", "kw mean Δk", "kw mean Δdoc",
        title="E6b: λ sweep on synthetic scenarios (10k objects, |M|=2)",
    )
    for lam in LAMBDAS:
        pref_dk = pref_dw = kw_dk = kw_dd = 0.0
        for s in scenarios:
            pref = adjuster.refine(s.query, s.missing, lam=lam)
            keyword = adapter.refine(s.query, s.missing, lam=lam)
            pref_dk += pref.delta_k
            pref_dw += pref.delta_w
            kw_dk += keyword.delta_k
            kw_dd += keyword.delta_doc
        count = len(scenarios)
        table.add_row(
            lam,
            round(pref_dk / count, 1), round(pref_dw / count, 4),
            round(kw_dk / count, 1), round(kw_dd / count, 2),
        )
    with capsys.disabled():
        table.print()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
