"""E2 — Fig. 2: the KcR-tree — exact example plus build cost/size sweep.

The exact five-object tree of Fig. 2 is asserted in
``tests/index/test_kcrtree.py::TestFig2Reproduction``; this module
measures what the figure's structure costs at scale: bulk-load time,
node counts and keyword-count-map sizes for growing databases, and the
per-node bound computations the keyword-adaption module performs on it.
"""

import pytest

from repro.bench.harness import Table
from repro.datasets.generators import SyntheticDatasetBuilder
from repro.index.kcrtree import KcRTree


@pytest.mark.parametrize("n", [1_000, 5_000, 20_000], ids=lambda n: f"n={n}")
def test_e2_bulk_load(benchmark, n):
    database = SyntheticDatasetBuilder(seed=2).build(
        n, vocabulary_size=max(50, n // 50), doc_length=(3, 8)
    )
    tree = benchmark.pedantic(
        KcRTree.build, args=(database,), kwargs={"max_entries": 32},
        rounds=3, iterations=1, warmup_rounds=1,
    )
    assert len(tree) == n


def test_e2_incremental_insert(benchmark, bench_db):
    objects = bench_db.objects[:2_000]

    def build():
        tree = KcRTree(database=bench_db, max_entries=32)
        for obj in objects:
            tree.insert(obj, obj.loc)
        return tree

    tree = benchmark.pedantic(build, rounds=3, iterations=1, warmup_rounds=1)
    assert len(tree) == 2_000


def test_e2_node_bound_computation(benchmark, bench_kcrtree, bench_db):
    """Cost of the three Fig. 2-payload count bounds on the root map."""
    summary = bench_kcrtree.root.summary
    keywords = frozenset(sorted(bench_db.vocabulary())[:4])

    def bounds():
        return (
            summary.count_with_overlap_at_least(keywords, 2),
            summary.count_containing_all(keywords),
            summary.count_containing_any_upper(keywords),
        )

    upper, lower, any_upper = benchmark(bounds)
    assert 0 <= lower <= any_upper <= summary.cnt
    assert 0 <= upper <= summary.cnt


def test_e2_report_structure_sweep(benchmark, capsys):
    """Print the structure table EXPERIMENTS.md records for E2."""
    table = Table(
        "n", "nodes", "height", "root map keys", "avg leaf map keys",
        title="E2: KcR-tree structure vs database size",
    )
    for n in (1_000, 5_000, 20_000):
        database = SyntheticDatasetBuilder(seed=2).build(
            n, vocabulary_size=max(50, n // 50), doc_length=(3, 8)
        )
        tree = KcRTree.build(database, max_entries=32)
        leaves = list(tree.iter_levels())[-1]
        avg_leaf_keys = sum(
            len(leaf.summary.keyword_counts) for leaf in leaves
        ) / len(leaves)
        table.add_row(
            n, tree.node_count(), tree.height(),
            len(tree.root.summary.keyword_counts), round(avg_leaf_keys, 1),
        )
    with capsys.disabled():
        table.print()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
