"""Machine-readable benchmark snapshots: ``BENCH_E9/…/E15.json``.

``make bench-json`` runs this script to refresh the JSON files at the
repository root, so the perf trajectory of the serving tier (E9: query
executor, E10: why-not executor), the compute tier (E11: columnar
scoring kernel), the scatter tier (E12: spatial sharding), the
live-mutation tier (E13: incremental ingest + scoped invalidation),
the durability tier (E14: logged ingest + snapshot recovery) and the
process-worker tier (E15: shared-memory shard workers vs the threaded
scatter) is tracked across PRs in a diffable form.

The numbers here are in-process measurements sized to finish in tens of
seconds; the assertion-bearing experiments (HTTP batch floors, kernel
speedup floors) live in the ``bench_e*.py`` pytest modules and
``make bench-smoke``.
"""

from __future__ import annotations

import json
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

from repro.bench.harness import time_call
from repro.bench.workloads import QueryWorkload, generate_whynot_scenarios
from repro.core.scoring import Scorer
from repro.datasets.generators import SyntheticDatasetBuilder
from repro.datasets.hotels import hong_kong_hotels
from repro.service.api import YaskEngine
from repro.service.executor import QueryExecutor, WhyNotExecutor, WhyNotQuestion
from repro.whynot.preference import PreferenceAdjuster

REPO_ROOT = Path(__file__).resolve().parent.parent


def _snapshot(experiment: str, description: str, metrics: dict) -> dict:
    return {
        "experiment": experiment,
        "description": description,
        "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "metrics": metrics,
    }


def bench_e9(engine: YaskEngine) -> dict:
    """Query executor: cold vs. warm vs. in-process batch."""
    executor = QueryExecutor(engine)
    workload = QueryWorkload(engine.database, seed=41, k=5, keywords_per_query=(1, 2))
    queries = list(workload.queries(8))

    def cold():
        executor.invalidate()
        return [executor.execute(query) for query in queries]

    _, cold_timing = time_call(cold, repeat=5)
    executor.invalidate()
    for query in queries:
        executor.execute(query)
    _, warm_timing = time_call(
        lambda: [executor.execute(query) for query in queries], repeat=5
    )

    def batch():
        executor.invalidate()
        return executor.execute_batch(queries * 4)

    _, batch_timing = time_call(batch, repeat=5)
    executor.close()
    return {
        "queries": len(queries),
        "cold_ms": cold_timing.best_ms,
        "warm_ms": warm_timing.best_ms,
        "warm_speedup": cold_timing.best / warm_timing.best,
        "batch_of_32_ms": batch_timing.best_ms,
    }


def bench_e10(engine: YaskEngine) -> dict:
    """Why-not executor: cold vs. warm answering."""
    topk = QueryExecutor(engine)
    executor = WhyNotExecutor(engine, topk)
    scorer = engine.scorer
    scenarios = generate_whynot_scenarios(
        scorer, count=4, k=5, missing_count=1, rank_window=20, seed=23
    )
    questions = [
        WhyNotQuestion(
            query=scenario.query,
            missing=tuple(obj.oid for obj in scenario.missing),
            model="full",
        )
        for scenario in scenarios
    ]

    def cold():
        executor.invalidate()
        return [executor.execute(question) for question in questions]

    _, cold_timing = time_call(cold, repeat=3)
    executor.invalidate()
    for question in questions:
        executor.execute(question)
    _, warm_timing = time_call(
        lambda: [executor.execute(question) for question in questions], repeat=3
    )
    executor.close()
    topk.close()
    return {
        "questions": len(questions),
        "cold_ms": cold_timing.best_ms,
        "warm_ms": warm_timing.best_ms,
        "warm_speedup": cold_timing.best / warm_timing.best,
    }


def bench_e11() -> dict:
    """Columnar kernel vs. object-at-a-time scoring at 10k objects."""
    database = SyntheticDatasetBuilder(seed=2016).build(
        10_000,
        vocabulary_size=200,
        doc_length=(3, 8),
        spatial="clustered",
        clusters=12,
    )
    fast = Scorer(database)
    slow = Scorer(database, use_kernel=False)
    queries = list(
        QueryWorkload(database, seed=17, k=10, keywords_per_query=(2, 3)).queries(3)
    )

    _, fast_rank = time_call(
        lambda: [fast.rank_all(query) for query in queries], repeat=5
    )
    _, slow_rank = time_call(
        lambda: [slow.rank_all(query) for query in queries], repeat=5
    )

    scenarios = generate_whynot_scenarios(
        fast, count=2, k=10, missing_count=2, rank_window=40, seed=99
    )
    fast_adjuster = PreferenceAdjuster(fast)
    slow_adjuster = PreferenceAdjuster(slow)
    _, fast_whynot = time_call(
        lambda: [fast_adjuster.refine(s.query, s.missing) for s in scenarios],
        repeat=3,
    )
    _, slow_whynot = time_call(
        lambda: [slow_adjuster.refine(s.query, s.missing) for s in scenarios],
        repeat=3,
    )
    return {
        "objects": len(database),
        "rank_all_object_ms": slow_rank.best_ms,
        "rank_all_kernel_ms": fast_rank.best_ms,
        "rank_all_speedup": slow_rank.best / fast_rank.best,
        "rank_all_floor": 3.0,
        "cold_whynot_object_ms": slow_whynot.best_ms,
        "cold_whynot_kernel_ms": fast_whynot.best_ms,
        "cold_whynot_speedup": slow_whynot.best / fast_whynot.best,
        "cold_whynot_floor": 2.0,
    }


def bench_e12() -> dict:
    """Scatter-gather sharding: 4 grid shards vs the 1-shard scan."""
    database = SyntheticDatasetBuilder(seed=2016).build(
        20_000,
        vocabulary_size=50,
        doc_length=(4, 8),
        spatial="clustered",
        clusters=12,
    )
    baseline = YaskEngine(database, shards=1)
    sharded = YaskEngine(database, shards=4)
    queries = list(
        QueryWorkload(
            database, seed=7, k=10, keywords_per_query=(1, 2),
            location_jitter=0.01,
        ).queries(12)
    )
    _, baseline_topk = time_call(
        lambda: [baseline.query(query) for query in queries], repeat=5
    )
    sharded.shard_router.stats.reset()
    _, sharded_topk = time_call(
        lambda: [sharded.query(query) for query in queries], repeat=5
    )
    shard_stats = sharded.shard_router.to_dict()

    scenarios = generate_whynot_scenarios(
        baseline.scorer, count=4, k=10, missing_count=2, rank_window=20,
        seed=42,
    )
    baseline_adjuster = PreferenceAdjuster(baseline.scorer)
    sharded_adjuster = PreferenceAdjuster(sharded.scorer)
    _, baseline_whynot = time_call(
        lambda: [
            baseline_adjuster.refine(s.query, s.missing) for s in scenarios
        ],
        repeat=3,
    )
    _, sharded_whynot = time_call(
        lambda: [
            sharded_adjuster.refine(s.query, s.missing) for s in scenarios
        ],
        repeat=3,
    )
    return {
        "objects": len(database),
        "shards": 4,
        "topk_one_shard_ms": baseline_topk.best_ms,
        "topk_four_shards_ms": sharded_topk.best_ms,
        "topk_speedup": baseline_topk.best / sharded_topk.best,
        "topk_floor": 1.8,
        "topk_shard_scans_skipped": shard_stats["topk_shards_skipped"],
        "topk_shard_scans_run": shard_stats["topk_shards_scanned"],
        "cold_whynot_one_shard_ms": baseline_whynot.best_ms,
        "cold_whynot_four_shards_ms": sharded_whynot.best_ms,
        "cold_whynot_speedup": baseline_whynot.best / sharded_whynot.best,
        "cold_whynot_floor": 1.5,
    }


def bench_e13() -> dict:
    """Live mutation: incremental 5% ingest vs rebuild + warm hit rate."""
    import random
    import time as _time

    from repro.core.geometry import Point
    from repro.core.mutations import Mutation
    from repro.core.objects import SpatialDatabase, SpatialObject
    from repro.service.executor import QueryExecutor

    base = SyntheticDatasetBuilder(seed=2016).build(
        20_000,
        vocabulary_size=50,
        doc_length=(4, 8),
        spatial="clustered",
        clusters=12,
    )
    rng = random.Random(4)
    vocabulary = sorted(base.vocabulary())
    ingest = [
        SpatialObject(
            1_000_000 + i,
            Point(0.30 + rng.random() * 0.08, 0.60 + rng.random() * 0.08),
            frozenset(rng.sample(vocabulary, 5)),
        )
        for i in range(1_000)
    ]

    def incremental() -> float:
        engine = YaskEngine(
            SpatialDatabase(base.objects, dataspace=base.dataspace)
        )
        started = _time.perf_counter()
        for start in range(0, len(ingest), 250):
            engine.apply_mutations(
                [Mutation.insert(obj) for obj in ingest[start : start + 250]]
            )
        elapsed = _time.perf_counter() - started
        engine.close()
        return elapsed

    final_objects = list(base.objects) + ingest

    def rebuild() -> float:
        started = _time.perf_counter()
        engine = YaskEngine(
            SpatialDatabase(final_objects, dataspace=base.dataspace)
        )
        elapsed = _time.perf_counter() - started
        engine.close()
        return elapsed

    incremental_s = min(incremental() for _ in range(3))
    rebuild_s = min(rebuild() for _ in range(3))

    # Mixed read/write warm hit rate (the bench_e13_mutations.py shape).
    engine = YaskEngine(
        SpatialDatabase(base.objects, dataspace=base.dataspace)
    )
    executor = QueryExecutor(engine, cache_capacity=256, max_workers=1)
    queries = list(
        QueryWorkload(
            base, seed=21, k=10, keywords_per_query=(1, 2),
            location_jitter=0.01,
        ).queries(40)
    )
    for query in queries:
        executor.execute(query)
    hits = reads = 0
    next_oid = 2_000_000
    for round_index in range(6):
        cx = 0.15 + 0.1 * round_index
        hot_keyword = vocabulary[(7 * round_index) % len(vocabulary)]
        batch = []
        for index in range(20):
            doc = (
                frozenset({hot_keyword})
                if index < 4
                else frozenset({f"popup{round_index}", "popup"})
            )
            batch.append(
                Mutation.insert(
                    SpatialObject(
                        next_oid,
                        Point(
                            cx + rng.random() * 0.05, 0.2 + rng.random() * 0.05
                        ),
                        doc,
                    )
                )
            )
            next_oid += 1
        report = engine.apply_mutations(batch)
        executor.invalidate_scoped(report.change.summary)
        for query in queries:
            reads += 1
            if executor.execute(query).source == "cache":
                hits += 1
    stats = executor.stats()
    executor.close()
    engine.close()

    # Patch-on-write (answer maintenance): the same read/write shape,
    # but the writes land *on* cached queries — the adversarial regime
    # for drop-on-write — and the executor patches skybands in place.
    engine = YaskEngine(
        SpatialDatabase(base.objects, dataspace=base.dataspace)
    )
    executor = QueryExecutor(
        engine, cache_capacity=256, max_workers=1, skyband_delta=8
    )
    for query in queries:
        executor.execute(query)
    maintained_hits = maintained_reads = 0
    for _ in range(6):
        batch = []
        for _ in range(20):
            target = rng.choice(queries)
            batch.append(
                Mutation.insert(
                    SpatialObject(
                        next_oid,
                        Point(
                            min(max(target.loc.x + rng.uniform(-0.01, 0.01), 0.0), 1.0),
                            min(max(target.loc.y + rng.uniform(-0.01, 0.01), 0.0), 1.0),
                        ),
                        frozenset(target.doc),
                    )
                )
            )
            next_oid += 1
        report = engine.apply_mutations(batch)
        executor.maintain(report.change)
        for query in queries:
            maintained_reads += 1
            if executor.execute(query).source == "cache":
                maintained_hits += 1
    maintained_stats = executor.stats()
    executor.close()
    engine.close()
    return {
        "objects": 20_000,
        "ingest_objects": len(ingest),
        "ingest_batches": 4,
        "incremental_ingest_ms": incremental_s * 1000.0,
        "full_rebuild_ms": rebuild_s * 1000.0,
        "ingest_speedup": rebuild_s / incremental_s,
        "ingest_floor": 5.0,
        "post_write_reads": reads,
        "post_write_hit_rate": hits / reads,
        "hit_rate_floor": 0.5,
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
        "scoped_invalidations": stats.scoped_invalidations,
        "scoped_dropped": stats.scoped_dropped,
        "scoped_kept": stats.scoped_kept,
        "maintained_post_write_hit_rate": maintained_hits / maintained_reads,
        "maintained_warmth_floor_vs_drop": 2.0,
        "maintained_cache_hits": maintained_stats.hits,
        "maintained_cache_misses": maintained_stats.misses,
        "maintenance_passes": maintained_stats.maintenance_passes,
        "maintained_kept": maintained_stats.maintained_kept,
        "maintained_patched": maintained_stats.maintained_patched,
        "maintained_dropped": maintained_stats.maintained_dropped,
        "skyband_rescans": maintained_stats.skyband_rescans,
    }


def bench_e14() -> dict:
    """Durability: logged ingest overhead + snapshot-recovery speedup.

    The ``bench_e14_durability.py`` shape: a 50-object seed ingests the
    rest of a 20k synthetic dataset through the WAL in 50-object
    batches, a snapshot lands at the 95% point, and recovery (snapshot
    + 5% tail, bulk replay) races the full-rebuild path — replaying the
    whole log through a live engine's incremental index maintenance.
    """
    import shutil
    import tempfile
    import time as _time
    from pathlib import Path as _Path

    from repro.core.mutations import Mutation
    from repro.core.objects import SpatialDatabase
    from repro.service.wal import (
        WriteAheadLog,
        read_records,
        recover_engine,
        replay_into,
    )

    base = SyntheticDatasetBuilder(seed=2016).build(
        20_000,
        vocabulary_size=50,
        doc_length=(4, 8),
        spatial="clustered",
        clusters=12,
    )
    objects = base.objects
    workdir = _Path(tempfile.mkdtemp(prefix="yask-bench-e14-"))
    try:
        # Logged-ingest overhead: the last 1000 objects into a 19k engine.
        ingest_batches = [
            [Mutation.insert(obj) for obj in objects[start : start + 50]]
            for start in range(19_000, 20_000, 50)
        ]

        def ingest(wal=None) -> float:
            engine = YaskEngine(
                SpatialDatabase(objects[:19_000], dataspace=base.dataspace),
                wal=wal,
            )
            started = _time.perf_counter()
            for batch in ingest_batches:
                engine.apply_mutations(batch)
            elapsed = _time.perf_counter() - started
            engine.close()
            return elapsed

        unlogged_s = min(ingest() for _ in range(3))
        logged_s = min(
            ingest(WriteAheadLog(workdir / f"never{i}", fsync="never"))
            for i in range(3)
        )
        synced_s = ingest(WriteAheadLog(workdir / "always", fsync="always"))

        # Recovery: seed + logged ingest of the rest, snapshot at 95%.
        wal_dir = workdir / "wal"
        seed = lambda: SpatialDatabase(objects[:50], dataspace=base.dataspace)
        batches = [
            [Mutation.insert(obj) for obj in objects[start : start + 50]]
            for start in range(50, 20_000, 50)
        ]
        tail_records = round(20_000 * 0.05 / 50)
        primary = YaskEngine(seed(), wal=WriteAheadLog(wal_dir, fsync="never"))
        for index, batch in enumerate(batches):
            if index == len(batches) - tail_records:
                primary.snapshot()
            primary.apply_mutations(batch)
        primary.close()

        replay_dir = workdir / "replay"
        shutil.copytree(wal_dir, replay_dir)
        (replay_dir / "MANIFEST.json").unlink()
        for path in replay_dir.glob("snapshot-*.json"):
            path.unlink()

        def timed_recovery() -> float:
            started = _time.perf_counter()
            engine, _ = recover_engine(wal_dir, attach=False)
            elapsed = _time.perf_counter() - started
            engine.close()
            return elapsed

        snapshot_s = min(timed_recovery() for _ in range(3))
        started = _time.perf_counter()
        rebuilt = YaskEngine(seed())
        replay_into(rebuilt, read_records(replay_dir))
        rebuild_s = _time.perf_counter() - started
        rebuilt.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "objects": 20_000,
        "ingest_objects": 1_000,
        "unlogged_ingest_ms": unlogged_s * 1000.0,
        "logged_ingest_ms": logged_s * 1000.0,
        "logged_ingest_fsync_always_ms": synced_s * 1000.0,
        "logged_throughput_ratio": unlogged_s / logged_s,
        "logged_throughput_floor": 0.7,
        "log_records": len(batches),
        "tail_records": tail_records,
        "snapshot_recovery_ms": snapshot_s * 1000.0,
        "full_rebuild_replay_ms": rebuild_s * 1000.0,
        "recovery_speedup": rebuild_s / snapshot_s,
        "recovery_floor": 5.0,
    }


def bench_e15() -> dict:
    """Process shard workers vs the threaded scatter at 4 shards.

    The ``bench_e15_procpool.py`` shape: same corpus and workload as
    E12, the threaded engine pinned to its parallel scatter shape, the
    proc engine scanning through shared-memory worker processes.  The
    1.5x floor is asserted by the pytest module only on >= 4 cores; the
    snapshot records the measured ratio (and the core count) wherever
    it runs, so single-core containers still produce a diffable number.
    """
    import os as _os

    database = SyntheticDatasetBuilder(seed=2016).build(
        20_000,
        vocabulary_size=50,
        doc_length=(4, 8),
        spatial="clustered",
        clusters=12,
    )
    threaded = YaskEngine(database, shards=4, shard_workers=4)
    proc = YaskEngine(database, shards=4, shard_workers="proc")
    queries = list(
        QueryWorkload(
            database, seed=7, k=10, keywords_per_query=(1, 2),
            location_jitter=0.01,
        ).queries(12)
    )
    try:
        parity = all(
            [tuple(e) for e in proc.query(query)]
            == [tuple(e) for e in threaded.query(query)]
            for query in queries
        )
        _, threaded_topk = time_call(
            lambda: [threaded.query(query) for query in queries], repeat=5
        )
        _, proc_topk = time_call(
            lambda: [proc.query(query) for query in queries], repeat=5
        )
        pool_stats = proc.worker_pool.to_dict()
    finally:
        proc.close()
        threaded.close()
    return {
        "objects": 20_000,
        "shards": 4,
        "cpu_count": _os.cpu_count(),
        "parity": parity,
        "topk_threaded_ms": threaded_topk.best_ms,
        "topk_proc_ms": proc_topk.best_ms,
        "proc_speedup": threaded_topk.best / proc_topk.best,
        "proc_floor_on_4_cores": 1.5,
        "worker_scans": pool_stats["scans"],
        "worker_restarts": pool_stats["restarts"],
    }


def main() -> int:
    engine = YaskEngine(hong_kong_hotels())
    snapshots = {
        "BENCH_E9.json": _snapshot(
            "E9",
            "query-execution tier: cold/warm/batch (hotels dataset)",
            bench_e9(engine),
        ),
        "BENCH_E10.json": _snapshot(
            "E10",
            "why-not execution tier: cold/warm (hotels dataset)",
            bench_e10(engine),
        ),
        "BENCH_E11.json": _snapshot(
            "E11",
            "columnar scoring kernel vs object-at-a-time (10k synthetic)",
            bench_e11(),
        ),
        "BENCH_E12.json": _snapshot(
            "E12",
            "scatter-gather sharding: 4 grid shards vs 1 shard (20k synthetic)",
            bench_e12(),
        ),
        "BENCH_E13.json": _snapshot(
            "E13",
            "live mutation: incremental ingest vs rebuild + scoped "
            "invalidation and answer-maintenance warm rates (20k synthetic)",
            bench_e13(),
        ),
        "BENCH_E14.json": _snapshot(
            "E14",
            "durability: logged ingest overhead + snapshot recovery vs "
            "full-log rebuild (20k synthetic)",
            bench_e14(),
        ),
        "BENCH_E15.json": _snapshot(
            "E15",
            "process shard workers over shared-memory columns vs the "
            "threaded scatter (20k synthetic, 4 shards)",
            bench_e15(),
        ),
    }
    for filename, snapshot in snapshots.items():
        path = REPO_ROOT / filename
        path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
