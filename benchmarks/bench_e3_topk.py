"""E3 — Fig. 3 / demonstration scenario 1: top-k query latency.

SetR-tree best-first search versus the brute-force scan, swept over
database size ``n``, result size ``k`` and query keyword count.

Expected shape (EXPERIMENTS.md): the index engine wins everywhere and
its advantage grows with ``n`` (it touches a near-constant number of
nodes while the scan is linear); latency grows mildly with ``k``.
"""

import pytest

from repro.bench.harness import Table, time_call
from repro.bench.workloads import QueryWorkload
from repro.core.scoring import Scorer
from repro.core.topk import BestFirstTopK, BruteForceTopK
from repro.index.setrtree import SetRTree

from benchmarks.conftest import SWEEP_SIZES, build_database


@pytest.mark.parametrize("k", [1, 3, 10, 50], ids=lambda k: f"k={k}")
def test_e3_best_first_by_k(benchmark, bench_db, bench_scorer, bench_setrtree, k):
    engine = BestFirstTopK(bench_setrtree, bench_scorer)
    workload = QueryWorkload(bench_db, seed=31, k=k)
    queries = list(workload.queries(20))

    def run():
        for query in queries:
            engine.search(query)

    benchmark(run)


@pytest.mark.parametrize("k", [3, 10], ids=lambda k: f"k={k}")
def test_e3_brute_force_by_k(benchmark, bench_db, bench_scorer, k):
    engine = BruteForceTopK(bench_scorer)
    queries = list(QueryWorkload(bench_db, seed=31, k=k).queries(5))

    def run():
        for query in queries:
            engine.search(query)

    benchmark(run)


def test_e3_best_first_by_size(benchmark, sized_database):
    scorer = Scorer(sized_database)
    tree = SetRTree.build(sized_database, max_entries=32)
    engine = BestFirstTopK(tree, scorer)
    queries = list(QueryWorkload(sized_database, seed=32, k=10).queries(20))

    def run():
        for query in queries:
            engine.search(query)

    benchmark(run)


@pytest.mark.parametrize("keywords", [1, 2, 4], ids=lambda c: f"kw={c}")
def test_e3_best_first_by_keywords(
    benchmark, bench_db, bench_scorer, bench_setrtree, keywords
):
    engine = BestFirstTopK(bench_setrtree, bench_scorer)
    workload = QueryWorkload(
        bench_db, seed=33, k=10, keywords_per_query=(keywords, keywords)
    )
    queries = list(workload.queries(20))

    def run():
        for query in queries:
            engine.search(query)

    benchmark(run)


def test_e3_report_index_vs_scan(benchmark, capsys):
    """The headline E3 table: who wins and by what factor, per n.

    Both query regimes are reported: frequency-biased keywords (common
    facilities; the adversarial case for set bounds — every node union
    matches the query) and uniform keywords (rare terms; the favourable
    case where textual pruning bites).
    """
    table = Table(
        "n", "keywords", "best-first ms", "brute ms", "speedup", "objects scored",
        title="E3: top-10 query latency, SetR-tree best-first vs brute force",
    )
    for n in SWEEP_SIZES:
        database = build_database(n)
        scorer = Scorer(database)
        tree = SetRTree.build(database, max_entries=32)
        engine = BestFirstTopK(tree, scorer)
        brute = BruteForceTopK(scorer)
        for bias in ("frequency", "uniform"):
            queries = list(
                QueryWorkload(database, seed=34, k=10, keyword_bias=bias).queries(10)
            )

            def run_indexed():
                for query in queries:
                    engine.search(query)

            def run_brute():
                for query in queries:
                    brute.search(query)

            _, indexed_timing = time_call(run_indexed, repeat=3)
            _, brute_timing = time_call(run_brute, repeat=3)
            engine.search(queries[0])
            table.add_row(
                n,
                bias,
                round(indexed_timing.best_ms / len(queries), 3),
                round(brute_timing.best_ms / len(queries), 3),
                round(brute_timing.best / indexed_timing.best, 1),
                engine.stats.objects_scored,
            )
    with capsys.disabled():
        table.print()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
