"""Setuptools entry point.

The execution environment has no `wheel` package and no network access,
so pip's PEP 660 editable-install path (which builds a wheel) cannot
run; keeping the metadata here (rather than in pyproject.toml) lets
`pip install -e .` fall back to the legacy `setup.py develop` path.
"""

from setuptools import find_packages, setup

setup(
    name="yask-repro",
    version="0.1.0",
    description=(
        "Reproduction of YASK: a why-not question answering engine for "
        "spatial keyword query services (PVLDB 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["yask = repro.service.cli:main"]},
)
