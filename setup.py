"""Setuptools shim.

The execution environment has no `wheel` package and no network access,
so pip's PEP 660 editable-install path (which builds a wheel) cannot
run; this shim lets `pip install -e .` fall back to the legacy
`setup.py develop` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
