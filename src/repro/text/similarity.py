"""Textual similarity models for spatial keyword ranking.

The paper adopts the Jaccard similarity model (Eqn. (2)) "without loss of
generality" and notes that "other textual similarity models can also be
supported" (Section 2.1, footnote 1).  This module implements:

* :class:`JaccardSimilarity` — the paper's default (Eqn. 2),
* :class:`WeightedJaccardSimilarity` — Jaccard over per-keyword weights,
* :class:`DiceSimilarity` and :class:`OverlapSimilarity` — classic set
  coefficients sharing Jaccard's bounding structure,
* :class:`CosineTfIdfSimilarity` — the IR model used by the Cong et al.
  top-k algorithm [4] which YASK builds on; it requires corpus statistics
  and is served by the IR-tree rather than the SetR-tree.

Every model maps a (object keyword set, query keyword set) pair into
``[0, 1]`` so that Eqn. (1) stays a convex combination of two unit-range
components.

Set models additionally expose *interval bounds* given only partial
knowledge of an object's keyword set — namely that it is sandwiched
between a node's intersection set and union set.  This is exactly the
information a SetR-tree node carries (Section 3.3: "each SetR-tree node
has pointers to the intersection set and the union set of the keyword
sets of all objects indexed by the node") and is what makes best-first
top-k search and why-not rank bounding possible without touching the
objects below a node.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import AbstractSet, Mapping

__all__ = [
    "TextSimilarityModel",
    "SetSimilarityModel",
    "JaccardSimilarity",
    "WeightedJaccardSimilarity",
    "DiceSimilarity",
    "OverlapSimilarity",
    "CosineTfIdfSimilarity",
    "JACCARD",
]

Keywords = AbstractSet[str]


class TextSimilarityModel(ABC):
    """Interface of every textual relevance model.

    Implementations must be pure functions of their arguments (plus any
    frozen corpus statistics captured at construction) so engines may
    cache scores freely.
    """

    #: Short identifier used in benchmark output and the JSON protocol.
    name: str = "abstract"

    @abstractmethod
    def similarity(self, object_keywords: Keywords, query_keywords: Keywords) -> float:
        """Return the textual similarity ``TSim(o, q)`` in ``[0, 1]``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SetSimilarityModel(TextSimilarityModel):
    """A similarity defined purely on keyword sets.

    Subclasses get interval-bound support for SetR-tree style indexing:
    given that ``intersection ⊆ o.doc ⊆ union`` for every object ``o``
    under a node, :meth:`upper_bound` / :meth:`lower_bound` must bracket
    ``similarity(o.doc, q.doc)``.
    """

    @abstractmethod
    def upper_bound(
        self,
        intersection: Keywords,
        union: Keywords,
        query_keywords: Keywords,
        *,
        min_doc_len: int | None = None,
        max_doc_len: int | None = None,
    ) -> float:
        """Upper bound of the similarity of any ``o.doc`` between the sets.

        ``min_doc_len``/``max_doc_len`` optionally bound ``|o.doc|`` over
        the group (the SetR-tree stores them alongside the two sets);
        models may use them to tighten the bound and must stay valid
        when they are None.
        """

    @abstractmethod
    def lower_bound(
        self,
        intersection: Keywords,
        union: Keywords,
        query_keywords: Keywords,
        *,
        min_doc_len: int | None = None,
        max_doc_len: int | None = None,
    ) -> float:
        """Lower bound of the similarity of any ``o.doc`` between the sets."""


class JaccardSimilarity(SetSimilarityModel):
    """Jaccard similarity — Eqn. (2) of the paper.

    ``TSim(o, q) = |o.doc ∩ q.doc| / |o.doc ∪ q.doc|``

    The empty-by-empty corner case (both sets empty) is defined as 0,
    matching the intuition that an object with no description carries no
    textual relevance signal.
    """

    name = "jaccard"

    def similarity(self, object_keywords: Keywords, query_keywords: Keywords) -> float:
        if not object_keywords and not query_keywords:
            return 0.0
        shared = len(object_keywords & query_keywords)
        if shared == 0:
            return 0.0
        return shared / (len(object_keywords) + len(query_keywords) - shared)

    def upper_bound(
        self,
        intersection: Keywords,
        union: Keywords,
        query_keywords: Keywords,
        *,
        min_doc_len: int | None = None,
        max_doc_len: int | None = None,
    ) -> float:
        """Maximise the numerator and minimise the denominator independently.

        For any ``o.doc`` with ``intersection ⊆ o.doc ⊆ union``:

        * ``|o.doc ∩ q.doc| ≤ x := |union ∩ q.doc|``
        * ``|o.doc ∪ q.doc| ≥ max(|intersection ∪ q.doc|, x)``, and with a
          document-length floor also
          ``|o.doc ∪ q.doc| = |o.doc| + |q.doc| − |o.doc ∩ q.doc|
          ≥ min_doc_len + |q.doc| − x`` (Jaccard is increasing in the
          overlap for a fixed document size, so the overlap maximiser
          ``x`` also minimises the denominator term).

        The bound is valid for every member and exact for singleton leaf
        groups (intersection == union).
        """
        numerator = len(union & query_keywords)
        if numerator == 0:
            return 0.0
        denominator = max(len(intersection | query_keywords), numerator)
        if min_doc_len is not None:
            denominator = max(
                denominator, min_doc_len + len(query_keywords) - numerator
            )
        return min(1.0, numerator / denominator)

    def lower_bound(
        self,
        intersection: Keywords,
        union: Keywords,
        query_keywords: Keywords,
        *,
        min_doc_len: int | None = None,
        max_doc_len: int | None = None,
    ) -> float:
        """Minimise the numerator and maximise the denominator independently.

        With a document-length ceiling the denominator is additionally
        capped by ``max_doc_len + |q.doc| − |intersection ∩ q.doc|``.
        """
        numerator = len(intersection & query_keywords)
        if numerator == 0:
            return 0.0
        denominator = len(union | query_keywords)
        if max_doc_len is not None:
            denominator = min(
                denominator, max_doc_len + len(query_keywords) - numerator
            )
        return numerator / max(denominator, numerator)


class WeightedJaccardSimilarity(SetSimilarityModel):
    """Jaccard generalised with non-negative per-keyword weights.

    Keywords missing from the weight table get ``default_weight``.  With
    all weights equal to one this degenerates to plain Jaccard, which is
    exercised by the test suite as a consistency property.
    """

    name = "weighted-jaccard"

    def __init__(
        self, weights: Mapping[str, float], *, default_weight: float = 1.0
    ) -> None:
        if default_weight < 0:
            raise ValueError("default_weight must be non-negative")
        for keyword, weight in weights.items():
            if weight < 0:
                raise ValueError(f"negative weight for keyword {keyword!r}")
        self._weights = dict(weights)
        self._default = default_weight

    def weight(self, keyword: str) -> float:
        """Return the weight of a single keyword."""
        return self._weights.get(keyword, self._default)

    def _mass(self, keywords: Keywords) -> float:
        return sum(self.weight(keyword) for keyword in keywords)

    def similarity(self, object_keywords: Keywords, query_keywords: Keywords) -> float:
        shared = self._mass(object_keywords & query_keywords)
        total = self._mass(object_keywords | query_keywords)
        if total <= 0.0:
            return 0.0
        return shared / total

    def upper_bound(
        self,
        intersection: Keywords,
        union: Keywords,
        query_keywords: Keywords,
        *,
        min_doc_len: int | None = None,
        max_doc_len: int | None = None,
    ) -> float:
        numerator = self._mass(union & query_keywords)
        if numerator <= 0.0:
            return 0.0
        denominator = max(self._mass(intersection | query_keywords), numerator)
        if denominator <= 0.0:
            return 0.0
        return min(1.0, numerator / denominator)

    def lower_bound(
        self,
        intersection: Keywords,
        union: Keywords,
        query_keywords: Keywords,
        *,
        min_doc_len: int | None = None,
        max_doc_len: int | None = None,
    ) -> float:
        numerator = self._mass(intersection & query_keywords)
        if numerator <= 0.0:
            return 0.0
        denominator = self._mass(union | query_keywords)
        if denominator <= 0.0:
            return 0.0
        return numerator / denominator


class DiceSimilarity(SetSimilarityModel):
    """Sørensen–Dice coefficient: ``2|A∩B| / (|A| + |B|)``."""

    name = "dice"

    def similarity(self, object_keywords: Keywords, query_keywords: Keywords) -> float:
        shared = len(object_keywords & query_keywords)
        if shared == 0:
            return 0.0
        return 2.0 * shared / (len(object_keywords) + len(query_keywords))

    def upper_bound(
        self,
        intersection: Keywords,
        union: Keywords,
        query_keywords: Keywords,
        *,
        min_doc_len: int | None = None,
        max_doc_len: int | None = None,
    ) -> float:
        shared = len(union & query_keywords)
        if shared == 0:
            return 0.0
        # Smallest possible |o.doc| is max(|intersection|, shared).
        smallest_doc = max(len(intersection), shared)
        return min(1.0, 2.0 * shared / (smallest_doc + len(query_keywords)))

    def lower_bound(
        self,
        intersection: Keywords,
        union: Keywords,
        query_keywords: Keywords,
        *,
        min_doc_len: int | None = None,
        max_doc_len: int | None = None,
    ) -> float:
        shared = len(intersection & query_keywords)
        if shared == 0:
            return 0.0
        return 2.0 * shared / (len(union) + len(query_keywords))


class OverlapSimilarity(SetSimilarityModel):
    """Overlap coefficient: ``|A∩B| / min(|A|, |B|)``."""

    name = "overlap"

    def similarity(self, object_keywords: Keywords, query_keywords: Keywords) -> float:
        shared = len(object_keywords & query_keywords)
        if shared == 0:
            return 0.0
        return shared / min(len(object_keywords), len(query_keywords))

    def upper_bound(
        self,
        intersection: Keywords,
        union: Keywords,
        query_keywords: Keywords,
        *,
        min_doc_len: int | None = None,
        max_doc_len: int | None = None,
    ) -> float:
        shared = len(union & query_keywords)
        if shared == 0:
            return 0.0
        if not query_keywords:
            return 0.0
        # |o.doc| >= max(|intersection|, 1); overlap maximised by the
        # smallest denominator min(|o.doc|, |q.doc|) >= 1.
        return min(1.0, shared / min(max(len(intersection), 1), len(query_keywords)))

    def lower_bound(
        self,
        intersection: Keywords,
        union: Keywords,
        query_keywords: Keywords,
        *,
        min_doc_len: int | None = None,
        max_doc_len: int | None = None,
    ) -> float:
        shared = len(intersection & query_keywords)
        if shared == 0 or not query_keywords:
            return 0.0
        return shared / max(min(len(union), len(query_keywords)), 1)


class CosineTfIdfSimilarity(TextSimilarityModel):
    """Cosine similarity over idf-weighted keyword vectors.

    This is the IR model of the Cong et al. algorithm [4] that YASK's
    top-k engine descends from.  Because the paper's objects are keyword
    *sets*, term frequency is binary and the model reduces to idf-weighted
    set cosine:

    ``TSim(o, q) = Σ_{t ∈ o∩q} idf(t)² / (‖o‖ ‖q‖)``

    with ``idf(t) = ln(1 + N / df(t))`` and ``‖d‖ = sqrt(Σ_{t∈d} idf(t)²)``.

    Corpus statistics (document frequencies and corpus size) are frozen at
    construction; unseen keywords receive the maximum idf, i.e. they are
    treated as appearing in a single virtual document.
    """

    name = "cosine-tfidf"

    def __init__(self, document_frequencies: Mapping[str, int], corpus_size: int) -> None:
        if corpus_size <= 0:
            raise ValueError("corpus_size must be positive")
        for keyword, frequency in document_frequencies.items():
            if frequency <= 0:
                raise ValueError(f"non-positive document frequency for {keyword!r}")
        self._df = dict(document_frequencies)
        self._n = corpus_size

    def idf(self, keyword: str) -> float:
        """Return the inverse document frequency weight of ``keyword``."""
        frequency = self._df.get(keyword, 1)
        return math.log(1.0 + self._n / frequency)

    def _norm(self, keywords: Keywords) -> float:
        return math.sqrt(sum(self.idf(keyword) ** 2 for keyword in keywords))

    def similarity(self, object_keywords: Keywords, query_keywords: Keywords) -> float:
        shared = object_keywords & query_keywords
        if not shared:
            return 0.0
        dot = sum(self.idf(keyword) ** 2 for keyword in shared)
        norm_product = self._norm(object_keywords) * self._norm(query_keywords)
        if norm_product <= 0.0:
            return 0.0
        return min(1.0, dot / norm_product)

    def max_impact(self, keyword: str, min_doc_len: int = 1) -> float:
        """Upper bound of ``idf(t)·idf(t)/‖o‖`` contribution per keyword.

        Used by the IR-tree's per-node inverted lists: the contribution of
        keyword ``t`` to the (un-normalised by query) cosine score of any
        object containing it is at most ``idf(t)`` because
        ``‖o‖ ≥ idf(t)`` whenever ``t ∈ o``.
        """
        del min_doc_len  # binary tf: the bound is independent of length
        return self.idf(keyword)


#: Module-level singleton for the paper's default model.
JACCARD = JaccardSimilarity()
