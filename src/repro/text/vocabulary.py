"""Interned keyword vocabulary: string keywords → integer-bitset docs.

The columnar scoring kernel (:mod:`repro.core.kernel`) replaces
``frozenset`` intersections in the Eqn. (1)/(2) hot loops with integer
bit arithmetic: every corpus keyword is interned to a bit position once
at :class:`~repro.core.objects.SpatialDatabase` build time, each
object's ``o.doc`` becomes one arbitrary-precision Python ``int`` whose
set bits are its keywords, and ``|o.doc ∩ q.doc|`` becomes
``(mask & query_mask).bit_count()`` — the same compact-signature idea
QDR-Tree style indexes apply per node (PAPERS.md), applied datastore
wide.

Query keyword sets may contain words the corpus has never seen.  Those
can never intersect any object's doc, but they *do* count towards
``|q.doc|`` in Jaccard/Dice/Overlap denominators, so
:meth:`Vocabulary.encode_query` reports them separately instead of
silently dropping them.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Iterator

__all__ = ["Vocabulary"]


class Vocabulary:
    """An immutable keyword → bit-position interning table.

    Bit positions are assigned by sorted keyword order at construction,
    so two databases over the same corpus produce identical masks
    regardless of object order — mask equality is then meaningful across
    rebuilds.

    Under live mutation (:mod:`repro.core.mutations`) the table grows
    *append-only*: :meth:`extended` returns a new table whose existing
    bit positions are untouched and whose new keywords occupy the next
    positions (sorted among themselves).  Every already-encoded doc mask
    therefore stays valid — similarity arithmetic consumes bit *counts*,
    never positions — at the price that an extended table's positions
    need no longer be globally sorted.  :meth:`from_ordered` rebuilds a
    table from an explicit position order (index persistence round-trips
    it so saved doc masks decode identically after a load).
    """

    __slots__ = ("_ids", "_keywords")

    def __init__(self, docs: Iterable[AbstractSet[str]]) -> None:
        corpus: set[str] = set()
        for doc in docs:
            corpus.update(doc)
        self._keywords: tuple[str, ...] = tuple(sorted(corpus))
        self._ids: dict[str, int] = {
            keyword: position for position, keyword in enumerate(self._keywords)
        }

    @classmethod
    def from_ordered(cls, keywords: Iterable[str]) -> "Vocabulary":
        """Build a table with an explicit bit-position order.

        Raises ``ValueError`` on duplicates — a keyword cannot own two
        bit positions.
        """
        table = cls(())
        ordered = tuple(keywords)
        ids = {keyword: position for position, keyword in enumerate(ordered)}
        if len(ids) != len(ordered):
            raise ValueError("vocabulary order contains duplicate keywords")
        table._keywords = ordered
        table._ids = ids
        return table

    def extended(self, docs: Iterable[AbstractSet[str]]) -> "Vocabulary":
        """A new table with any unseen keywords appended.

        Existing bit positions are preserved verbatim; new keywords take
        the next positions in sorted order.  Returns ``self`` when the
        docs introduce nothing new (the insert-only fast path allocates
        no table).
        """
        fresh: set[str] = set()
        ids = self._ids
        for doc in docs:
            for keyword in doc:
                if keyword not in ids:
                    fresh.add(keyword)
        if not fresh:
            return self
        return Vocabulary.from_ordered(self._keywords + tuple(sorted(fresh)))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._keywords)

    def __iter__(self) -> Iterator[str]:
        return iter(self._keywords)

    def __contains__(self, keyword: object) -> bool:
        return keyword in self._ids

    @property
    def keywords(self) -> tuple[str, ...]:
        """All interned keywords in bit-position order."""
        return self._keywords

    def id_of(self, keyword: str) -> int:
        """Bit position of ``keyword``; raises ``KeyError`` when unknown."""
        return self._ids[keyword]

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def encode(self, keywords: AbstractSet[str]) -> int:
        """Bitmask of a corpus document (every keyword must be interned)."""
        ids = self._ids
        mask = 0
        for keyword in keywords:
            mask |= 1 << ids[keyword]
        return mask

    def encode_query(self, keywords: AbstractSet[str]) -> tuple[int, int]:
        """``(mask, unknown_count)`` for an arbitrary keyword set.

        ``unknown_count`` is how many keywords fell outside the corpus
        vocabulary; they contribute to ``|q.doc|`` but can never overlap
        an object document.
        """
        ids = self._ids
        mask = 0
        unknown = 0
        for keyword in keywords:
            position = ids.get(keyword)
            if position is None:
                unknown += 1
            else:
                mask |= 1 << position
        return mask, unknown

    def decode(self, mask: int) -> frozenset[str]:
        """Keyword set of a bitmask (inverse of :meth:`encode`)."""
        if mask < 0:
            raise ValueError("doc masks are non-negative")
        keywords = self._keywords
        out = []
        position = 0
        while mask:
            if mask & 1:
                out.append(keywords[position])
            mask >>= 1
            position += 1
        return frozenset(out)
