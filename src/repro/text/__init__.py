"""Text processing substrate: tokenisation and similarity models.

See :mod:`repro.text.similarity` for the ranking models (Jaccard is the
paper's default, Eqn. 2) and :mod:`repro.text.tokenize` for the keyword
extraction pipeline used by the dataset builders.
"""

from repro.text.similarity import (
    JACCARD,
    CosineTfIdfSimilarity,
    DiceSimilarity,
    JaccardSimilarity,
    OverlapSimilarity,
    SetSimilarityModel,
    TextSimilarityModel,
    WeightedJaccardSimilarity,
)
from repro.text.tokenize import (
    DEFAULT_STOPWORDS,
    document_frequencies,
    keyword_set,
    normalize_keyword,
    tokenize,
    vocabulary,
)
from repro.text.vocabulary import Vocabulary

__all__ = [
    "JACCARD",
    "CosineTfIdfSimilarity",
    "DiceSimilarity",
    "JaccardSimilarity",
    "OverlapSimilarity",
    "SetSimilarityModel",
    "TextSimilarityModel",
    "WeightedJaccardSimilarity",
    "DEFAULT_STOPWORDS",
    "document_frequencies",
    "keyword_set",
    "normalize_keyword",
    "tokenize",
    "vocabulary",
    "Vocabulary",
]
