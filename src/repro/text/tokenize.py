"""Keyword extraction for spatial object descriptions.

The demonstration dataset of the paper extracts each hotel's keyword set
"from the facilities and user comments relating to the hotel"
(Section 4).  This module provides the small text-normalisation pipeline
used to turn such free text into the keyword *sets* consumed by the
Jaccard model of Eqn. (2): lowercasing, punctuation stripping, stopword
removal and de-duplication.

The pipeline is deliberately simple — the paper's model operates on
keyword sets, not on term frequencies — but it is factored into small
composable functions so that alternative analyzers can be swapped in.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, Sequence

__all__ = [
    "DEFAULT_STOPWORDS",
    "normalize_keyword",
    "tokenize",
    "keyword_set",
    "vocabulary",
]

#: A compact English stopword list.  Extracted keyword sets describe
#: facilities ("wifi", "pool") and sentiment ("clean", "comfortable");
#: function words carry no ranking signal under the Jaccard model and
#: only inflate the union in the denominator of Eqn. (2).
DEFAULT_STOPWORDS: FrozenSet[str] = frozenset(
    """
    a an and are as at be but by for from has have if in into is it its
    no not of on or such that the their then there these they this to
    was were will with very really quite so too
    """.split()
)

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+(?:'[a-z]+)?")


def normalize_keyword(raw: str) -> str:
    """Normalise a single keyword: lowercase and strip non-alphanumerics.

    Returns the empty string when nothing survives, which callers treat
    as "drop this token".
    """
    lowered = raw.strip().lower()
    match = _TOKEN_PATTERN.search(lowered)
    if match is None:
        return ""
    return match.group(0).replace("'", "")


def tokenize(text: str, *, stopwords: FrozenSet[str] = DEFAULT_STOPWORDS) -> list[str]:
    """Split free text into normalised tokens, preserving order.

    Duplicates are preserved here; use :func:`keyword_set` when the
    Jaccard keyword-set view is wanted.
    """
    tokens: list[str] = []
    for match in _TOKEN_PATTERN.finditer(text.lower()):
        token = match.group(0).replace("'", "")
        if token and token not in stopwords:
            tokens.append(token)
    return tokens


def keyword_set(
    text_or_tokens: str | Iterable[str],
    *,
    stopwords: FrozenSet[str] = DEFAULT_STOPWORDS,
) -> frozenset[str]:
    """Return the normalised keyword set of a document.

    Accepts either raw text or an iterable of tokens; both are run
    through :func:`normalize_keyword` so that callers can mix sources
    (e.g. a facility list plus comment text) without worrying about
    case or punctuation.
    """
    if isinstance(text_or_tokens, str):
        return frozenset(tokenize(text_or_tokens, stopwords=stopwords))
    keywords = set()
    for raw in text_or_tokens:
        token = normalize_keyword(raw)
        if token and token not in stopwords:
            keywords.add(token)
    return frozenset(keywords)


def vocabulary(documents: Iterable[Iterable[str]]) -> frozenset[str]:
    """Return the union vocabulary over a corpus of keyword sets."""
    vocab: set[str] = set()
    for document in documents:
        vocab.update(document)
    return frozenset(vocab)


def document_frequencies(documents: Sequence[Iterable[str]]) -> dict[str, int]:
    """Return keyword → number of documents containing it.

    Needed by the cosine/tf-idf model (:mod:`repro.text.similarity`) and
    by the dataset generators to verify the Zipf shape of synthetic
    vocabularies.
    """
    frequencies: dict[str, int] = {}
    for document in documents:
        for token in set(document):
            frequencies[token] = frequencies.get(token, 0) + 1
    return frequencies
