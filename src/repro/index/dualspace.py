"""Dual-space index for the preference-adjustment module.

Section 3.3 of the paper: "The basic idea is to transform each object
into a segment in a two-dimensional weight plane. ... We use two range
queries to find the segments that intersect with the missing objects'
segments and compute all the intersection points."

Under a fixed query location and keyword set, every object ``o`` is the
dual point ``(a_o, b_o) = (1 − SDist(o, q), TSim(o, q))`` and its score
is the line ``f_o(w) = w·a_o + (1−w)·b_o`` over the spatial weight
``w ∈ (0, 1)`` — the weight-plane segment.  Two score lines cross inside
the open interval exactly when one object is spatially closer but
textually less similar than the other, i.e. when the dual points sit in
*opposite open quadrants* of each other:

``crosses(o, m) ⇔ (a_o − a_m)(b_o − b_m) < 0``

so the objects whose segments intersect a missing object's segment are
retrieved by two axis-aligned range queries around ``(a_m, b_m)`` — the
upper-left and lower-right open quadrants of the unit square.  This
module serves those two range queries with an R-tree over the dual
points (and a linear-scan fallback used by the E8 ablation benchmark).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.geometry import Point, Rect
from repro.core.scoring import DualPoint
from repro.index.rtree import RTree

__all__ = ["DualSpaceIndex"]


class DualSpaceIndex:
    """R-tree over the dual points of all database objects for one query.

    The index is built per (query location, keyword set) pair — the dual
    coordinates change with both — which mirrors the paper's design where
    the why-not engine runs against the cached initial query
    (Section 3.3: "The server caches users' initial spatial keyword
    queries").
    """

    def __init__(
        self, dual_points: Iterable[DualPoint], *, max_entries: int = 32
    ) -> None:
        self._points: tuple[DualPoint, ...] = tuple(dual_points)
        self._tree: RTree[DualPoint] = RTree.bulk_load(
            self._points,
            key=lambda dual: Point(dual.a, dual.b),
            max_entries=max_entries,
        )

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> tuple[DualPoint, ...]:
        return self._points

    # ------------------------------------------------------------------
    # The two range queries of Section 3.3
    # ------------------------------------------------------------------
    def crossing_candidates(self, missing: DualPoint) -> list[DualPoint]:
        """Objects whose score lines cross ``missing``'s inside (0, 1).

        Issues the two quadrant range queries and filters to the strict
        inequalities (points on the axes produce parallel-order lines
        that never change relative rank — see module docstring).
        """
        # Upper-left quadrant: textually more similar, spatially farther.
        upper_left = Rect(0.0, missing.b, missing.a, 1.0)
        # Lower-right quadrant: spatially closer, textually less similar.
        lower_right = Rect(missing.a, 0.0, 1.0, missing.b)
        candidates: list[DualPoint] = []
        seen: set[int] = set()
        for window in (upper_left, lower_right):
            for dual in self._tree.range_search(window):
                if dual.oid in seen:
                    continue
                if (dual.a - missing.a) * (dual.b - missing.b) < 0.0:
                    seen.add(dual.oid)
                    candidates.append(dual)
        return candidates

    @staticmethod
    def crossing_candidates_linear(
        points: Sequence[DualPoint], missing: DualPoint
    ) -> list[DualPoint]:
        """Linear-scan reference used as the E8 ablation baseline."""
        return [
            dual
            for dual in points
            if (dual.a - missing.a) * (dual.b - missing.b) < 0.0
        ]
