"""A classic inverted index over object keyword sets.

Not an index the paper names explicitly, but a standard substrate every
spatial-keyword system carries: keyword → posting list of object ids.
The reproduction uses it for

* candidate statistics in the keyword-adaption module (which keywords
  are worth adding come from posting-list intersections with ``M``),
* a text-first filtering baseline in the E3/E8 benchmarks,
* dataset sanity checks (document frequencies, vocabulary coverage).
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Mapping

from repro.core.objects import SpatialDatabase, SpatialObject

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Keyword → sorted posting list of object ids."""

    def __init__(self, objects: Iterable[SpatialObject]) -> None:
        postings: dict[str, set[int]] = {}
        size = 0
        for obj in objects:
            size += 1
            for keyword in obj.doc:
                postings.setdefault(keyword, set()).add(obj.oid)
        self._postings: dict[str, frozenset[int]] = {
            keyword: frozenset(ids) for keyword, ids in postings.items()
        }
        self._size = size

    @classmethod
    def build(cls, database: SpatialDatabase) -> "InvertedIndex":
        return cls(database.objects)

    def __len__(self) -> int:
        """Number of indexed objects (not keywords)."""
        return self._size

    @property
    def vocabulary(self) -> frozenset[str]:
        return frozenset(self._postings)

    def postings(self, keyword: str) -> frozenset[int]:
        """Object ids containing ``keyword`` (empty set when unknown)."""
        return self._postings.get(keyword, frozenset())

    def document_frequency(self, keyword: str) -> int:
        return len(self.postings(keyword))

    def document_frequencies(self) -> Mapping[str, int]:
        return {keyword: len(ids) for keyword, ids in self._postings.items()}

    def objects_containing_any(self, keywords: AbstractSet[str]) -> frozenset[int]:
        """Union of the posting lists of ``keywords``."""
        result: set[int] = set()
        for keyword in keywords:
            result |= self.postings(keyword)
        return frozenset(result)

    def objects_containing_all(self, keywords: AbstractSet[str]) -> frozenset[int]:
        """Intersection of the posting lists of ``keywords``."""
        if not keywords:
            return frozenset(range(0))
        ordered = sorted(keywords, key=self.document_frequency)
        result = set(self.postings(ordered[0]))
        for keyword in ordered[1:]:
            if not result:
                break
            result &= self.postings(keyword)
        return frozenset(result)
