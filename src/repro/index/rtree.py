"""An in-memory R-tree built from scratch.

Section 3.1 of the paper: "The algorithms inside the engines employ
R-tree based indexing techniques [4-6]."  This module provides the plain
R-tree those techniques build on:

* Guttman-style dynamic insertion (choose-leaf by least enlargement,
  quadratic node split),
* Sort-Tile-Recursive (STR) bulk loading for fast index construction in
  benchmarks,
* deletion with tree condensation and re-insertion,
* range search / counting, containment queries and best-first k-nearest
  neighbour search.

The two spatio-textual variants used by YASK — the SetR-tree (top-k and
explanations) and the KcR-tree (keyword adaption, Fig. 2) — are
subclasses that attach a per-node *summary* (keyword sets or
keyword-count maps).  The base class calls :meth:`RTree._summarise_leaf`
and :meth:`RTree._summarise_inner` whenever a node's composition changes,
so the variants only implement the summary algebra.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Callable, Generic, Iterable, Iterator, Sequence, TypeVar

from repro.core.geometry import Point, Rect

__all__ = ["RTreeEntry", "RTreeNode", "RTree", "DEFAULT_MAX_ENTRIES"]

T = TypeVar("T")

#: Default fanout.  32 keeps trees shallow for the dataset sizes the
#: benchmarks sweep (up to 2·10^5 objects) while keeping node scans cheap.
DEFAULT_MAX_ENTRIES = 32


@dataclass(slots=True)
class RTreeEntry(Generic[T]):
    """A leaf-level entry: a bounding rectangle and the indexed item."""

    rect: Rect
    item: T


class RTreeNode(Generic[T]):
    """An R-tree node: either a leaf of entries or an inner node of children.

    ``summary`` is the augmentation slot used by the SetR-tree and
    KcR-tree subclasses; the plain R-tree leaves it as None.
    """

    __slots__ = ("is_leaf", "entries", "children", "rect", "summary", "parent")

    def __init__(self, *, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: list[RTreeEntry[T]] = []
        self.children: list["RTreeNode[T]"] = []
        self.rect: Rect | None = None
        self.summary: Any = None
        self.parent: "RTreeNode[T] | None" = None

    def __len__(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)

    def iter_rects(self) -> Iterator[Rect]:
        """Iterate the bounding rectangles of this node's members."""
        if self.is_leaf:
            for entry in self.entries:
                yield entry.rect
        else:
            for child in self.children:
                assert child.rect is not None
                yield child.rect

    def describe(self, indent: int = 0) -> str:
        """Render the subtree for debugging and documentation examples."""
        pad = "  " * indent
        kind = "leaf" if self.is_leaf else "node"
        lines = [f"{pad}{kind} n={len(self)} rect={self.rect.as_tuple() if self.rect else None}"]
        if not self.is_leaf:
            for child in self.children:
                lines.append(child.describe(indent + 1))
        return "\n".join(lines)


class RTree(Generic[T]):
    """A dynamic R-tree over rectangle-keyed items.

    Parameters
    ----------
    max_entries:
        Maximum node fanout ``M``.
    min_entries:
        Minimum fill ``m`` (defaults to ``M // 2``, at least 2 when M
        allows); underfull nodes after deletion are dissolved and their
        members re-inserted.
    """

    def __init__(
        self,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int | None = None,
    ) -> None:
        if max_entries < 2:
            raise ValueError("max_entries must be at least 2")
        self._max_entries = max_entries
        if min_entries is None:
            min_entries = max(1, max_entries // 2)
        if not (1 <= min_entries <= max_entries // 2):
            raise ValueError(
                f"min_entries must be in [1, max_entries/2], got {min_entries}"
            )
        self._min_entries = min_entries
        self._root: RTreeNode[T] = RTreeNode(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> RTreeNode[T]:
        return self._root

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def min_entries(self) -> int:
        return self._min_entries

    def __len__(self) -> int:
        return self._size

    @property
    def bounds(self) -> Rect | None:
        """MBR of the whole tree, or None when empty."""
        return self._root.rect

    def height(self) -> int:
        """Number of levels (1 for a tree that is just a leaf root)."""
        levels = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    def ideal_height(self) -> int:
        """Height an STR bulk load of the current size would produce.

        The smallest ``h`` with ``M^h ≥ n`` — every STR level packs
        nodes to capacity (±1 for the even chunking).
        """
        if self._size <= self._max_entries:
            return 1
        return max(
            1, math.ceil(math.log(self._size) / math.log(self._max_entries))
        )

    def balance_degraded(self, *, slack: int = 1) -> bool:
        """Whether incremental updates have left the tree taller than ideal.

        Guttman insertion keeps all leaves at one depth but fills nodes
        only half full in the worst case, so a long mutation history can
        leave the tree ``log₂``-ish taller (and its MBRs laggier) than a
        fresh STR pack.  The live-mutation tier uses this as its rebuild
        trigger: once the height exceeds the STR ideal by more than
        ``slack`` levels, a bulk reload is cheaper than the pruning
        power it recovers.
        """
        if self._size == 0:
            return False
        return self.height() > self.ideal_height() + slack

    def node_count(self) -> int:
        """Total number of nodes (inner + leaf)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def iter_items(self) -> Iterator[T]:
        """Iterate every indexed item (arbitrary order)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    yield entry.item
            else:
                stack.extend(node.children)

    def iter_levels(self) -> Iterator[list[RTreeNode[T]]]:
        """Yield nodes level by level from the root downwards.

        The keyword-adaption module descends all candidates one level at
        a time (DESIGN.md §3.4); this iterator is its substrate.
        """
        level = [self._root]
        while level:
            yield level
            next_level: list[RTreeNode[T]] = []
            for node in level:
                if not node.is_leaf:
                    next_level.extend(node.children)
            level = next_level

    # ------------------------------------------------------------------
    # Summary hooks (overridden by SetR-tree / KcR-tree)
    # ------------------------------------------------------------------
    def _summarise_leaf(self, entries: Sequence[RTreeEntry[T]]) -> Any:
        """Compute the augmentation payload of a leaf node."""
        return None

    def _summarise_inner(self, children: Sequence["RTreeNode[T]"]) -> Any:
        """Compute the augmentation payload of an inner node."""
        return None

    def _refresh(self, node: RTreeNode[T]) -> None:
        """Recompute a node's MBR and summary from its members."""
        rects = list(node.iter_rects())
        node.rect = Rect.union_all(rects) if rects else None
        if node.is_leaf:
            node.summary = self._summarise_leaf(node.entries)
        else:
            node.summary = self._summarise_inner(node.children)

    def _refresh_mbr(self, node: RTreeNode[T]) -> None:
        """Recompute only the MBR (batch insertion's structural phase)."""
        rects = list(node.iter_rects())
        node.rect = Rect.union_all(rects) if rects else None

    def _refresh_upwards(self, node: RTreeNode[T] | None) -> None:
        while node is not None:
            self._refresh(node)
            node = node.parent

    # ------------------------------------------------------------------
    # Bulk loading (STR)
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        items: Iterable[T],
        *,
        key: Callable[[T], Rect | Point],
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int | None = None,
        **kwargs: Any,
    ) -> "RTree[T]":
        """Build a tree with Sort-Tile-Recursive packing.

        ``key`` maps an item to its location (a :class:`Point`) or
        bounding rectangle.  STR produces near-square leaf tiles, which
        keeps MINDIST bounds tight for best-first search.
        """
        tree = cls(max_entries=max_entries, min_entries=min_entries, **kwargs)
        entries: list[RTreeEntry[T]] = []
        for item in items:
            shape = key(item)
            rect = Rect.from_point(shape) if isinstance(shape, Point) else shape
            entries.append(RTreeEntry(rect=rect, item=item))
        if not entries:
            return tree
        leaves = tree._str_pack_leaves(entries)
        tree._root = tree._build_upper_levels(leaves)
        tree._root.parent = None
        tree._size = len(entries)
        return tree

    def adopt_structure(self, other: "RTree[T]") -> None:
        """Replace this tree's nodes with ``other``'s (rebuild in place).

        The live-mutation tier's rebuild fallback: when incremental
        maintenance has degraded the tree, a fresh bulk load is built
        and adopted *into the existing instance*, so every engine
        holding this tree by reference sees the rebuilt structure.
        """
        if other.max_entries != self._max_entries:
            raise ValueError("adopted tree must share max_entries")
        self._root = other._root
        self._root.parent = None
        self._size = other._size

    @staticmethod
    def _chunk_evenly(items: list, chunk_count: int) -> list[list]:
        """Split ``items`` into ``chunk_count`` runs whose sizes differ by ≤ 1.

        Even sizing is what keeps every STR-packed node at least half
        full: a run of ``n`` members split into ``⌈n/M⌉`` chunks evenly
        gives chunks of at least ``⌊n/⌈n/M⌉⌋ ≥ M/2`` members (for more
        than one chunk), satisfying the R-tree min-fill invariant that a
        naive fixed-stride slicing violates on its final chunk.
        """
        base, extra = divmod(len(items), chunk_count)
        chunks: list[list] = []
        start = 0
        for index in range(chunk_count):
            size = base + (1 if index < extra else 0)
            chunks.append(items[start : start + size])
            start += size
        return chunks

    def _str_pack_leaves(
        self, entries: list[RTreeEntry[T]]
    ) -> list[RTreeNode[T]]:
        capacity = self._max_entries
        leaf_count = math.ceil(len(entries) / capacity)
        slab_count = math.ceil(math.sqrt(leaf_count))
        entries.sort(key=lambda e: (e.rect.center.x, e.rect.center.y))
        leaves: list[RTreeNode[T]] = []
        for slab in self._chunk_evenly(entries, slab_count):
            slab.sort(key=lambda e: (e.rect.center.y, e.rect.center.x))
            chunk_count = max(1, math.ceil(len(slab) / capacity))
            for chunk in self._chunk_evenly(slab, chunk_count):
                if not chunk:
                    continue
                leaf = RTreeNode[T](is_leaf=True)
                leaf.entries = chunk
                self._refresh(leaf)
                leaves.append(leaf)
        return leaves

    def _build_upper_levels(
        self, nodes: list[RTreeNode[T]]
    ) -> RTreeNode[T]:
        capacity = self._max_entries
        while len(nodes) > 1:
            group_count = math.ceil(len(nodes) / capacity)
            slab_count = math.ceil(math.sqrt(group_count))
            nodes.sort(key=lambda n: (n.rect.center.x, n.rect.center.y))
            parents: list[RTreeNode[T]] = []
            for slab in self._chunk_evenly(nodes, slab_count):
                slab.sort(key=lambda n: (n.rect.center.y, n.rect.center.x))
                chunk_count = max(1, math.ceil(len(slab) / capacity))
                for chunk in self._chunk_evenly(slab, chunk_count):
                    if not chunk:
                        continue
                    parent = RTreeNode[T](is_leaf=False)
                    parent.children = chunk
                    for child in parent.children:
                        child.parent = parent
                    self._refresh(parent)
                    parents.append(parent)
            nodes = parents
        return nodes[0]

    # ------------------------------------------------------------------
    # Insertion (Guttman)
    # ------------------------------------------------------------------
    def insert(self, item: T, shape: Rect | Point) -> None:
        """Insert an item keyed by a point or rectangle."""
        rect = Rect.from_point(shape) if isinstance(shape, Point) else shape
        self._insert_entry(RTreeEntry(rect=rect, item=item))
        self._size += 1

    def insert_batch(self, items: Iterable[tuple[T, Rect | Point]]) -> None:
        """Insert many items, deferring summary maintenance to one pass.

        Per-item insertion recomputes every path node's summary
        (keyword sets / count maps) per insert — for the augmented trees
        that dominates ingest cost, and a batch touching one region
        recomputes the same ancestors over and over.  This entry point
        runs the structural phase (choose-leaf, splits) with *MBR-only*
        refreshes — subsequent choose-leaf decisions only need current
        rectangles — while collecting the touched nodes, then recomputes
        MBRs *and* summaries bottom-up once per dirty path.  The
        resulting tree is node-for-node identical to the per-item path.
        """
        dirty: set[RTreeNode[T]] = set()
        count = 0
        for item, shape in items:
            rect = Rect.from_point(shape) if isinstance(shape, Point) else shape
            self._insert_entry(
                RTreeEntry(rect=rect, item=item), dirty=dirty
            )
            count += 1
        self._size += count
        if not dirty:
            return
        # Every touched node and its ancestors, deepest first, so child
        # summaries exist before their parents merge them.
        pending: dict[RTreeNode[T], int] = {}
        for node in dirty:
            walk: RTreeNode[T] | None = node
            while walk is not None and walk not in pending:
                depth = 0
                parent = walk.parent
                while parent is not None:
                    depth += 1
                    parent = parent.parent
                pending[walk] = depth
                walk = walk.parent
        for node in sorted(pending, key=pending.__getitem__, reverse=True):
            self._refresh(node)

    def _insert_entry(
        self,
        entry: RTreeEntry[T],
        dirty: set[RTreeNode[T]] | None = None,
    ) -> None:
        leaf = self._choose_leaf(self._root, entry.rect)
        leaf.entries.append(entry)
        if dirty is not None:
            dirty.add(leaf)
        self._handle_overflow_and_refresh(leaf, entry.rect, dirty)

    def _handle_overflow_and_refresh(
        self,
        node: RTreeNode[T],
        inserted: Rect,
        dirty: set[RTreeNode[T]] | None = None,
    ) -> None:
        """Split overfull nodes upward, refreshing MBRs and summaries.

        With a ``dirty`` set (batch mode) only MBRs are maintained —
        choose-leaf needs current rectangles — and touched nodes are
        recorded for :meth:`insert_batch`'s single deferred summary
        pass.  Pure insertion can only *grow* an ancestor's MBR to
        absorb the new rectangle, so the no-split fast path extends
        rects in O(1) per level instead of rescanning members; split
        nodes take their MBRs straight from the split's group bounds.
        """
        refresh = self._refresh if dirty is None else self._refresh_mbr
        while True:
            overfull = len(node) > self._max_entries
            if overfull:
                sibling = self._split(node)
                if dirty is not None:
                    dirty.add(node)
                    dirty.add(sibling)
                parent = node.parent
                if parent is None:
                    new_root = RTreeNode[T](is_leaf=False)
                    new_root.children = [node, sibling]
                    node.parent = new_root
                    sibling.parent = new_root
                    if dirty is None:
                        refresh(node)
                        refresh(sibling)
                    refresh(new_root)
                    self._root = new_root
                    return
                parent.children.append(sibling)
                sibling.parent = parent
                if dirty is None:
                    refresh(node)
                    refresh(sibling)
                node = parent
            elif dirty is None:
                self._refresh_upwards(node)
                return
            else:
                walk: RTreeNode[T] | None = node
                while walk is not None:
                    rect = walk.rect
                    if rect is None:
                        self._refresh_mbr(walk)
                    elif not rect.contains_rect(inserted):
                        walk.rect = rect.union(inserted)
                    walk = walk.parent
                return

    def _choose_leaf(self, node: RTreeNode[T], rect: Rect) -> RTreeNode[T]:
        """Descend by least enlargement, then least area (Guttman).

        Inlined float arithmetic — this runs for every live insert, and
        method/property dispatch per child dominates an otherwise tiny
        loop.  Tie behaviour matches the tuple-key form: the first child
        attaining the minimum ``(enlargement, area)`` wins.
        """
        rx0 = rect.min_x
        ry0 = rect.min_y
        rx1 = rect.max_x
        ry1 = rect.max_y
        while not node.is_leaf:
            best_child: RTreeNode[T] | None = None
            best_enlargement = math.inf
            best_area = math.inf
            for child in node.children:
                c = child.rect
                assert c is not None
                cx0 = c.min_x
                cy0 = c.min_y
                cx1 = c.max_x
                cy1 = c.max_y
                area = (cx1 - cx0) * (cy1 - cy0)
                ux0 = cx0 if cx0 < rx0 else rx0
                uy0 = cy0 if cy0 < ry0 else ry0
                ux1 = cx1 if cx1 > rx1 else rx1
                uy1 = cy1 if cy1 > ry1 else ry1
                enlargement = (ux1 - ux0) * (uy1 - uy0) - area
                if enlargement < best_enlargement or (
                    enlargement == best_enlargement and area < best_area
                ):
                    best_enlargement = enlargement
                    best_area = area
                    best_child = child
            assert best_child is not None
            node = best_child
        return node

    # ------------------------------------------------------------------
    # Quadratic split
    # ------------------------------------------------------------------
    def _split(self, node: RTreeNode[T]) -> RTreeNode[T]:
        """Split ``node`` in place, returning the new sibling.

        Guttman's quadratic split, computed over flat coordinate tuples:
        an STR-packed tree splits on nearly every insert into a full
        leaf, so the O(M²) seed pick and the per-round enlargement
        comparisons run on plain floats with zero ``Rect`` allocations.
        Selection order and tie behaviour are identical to the textbook
        object form.
        """
        members: list[tuple[Rect, Any]]
        if node.is_leaf:
            members = [(entry.rect, entry) for entry in node.entries]
        else:
            members = [(child.rect, child) for child in node.children]
        bounds = [
            (rect.min_x, rect.min_y, rect.max_x, rect.max_y)
            for rect, _ in members
        ]
        areas = [
            (b[2] - b[0]) * (b[3] - b[1]) for b in bounds
        ]

        seed_a, seed_b = self._pick_seeds_flat(bounds, areas)
        group_a: list[Any] = [members[seed_a][1]]
        group_b: list[Any] = [members[seed_b][1]]
        ax0, ay0, ax1, ay1 = bounds[seed_a]
        bx0, by0, bx1, by1 = bounds[seed_b]
        area_a = areas[seed_a]
        area_b = areas[seed_b]
        remaining = [
            (bounds[index], members[index][1])
            for index in range(len(members))
            if index not in (seed_a, seed_b)
        ]

        while remaining:
            # Force-assign when one group must absorb all leftovers to
            # reach minimum fill.
            if len(group_a) + len(remaining) == self._min_entries:
                for (x0, y0, x1, y1), member in remaining:
                    group_a.append(member)
                    if x0 < ax0:
                        ax0 = x0
                    if y0 < ay0:
                        ay0 = y0
                    if x1 > ax1:
                        ax1 = x1
                    if y1 > ay1:
                        ay1 = y1
                break
            if len(group_b) + len(remaining) == self._min_entries:
                for (x0, y0, x1, y1), member in remaining:
                    group_b.append(member)
                    if x0 < bx0:
                        bx0 = x0
                    if y0 < by0:
                        by0 = y0
                    if x1 > bx1:
                        bx1 = x1
                    if y1 > by1:
                        by1 = y1
                break
            # Pick the member with the strongest group preference.
            best_index = 0
            best_difference = -math.inf
            prefers_a = True
            for index, ((x0, y0, x1, y1), _) in enumerate(remaining):
                ux0 = ax0 if ax0 < x0 else x0
                uy0 = ay0 if ay0 < y0 else y0
                ux1 = ax1 if ax1 > x1 else x1
                uy1 = ay1 if ay1 > y1 else y1
                growth_a = (ux1 - ux0) * (uy1 - uy0) - area_a
                ux0 = bx0 if bx0 < x0 else x0
                uy0 = by0 if by0 < y0 else y0
                ux1 = bx1 if bx1 > x1 else x1
                uy1 = by1 if by1 > y1 else y1
                growth_b = (ux1 - ux0) * (uy1 - uy0) - area_b
                difference = abs(growth_a - growth_b)
                if difference > best_difference:
                    best_difference = difference
                    best_index = index
                    prefers_a = growth_a < growth_b
            (x0, y0, x1, y1), member = remaining.pop(best_index)
            if prefers_a:
                group_a.append(member)
                if x0 < ax0:
                    ax0 = x0
                if y0 < ay0:
                    ay0 = y0
                if x1 > ax1:
                    ax1 = x1
                if y1 > ay1:
                    ay1 = y1
                area_a = (ax1 - ax0) * (ay1 - ay0)
            else:
                group_b.append(member)
                if x0 < bx0:
                    bx0 = x0
                if y0 < by0:
                    by0 = y0
                if x1 > bx1:
                    bx1 = x1
                if y1 > by1:
                    by1 = y1
                area_b = (bx1 - bx0) * (by1 - by0)

        sibling = RTreeNode[T](is_leaf=node.is_leaf)
        if node.is_leaf:
            node.entries = group_a
            sibling.entries = group_b
        else:
            node.children = group_a
            sibling.children = group_b
            for child in node.children:
                child.parent = node
            for child in sibling.children:
                child.parent = sibling
        # MBRs come straight from the group bounds — batch mode relies
        # on them (no member rescan); summaries are the caller's duty.
        node.rect = Rect(ax0, ay0, ax1, ay1)
        sibling.rect = Rect(bx0, by0, bx1, by1)
        return sibling

    @staticmethod
    def _pick_seeds_flat(
        bounds: Sequence[tuple[float, float, float, float]],
        areas: Sequence[float],
    ) -> tuple[int, int]:
        """Quadratic seed pick: the pair wasting the most area together."""
        worst_pair = (0, 1)
        worst_waste = -math.inf
        count = len(bounds)
        for i in range(count):
            ix0, iy0, ix1, iy1 = bounds[i]
            area_i = areas[i]
            for j in range(i + 1, count):
                jx0, jy0, jx1, jy1 = bounds[j]
                ux0 = ix0 if ix0 < jx0 else jx0
                uy0 = iy0 if iy0 < jy0 else jy0
                ux1 = ix1 if ix1 > jx1 else jx1
                uy1 = iy1 if iy1 > jy1 else jy1
                waste = (ux1 - ux0) * (uy1 - uy0) - area_i - areas[j]
                if waste > worst_waste:
                    worst_waste = waste
                    worst_pair = (i, j)
        return worst_pair

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, item: T, shape: Rect | Point) -> bool:
        """Remove one entry matching ``item`` (by equality) at ``shape``.

        Returns True when an entry was removed.  Underfull nodes along
        the path are dissolved and their members re-inserted (Guttman's
        CondenseTree).
        """
        rect = Rect.from_point(shape) if isinstance(shape, Point) else shape
        leaf = self._find_leaf(self._root, rect, item)
        if leaf is None:
            return False
        for index, entry in enumerate(leaf.entries):
            if entry.item == item and entry.rect == rect:
                del leaf.entries[index]
                break
        self._size -= 1
        self._condense(leaf)
        return True

    def _find_leaf(
        self, node: RTreeNode[T], rect: Rect, item: T
    ) -> RTreeNode[T] | None:
        if node.rect is None or not node.rect.contains_rect(rect):
            return None
        if node.is_leaf:
            for entry in node.entries:
                if entry.item == item and entry.rect == rect:
                    return node
            return None
        for child in node.children:
            found = self._find_leaf(child, rect, item)
            if found is not None:
                return found
        return None

    def _condense(self, node: RTreeNode[T]) -> None:
        orphans: list[RTreeEntry[T]] = []
        while node.parent is not None:
            parent = node.parent
            if len(node) < self._min_entries:
                parent.children.remove(node)
                orphans.extend(self._collect_entries(node))
            else:
                self._refresh(node)
            node = parent
        self._refresh(node)
        # Shrink the root when it has a single inner child.
        while not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._root.parent = None
        if not self._root.is_leaf and not self._root.children:
            self._root = RTreeNode[T](is_leaf=True)
        for entry in orphans:
            self._insert_entry(entry)

    @staticmethod
    def _collect_entries(node: RTreeNode[T]) -> list[RTreeEntry[T]]:
        collected: list[RTreeEntry[T]] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                collected.extend(current.entries)
            else:
                stack.extend(current.children)
        return collected

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_search(self, window: Rect) -> list[T]:
        """Return items whose rectangle intersects ``window``."""
        results: list[T] = []
        if self._root.rect is None:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            assert node.rect is not None
            if not node.rect.intersects(window):
                continue
            if node.is_leaf:
                results.extend(
                    entry.item
                    for entry in node.entries
                    if entry.rect.intersects(window)
                )
            else:
                stack.extend(node.children)
        return results

    def count_in(self, window: Rect) -> int:
        """Count items intersecting ``window`` without materialising them."""
        if self._root.rect is None:
            return 0
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            assert node.rect is not None
            if not node.rect.intersects(window):
                continue
            if window.contains_rect(node.rect):
                count += self._subtree_size(node)
                continue
            if node.is_leaf:
                count += sum(
                    1 for entry in node.entries if entry.rect.intersects(window)
                )
            else:
                stack.extend(node.children)
        return count

    @staticmethod
    def _subtree_size(node: RTreeNode[T]) -> int:
        total = 0
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                total += len(current.entries)
            else:
                stack.extend(current.children)
        return total

    def nearest_neighbors(
        self, point: Point, k: int, *, tie_key: Callable[[T], Any] | None = None
    ) -> list[T]:
        """Best-first k-nearest-neighbour search from ``point``.

        ``tie_key`` fixes the order among equidistant items (engines pass
        the object id for determinism).
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        if self._root.rect is None:
            return []
        counter = 0
        # Heap entries: (distance, kind, tie, payload).  kind 0 orders
        # nodes before items at equal distance so an item is only emitted
        # once no node that could contain a closer item remains; ``tie``
        # is the caller's key for items (determinism) and an insertion
        # counter for nodes (heap stability).
        heap: list[tuple[float, int, Any, object]] = [
            (self._root.rect.min_distance_to_point(point), 0, counter, self._root)
        ]
        results: list[T] = []
        while heap and len(results) < k:
            _, kind, _, payload = heappop(heap)
            if kind == 1:
                results.append(payload)  # type: ignore[arg-type]
                continue
            node: RTreeNode[T] = payload  # type: ignore[assignment]
            if node.is_leaf:
                for entry in node.entries:
                    counter += 1
                    tie = tie_key(entry.item) if tie_key is not None else counter
                    heappush(
                        heap,
                        (entry.rect.min_distance_to_point(point), 1, tie, entry.item),
                    )
            else:
                for child in node.children:
                    assert child.rect is not None
                    counter += 1
                    heappush(
                        heap,
                        (child.rect.min_distance_to_point(point), 0, counter, child),
                    )
        return results

    # ------------------------------------------------------------------
    # Validation (used by the test suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert structural invariants; raises AssertionError on violation."""
        if self._size == 0:
            return
        expected_leaf_depth: int | None = None

        def walk(node: RTreeNode[T], depth: int, is_root: bool) -> int:
            nonlocal expected_leaf_depth
            assert node.rect is not None, "non-empty node missing MBR"
            if not is_root:
                assert len(node) >= self._min_entries, "underfull node"
            assert len(node) <= self._max_entries, "overfull node"
            if node.is_leaf:
                if expected_leaf_depth is None:
                    expected_leaf_depth = depth
                assert depth == expected_leaf_depth, "leaves at different depths"
                for entry in node.entries:
                    assert node.rect.contains_rect(entry.rect), "entry outside MBR"
                return len(node.entries)
            total = 0
            for child in node.children:
                assert child.parent is node, "broken parent pointer"
                assert child.rect is not None
                assert node.rect.contains_rect(child.rect), "child outside MBR"
                total += walk(child, depth + 1, False)
            return total

        total = walk(self._root, 0, True)
        assert total == self._size, f"size mismatch: {total} != {self._size}"
