"""An in-memory R-tree built from scratch.

Section 3.1 of the paper: "The algorithms inside the engines employ
R-tree based indexing techniques [4-6]."  This module provides the plain
R-tree those techniques build on:

* Guttman-style dynamic insertion (choose-leaf by least enlargement,
  quadratic node split),
* Sort-Tile-Recursive (STR) bulk loading for fast index construction in
  benchmarks,
* deletion with tree condensation and re-insertion,
* range search / counting, containment queries and best-first k-nearest
  neighbour search.

The two spatio-textual variants used by YASK — the SetR-tree (top-k and
explanations) and the KcR-tree (keyword adaption, Fig. 2) — are
subclasses that attach a per-node *summary* (keyword sets or
keyword-count maps).  The base class calls :meth:`RTree._summarise_leaf`
and :meth:`RTree._summarise_inner` whenever a node's composition changes,
so the variants only implement the summary algebra.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Callable, Generic, Iterable, Iterator, Sequence, TypeVar

from repro.core.geometry import Point, Rect

__all__ = ["RTreeEntry", "RTreeNode", "RTree", "DEFAULT_MAX_ENTRIES"]

T = TypeVar("T")

#: Default fanout.  32 keeps trees shallow for the dataset sizes the
#: benchmarks sweep (up to 2·10^5 objects) while keeping node scans cheap.
DEFAULT_MAX_ENTRIES = 32


@dataclass(slots=True)
class RTreeEntry(Generic[T]):
    """A leaf-level entry: a bounding rectangle and the indexed item."""

    rect: Rect
    item: T


class RTreeNode(Generic[T]):
    """An R-tree node: either a leaf of entries or an inner node of children.

    ``summary`` is the augmentation slot used by the SetR-tree and
    KcR-tree subclasses; the plain R-tree leaves it as None.
    """

    __slots__ = ("is_leaf", "entries", "children", "rect", "summary", "parent")

    def __init__(self, *, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: list[RTreeEntry[T]] = []
        self.children: list["RTreeNode[T]"] = []
        self.rect: Rect | None = None
        self.summary: Any = None
        self.parent: "RTreeNode[T] | None" = None

    def __len__(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)

    def iter_rects(self) -> Iterator[Rect]:
        """Iterate the bounding rectangles of this node's members."""
        if self.is_leaf:
            for entry in self.entries:
                yield entry.rect
        else:
            for child in self.children:
                assert child.rect is not None
                yield child.rect

    def describe(self, indent: int = 0) -> str:
        """Render the subtree for debugging and documentation examples."""
        pad = "  " * indent
        kind = "leaf" if self.is_leaf else "node"
        lines = [f"{pad}{kind} n={len(self)} rect={self.rect.as_tuple() if self.rect else None}"]
        if not self.is_leaf:
            for child in self.children:
                lines.append(child.describe(indent + 1))
        return "\n".join(lines)


class RTree(Generic[T]):
    """A dynamic R-tree over rectangle-keyed items.

    Parameters
    ----------
    max_entries:
        Maximum node fanout ``M``.
    min_entries:
        Minimum fill ``m`` (defaults to ``M // 2``, at least 2 when M
        allows); underfull nodes after deletion are dissolved and their
        members re-inserted.
    """

    def __init__(
        self,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int | None = None,
    ) -> None:
        if max_entries < 2:
            raise ValueError("max_entries must be at least 2")
        self._max_entries = max_entries
        if min_entries is None:
            min_entries = max(1, max_entries // 2)
        if not (1 <= min_entries <= max_entries // 2):
            raise ValueError(
                f"min_entries must be in [1, max_entries/2], got {min_entries}"
            )
        self._min_entries = min_entries
        self._root: RTreeNode[T] = RTreeNode(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def root(self) -> RTreeNode[T]:
        return self._root

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def min_entries(self) -> int:
        return self._min_entries

    def __len__(self) -> int:
        return self._size

    @property
    def bounds(self) -> Rect | None:
        """MBR of the whole tree, or None when empty."""
        return self._root.rect

    def height(self) -> int:
        """Number of levels (1 for a tree that is just a leaf root)."""
        levels = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    def node_count(self) -> int:
        """Total number of nodes (inner + leaf)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def iter_items(self) -> Iterator[T]:
        """Iterate every indexed item (arbitrary order)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    yield entry.item
            else:
                stack.extend(node.children)

    def iter_levels(self) -> Iterator[list[RTreeNode[T]]]:
        """Yield nodes level by level from the root downwards.

        The keyword-adaption module descends all candidates one level at
        a time (DESIGN.md §3.4); this iterator is its substrate.
        """
        level = [self._root]
        while level:
            yield level
            next_level: list[RTreeNode[T]] = []
            for node in level:
                if not node.is_leaf:
                    next_level.extend(node.children)
            level = next_level

    # ------------------------------------------------------------------
    # Summary hooks (overridden by SetR-tree / KcR-tree)
    # ------------------------------------------------------------------
    def _summarise_leaf(self, entries: Sequence[RTreeEntry[T]]) -> Any:
        """Compute the augmentation payload of a leaf node."""
        return None

    def _summarise_inner(self, children: Sequence["RTreeNode[T]"]) -> Any:
        """Compute the augmentation payload of an inner node."""
        return None

    def _refresh(self, node: RTreeNode[T]) -> None:
        """Recompute a node's MBR and summary from its members."""
        rects = list(node.iter_rects())
        node.rect = Rect.union_all(rects) if rects else None
        if node.is_leaf:
            node.summary = self._summarise_leaf(node.entries)
        else:
            node.summary = self._summarise_inner(node.children)

    def _refresh_upwards(self, node: RTreeNode[T] | None) -> None:
        while node is not None:
            self._refresh(node)
            node = node.parent

    # ------------------------------------------------------------------
    # Bulk loading (STR)
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        items: Iterable[T],
        *,
        key: Callable[[T], Rect | Point],
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int | None = None,
        **kwargs: Any,
    ) -> "RTree[T]":
        """Build a tree with Sort-Tile-Recursive packing.

        ``key`` maps an item to its location (a :class:`Point`) or
        bounding rectangle.  STR produces near-square leaf tiles, which
        keeps MINDIST bounds tight for best-first search.
        """
        tree = cls(max_entries=max_entries, min_entries=min_entries, **kwargs)
        entries: list[RTreeEntry[T]] = []
        for item in items:
            shape = key(item)
            rect = Rect.from_point(shape) if isinstance(shape, Point) else shape
            entries.append(RTreeEntry(rect=rect, item=item))
        if not entries:
            return tree
        leaves = tree._str_pack_leaves(entries)
        tree._root = tree._build_upper_levels(leaves)
        tree._root.parent = None
        tree._size = len(entries)
        return tree

    @staticmethod
    def _chunk_evenly(items: list, chunk_count: int) -> list[list]:
        """Split ``items`` into ``chunk_count`` runs whose sizes differ by ≤ 1.

        Even sizing is what keeps every STR-packed node at least half
        full: a run of ``n`` members split into ``⌈n/M⌉`` chunks evenly
        gives chunks of at least ``⌊n/⌈n/M⌉⌋ ≥ M/2`` members (for more
        than one chunk), satisfying the R-tree min-fill invariant that a
        naive fixed-stride slicing violates on its final chunk.
        """
        base, extra = divmod(len(items), chunk_count)
        chunks: list[list] = []
        start = 0
        for index in range(chunk_count):
            size = base + (1 if index < extra else 0)
            chunks.append(items[start : start + size])
            start += size
        return chunks

    def _str_pack_leaves(
        self, entries: list[RTreeEntry[T]]
    ) -> list[RTreeNode[T]]:
        capacity = self._max_entries
        leaf_count = math.ceil(len(entries) / capacity)
        slab_count = math.ceil(math.sqrt(leaf_count))
        entries.sort(key=lambda e: (e.rect.center.x, e.rect.center.y))
        leaves: list[RTreeNode[T]] = []
        for slab in self._chunk_evenly(entries, slab_count):
            slab.sort(key=lambda e: (e.rect.center.y, e.rect.center.x))
            chunk_count = max(1, math.ceil(len(slab) / capacity))
            for chunk in self._chunk_evenly(slab, chunk_count):
                if not chunk:
                    continue
                leaf = RTreeNode[T](is_leaf=True)
                leaf.entries = chunk
                self._refresh(leaf)
                leaves.append(leaf)
        return leaves

    def _build_upper_levels(
        self, nodes: list[RTreeNode[T]]
    ) -> RTreeNode[T]:
        capacity = self._max_entries
        while len(nodes) > 1:
            group_count = math.ceil(len(nodes) / capacity)
            slab_count = math.ceil(math.sqrt(group_count))
            nodes.sort(key=lambda n: (n.rect.center.x, n.rect.center.y))
            parents: list[RTreeNode[T]] = []
            for slab in self._chunk_evenly(nodes, slab_count):
                slab.sort(key=lambda n: (n.rect.center.y, n.rect.center.x))
                chunk_count = max(1, math.ceil(len(slab) / capacity))
                for chunk in self._chunk_evenly(slab, chunk_count):
                    if not chunk:
                        continue
                    parent = RTreeNode[T](is_leaf=False)
                    parent.children = chunk
                    for child in parent.children:
                        child.parent = parent
                    self._refresh(parent)
                    parents.append(parent)
            nodes = parents
        return nodes[0]

    # ------------------------------------------------------------------
    # Insertion (Guttman)
    # ------------------------------------------------------------------
    def insert(self, item: T, shape: Rect | Point) -> None:
        """Insert an item keyed by a point or rectangle."""
        rect = Rect.from_point(shape) if isinstance(shape, Point) else shape
        self._insert_entry(RTreeEntry(rect=rect, item=item))
        self._size += 1

    def _insert_entry(self, entry: RTreeEntry[T]) -> None:
        leaf = self._choose_leaf(self._root, entry.rect)
        leaf.entries.append(entry)
        self._handle_overflow_and_refresh(leaf)

    def _handle_overflow_and_refresh(self, node: RTreeNode[T]) -> None:
        """Split overfull nodes upward, refreshing MBRs and summaries."""
        while True:
            overfull = len(node) > self._max_entries
            if overfull:
                sibling = self._split(node)
                parent = node.parent
                if parent is None:
                    new_root = RTreeNode[T](is_leaf=False)
                    new_root.children = [node, sibling]
                    node.parent = new_root
                    sibling.parent = new_root
                    self._refresh(node)
                    self._refresh(sibling)
                    self._refresh(new_root)
                    self._root = new_root
                    return
                parent.children.append(sibling)
                sibling.parent = parent
                self._refresh(node)
                self._refresh(sibling)
                node = parent
            else:
                self._refresh_upwards(node)
                return

    def _choose_leaf(self, node: RTreeNode[T], rect: Rect) -> RTreeNode[T]:
        while not node.is_leaf:
            best_child: RTreeNode[T] | None = None
            best_key: tuple[float, float] | None = None
            for child in node.children:
                assert child.rect is not None
                key = (child.rect.enlargement(rect), child.rect.area)
                if best_key is None or key < best_key:
                    best_key = key
                    best_child = child
            assert best_child is not None
            node = best_child
        return node

    # ------------------------------------------------------------------
    # Quadratic split
    # ------------------------------------------------------------------
    def _split(self, node: RTreeNode[T]) -> RTreeNode[T]:
        """Split ``node`` in place, returning the new sibling."""
        members: list[tuple[Rect, Any]]
        if node.is_leaf:
            members = [(entry.rect, entry) for entry in node.entries]
        else:
            members = [(child.rect, child) for child in node.children]

        seed_a, seed_b = self._pick_seeds([rect for rect, _ in members])
        group_a: list[tuple[Rect, Any]] = [members[seed_a]]
        group_b: list[tuple[Rect, Any]] = [members[seed_b]]
        rect_a = members[seed_a][0]
        rect_b = members[seed_b][0]
        remaining = [
            member
            for index, member in enumerate(members)
            if index not in (seed_a, seed_b)
        ]

        while remaining:
            # Force-assign when one group must absorb all leftovers to
            # reach minimum fill.
            if len(group_a) + len(remaining) == self._min_entries:
                group_a.extend(remaining)
                remaining = []
                break
            if len(group_b) + len(remaining) == self._min_entries:
                group_b.extend(remaining)
                remaining = []
                break
            index, prefers_a = self._pick_next(remaining, rect_a, rect_b)
            rect, member = remaining.pop(index)
            if prefers_a:
                group_a.append((rect, member))
                rect_a = rect_a.union(rect)
            else:
                group_b.append((rect, member))
                rect_b = rect_b.union(rect)

        sibling = RTreeNode[T](is_leaf=node.is_leaf)
        if node.is_leaf:
            node.entries = [member for _, member in group_a]
            sibling.entries = [member for _, member in group_b]
        else:
            node.children = [member for _, member in group_a]
            sibling.children = [member for _, member in group_b]
            for child in node.children:
                child.parent = node
            for child in sibling.children:
                child.parent = sibling
        return sibling

    @staticmethod
    def _pick_seeds(rects: Sequence[Rect]) -> tuple[int, int]:
        """Quadratic seed pick: the pair wasting the most area together."""
        worst_pair = (0, 1)
        worst_waste = -math.inf
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                waste = (
                    rects[i].union(rects[j]).area - rects[i].area - rects[j].area
                )
                if waste > worst_waste:
                    worst_waste = waste
                    worst_pair = (i, j)
        return worst_pair

    @staticmethod
    def _pick_next(
        remaining: Sequence[tuple[Rect, Any]], rect_a: Rect, rect_b: Rect
    ) -> tuple[int, bool]:
        """Pick the member with the strongest group preference."""
        best_index = 0
        best_difference = -math.inf
        prefers_a = True
        for index, (rect, _) in enumerate(remaining):
            growth_a = rect_a.enlargement(rect)
            growth_b = rect_b.enlargement(rect)
            difference = abs(growth_a - growth_b)
            if difference > best_difference:
                best_difference = difference
                best_index = index
                prefers_a = growth_a < growth_b
        return best_index, prefers_a

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, item: T, shape: Rect | Point) -> bool:
        """Remove one entry matching ``item`` (by equality) at ``shape``.

        Returns True when an entry was removed.  Underfull nodes along
        the path are dissolved and their members re-inserted (Guttman's
        CondenseTree).
        """
        rect = Rect.from_point(shape) if isinstance(shape, Point) else shape
        leaf = self._find_leaf(self._root, rect, item)
        if leaf is None:
            return False
        for index, entry in enumerate(leaf.entries):
            if entry.item == item and entry.rect == rect:
                del leaf.entries[index]
                break
        self._size -= 1
        self._condense(leaf)
        return True

    def _find_leaf(
        self, node: RTreeNode[T], rect: Rect, item: T
    ) -> RTreeNode[T] | None:
        if node.rect is None or not node.rect.contains_rect(rect):
            return None
        if node.is_leaf:
            for entry in node.entries:
                if entry.item == item and entry.rect == rect:
                    return node
            return None
        for child in node.children:
            found = self._find_leaf(child, rect, item)
            if found is not None:
                return found
        return None

    def _condense(self, node: RTreeNode[T]) -> None:
        orphans: list[RTreeEntry[T]] = []
        while node.parent is not None:
            parent = node.parent
            if len(node) < self._min_entries:
                parent.children.remove(node)
                orphans.extend(self._collect_entries(node))
            else:
                self._refresh(node)
            node = parent
        self._refresh(node)
        # Shrink the root when it has a single inner child.
        while not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._root.parent = None
        if not self._root.is_leaf and not self._root.children:
            self._root = RTreeNode[T](is_leaf=True)
        for entry in orphans:
            self._insert_entry(entry)

    @staticmethod
    def _collect_entries(node: RTreeNode[T]) -> list[RTreeEntry[T]]:
        collected: list[RTreeEntry[T]] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                collected.extend(current.entries)
            else:
                stack.extend(current.children)
        return collected

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_search(self, window: Rect) -> list[T]:
        """Return items whose rectangle intersects ``window``."""
        results: list[T] = []
        if self._root.rect is None:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            assert node.rect is not None
            if not node.rect.intersects(window):
                continue
            if node.is_leaf:
                results.extend(
                    entry.item
                    for entry in node.entries
                    if entry.rect.intersects(window)
                )
            else:
                stack.extend(node.children)
        return results

    def count_in(self, window: Rect) -> int:
        """Count items intersecting ``window`` without materialising them."""
        if self._root.rect is None:
            return 0
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            assert node.rect is not None
            if not node.rect.intersects(window):
                continue
            if window.contains_rect(node.rect):
                count += self._subtree_size(node)
                continue
            if node.is_leaf:
                count += sum(
                    1 for entry in node.entries if entry.rect.intersects(window)
                )
            else:
                stack.extend(node.children)
        return count

    @staticmethod
    def _subtree_size(node: RTreeNode[T]) -> int:
        total = 0
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                total += len(current.entries)
            else:
                stack.extend(current.children)
        return total

    def nearest_neighbors(
        self, point: Point, k: int, *, tie_key: Callable[[T], Any] | None = None
    ) -> list[T]:
        """Best-first k-nearest-neighbour search from ``point``.

        ``tie_key`` fixes the order among equidistant items (engines pass
        the object id for determinism).
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        if self._root.rect is None:
            return []
        counter = 0
        # Heap entries: (distance, kind, tie, payload).  kind 0 orders
        # nodes before items at equal distance so an item is only emitted
        # once no node that could contain a closer item remains; ``tie``
        # is the caller's key for items (determinism) and an insertion
        # counter for nodes (heap stability).
        heap: list[tuple[float, int, Any, object]] = [
            (self._root.rect.min_distance_to_point(point), 0, counter, self._root)
        ]
        results: list[T] = []
        while heap and len(results) < k:
            _, kind, _, payload = heappop(heap)
            if kind == 1:
                results.append(payload)  # type: ignore[arg-type]
                continue
            node: RTreeNode[T] = payload  # type: ignore[assignment]
            if node.is_leaf:
                for entry in node.entries:
                    counter += 1
                    tie = tie_key(entry.item) if tie_key is not None else counter
                    heappush(
                        heap,
                        (entry.rect.min_distance_to_point(point), 1, tie, entry.item),
                    )
            else:
                for child in node.children:
                    assert child.rect is not None
                    counter += 1
                    heappush(
                        heap,
                        (child.rect.min_distance_to_point(point), 0, counter, child),
                    )
        return results

    # ------------------------------------------------------------------
    # Validation (used by the test suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert structural invariants; raises AssertionError on violation."""
        if self._size == 0:
            return
        expected_leaf_depth: int | None = None

        def walk(node: RTreeNode[T], depth: int, is_root: bool) -> int:
            nonlocal expected_leaf_depth
            assert node.rect is not None, "non-empty node missing MBR"
            if not is_root:
                assert len(node) >= self._min_entries, "underfull node"
            assert len(node) <= self._max_entries, "overfull node"
            if node.is_leaf:
                if expected_leaf_depth is None:
                    expected_leaf_depth = depth
                assert depth == expected_leaf_depth, "leaves at different depths"
                for entry in node.entries:
                    assert node.rect.contains_rect(entry.rect), "entry outside MBR"
                return len(node.entries)
            total = 0
            for child in node.children:
                assert child.parent is node, "broken parent pointer"
                assert child.rect is not None
                assert node.rect.contains_rect(child.rect), "child outside MBR"
                total += walk(child, depth + 1, False)
            return total

        total = walk(self._root, 0, True)
        assert total == self._size, f"size mismatch: {total} != {self._size}"
