"""The SetR-tree: an R-tree whose nodes carry keyword set summaries.

Section 3.3 of the paper: "Since the IR-tree indexing technique used in
that algorithm does not support Jaccard similarity, we employ instead an
indexing technique called the SetR-tree [6] ... This technique can
estimate the bound on the ranking score for all objects that are indexed
by a particular tree node.  Basically, each SetR-tree node has pointers
to the intersection set and the union set of the keyword sets of all
objects indexed by the node."

Given a node whose objects' keyword sets all lie between the node's
intersection set ``I`` and union set ``U`` (``I ⊆ o.doc ⊆ U``), the text
model's interval bounds (:class:`repro.text.SetSimilarityModel`) bracket
every object's ``TSim``; combined with MINDIST/MAXDIST on the node MBR
this brackets every object's Eqn. (1) score.  These bounds drive:

* best-first top-k search (:mod:`repro.core.topk`),
* the explanation generator's counting queries ("how many objects are
  closer / textually more similar than the missing object?"),
* the why-not modules' rank reasoning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Sequence

from repro.core.geometry import Point, Rect
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import SpatialKeywordQuery
from repro.index.rtree import DEFAULT_MAX_ENTRIES, RTree, RTreeEntry, RTreeNode
from repro.text.similarity import JACCARD, SetSimilarityModel

__all__ = ["SetSummary", "SetRTree"]


@dataclass(frozen=True, slots=True)
class SetSummary:
    """Per-node keyword summary of the SetR-tree.

    ``intersection`` and ``union`` are the paper's two per-node sets;
    ``count`` (number of objects below the node) and the doc-length range
    are cheap companions used by counting queries and by the why-not rank
    bounds.
    """

    intersection: frozenset[str]
    union: frozenset[str]
    count: int
    min_doc_len: int
    max_doc_len: int


def _summary_of_docs(docs: Sequence[frozenset[str]]) -> SetSummary:
    intersection = frozenset(docs[0])
    union: frozenset[str] = frozenset()
    for doc in docs:
        intersection &= doc
        union |= doc
    lengths = [len(doc) for doc in docs]
    return SetSummary(
        intersection=intersection,
        union=union,
        count=len(docs),
        min_doc_len=min(lengths),
        max_doc_len=max(lengths),
    )


def _merge_summaries(summaries: Sequence[SetSummary]) -> SetSummary:
    intersection = frozenset(summaries[0].intersection)
    union: frozenset[str] = frozenset()
    for summary in summaries:
        intersection &= summary.intersection
        union |= summary.union
    return SetSummary(
        intersection=intersection,
        union=union,
        count=sum(summary.count for summary in summaries),
        min_doc_len=min(summary.min_doc_len for summary in summaries),
        max_doc_len=max(summary.max_doc_len for summary in summaries),
    )


class SetRTree(RTree[SpatialObject]):
    """R-tree over spatial objects with intersection/union set summaries.

    Parameters
    ----------
    database:
        The database the indexed objects come from; provides the distance
        normaliser so node score bounds agree with Eqn. (1)'s normalised
        ``SDist``.
    text_model:
        A set-based similarity model (Jaccard by default, Eqn. 2).
    """

    def __init__(
        self,
        *,
        database: SpatialDatabase,
        text_model: SetSimilarityModel = JACCARD,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int | None = None,
    ) -> None:
        super().__init__(max_entries=max_entries, min_entries=min_entries)
        self._database = database
        self._text_model = text_model

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        database: SpatialDatabase,
        *,
        text_model: SetSimilarityModel = JACCARD,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int | None = None,
    ) -> "SetRTree":
        """Bulk-load a SetR-tree over every object of ``database``."""
        return cls.bulk_load(
            database.objects,
            key=lambda obj: obj.loc,
            max_entries=max_entries,
            min_entries=min_entries,
            database=database,
            text_model=text_model,
        )

    @property
    def database(self) -> SpatialDatabase:
        return self._database

    @property
    def text_model(self) -> SetSimilarityModel:
        return self._text_model

    # ------------------------------------------------------------------
    # Summary maintenance (RTree hooks)
    # ------------------------------------------------------------------
    def _summarise_leaf(
        self, entries: Sequence[RTreeEntry[SpatialObject]]
    ) -> SetSummary | None:
        if not entries:
            return None
        return _summary_of_docs([entry.item.doc for entry in entries])

    def _summarise_inner(
        self, children: Sequence[RTreeNode[SpatialObject]]
    ) -> SetSummary | None:
        summaries = [child.summary for child in children if child.summary is not None]
        if not summaries:
            return None
        return _merge_summaries(summaries)

    # ------------------------------------------------------------------
    # Score bounds (the SetR-tree's raison d'être)
    # ------------------------------------------------------------------
    def tsim_upper_bound(
        self, node: RTreeNode[SpatialObject], query_doc: AbstractSet[str]
    ) -> float:
        """Upper bound of ``TSim(o, q)`` over objects under ``node``."""
        summary: SetSummary = node.summary
        return self._text_model.upper_bound(
            summary.intersection,
            summary.union,
            query_doc,
            min_doc_len=summary.min_doc_len,
            max_doc_len=summary.max_doc_len,
        )

    def tsim_lower_bound(
        self, node: RTreeNode[SpatialObject], query_doc: AbstractSet[str]
    ) -> float:
        """Lower bound of ``TSim(o, q)`` over objects under ``node``."""
        summary: SetSummary = node.summary
        return self._text_model.lower_bound(
            summary.intersection,
            summary.union,
            query_doc,
            min_doc_len=summary.min_doc_len,
            max_doc_len=summary.max_doc_len,
        )

    def score_upper_bound(
        self, node: RTreeNode[SpatialObject], query: SpatialKeywordQuery
    ) -> float:
        """Upper bound of ``ST(o, q)`` over objects under ``node``.

        ``ws·(1 − minSDist) + wt·TSim_ub`` — the bound best-first top-k
        search orders its priority queue by (Section 3.3).
        """
        assert node.rect is not None
        min_sdist = min(
            node.rect.min_distance_to_point(query.loc)
            / self._database.distance_normaliser,
            1.0,
        )
        return query.ws * (1.0 - min_sdist) + query.wt * self.tsim_upper_bound(
            node, query.doc
        )

    def score_lower_bound(
        self, node: RTreeNode[SpatialObject], query: SpatialKeywordQuery
    ) -> float:
        """Lower bound of ``ST(o, q)`` over objects under ``node``."""
        assert node.rect is not None
        max_sdist = min(
            node.rect.max_distance_to_point(query.loc)
            / self._database.distance_normaliser,
            1.0,
        )
        return query.ws * (1.0 - max_sdist) + query.wt * self.tsim_lower_bound(
            node, query.doc
        )

    # ------------------------------------------------------------------
    # Counting queries (explanation generator substrate)
    # ------------------------------------------------------------------
    def count_within_distance(self, center: Point, radius: float) -> int:
        """Count objects whose *raw* distance to ``center`` is < radius.

        Used by the explanation generator: "the reason can be that the
        missing object is too far away from the query location" is
        quantified by how many objects are strictly closer.
        """
        if self._root.rect is None or radius <= 0.0:
            return 0
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            assert node.rect is not None
            if node.rect.min_distance_to_point(center) >= radius:
                continue
            if node.rect.max_distance_to_point(center) < radius:
                summary: SetSummary = node.summary
                count += summary.count
                continue
            if node.is_leaf:
                count += sum(
                    1
                    for entry in node.entries
                    if entry.item.loc.distance_to(center) < radius
                )
            else:
                stack.extend(node.children)
        return count

    def count_more_similar(
        self, query_doc: AbstractSet[str], threshold: float
    ) -> int:
        """Count objects with ``TSim(o, q) > threshold``.

        Pure text counting query answered with the node set bounds: a
        node whose upper bound is ≤ threshold is skipped wholesale, one
        whose lower bound exceeds it is counted wholesale.
        """
        if self._root.rect is None:
            return 0
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            upper = self.tsim_upper_bound(node, query_doc)
            if upper <= threshold:
                continue
            lower = self.tsim_lower_bound(node, query_doc)
            summary: SetSummary = node.summary
            if lower > threshold:
                count += summary.count
                continue
            if node.is_leaf:
                count += sum(
                    1
                    for entry in node.entries
                    if self._text_model.similarity(entry.item.doc, query_doc)
                    > threshold
                )
            else:
                stack.extend(node.children)
        return count

    def count_scoring_above(
        self, query: SpatialKeywordQuery, threshold: float
    ) -> int:
        """Count objects with ``ST(o, q) > threshold`` using both bounds."""
        if self._root.rect is None:
            return 0
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if self.score_upper_bound(node, query) <= threshold:
                continue
            summary: SetSummary = node.summary
            if self.score_lower_bound(node, query) > threshold:
                count += summary.count
                continue
            if node.is_leaf:
                for entry in node.entries:
                    obj = entry.item
                    sdist = self._database.normalized_distance(obj.loc, query.loc)
                    tsim = self._text_model.similarity(obj.doc, query.doc)
                    score = query.ws * (1.0 - sdist) + query.wt * tsim
                    if score > threshold:
                        count += 1
            else:
                stack.extend(node.children)
        return count
