"""Index introspection: structural quality metrics for the R-tree family.

Downstream users tuning fanout or comparing bulk-loaded against
incrementally-built trees need to *see* the structure: fill factors,
leaf-area statistics, sibling overlap, and the size of the spatio-textual
summaries each variant carries per node.  The E2/E8 benchmarks report
these numbers; this module computes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.index.irtree import IRSummary
from repro.index.kcrtree import KcSummary
from repro.index.rtree import RTree, RTreeNode
from repro.index.setrtree import SetSummary

__all__ = ["TreeStatistics", "tree_statistics"]


@dataclass(frozen=True, slots=True)
class TreeStatistics:
    """Structural metrics of one tree."""

    items: int
    height: int
    node_count: int
    leaf_count: int
    inner_count: int
    #: Mean members per node over (leaf entries | inner children) / capacity.
    avg_leaf_fill: float
    avg_inner_fill: float
    #: Mean area of leaf MBRs (dead-space indicator for point data).
    avg_leaf_area: float
    #: Mean pairwise MBR overlap area among siblings, normalised by the
    #: mean sibling area; 0 means perfectly disjoint siblings.
    sibling_overlap_ratio: float
    #: Mean per-node summary payload size: keyword count for SetR-trees
    #: (|union|), map entries for KcR-trees, posting entries for IR-trees;
    #: 0 for plain R-trees.
    avg_summary_size: float

    def describe(self) -> str:
        return (
            f"items={self.items} height={self.height} nodes={self.node_count} "
            f"(leaves={self.leaf_count}) fill={self.avg_leaf_fill:.2f}/"
            f"{self.avg_inner_fill:.2f} leaf_area={self.avg_leaf_area:.3g} "
            f"overlap={self.sibling_overlap_ratio:.3f} "
            f"summary={self.avg_summary_size:.1f}"
        )


def _summary_size(summary: Any) -> int:
    if isinstance(summary, SetSummary):
        return len(summary.union)
    if isinstance(summary, KcSummary):
        return len(summary.keyword_counts)
    if isinstance(summary, IRSummary):
        return len(summary.max_impacts)
    return 0


def tree_statistics(tree: RTree) -> TreeStatistics:
    """Compute :class:`TreeStatistics` for any tree of the R-tree family."""
    if len(tree) == 0:
        return TreeStatistics(
            items=0, height=1, node_count=1, leaf_count=1, inner_count=0,
            avg_leaf_fill=0.0, avg_inner_fill=0.0, avg_leaf_area=0.0,
            sibling_overlap_ratio=0.0, avg_summary_size=0.0,
        )

    leaf_fills: list[float] = []
    inner_fills: list[float] = []
    leaf_areas: list[float] = []
    summary_sizes: list[int] = []
    overlap_total = 0.0
    sibling_area_total = 0.0
    sibling_pairs = 0
    node_count = 0

    stack: list[RTreeNode] = [tree.root]
    while stack:
        node = stack.pop()
        node_count += 1
        summary_sizes.append(_summary_size(node.summary))
        if node.is_leaf:
            leaf_fills.append(len(node.entries) / tree.max_entries)
            assert node.rect is not None
            leaf_areas.append(node.rect.area)
        else:
            inner_fills.append(len(node.children) / tree.max_entries)
            children = node.children
            for i, first in enumerate(children):
                assert first.rect is not None
                sibling_area_total += first.rect.area
                for second in children[i + 1 :]:
                    assert second.rect is not None
                    shared = first.rect.intersection(second.rect)
                    if shared is not None:
                        overlap_total += shared.area
                    sibling_pairs += 1
            stack.extend(children)

    # Normalise accumulated pairwise overlap by total sibling area; both
    # are sums over the same node population, so the ratio is scale-free.
    overlap_ratio = (
        overlap_total / sibling_area_total if sibling_area_total > 0 else 0.0
    )

    return TreeStatistics(
        items=len(tree),
        height=tree.height(),
        node_count=node_count,
        leaf_count=len(leaf_fills),
        inner_count=len(inner_fills),
        avg_leaf_fill=sum(leaf_fills) / len(leaf_fills),
        avg_inner_fill=(
            sum(inner_fills) / len(inner_fills) if inner_fills else 0.0
        ),
        avg_leaf_area=sum(leaf_areas) / len(leaf_areas),
        sibling_overlap_ratio=overlap_ratio,
        avg_summary_size=sum(summary_sizes) / len(summary_sizes),
    )
