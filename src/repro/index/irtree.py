"""The IR-tree of Cong et al. [4] — the substrate YASK's top-k engine descends from.

Section 3.3: "We use an existing algorithm [4] to build the spatial
keyword top-k query engine.  Since the IR-tree indexing technique used in
that algorithm does not support Jaccard similarity, we employ instead
... the SetR-tree".  The reproduction still builds the IR-tree because
(a) it is the substrate the paper's engine is derived from and (b) it
*does* serve the cosine/tf-idf model (footnote 1 allows alternative
models), giving the benchmarks a second engine configuration.

Each IR-tree node carries an inverted file mapping every keyword present
in its subtree to the keyword's *maximum impact*: the largest
contribution ``idf(t)² / ‖o.doc‖`` the keyword makes to the
(query-normalised) cosine score of any object below the node.  Summing
the impacts of the query keywords and dividing by ``‖q.doc‖`` upper
bounds ``TSim`` for the whole subtree, which is exactly the bound the
best-first search of [4] orders its priority queue by.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Mapping, Sequence

from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.query import SpatialKeywordQuery
from repro.index.rtree import DEFAULT_MAX_ENTRIES, RTree, RTreeEntry, RTreeNode
from repro.text.similarity import CosineTfIdfSimilarity

__all__ = ["IRSummary", "IRTree"]


@dataclass(frozen=True, slots=True)
class IRSummary:
    """Per-node inverted file: keyword → maximum cosine impact in subtree."""

    max_impacts: Mapping[str, float]
    count: int

    def tsim_upper_bound(
        self, query_doc: AbstractSet[str], query_norm: float
    ) -> float:
        """Upper bound of cosine TSim for any object under the node."""
        if query_norm <= 0.0:
            return 0.0
        total = sum(
            self.max_impacts.get(keyword, 0.0) for keyword in query_doc
        )
        return min(1.0, total / query_norm)


class IRTree(RTree[SpatialObject]):
    """R-tree over spatial objects with per-node max-impact inverted files."""

    def __init__(
        self,
        *,
        database: SpatialDatabase,
        text_model: CosineTfIdfSimilarity | None = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int | None = None,
    ) -> None:
        super().__init__(max_entries=max_entries, min_entries=min_entries)
        self._database = database
        if text_model is None:
            text_model = CosineTfIdfSimilarity(
                database.keyword_document_frequencies(), len(database)
            )
        self._text_model = text_model

    @classmethod
    def build(
        cls,
        database: SpatialDatabase,
        *,
        text_model: CosineTfIdfSimilarity | None = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int | None = None,
    ) -> "IRTree":
        """Bulk-load an IR-tree over every object of ``database``."""
        return cls.bulk_load(
            database.objects,
            key=lambda obj: obj.loc,
            max_entries=max_entries,
            min_entries=min_entries,
            database=database,
            text_model=text_model,
        )

    @property
    def database(self) -> SpatialDatabase:
        return self._database

    @property
    def text_model(self) -> CosineTfIdfSimilarity:
        return self._text_model

    # ------------------------------------------------------------------
    # Summary maintenance (RTree hooks)
    # ------------------------------------------------------------------
    def _object_impacts(self, obj: SpatialObject) -> dict[str, float]:
        norm = self._doc_norm(obj.doc)
        if norm <= 0.0:
            return {}
        return {
            keyword: self._text_model.idf(keyword) ** 2 / norm
            for keyword in obj.doc
        }

    def _doc_norm(self, doc: AbstractSet[str]) -> float:
        return (
            sum(self._text_model.idf(keyword) ** 2 for keyword in doc) ** 0.5
        )

    def _summarise_leaf(
        self, entries: Sequence[RTreeEntry[SpatialObject]]
    ) -> IRSummary | None:
        if not entries:
            return None
        impacts: dict[str, float] = {}
        for entry in entries:
            for keyword, impact in self._object_impacts(entry.item).items():
                if impact > impacts.get(keyword, 0.0):
                    impacts[keyword] = impact
        return IRSummary(max_impacts=impacts, count=len(entries))

    def _summarise_inner(
        self, children: Sequence[RTreeNode[SpatialObject]]
    ) -> IRSummary | None:
        summaries = [child.summary for child in children if child.summary is not None]
        if not summaries:
            return None
        impacts: dict[str, float] = {}
        for summary in summaries:
            for keyword, impact in summary.max_impacts.items():
                if impact > impacts.get(keyword, 0.0):
                    impacts[keyword] = impact
        return IRSummary(
            max_impacts=impacts, count=sum(summary.count for summary in summaries)
        )

    # ------------------------------------------------------------------
    # Score bound (drives best-first top-k for the cosine model)
    # ------------------------------------------------------------------
    def score_upper_bound(
        self, node: RTreeNode[SpatialObject], query: SpatialKeywordQuery
    ) -> float:
        """Upper bound of ``ST(o, q)`` over objects under ``node``."""
        assert node.rect is not None
        min_sdist = min(
            node.rect.min_distance_to_point(query.loc)
            / self._database.distance_normaliser,
            1.0,
        )
        summary: IRSummary = node.summary
        tsim_ub = summary.tsim_upper_bound(query.doc, self._doc_norm(query.doc))
        return query.ws * (1.0 - min_sdist) + query.wt * tsim_ub
