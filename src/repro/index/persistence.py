"""Index persistence: save/load tree structure to disk (Fig. 1).

The architecture diagram places the "R-tree Based Index" on the hard
disk beneath the query processor; the demonstration server loads it at
startup rather than rebuilding.  This module persists the *structure* of
any of the library's tree indexes — which objects sit in which leaf, and
how leaves group upward — as JSON keyed by object ids.  On load the
structure is reattached to a database and every node's MBR and summary
(keyword sets / count maps / impact lists) is recomputed bottom-up, so a
loaded index is bit-for-bit equivalent to the saved one for every query.

Persisting structure (not derived payloads) keeps files small, makes the
format independent of summary-representation changes, and guarantees the
loaded tree can never carry stale summaries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.geometry import Point, Rect
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.index.irtree import IRTree
from repro.index.kcrtree import KcRTree
from repro.index.rtree import RTree, RTreeEntry, RTreeNode
from repro.index.setrtree import SetRTree
from repro.text.similarity import CosineTfIdfSimilarity, SetSimilarityModel

__all__ = [
    "IndexPersistenceError",
    "save_index",
    "load_index",
    "index_to_dict",
    "index_from_dict",
    "database_to_dict",
    "database_from_dict",
]

#: Format version: bump on breaking layout changes.  Version 2 adds the
#: optional ``vocabulary`` section — the interned keyword order of the
#: database the index was saved over.  Version-1 files (no vocabulary)
#: still load; the database then interns lazily as before.
_FORMAT_VERSION = 2
_SUPPORTED_FORMATS = (1, 2)

_TREE_TYPES = {
    "SetRTree": SetRTree,
    "KcRTree": KcRTree,
    "IRTree": IRTree,
}


class IndexPersistenceError(ValueError):
    """A malformed or inconsistent persisted index."""


def _node_to_dict(node: RTreeNode[SpatialObject]) -> dict[str, Any]:
    if node.is_leaf:
        return {"leaf": True, "oids": [entry.item.oid for entry in node.entries]}
    return {
        "leaf": False,
        "children": [_node_to_dict(child) for child in node.children],
    }


def index_to_dict(tree: RTree[SpatialObject]) -> dict[str, Any]:
    """Serialise a tree's structure (not its derived summaries)."""
    type_name = type(tree).__name__
    if type_name not in _TREE_TYPES:
        raise IndexPersistenceError(
            f"unsupported index type {type_name!r}; "
            f"supported: {sorted(_TREE_TYPES)}"
        )
    payload: dict[str, Any] = {
        "format": _FORMAT_VERSION,
        "type": type_name,
        "max_entries": tree.max_entries,
        "min_entries": tree.min_entries,
        "size": len(tree),
        "root": _node_to_dict(tree.root),
    }
    database = getattr(tree, "database", None)
    if database is not None and database.interned:
        # Round-trip the interned keyword order: under live mutation the
        # vocabulary grows append-only (no longer globally sorted), and
        # a loaded database must re-intern to the *same* bit positions
        # or saved doc masks decode into different keyword sets.
        payload["vocabulary"] = list(database.vocabulary_index.keywords)
    return payload


def _rebuild_node(
    payload: dict[str, Any],
    database: SpatialDatabase,
    tree: RTree[SpatialObject],
    seen: set[int],
) -> RTreeNode[SpatialObject]:
    if payload.get("leaf"):
        node = RTreeNode[SpatialObject](is_leaf=True)
        for oid in payload.get("oids", []):
            try:
                obj = database.get(int(oid))
            except KeyError:
                raise IndexPersistenceError(
                    f"persisted index references object {oid} "
                    "missing from the database"
                ) from None
            if obj.oid in seen:
                raise IndexPersistenceError(
                    f"object {obj.oid} appears in multiple leaves"
                )
            seen.add(obj.oid)
            node.entries.append(
                RTreeEntry(rect=Rect.from_point(obj.loc), item=obj)
            )
        if not node.entries:
            raise IndexPersistenceError("persisted leaf node is empty")
    else:
        node = RTreeNode[SpatialObject](is_leaf=False)
        children = payload.get("children", [])
        if not children:
            raise IndexPersistenceError("persisted inner node has no children")
        for child_payload in children:
            child = _rebuild_node(child_payload, database, tree, seen)
            child.parent = node
            node.children.append(child)
    # Recompute the MBR and summary from the (now complete) members.
    tree._refresh(node)
    return node


def index_from_dict(
    payload: dict[str, Any],
    database: SpatialDatabase,
    *,
    text_model: Any | None = None,
) -> RTree[SpatialObject]:
    """Rebuild a persisted index over ``database``.

    ``text_model`` applies to SetR-trees (a
    :class:`~repro.text.similarity.SetSimilarityModel`; Jaccard default)
    and IR-trees (a :class:`CosineTfIdfSimilarity`; corpus default).
    """
    if not isinstance(payload, dict) or "type" not in payload:
        raise IndexPersistenceError("payload is not a persisted index")
    if payload.get("format") not in _SUPPORTED_FORMATS:
        raise IndexPersistenceError(
            f"unsupported format version {payload.get('format')!r}"
        )
    vocabulary = payload.get("vocabulary")
    if vocabulary is not None and (
        not isinstance(vocabulary, list)
        or not all(isinstance(keyword, str) for keyword in vocabulary)
    ):
        raise IndexPersistenceError(
            "persisted vocabulary must be a list of keywords"
        )
    type_name = payload["type"]
    if type_name not in _TREE_TYPES:
        raise IndexPersistenceError(f"unknown index type {type_name!r}")

    max_entries = int(payload.get("max_entries", 32))
    min_entries = int(payload.get("min_entries", max_entries // 2))
    if type_name == "SetRTree":
        kwargs: dict[str, Any] = {"database": database}
        if text_model is not None:
            if not isinstance(text_model, SetSimilarityModel):
                raise IndexPersistenceError(
                    "SetRTree requires a set-based text model"
                )
            kwargs["text_model"] = text_model
        tree: RTree[SpatialObject] = SetRTree(
            max_entries=max_entries, min_entries=min_entries, **kwargs
        )
    elif type_name == "KcRTree":
        tree = KcRTree(
            database=database, max_entries=max_entries, min_entries=min_entries
        )
    else:  # IRTree
        if text_model is not None and not isinstance(
            text_model, CosineTfIdfSimilarity
        ):
            raise IndexPersistenceError("IRTree requires a cosine text model")
        tree = IRTree(
            database=database,
            text_model=text_model,
            max_entries=max_entries,
            min_entries=min_entries,
        )

    seen: set[int] = set()
    root = _rebuild_node(payload["root"], database, tree, seen)
    root.parent = None
    expected = int(payload.get("size", len(seen)))
    if len(seen) != expected:
        raise IndexPersistenceError(
            f"persisted index claims {expected} objects but holds {len(seen)}"
        )
    tree._root = root
    tree._size = len(seen)
    # Adopt the persisted keyword order only once the whole payload has
    # validated: re-interning is a visible database mutation, and a load
    # that fails halfway must leave the database exactly as it was.
    if vocabulary is not None:
        try:
            database.adopt_vocabulary(vocabulary)
        except ValueError as exc:
            raise IndexPersistenceError(str(exc)) from None
    return tree


def save_index(tree: RTree[SpatialObject], path: str | Path) -> None:
    """Write a tree's structure to a JSON file."""
    Path(path).write_text(json.dumps(index_to_dict(tree)), encoding="utf-8")


def load_index(
    path: str | Path,
    database: SpatialDatabase,
    *,
    text_model: Any | None = None,
) -> RTree[SpatialObject]:
    """Read a tree written by :func:`save_index` and attach it to ``database``."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise IndexPersistenceError(f"not a persisted index: {exc}") from None
    return index_from_dict(payload, database, text_model=text_model)


# ----------------------------------------------------------------------
# Database snapshots (the WAL's durable checkpoint payload)
# ----------------------------------------------------------------------
#: Database snapshot layout version, independent of the index format.
_DATABASE_FORMAT_VERSION = 1


def database_to_dict(database: SpatialDatabase) -> dict[str, Any]:
    """Serialise a database's full logical state for a snapshot.

    Captures everything a bit-for-bit rebuild needs: the objects *in
    database order* (the order rule every incrementally-maintained
    kernel shares), the pinned dataspace (score floats depend on its
    diagonal) and — when interned — the vocabulary's bit-position order
    (append-only growth means it is no longer globally sorted, and a
    rebuilt kernel must intern identically).  Indexes are deliberately
    excluded: bulk-loading from the objects is as fast as reattaching a
    persisted structure and cannot desynchronise.
    """
    space = database.dataspace
    payload: dict[str, Any] = {
        "format": _DATABASE_FORMAT_VERSION,
        "dataspace": [space.min_x, space.min_y, space.max_x, space.max_y],
        "objects": [
            {
                "oid": obj.oid,
                "x": obj.loc.x,
                "y": obj.loc.y,
                "keywords": sorted(obj.doc),
                "name": obj.name,
            }
            for obj in database.objects
        ],
    }
    if database.interned:
        payload["vocabulary"] = list(database.vocabulary_index.keywords)
    return payload


def database_from_dict(payload: dict[str, Any]) -> SpatialDatabase:
    """Rebuild a database saved by :func:`database_to_dict`."""
    if not isinstance(payload, dict) or "objects" not in payload:
        raise IndexPersistenceError("payload is not a persisted database")
    if payload.get("format") != _DATABASE_FORMAT_VERSION:
        raise IndexPersistenceError(
            f"unsupported database format version {payload.get('format')!r}"
        )
    space = payload.get("dataspace")
    if (
        not isinstance(space, list)
        or len(space) != 4
        or not all(isinstance(value, (int, float)) for value in space)
    ):
        raise IndexPersistenceError(
            "persisted dataspace must be [min_x, min_y, max_x, max_y]"
        )
    raw_objects = payload["objects"]
    if not isinstance(raw_objects, list) or not raw_objects:
        raise IndexPersistenceError(
            "persisted database must hold at least one object"
        )
    objects: list[SpatialObject] = []
    try:
        for item in raw_objects:
            name = item.get("name")
            if name is not None and not isinstance(name, str):
                raise IndexPersistenceError("object names must be strings")
            objects.append(
                SpatialObject(
                    oid=int(item["oid"]),
                    loc=Point(float(item["x"]), float(item["y"])),
                    doc=frozenset(
                        str(keyword) for keyword in item["keywords"]
                    ),
                    name=name,
                )
            )
    except IndexPersistenceError:
        raise
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise IndexPersistenceError(
            f"malformed persisted object: {exc}"
        ) from None
    try:
        database = SpatialDatabase(
            objects,
            dataspace=Rect(
                float(space[0]), float(space[1]), float(space[2]), float(space[3])
            ),
        )
    except ValueError as exc:
        raise IndexPersistenceError(str(exc)) from None
    vocabulary = payload.get("vocabulary")
    if vocabulary is not None:
        if not isinstance(vocabulary, list) or not all(
            isinstance(keyword, str) for keyword in vocabulary
        ):
            raise IndexPersistenceError(
                "persisted vocabulary must be a list of keywords"
            )
        try:
            database.adopt_vocabulary(vocabulary)
        except ValueError as exc:
            raise IndexPersistenceError(str(exc)) from None
    return database
