"""The KcR-tree (Keyword count R-tree) of Fig. 2.

Section 3.3 of the paper: "This indexing structure is a variant of the
R-tree, where each R-tree node integrates the textual information on the
objects indexed in it.  More specifically, each KcR-tree node is
associated with a key-value map, where each key is a keyword in the
union set of the keywords of the objects indexed by this node, and its
corresponding value is the number of objects in this node that contain
this keyword.  In addition, each KcR-tree node has a cnt value that
stores the number of objects that are indexed by this node."

Fig. 2's example: leaf ``R1`` indexes {o1, o2, o3} with map
{Chinese: 2, restaurant: 3} and cnt = 3; leaf ``R2`` indexes {o4, o5}
with {Spanish: 2, restaurant: 2} and cnt = 2; the root ``R3`` has
{Chinese: 2, Spanish: 2, restaurant: 5} and cnt = 5.  The test suite
reproduces this exact tree (experiment E2).

Beyond the paper's two fields this implementation also tracks the
min/max keyword-set size per node: the Jaccard denominator
``|o.doc ∪ S|`` cannot be bounded from the count map alone, and the
companion paper's bound derivations need the document-length range
(DESIGN.md §3.4 flags this as a reconstruction detail).

The why-not keyword-adaption module uses these maps to bound, for a
candidate query keyword set ``S`` and a missing object ``m``, how many
objects under a node can possibly (or must necessarily) outrank ``m`` —
see :meth:`KcSummary.count_with_overlap_at_least` and
:meth:`KcSummary.count_containing_all`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import AbstractSet, Mapping, Sequence

from repro.core.objects import SpatialDatabase, SpatialObject
from repro.index.rtree import DEFAULT_MAX_ENTRIES, RTree, RTreeEntry, RTreeNode

__all__ = ["KcSummary", "KcRTree"]


@dataclass(frozen=True, slots=True)
class KcSummary:
    """Per-node payload: the keyword-count map and ``cnt`` of Fig. 2."""

    keyword_counts: Mapping[str, int]
    cnt: int
    min_doc_len: int
    max_doc_len: int

    # ------------------------------------------------------------------
    # Count bounds over a candidate keyword set S
    # ------------------------------------------------------------------
    def incidence_mass(self, keywords: AbstractSet[str]) -> int:
        """``Σ_{t ∈ S} KC[t]`` — total keyword incidences of S in the node."""
        counts = self.keyword_counts
        return sum(counts.get(keyword, 0) for keyword in keywords)

    def count_with_overlap_at_least(
        self, keywords: AbstractSet[str], min_overlap: int
    ) -> int:
        """Upper bound on ``#{o : |o.doc ∩ S| ≥ c}`` for ``c = min_overlap``.

        Each qualifying object consumes at least ``c`` keyword incidences
        of ``S``, and the node holds ``Σ_{t∈S} KC[t]`` such incidences in
        total, so at most ``⌊mass / c⌋`` objects can qualify.
        """
        if min_overlap <= 0:
            return self.cnt
        mass = self.incidence_mass(keywords)
        return min(self.cnt, mass // min_overlap)

    def count_containing_all(self, keywords: AbstractSet[str]) -> int:
        """Lower bound on ``#{o : S ⊆ o.doc}`` (inclusion–exclusion).

        An object missing keyword ``t`` leaves ``KC[t]`` short of ``cnt``
        by one; summing the shortfalls bounds how many objects can miss
        *any* keyword, hence ``Σ KC[t] − (|S|−1)·cnt`` objects must
        contain them all.
        """
        if not keywords:
            return self.cnt
        mass = self.incidence_mass(keywords)
        return max(0, mass - (len(keywords) - 1) * self.cnt)

    def count_containing_any_upper(self, keywords: AbstractSet[str]) -> int:
        """Upper bound on ``#{o : o.doc ∩ S ≠ ∅}``: ``min(cnt, Σ KC[t])``."""
        return min(self.cnt, self.incidence_mass(keywords))

    def max_possible_overlap(self, keywords: AbstractSet[str]) -> int:
        """Largest possible ``|o.doc ∩ S|`` of any single object."""
        present = sum(
            1 for keyword in keywords if self.keyword_counts.get(keyword, 0) > 0
        )
        return min(present, self.max_doc_len)

    def describe(self) -> str:
        """Render the node payload the way Fig. 2 draws it."""
        entries = ", ".join(
            f"{keyword} {count}"
            for keyword, count in sorted(self.keyword_counts.items())
        )
        return f"{{{entries}}} cnt={self.cnt}"


def _summary_of_docs(docs: Sequence[frozenset[str]]) -> KcSummary:
    counts: dict[str, int] = {}
    for doc in docs:
        for keyword in doc:
            counts[keyword] = counts.get(keyword, 0) + 1
    lengths = [len(doc) for doc in docs]
    return KcSummary(
        keyword_counts=counts,
        cnt=len(docs),
        min_doc_len=min(lengths),
        max_doc_len=max(lengths),
    )


def _merge_summaries(summaries: Sequence[KcSummary]) -> KcSummary:
    counts: dict[str, int] = {}
    for summary in summaries:
        for keyword, count in summary.keyword_counts.items():
            counts[keyword] = counts.get(keyword, 0) + count
    return KcSummary(
        keyword_counts=counts,
        cnt=sum(summary.cnt for summary in summaries),
        min_doc_len=min(summary.min_doc_len for summary in summaries),
        max_doc_len=max(summary.max_doc_len for summary in summaries),
    )


class KcRTree(RTree[SpatialObject]):
    """R-tree over spatial objects with per-node keyword-count maps."""

    def __init__(
        self,
        *,
        database: SpatialDatabase,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int | None = None,
    ) -> None:
        super().__init__(max_entries=max_entries, min_entries=min_entries)
        self._database = database

    @classmethod
    def build(
        cls,
        database: SpatialDatabase,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        min_entries: int | None = None,
    ) -> "KcRTree":
        """Bulk-load a KcR-tree over every object of ``database``."""
        return cls.bulk_load(
            database.objects,
            key=lambda obj: obj.loc,
            max_entries=max_entries,
            min_entries=min_entries,
            database=database,
        )

    @property
    def database(self) -> SpatialDatabase:
        return self._database

    # ------------------------------------------------------------------
    # Summary maintenance (RTree hooks)
    # ------------------------------------------------------------------
    def _summarise_leaf(
        self, entries: Sequence[RTreeEntry[SpatialObject]]
    ) -> KcSummary | None:
        if not entries:
            return None
        return _summary_of_docs([entry.item.doc for entry in entries])

    def _summarise_inner(
        self, children: Sequence[RTreeNode[SpatialObject]]
    ) -> KcSummary | None:
        summaries = [child.summary for child in children if child.summary is not None]
        if not summaries:
            return None
        return _merge_summaries(summaries)

    # ------------------------------------------------------------------
    # Normalised spatial bounds (shared by the why-not rank bounding)
    # ------------------------------------------------------------------
    def proximity_bounds(
        self, node: RTreeNode[SpatialObject], loc
    ) -> tuple[float, float]:
        """Return ``(min proximity, max proximity)`` of objects in ``node``.

        Proximity is ``1 − SDist`` with SDist normalised by the database
        diagonal, i.e. the spatial component of Eqn. (1).
        """
        assert node.rect is not None
        normaliser = self._database.distance_normaliser
        min_sdist = min(node.rect.min_distance_to_point(loc) / normaliser, 1.0)
        max_sdist = min(node.rect.max_distance_to_point(loc) / normaliser, 1.0)
        return (1.0 - max_sdist, 1.0 - min_sdist)

    def describe_fig2_style(self) -> str:
        """Render the tree with per-node keyword-count maps as in Fig. 2."""
        lines: list[str] = []

        def walk(node: RTreeNode[SpatialObject], label: str, indent: int) -> None:
            pad = "  " * indent
            summary: KcSummary = node.summary
            lines.append(f"{pad}{label}: {summary.describe()}")
            if node.is_leaf:
                members = ", ".join(
                    entry.item.label for entry in node.entries
                )
                lines.append(f"{pad}  objects: [{members}]")
            else:
                for index, child in enumerate(node.children, start=1):
                    walk(child, f"{label}.{index}", indent + 1)

        walk(self._root, "R", 0)
        return "\n".join(lines)
