"""R-tree based indexing substrates (Section 3.1 / 3.3 of the paper).

* :class:`repro.index.rtree.RTree` — the plain R-tree everything builds on.
* :class:`repro.index.setrtree.SetRTree` — intersection/union keyword set
  summaries; serves top-k search and explanations under Jaccard.
* :class:`repro.index.kcrtree.KcRTree` — keyword-count maps (Fig. 2);
  serves the keyword-adaption why-not module.
* :class:`repro.index.irtree.IRTree` — max-impact inverted files (Cong et
  al. [4]); serves the cosine model.
* :class:`repro.index.inverted.InvertedIndex` — plain posting lists.
* :class:`repro.index.dualspace.DualSpaceIndex` — dual-point R-tree
  answering the preference module's two range queries.
"""

from repro.index.dualspace import DualSpaceIndex
from repro.index.inverted import InvertedIndex
from repro.index.irtree import IRSummary, IRTree
from repro.index.kcrtree import KcRTree, KcSummary
from repro.index.persistence import (
    IndexPersistenceError,
    index_from_dict,
    index_to_dict,
    load_index,
    save_index,
)
from repro.index.rtree import DEFAULT_MAX_ENTRIES, RTree, RTreeEntry, RTreeNode
from repro.index.setrtree import SetRTree, SetSummary

__all__ = [
    "DEFAULT_MAX_ENTRIES",
    "DualSpaceIndex",
    "InvertedIndex",
    "IRSummary",
    "IRTree",
    "KcRTree",
    "KcSummary",
    "IndexPersistenceError",
    "index_from_dict",
    "index_to_dict",
    "load_index",
    "save_index",
    "RTree",
    "RTreeEntry",
    "RTreeNode",
    "SetRTree",
    "SetSummary",
]
