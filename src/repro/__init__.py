"""YASK — a why-not question answering engine for spatial keyword query services.

A faithful, from-scratch Python reproduction of the system demonstrated
in:

    Lei Chen, Jianliang Xu, Christian S. Jensen, Yafei Li.
    "YASK: A Why-Not Question Answering Engine for Spatial Keyword
    Query Services."  PVLDB 9(13): 1501-1504, 2016.

Quickstart::

    from repro import Point, YaskEngine
    from repro.datasets import hong_kong_hotels

    engine = YaskEngine(hong_kong_hotels())
    result = engine.top_k(Point(114.171, 22.297), {"clean", "comfortable"}, k=3)
    answer = engine.why_not(result.query, ["Grand Victoria Harbour Hotel"])
    print(answer.explanation.narrative())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduced evaluation.
"""

from repro.core import (
    BestFirstTopK,
    BruteForceTopK,
    DualPoint,
    Point,
    QueryResult,
    RankedObject,
    Rect,
    ScoreBreakdown,
    Scorer,
    SpatialDatabase,
    SpatialKeywordQuery,
    SpatialObject,
    Weights,
)
from repro.index import IRTree, KcRTree, RTree, SetRTree
from repro.service.api import YaskEngine
from repro.text import JaccardSimilarity, keyword_set
from repro.whynot import (
    KeywordAdapter,
    KeywordRefinement,
    PreferenceAdjuster,
    PreferenceRefinement,
    WhyNotAnswer,
    WhyNotEngine,
)

__version__ = "1.0.0"

__all__ = [
    "BestFirstTopK",
    "BruteForceTopK",
    "DualPoint",
    "Point",
    "QueryResult",
    "RankedObject",
    "Rect",
    "ScoreBreakdown",
    "Scorer",
    "SpatialDatabase",
    "SpatialKeywordQuery",
    "SpatialObject",
    "Weights",
    "IRTree",
    "KcRTree",
    "RTree",
    "SetRTree",
    "YaskEngine",
    "JaccardSimilarity",
    "keyword_set",
    "KeywordAdapter",
    "KeywordRefinement",
    "PreferenceAdjuster",
    "PreferenceRefinement",
    "WhyNotAnswer",
    "WhyNotEngine",
    "__version__",
]
