"""Query model: weights, spatial keyword top-k queries, and results.

A spatial keyword top-k query takes four parameters (Section 2.1):
``q = (q.loc, q.doc, k, ~w)`` where ``~w = ⟨ws, wt⟩``, ``0 < ws, wt < 1``
and ``ws + wt = 1``.  The demonstration system leaves ``~w`` as a server
parameter defaulting to ``⟨0.5, 0.5⟩`` (Section 3.2); this module encodes
those constraints as validated value types.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, NamedTuple, Sequence

from repro.core.geometry import EPSILON, Point
from repro.core.objects import SpatialObject

__all__ = [
    "Weights",
    "DEFAULT_WEIGHTS",
    "SpatialKeywordQuery",
    "RankedObject",
    "QueryResult",
]


@dataclass(frozen=True, slots=True)
class Weights:
    """The preference vector ``~w = ⟨ws, wt⟩`` of Eqn. (1).

    Invariants (Section 2.1): ``0 < ws, wt < 1`` and ``ws + wt = 1``.
    The open-interval constraint matters to the why-not module: a weight
    of exactly 0 or 1 would collapse an object's weight-plane segment to
    an endpoint and the crossover sweep of DESIGN.md Section 3.3 assumes
    interior weights.
    """

    ws: float
    wt: float

    def __post_init__(self) -> None:
        if not (0.0 < self.ws < 1.0 and 0.0 < self.wt < 1.0):
            raise ValueError(
                f"weights must lie strictly between 0 and 1, got ws={self.ws}, wt={self.wt}"
            )
        if abs(self.ws + self.wt - 1.0) > 1e-6:
            raise ValueError(
                f"weights must sum to 1, got ws + wt = {self.ws + self.wt}"
            )

    @staticmethod
    def from_spatial(ws: float) -> "Weights":
        """Build a weight vector from the spatial component only."""
        return Weights(ws, 1.0 - ws)

    @staticmethod
    def balanced() -> "Weights":
        """The system default ``⟨0.5, 0.5⟩`` (Section 3.2)."""
        return Weights(0.5, 0.5)

    def distance_to(self, other: "Weights") -> float:
        """``Δ~w = ||~w − ~w'||₂`` — the numerator of Eqn. (3)'s second term."""
        return math.hypot(self.ws - other.ws, self.wt - other.wt)

    @property
    def penalty_normaliser(self) -> float:
        """``sqrt(1 + ws² + wt²)`` — Eqn. (3)'s Δ~w normaliser.

        The paper states Δ~w "can be proved to be no larger than" this
        quantity, which therefore maps the weight-change term into [0, 1].
        """
        return math.sqrt(1.0 + self.ws * self.ws + self.wt * self.wt)

    def as_tuple(self) -> tuple[float, float]:
        return (self.ws, self.wt)

    def __iter__(self) -> Iterator[float]:
        yield self.ws
        yield self.wt


#: Default server-side preference: spatial distance and textual
#: similarity weighed equally (Section 3.2).
DEFAULT_WEIGHTS = Weights(0.5, 0.5)


@dataclass(frozen=True, slots=True)
class SpatialKeywordQuery:
    """A spatial keyword top-k query ``q = (q.loc, q.doc, k, ~w)``.

    ``doc`` is stored as a ``frozenset`` of already-normalised keywords;
    use :func:`repro.text.keyword_set` to build it from raw text.
    """

    loc: Point
    doc: frozenset[str]
    k: int
    weights: Weights = DEFAULT_WEIGHTS

    def __post_init__(self) -> None:
        if not isinstance(self.doc, frozenset):
            object.__setattr__(self, "doc", frozenset(self.doc))
        if self.k < 1:
            raise ValueError(f"k must be at least 1, got {self.k}")
        if not self.doc:
            raise ValueError("a spatial keyword query requires at least one keyword")

    # Convenience accessors mirroring the paper's notation -------------
    @property
    def ws(self) -> float:
        return self.weights.ws

    @property
    def wt(self) -> float:
        return self.weights.wt

    def with_k(self, k: int) -> "SpatialKeywordQuery":
        """Return a copy with an enlarged/modified ``k``."""
        return replace(self, k=k)

    def with_weights(self, weights: Weights) -> "SpatialKeywordQuery":
        """Return a copy with a different preference vector."""
        return replace(self, weights=weights)

    def with_doc(self, doc: Iterable[str]) -> "SpatialKeywordQuery":
        """Return a copy with a different query keyword set."""
        return replace(self, doc=frozenset(doc))

    def describe(self) -> str:
        """One-line summary used by the demonstration panels and logs."""
        keywords = ", ".join(sorted(self.doc))
        return (
            f"top-{self.k} @ ({self.loc.x:.4f}, {self.loc.y:.4f}) "
            f"keywords=[{keywords}] w=({self.weights.ws:.3f}, {self.weights.wt:.3f})"
        )


class RankedObject(NamedTuple):
    """One result entry: an object with its score decomposition and rank.

    ``rank`` is 1-based under the deterministic total order
    (score descending, object id ascending) used throughout the library;
    the paper's Definition 1 permits arbitrary tie-breaks, and fixing one
    makes ranks — and therefore why-not answers — reproducible.

    A ``NamedTuple`` rather than a dataclass: full-database rankings
    materialise one entry per object, and the scoring kernel builds them
    at C speed through :meth:`RankedObject._make` (a frozen dataclass
    pays five ``object.__setattr__`` calls per instance on that path).
    """

    obj: SpatialObject
    score: float
    sdist: float
    tsim: float
    rank: int

    @property
    def sort_key(self) -> tuple[float, int]:
        """Total-order key: higher score first, then smaller oid."""
        return (-self.score, self.obj.oid)

    def describe(self) -> str:
        return (
            f"#{self.rank} {self.obj.label}: score={self.score:.4f} "
            f"(SDist={self.sdist:.4f}, TSim={self.tsim:.4f})"
        )


class QueryResult:
    """The ordered result ``R`` of a spatial keyword top-k query."""

    def __init__(
        self, query: SpatialKeywordQuery, entries: Sequence[RankedObject]
    ) -> None:
        self._query = query
        self._entries = tuple(entries)
        for position, entry in enumerate(self._entries, start=1):
            if entry.rank != position:
                raise ValueError(
                    f"result entries must be rank-ordered: entry {position} has rank {entry.rank}"
                )

    @property
    def query(self) -> SpatialKeywordQuery:
        return self._query

    @property
    def entries(self) -> tuple[RankedObject, ...]:
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[RankedObject]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> RankedObject:
        return self._entries[index]

    @property
    def objects(self) -> tuple[SpatialObject, ...]:
        """The result objects in rank order."""
        return tuple(entry.obj for entry in self._entries)

    @property
    def object_ids(self) -> frozenset[int]:
        return frozenset(entry.obj.oid for entry in self._entries)

    def contains(self, reference: int | SpatialObject) -> bool:
        """Return True when the object is part of the result."""
        oid = reference.oid if isinstance(reference, SpatialObject) else reference
        return oid in self.object_ids

    @property
    def kth_score(self) -> float:
        """Score of the lowest-ranked returned object.

        The threshold a missing object must beat to enter the result;
        used by the explanation generator.
        """
        if not self._entries:
            return -math.inf
        return self._entries[-1].score

    def describe(self) -> str:
        lines = [self._query.describe()]
        lines.extend(entry.describe() for entry in self._entries)
        return "\n".join(lines)
