"""Planar geometry primitives for spatial keyword querying.

The paper (Section 2.1) models each object location as a point in the
Euclidean plane and computes ``SDist(o, q)`` as the Euclidean distance
normalised into ``[0, 1]``.  This module provides the two primitives that
everything else is built on:

* :class:`Point` — an immutable 2-D point with Euclidean metrics.
* :class:`Rect` — an axis-aligned rectangle used as the minimum bounding
  rectangle (MBR) of R-tree nodes and as the dataspace extent used for
  distance normalisation.

Both types are plain, hashable value objects so they can be used as
dictionary keys and set members in index bookkeeping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = ["Point", "Rect", "EPSILON"]

#: Tolerance used when comparing floating point coordinates/scores.
EPSILON = 1e-9


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable point in the Euclidean plane.

    Parameters
    ----------
    x, y:
        Cartesian coordinates.  For geographic datasets ``x`` is the
        longitude and ``y`` the latitude; the engines treat the plane as
        Euclidean exactly as the paper does (Section 2.1: "The distance
        SDist(o, q) is calculated as the Euclidean distance").
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Return the Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Return the squared Euclidean distance to ``other``.

        Useful for comparisons where the monotone square root can be
        skipped.
        """
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def manhattan_distance_to(self, other: "Point") -> float:
        """Return the L1 distance to ``other`` (used by diagnostics only)."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    ``Rect`` doubles as the MBR type of every R-tree variant in
    :mod:`repro.index` and as the *dataspace* passed to
    :class:`repro.core.objects.SpatialDatabase` for distance
    normalisation.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"degenerate rectangle: ({self.min_x}, {self.min_y}, "
                f"{self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_point(point: Point) -> "Rect":
        """Return the degenerate rectangle covering a single point."""
        return Rect(point.x, point.y, point.x, point.y)

    @staticmethod
    def from_points(points: Iterable[Point]) -> "Rect":
        """Return the MBR of a non-empty collection of points."""
        iterator = iter(points)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("cannot build a Rect from zero points") from None
        min_x = max_x = first.x
        min_y = max_y = first.y
        for point in iterator:
            min_x = min(min_x, point.x)
            max_x = max(max_x, point.x)
            min_y = min(min_y, point.y)
            max_y = max(max_y, point.y)
        return Rect(min_x, min_y, max_x, max_y)

    @staticmethod
    def union_all(rects: Sequence["Rect"]) -> "Rect":
        """Return the MBR of a non-empty collection of rectangles."""
        if not rects:
            raise ValueError("cannot build a Rect from zero rectangles")
        min_x = min(rect.min_x for rect in rects)
        min_y = min(rect.min_y for rect in rects)
        max_x = max(rect.max_x for rect in rects)
        max_y = max(rect.max_y for rect in rects)
        return Rect(min_x, min_y, max_x, max_y)

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def diagonal(self) -> float:
        """Length of the rectangle diagonal.

        The dataspace diagonal is the maximum possible Euclidean distance
        between any two points of the space, so it is the normaliser that
        maps raw distances into ``[0, 1]`` (Section 2.1 requires
        ``SDist`` to be a *normalised* spatial distance).
        """
        return math.hypot(self.width, self.height)

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: Point) -> bool:
        """Return True when ``point`` lies inside or on the boundary."""
        return (
            self.min_x - EPSILON <= point.x <= self.max_x + EPSILON
            and self.min_y - EPSILON <= point.y <= self.max_y + EPSILON
        )

    def contains_rect(self, other: "Rect") -> bool:
        """Return True when ``other`` is fully inside this rectangle."""
        return (
            self.min_x - EPSILON <= other.min_x
            and self.min_y - EPSILON <= other.min_y
            and other.max_x <= self.max_x + EPSILON
            and other.max_y <= self.max_y + EPSILON
        )

    def intersects(self, other: "Rect") -> bool:
        """Return True when the two rectangles share at least one point."""
        return not (
            other.min_x > self.max_x + EPSILON
            or other.max_x < self.min_x - EPSILON
            or other.min_y > self.max_y + EPSILON
            or other.max_y < self.min_y - EPSILON
        )

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def union(self, other: "Rect") -> "Rect":
        """Return the smallest rectangle covering both rectangles."""
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def union_point(self, point: Point) -> "Rect":
        """Return the smallest rectangle covering this one and ``point``."""
        return Rect(
            min(self.min_x, point.x),
            min(self.min_y, point.y),
            max(self.max_x, point.x),
            max(self.max_y, point.y),
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Return the overlap rectangle, or None when disjoint."""
        min_x = max(self.min_x, other.min_x)
        min_y = max(self.min_y, other.min_y)
        max_x = min(self.max_x, other.max_x)
        max_y = min(self.max_y, other.max_y)
        if min_x > max_x or min_y > max_y:
            return None
        return Rect(min_x, min_y, max_x, max_y)

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to absorb ``other``.

        This is the classic Guttman insertion heuristic used by
        :class:`repro.index.rtree.RTree` to choose subtrees.  Computed
        directly — choose-leaf evaluates it for every child on the
        descent path, and a ``union`` allocation per evaluation
        dominates live-ingest cost.
        """
        min_x = self.min_x if self.min_x < other.min_x else other.min_x
        min_y = self.min_y if self.min_y < other.min_y else other.min_y
        max_x = self.max_x if self.max_x > other.max_x else other.max_x
        max_y = self.max_y if self.max_y > other.max_y else other.max_y
        return (max_x - min_x) * (max_y - min_y) - (
            self.max_x - self.min_x
        ) * (self.max_y - self.min_y)

    def expanded(self, margin: float) -> "Rect":
        """Return this rectangle grown by ``margin`` on every side."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        return Rect(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def min_distance_to_point(self, point: Point) -> float:
        """MINDIST: smallest distance from ``point`` to the rectangle.

        Zero when the point lies inside.  This is the classic lower bound
        used by best-first R-tree search.
        """
        dx = max(self.min_x - point.x, 0.0, point.x - self.max_x)
        dy = max(self.min_y - point.y, 0.0, point.y - self.max_y)
        return math.hypot(dx, dy)

    def max_distance_to_point(self, point: Point) -> float:
        """MAXDIST: largest distance from ``point`` to the rectangle.

        Achieved at one of the rectangle corners; it upper-bounds the
        distance from the query point to *any* object inside the node and
        is needed for the lower-bound side of why-not rank bounding
        (DESIGN.md Section 3.4).
        """
        dx = max(abs(point.x - self.min_x), abs(point.x - self.max_x))
        dy = max(abs(point.y - self.min_y), abs(point.y - self.max_y))
        return math.hypot(dx, dy)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """Return the four rectangle corners (counter-clockwise)."""
        return (
            Point(self.min_x, self.min_y),
            Point(self.max_x, self.min_y),
            Point(self.max_x, self.max_y),
            Point(self.min_x, self.max_y),
        )

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)``."""
        return (self.min_x, self.min_y, self.max_x, self.max_y)
