"""Live mutation of the object database ``D``: insert / update / delete.

The paper freezes ``D`` at construction; a *service* (Fig. 1) serving
millions of users must ingest and retire geo-textual objects while
answering queries — the evolving-corpus workload QDR-Tree-style dynamic
spatio-textual indexes target (PAPERS.md).  This module is the substrate
every layer builds on:

* :class:`Mutation` — one insert/update/delete, validated at creation.
* :class:`MutableDatabase` — owns a :class:`~repro.core.objects.SpatialDatabase`
  and applies mutation *batches* to it under a monotone generation
  counter.  A batch is normalised to its net effect (removed + appended
  object sets) with sequential semantics, then pushed through the
  database (incremental vocabulary interning: new keywords append bit
  positions, existing doc masks stay valid) and into every registered
  listener — kernels tombstone + append + compact, shard routers
  re-route, indexes insert/delete, executors invalidate scoped.
* :class:`BatchSummary` — the batch's spatial region, added-keyword
  union and id sets, with the same MINDIST + keyword-union score bounds
  the sharding tier prunes with.  The executor tier's *scoped*
  invalidation asks it whether a cached top-k result could possibly be
  affected; entries that provably cannot change survive a write.
* :class:`ReadWriteLock` — many concurrent readers (queries, why-not
  answering) against exclusive writers (mutation batches), so a search
  never observes a half-applied batch.

Correctness contract (property-tested in
``tests/properties/test_prop_mutations.py``): after any mutation
sequence, top-k results and all three why-not refinement paths are
bit-for-bit identical to a fresh engine built from the final object set
over the same dataspace.  The dataspace is pinned at construction — the
distance normaliser, and therefore every score float, never moves;
objects arriving outside it clamp to ``SDist = 1`` exactly like query
points outside it always have.

Order rule shared by the database and every incrementally-maintained
kernel: survivors keep their relative order, appended objects go to the
end, and an update *moves the object to the end* (remove + append).  A
compacted kernel's row order therefore always equals the database's
object order, and a fresh rebuild from ``database.objects`` reproduces
both.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Protocol, Sequence

from repro import concurrency
from repro.core.geometry import Rect
from repro.core.kernel import ScoringKernel
from repro.core.objects import SpatialDatabase, SpatialObject

__all__ = [
    "AppliedBatch",
    "BatchSummary",
    "MissingTargetError",
    "Mutation",
    "MutationError",
    "MutableDatabase",
    "MutationStats",
    "ReadWriteLock",
]

#: Margin mirroring the sharding tier's defensive skip margin: the
#: MINDIST arithmetic rides ``math.hypot``, which is faithful rather
#: than exactly monotone, so "provably cannot affect" requires the
#: bound to sit this far below the threshold.
_AFFECT_MARGIN = 1e-12

_KINDS = ("insert", "update", "delete")


class MutationError(ValueError):
    """An invalid mutation or batch (duplicate id, emptying batch, …)."""


class MissingTargetError(MutationError):
    """An update or delete referenced an object that does not exist.

    Separate from the generic :class:`MutationError` so the HTTP layer
    can map it to a 404 rather than a batch-conflict status.
    """


@dataclass(frozen=True, slots=True)
class Mutation:
    """One object-level change: ``insert``, ``update`` or ``delete``.

    ``obj`` carries the new object for inserts and updates; deletes
    carry only the ``oid``.  Use the three classmethods — they validate
    shape so a malformed mutation fails at creation, not mid-batch.
    """

    kind: str
    oid: int
    obj: SpatialObject | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise MutationError(
                f"unknown mutation kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.kind == "delete":
            if self.obj is not None:
                raise MutationError("a delete carries no object payload")
        elif self.obj is None:
            raise MutationError(f"an {self.kind} requires an object payload")
        elif self.obj.oid != self.oid:
            raise MutationError(
                f"mutation oid {self.oid} does not match object id {self.obj.oid}"
            )
        if self.oid < 0:
            raise MutationError("object ids are non-negative")

    @classmethod
    def insert(cls, obj: SpatialObject) -> "Mutation":
        return cls(kind="insert", oid=obj.oid, obj=obj)

    @classmethod
    def update(cls, obj: SpatialObject) -> "Mutation":
        return cls(kind="update", oid=obj.oid, obj=obj)

    @classmethod
    def delete(cls, oid: int) -> "Mutation":
        return cls(kind="delete", oid=oid)


class _SupportsQueryMeta(Protocol):
    """What :meth:`BatchSummary.affects_topk` reads off a cache entry."""

    loc: object  # Point
    doc: frozenset[str]
    ws: float
    wt: float
    kth_score: float
    result_oids: frozenset[int]
    full: bool


class _SupportsWhyNotMeta(Protocol):
    """What :meth:`BatchSummary.affects_whynot` reads off a cache entry.

    ``keyword_universe`` is ``q.doc ∪ ⋃ missing docs`` — every keyword
    the answer's arithmetic can ever touch: the keyword adapter only
    enumerates candidates ``(q.doc \\ D) ∪ A`` with ``A ⊆ M.doc``, so a
    delta object disjoint from the universe has TSim 0 under the
    original query *and* every candidate refinement.
    ``min_missing_prox`` is ``min_m (1 − SDist(m, q))`` over the missing
    set.  ``initial`` is the cached initial top-k's meta for the models
    that consume one (full/explain), else None.
    """

    missing_oids: frozenset[int]
    loc: object  # Point
    keyword_universe: frozenset[str]
    min_missing_prox: float
    initial: "_SupportsQueryMeta | None"


@dataclass(frozen=True, slots=True)
class BatchSummary:
    """What one applied batch touched, priced for impact tests.

    ``region`` is the MBR of the *added* (inserted/updated) locations,
    ``added_keywords`` their keyword union and ``min_added_doc_len``
    their shortest document — together they bound any added object's
    score under any query exactly like a shard's static bounds bound its
    objects' scores (:class:`repro.core.sharding.Shard`).  ``removed_oids``
    and ``added_oids`` drive the membership tests.  ``model_code`` is
    the engine's kernel model (None disables the text bound and makes
    every impact test conservatively positive).

    ``added_rows`` / ``removed_rows`` are the per-object
    ``(x, y, mask, doc_len, oid)`` column rows the answer-maintenance
    tier scores against cached query scalars
    (:func:`repro.core.kernel.score_delta_rows`): added rows align with
    :attr:`AppliedBatch.appended`, removed rows carry the *previous*
    instances' cells — exactly what the pre-batch kernel held for them.
    Both are encoded under the engine's writer lock against the
    already-extended vocabulary, so maintenance never reads kernel
    columns and is identical whether shards scatter over threads or
    processes.  Empty when the engine runs no columnar kernel.
    """

    generation: int
    removed_oids: frozenset[int]
    added_oids: frozenset[int]
    region: Rect | None
    added_keywords: frozenset[str]
    min_added_doc_len: int
    model_code: str | None
    normaliser: float
    removed_region: Rect | None = None
    removed_keywords: frozenset[str] = frozenset()
    added_rows: tuple[tuple[float, float, int, int, int], ...] = ()
    removed_rows: tuple[tuple[float, float, int, int, int], ...] = ()

    # ------------------------------------------------------------------
    # Score bounds over the added objects (shard-bound arithmetic)
    # ------------------------------------------------------------------
    def _region_proximity_upper_bound(self, region: Rect | None, loc) -> float:
        """``1 − MINDIST/norm`` (clamped) over a region, 0.0 when empty."""
        if region is None:
            return 0.0
        dx = max(region.min_x - loc.x, 0.0, loc.x - region.max_x)
        dy = max(region.min_y - loc.y, 0.0, loc.y - region.max_y)
        sdist = math.hypot(dx, dy) / self.normaliser
        if sdist > 1.0:
            sdist = 1.0
        return 1.0 - sdist

    def proximity_upper_bound(self, loc) -> float:
        """``max (1 − SDist(o, q))`` over added objects, via region MINDIST."""
        return self._region_proximity_upper_bound(self.region, loc)

    def removed_proximity_upper_bound(self, loc) -> float:
        """``max (1 − SDist(o, q))`` over the *removed* objects' old rows."""
        return self._region_proximity_upper_bound(self.removed_region, loc)

    def tsim_upper_bound(self, query_doc: frozenset[str]) -> float:
        """``max TSim(o, q)`` over added objects (keyword-union bound).

        Mirrors :meth:`repro.core.sharding.Shard.tsim_upper_bound` with
        the batch's keyword union and shortest added doc.
        """
        qlen = len(query_doc)
        m = len(self.added_keywords & query_doc)
        if m == 0 or qlen == 0:
            return 0.0
        code = self.model_code
        if code is None:
            return 1.0
        floor_len = max(self.min_added_doc_len, m)
        if code == "jaccard":
            return m / (floor_len + qlen - m)
        if code == "dice":
            return 2.0 * m / (floor_len + qlen)
        if m >= self.min_added_doc_len:
            return 1.0
        return min(1.0, m / min(self.min_added_doc_len, qlen))

    # ------------------------------------------------------------------
    # Impact tests (executor scoped invalidation)
    # ------------------------------------------------------------------
    def affects_topk(self, meta: _SupportsQueryMeta) -> bool:
        """Could this batch change the cached top-k result ``meta`` describes?

        Exact-safe, never exact-tight: a False is a proof the cached
        result is still the fresh engine's answer —

        * a removed object outside the result cannot change anyone
          else's score or admit a new member, and
        * an added object whose score upper bound sits strictly below
          the cached k-th score (minus the ``hypot`` margin) cannot
          displace a member, not even by tie-break (which needs score
          equality).
        """
        touched = self.removed_oids | self.added_oids
        if touched & meta.result_oids:
            return True
        if not self.added_oids:
            return False
        if not meta.full:
            # The result holds fewer than k objects: any insertion joins.
            return True
        if self.model_code is None:
            return True
        bound = meta.ws * self.proximity_upper_bound(
            meta.loc
        ) + meta.wt * self.tsim_upper_bound(meta.doc)
        return bound >= meta.kth_score - _AFFECT_MARGIN

    def affects_whynot(self, meta: _SupportsWhyNotMeta) -> bool:
        """Could this batch change the cached why-not answer ``meta`` describes?

        Exact-safe for *all five* answer models via a dominance
        argument.  A False proves every delta object scores strictly
        below every missing object at **every** interior weight and
        under **every** candidate keyword set the refiners enumerate:

        * keywords disjoint from ``q.doc ∪ ⋃ missing docs`` give the
          delta object TSim 0 under the original doc and every
          refinement candidate (the adapter only edits within that
          universe), and
        * proximity strictly below every missing object's makes its
          score line lie strictly under each missing object's line on
          the whole open weight interval — no crossover inside (0, 1),
          so ranks, beater counts, strictly-closer / strictly-more-
          similar counts and viable-weight intervals are all untouched.

        Models that consume the initial top-k (full/explain) addition-
        ally require the initial result to be provably unaffected.
        """
        touched = self.removed_oids | self.added_oids
        if touched & meta.missing_oids:
            return True
        if meta.initial is not None and self.affects_topk(meta.initial):
            return True
        if not touched:
            return False
        if self.model_code is None:
            return True
        if (self.added_keywords | self.removed_keywords) & meta.keyword_universe:
            return True
        bound = max(
            self.proximity_upper_bound(meta.loc),
            self.removed_proximity_upper_bound(meta.loc),
        )
        return bound >= meta.min_missing_prox - _AFFECT_MARGIN


@dataclass(frozen=True, slots=True)
class AppliedBatch:
    """The net effect of one applied batch, for listeners.

    ``removed`` holds the *previous* object instances (indexes delete by
    object + location); ``appended`` the new instances in append order.
    An updated object appears in both.
    """

    generation: int
    removed: tuple[SpatialObject, ...]
    appended: tuple[SpatialObject, ...]
    inserted_count: int
    updated_count: int
    deleted_count: int
    summary: BatchSummary

    @property
    def removed_oids(self) -> frozenset[int]:
        return self.summary.removed_oids

    @property
    def is_noop(self) -> bool:
        """True when the batch normalised to no net change.

        ``insert(9); delete(9)`` is a valid batch whose net effect is
        empty: nothing moves, nothing is logged, and ``generation`` is
        the *unchanged* current generation — replaying a durable log
        therefore reconstructs the exact same generation sequence
        (replay idempotence).
        """
        return not self.removed and not self.appended


class MutationListener(Protocol):
    """A structure maintained incrementally under mutation."""

    def apply_mutations(self, change: AppliedBatch) -> None: ...


class MutationStats:
    """Cumulative mutation counters (``GET /api/stats`` mutations section)."""

    __slots__ = ("_lock", "batches", "inserted", "updated", "deleted")

    def __init__(self) -> None:
        self._lock = concurrency.ordered_lock(
            "mutations.stats", concurrency.LEVEL_LEAF
        )
        self.batches = 0
        self.inserted = 0
        self.updated = 0
        self.deleted = 0

    def record(self, change: AppliedBatch) -> None:
        with self._lock:
            self.batches += 1
            self.inserted += change.inserted_count
            self.updated += change.updated_count
            self.deleted += change.deleted_count

    def to_dict(self) -> dict[str, int]:
        with self._lock:
            return {
                "batches": self.batches,
                "inserted": self.inserted,
                "updated": self.updated,
                "deleted": self.deleted,
            }


class ReadWriteLock:
    """Readers-preference RW lock for the query/mutation tiers.

    Many readers share the lock; a writer is exclusive.  New readers are
    only blocked while a writer *holds* the lock (not while one waits),
    which makes nested read acquisition on one thread — the why-not path
    re-enters the engine for its initial top-k — deadlock-free by
    construction.  Mutation batches are rare relative to queries, so
    writer starvation is not a practical concern at this tier.

    ``name``/``level``/``fsync_safe`` place the lock in the documented
    hierarchy (:mod:`repro.concurrency`); under ``YASK_LOCKDEP=1`` the
    lock reports acquisitions to the runtime sanitizer through a
    :func:`repro.concurrency.lock_sanitizer` (it implements its own
    blocking protocol, so it cannot be wrapped like a plain mutex).
    Nested same-instance *reads* are reported as such and allowed;
    read-under-write or write-under-read on one thread is flagged.
    """

    __slots__ = ("_cond", "_readers", "_writing", "_sanitizer")

    def __init__(
        self,
        *,
        name: str = "rwlock",
        level: int | None = None,
        fsync_safe: bool = False,
    ) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writing = False
        self._sanitizer = concurrency.lock_sanitizer(
            name, level=level, fsync_safe=fsync_safe
        )

    @contextmanager
    def read(self) -> Iterator[None]:
        san = self._sanitizer
        if san is not None:
            san.acquiring("read")
        with self._cond:
            while self._writing:
                self._cond.wait()
            self._readers += 1
        if san is not None:
            san.acquired("read")
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()
            if san is not None:
                san.released("read")

    @contextmanager
    def write(self) -> Iterator[None]:
        san = self._sanitizer
        if san is not None:
            san.acquiring("write")
        with self._cond:
            while self._writing or self._readers:
                self._cond.wait()
            self._writing = True
        if san is not None:
            san.acquired("write")
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()
            if san is not None:
                san.released("write")


class MutableDatabase:
    """Mutation coordinator over one :class:`SpatialDatabase`.

    Validates and normalises batches, applies them to the database
    (epoch/generation tracking, incremental vocabulary interning), then
    notifies registered listeners in registration order — kernels before
    routers before indexes, as the engine registers them.  All of this
    happens under the caller's write lock (the engine's
    :class:`ReadWriteLock`); this class itself adds no locking beyond
    its stats counters.
    """

    #: Bound on remembered idempotency tokens (oldest evicted first) —
    #: a retry storm cannot grow the map without limit, and a client
    #: that retries within the newest TOKEN_CAPACITY batches still
    #: dedups exactly.
    TOKEN_CAPACITY = 4096

    def __init__(
        self,
        database: SpatialDatabase,
        *,
        model_code: str | None = None,
        start_generation: int = 0,
        tokens: Mapping[str, int] | None = None,
    ) -> None:
        if start_generation < 0:
            raise ValueError("start_generation must be non-negative")
        self._database = database
        self._generation = start_generation
        self._listeners: list[MutationListener] = []
        self._model_code = model_code
        # token -> the generation its batch became; insertion-ordered
        # for bounded LRU-ish eviction.  Seeded from WAL replay so a
        # client retry spanning a restart still dedups.
        self._tokens: dict[str, int] = dict(tokens) if tokens else {}
        self._evict_tokens()
        self.stats = MutationStats()

    @property
    def database(self) -> SpatialDatabase:
        return self._database

    @property
    def generation(self) -> int:
        """Number of effective batches applied so far (monotone).

        Starts at ``start_generation`` — a durable engine recovered from
        a snapshot resumes counting where the snapshot left off.
        Batches that normalise to a net no-op do not advance it.
        """
        return self._generation

    def register_listener(self, listener: MutationListener) -> None:
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Idempotency tokens
    # ------------------------------------------------------------------
    def token_generation(self, token: str) -> int | None:
        """The generation ``token``'s batch became, or ``None`` if unknown."""
        return self._tokens.get(token)

    def known_tokens(self) -> dict[str, int]:
        """A copy of the token map (recovery seeds a rebuilt engine with it)."""
        return dict(self._tokens)

    def _remember_token(self, token: str, generation: int) -> None:
        self._tokens[token] = generation
        self._evict_tokens()

    def _evict_tokens(self) -> None:
        while len(self._tokens) > self.TOKEN_CAPACITY:
            self._tokens.pop(next(iter(self._tokens)))

    # ------------------------------------------------------------------
    # Batch normalisation
    # ------------------------------------------------------------------
    def _normalise(
        self, mutations: Sequence[Mutation]
    ) -> tuple[dict[int, SpatialObject], dict[int, SpatialObject], int, int, int]:
        """Sequential semantics → net (removed, appended) object maps.

        ``insert(5); delete(5)`` is a no-op; ``delete(5); insert(5)``
        nets to an update; repeated updates keep the last payload.
        """
        database = self._database
        removed: dict[int, SpatialObject] = {}
        appended: dict[int, SpatialObject] = {}
        inserted = updated = deleted = 0

        def present(oid: int) -> bool:
            if oid in appended:
                return True
            return oid in database and oid not in removed

        for mutation in mutations:
            oid = mutation.oid
            if mutation.kind == "insert":
                if present(oid):
                    raise MutationError(
                        f"cannot insert object {oid}: id already in use"
                    )
                appended[oid] = mutation.obj
                inserted += 1
            elif mutation.kind == "update":
                if not present(oid):
                    raise MissingTargetError(
                        f"cannot update object {oid}: no such object"
                    )
                if oid in appended:
                    appended[oid] = mutation.obj
                else:
                    removed[oid] = database.get(oid)
                    appended[oid] = mutation.obj
                updated += 1
            else:  # delete
                if not present(oid):
                    raise MissingTargetError(
                        f"cannot delete object {oid}: no such object"
                    )
                if oid in appended:
                    del appended[oid]
                else:
                    removed[oid] = database.get(oid)
                deleted += 1
        survivors = len(database) - len(removed) + len(appended)
        if survivors < 1:
            raise MutationError("a mutation batch must not empty the database")
        return removed, appended, inserted, updated, deleted

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(
        self,
        mutations: Sequence[Mutation],
        *,
        pre_commit: Callable[[int, Sequence[Mutation]], None] | None = None,
        token: str | None = None,
    ) -> AppliedBatch:
        """Validate, normalise and apply one batch; notify listeners.

        Returns the :class:`AppliedBatch` (with its
        :class:`BatchSummary`) so the serving tier can run scoped cache
        invalidation against exactly what changed.  Caller must hold the
        engine's write lock when readers may be concurrent.

        ``pre_commit`` is the write-ahead hook: it is called with the
        generation this batch is about to become and the validated
        mutations *after* normalisation succeeds but *before* any state
        moves.  If it raises, the batch is abandoned untouched — this is
        how the durable engine guarantees a batch is on stable storage
        before it is ever visible to a reader, and conversely that a
        batch that failed to log is never half-applied.

        ``token`` is the client's idempotency token: it is remembered
        (bounded) against the batch's resulting generation *only after*
        the batch fully commits, so the engine-level dedup check never
        acknowledges a batch that failed mid-way.  Dedup lookup itself
        happens in the engine, under its write lock, before this method
        runs.

        A batch whose net effect is empty (``insert(9); delete(9)``)
        returns an :class:`AppliedBatch` with ``is_noop`` set: the
        generation does not advance, listeners are not notified and
        ``pre_commit`` is not called, so a replayed log reconstructs the
        exact generation sequence of the original run.
        """
        if not mutations:
            raise MutationError("a mutation batch must not be empty")
        removed, appended, inserted, updated, deleted = self._normalise(
            mutations
        )
        appended_objects = tuple(appended.values())
        if not removed and not appended_objects:
            if token is not None:
                self._remember_token(token, self._generation)
            return AppliedBatch(
                generation=self._generation,
                removed=(),
                appended=(),
                inserted_count=inserted,
                updated_count=updated,
                deleted_count=deleted,
                summary=self._summarise({}, ()),
            )
        generation = self._generation + 1
        if pre_commit is not None:
            pre_commit(generation, mutations)
        self._database._apply_mutations(set(removed), appended_objects)
        self._generation = generation
        summary = self._summarise(removed, appended_objects)
        change = AppliedBatch(
            generation=self._generation,
            removed=tuple(removed.values()),
            appended=appended_objects,
            inserted_count=inserted,
            updated_count=updated,
            deleted_count=deleted,
            summary=summary,
        )
        for listener in self._listeners:
            listener.apply_mutations(change)
        if token is not None:
            self._remember_token(token, self._generation)
        self.stats.record(change)
        return change

    def _summarise(
        self,
        removed: dict[int, SpatialObject],
        appended: Sequence[SpatialObject],
    ) -> BatchSummary:
        keywords: set[str] = set()
        min_len = 0
        for obj in appended:
            keywords.update(obj.doc)
        if appended:
            min_len = min(len(obj.doc) for obj in appended)
        removed_keywords: set[str] = set()
        for obj in removed.values():
            removed_keywords.update(obj.doc)
        # The maintenance row payload: encoded here, after
        # ``_apply_mutations`` extended the vocabulary and while the
        # caller still holds the engine's writer lock — the one place
        # both delta sides are visible against post-batch bit positions.
        added_rows: tuple[tuple[float, float, int, int, int], ...] = ()
        removed_rows: tuple[tuple[float, float, int, int, int], ...] = ()
        if self._model_code is not None and self._database.interned:
            vocabulary = self._database.vocabulary_index
            added_rows = ScoringKernel.encode_rows(appended, vocabulary)
            removed_rows = ScoringKernel.encode_rows(
                tuple(removed.values()), vocabulary
            )
        return BatchSummary(
            generation=self._generation,
            removed_oids=frozenset(removed),
            added_oids=frozenset(obj.oid for obj in appended),
            region=(
                Rect.from_points(obj.loc for obj in appended)
                if appended
                else None
            ),
            added_keywords=frozenset(keywords),
            min_added_doc_len=min_len,
            model_code=self._model_code,
            normaliser=self._database.distance_normaliser,
            removed_region=(
                Rect.from_points(obj.loc for obj in removed.values())
                if removed
                else None
            ),
            removed_keywords=frozenset(removed_keywords),
            added_rows=added_rows,
            removed_rows=removed_rows,
        )

    def to_dict(self) -> dict[str, int]:
        """The ``GET /api/stats`` mutations payload core."""
        return {"generation": self._generation, **self.stats.to_dict()}
