"""The ``@hot_path`` marker: a per-row scan loop under the E11/E12 floors.

Purely declarative — the decorator returns the function unchanged (no
wrapper: a wrapper would itself be a per-call cost) and sets a
``__yask_hot_path__`` attribute.  Its teeth are static: yasklint rule
YASK104 forbids allocation-heavy constructs (list/set/dict
comprehensions, ``getattr``/``setattr``/``hasattr``, try/except,
lambdas, nested defs) inside the *innermost* loops of any marked
function, because those re-run once per database row and erode the
columnar kernel's measured wins.  Setup work before the loops —
hoisting columns into locals, precomputing masks — is exactly what the
kernel's style encourages and is not policed.

Mark a function when its innermost loop iterates once per object/row
of the database (kernel full passes, shard scan loops).  Do not mark
coordination-tier code; the rule is a perf contract, not a style
preference.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable[..., object])


def hot_path(func: F) -> F:
    """Mark ``func`` as a per-row hot loop (see module docstring)."""
    func.__yask_hot_path__ = True  # type: ignore[attr-defined]
    return func
