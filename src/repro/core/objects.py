"""Spatial objects and the object database ``D``.

Section 2.1 of the paper: "Let D denote a database of spatial objects.
Each object o ∈ D is defined as a pair (o.loc, o.doc), where o.loc is the
location of the object and o.doc is a set of keywords that describe the
object."

:class:`SpatialObject` is that pair (plus an identifier and an optional
human-readable name used by the demonstration GUI panels), and
:class:`SpatialDatabase` is ``D`` together with the dataspace rectangle
that normalises Euclidean distances into ``[0, 1]`` as Eqn. (1) requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Callable, Iterable, Iterator, Mapping, Sequence

from repro.core.geometry import Point, Rect
from repro.text.tokenize import document_frequencies
from repro.text.vocabulary import Vocabulary

__all__ = ["SpatialObject", "SpatialDatabase"]


@dataclass(frozen=True, slots=True)
class SpatialObject:
    """A spatial web object ``o = (o.loc, o.doc)``.

    Parameters
    ----------
    oid:
        Unique non-negative identifier within a database.  All engines
        break score ties deterministically by ascending ``oid`` so that
        results and ranks are total orders.
    loc:
        Object location (``o.loc``).
    doc:
        Keyword set (``o.doc``).  Stored as a ``frozenset`` so objects
        are hashable and keyword sets can never drift under an index.
    name:
        Optional display name (e.g. the hotel name); used by the service
        layer and the demonstration panels, never by ranking.
    """

    oid: int
    loc: Point
    doc: frozenset[str]
    name: str | None = None

    def __post_init__(self) -> None:
        if self.oid < 0:
            raise ValueError(f"object id must be non-negative, got {self.oid}")
        if not isinstance(self.doc, frozenset):
            # Accept any iterable of keywords for convenience.
            object.__setattr__(self, "doc", frozenset(self.doc))

    @property
    def label(self) -> str:
        """Display label: the name when present, else ``object-<oid>``."""
        return self.name if self.name is not None else f"object-{self.oid}"

    def describe(self) -> str:
        """Return a one-line human-readable summary."""
        keywords = ", ".join(sorted(self.doc))
        return f"{self.label} @ ({self.loc.x:.4f}, {self.loc.y:.4f}) [{keywords}]"


class SpatialDatabase:
    """The database ``D`` of spatial objects plus its dataspace.

    The dataspace rectangle determines the normalisation constant for
    ``SDist``: the paper requires a *normalised* spatial distance, and the
    maximum possible Euclidean distance within a rectangular dataspace is
    its diagonal.  When no dataspace is given, the MBR of the objects is
    used (optionally expanded by ``margin`` so query points slightly
    outside the data extent still normalise below 1).

    The database is immutable through its public surface; engines and
    indexes capture it by reference.  Live mutation goes through
    :class:`repro.core.mutations.MutableDatabase`, which calls the
    package-private :meth:`_apply_mutations` — the dataspace (and hence
    the distance normaliser, i.e. every score float) is pinned at
    construction and never changes, and the interned vocabulary grows
    append-only so existing doc masks stay valid.
    """

    def __init__(
        self,
        objects: Iterable[SpatialObject],
        *,
        dataspace: Rect | None = None,
        margin: float = 0.0,
    ) -> None:
        self._objects: tuple[SpatialObject, ...] = tuple(objects)
        if not self._objects:
            raise ValueError("a SpatialDatabase requires at least one object")
        self._by_id: dict[int, SpatialObject] = {}
        self._by_name: dict[str, SpatialObject] = {}
        for obj in self._objects:
            if obj.oid in self._by_id:
                raise ValueError(f"duplicate object id {obj.oid}")
            self._by_id[obj.oid] = obj
            if obj.name is not None and obj.name not in self._by_name:
                self._by_name[obj.name] = obj
        if dataspace is None:
            dataspace = Rect.from_points(obj.loc for obj in self._objects)
            if margin > 0.0:
                dataspace = dataspace.expanded(margin)
        self._dataspace = dataspace
        diagonal = dataspace.diagonal
        # A degenerate (single-point) dataspace would make every distance
        # 0/0; treat it as the unit of measure instead so SDist stays 0.
        self._normaliser = diagonal if diagonal > 0.0 else 1.0
        # Interned keyword table and per-object doc bitmasks (the
        # columnar substrate of repro.core.kernel), built lazily on
        # first use so text models without a kernel never pay for them
        # — but at most once per database, shared by every kernel.
        self._vocabulary_index: Vocabulary | None = None
        self._doc_masks: tuple[int, ...] | None = None

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[SpatialObject]:
        return iter(self._objects)

    def __contains__(self, obj: object) -> bool:
        if isinstance(obj, SpatialObject):
            return self._by_id.get(obj.oid) is obj
        if isinstance(obj, int):
            return obj in self._by_id
        return False

    @property
    def objects(self) -> tuple[SpatialObject, ...]:
        """All objects, in insertion order."""
        return self._objects

    @property
    def dataspace(self) -> Rect:
        """The normalisation rectangle."""
        return self._dataspace

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, oid: int) -> SpatialObject:
        """Return the object with identifier ``oid``.

        Raises ``KeyError`` for unknown identifiers — a why-not question
        about an object outside ``D`` is a caller error, not a missing
        object (Definitions 2 and 3 require ``M ⊂ D``).
        """
        try:
            return self._by_id[oid]
        except KeyError:
            raise KeyError(f"no object with id {oid} in database") from None

    def find_by_name(self, name: str) -> SpatialObject | None:
        """Return the first object carrying ``name``, or None.

        Mirrors the demonstration GUI where "desired hotels can be
        selected by entering their names" (Section 4).
        """
        return self._by_name.get(name)

    def resolve(self, reference: int | str | SpatialObject) -> SpatialObject:
        """Resolve an object id, name or object instance to an object."""
        if isinstance(reference, SpatialObject):
            return self.get(reference.oid)
        if isinstance(reference, int):
            return self.get(reference)
        obj = self.find_by_name(reference)
        if obj is None:
            raise KeyError(f"no object named {reference!r} in database")
        return obj

    # ------------------------------------------------------------------
    # Distance normalisation
    # ------------------------------------------------------------------
    @property
    def distance_normaliser(self) -> float:
        """The constant dividing raw Euclidean distances (the diagonal)."""
        return self._normaliser

    def normalized_distance(self, a: Point, b: Point) -> float:
        """Return ``SDist`` ∈ [0, 1]: Euclidean distance over the diagonal.

        Distances are clamped at 1 so that query points outside the
        dataspace cannot produce negative spatial proximity in Eqn. (1).
        """
        return min(a.distance_to(b) / self._normaliser, 1.0)

    # ------------------------------------------------------------------
    # Corpus statistics
    # ------------------------------------------------------------------
    def vocabulary(self) -> frozenset[str]:
        """Union of all object keyword sets."""
        vocab: set[str] = set()
        for obj in self._objects:
            vocab.update(obj.doc)
        return frozenset(vocab)

    def _ensure_interned(self) -> None:
        """Build the vocabulary table and doc masks on first demand.

        Idempotent and safe under a benign race: concurrent builders
        derive identical immutable values from the immutable objects,
        and each attribute assignment is atomic.
        """
        if self._doc_masks is None:
            index = Vocabulary(obj.doc for obj in self._objects)
            encode = index.encode
            self._vocabulary_index = index
            self._doc_masks = tuple(encode(obj.doc) for obj in self._objects)

    @property
    def interned(self) -> bool:
        """Whether the vocabulary table and doc masks exist yet."""
        return self._doc_masks is not None

    @property
    def vocabulary_index(self) -> Vocabulary:
        """The interned keyword → bit-position table of this corpus."""
        self._ensure_interned()
        return self._vocabulary_index

    @property
    def doc_masks(self) -> tuple[int, ...]:
        """Per-object doc bitmasks, aligned with :attr:`objects`."""
        self._ensure_interned()
        return self._doc_masks

    def adopt_vocabulary(self, keywords: Iterable[str]) -> None:
        """Re-intern against an explicit bit-position order.

        Index persistence calls this so doc masks saved alongside a tree
        decode identically after a load (a plain re-intern sorts the
        corpus and can reorder positions an extended vocabulary assigned
        append-only).  The order must cover the whole corpus.

        Once this database has interned — a scoring kernel may have
        snapshotted its masks in the current bit positions — adopting a
        *different* order is refused: consumers encode queries against
        the live table, so reordering positions under them would make
        every mask comparison silently wrong.  Load persisted indexes
        over a freshly constructed database instead.
        """
        index = Vocabulary.from_ordered(keywords)
        if self._doc_masks is not None:
            if index.keywords == self._vocabulary_index.keywords:
                return  # identical order: nothing to do
            raise ValueError(
                "cannot adopt a different vocabulary order: this database "
                "already interned and kernels may hold its doc masks; "
                "attach the persisted index to a freshly built database"
            )
        try:
            masks = tuple(index.encode(obj.doc) for obj in self._objects)
        except KeyError as exc:
            raise ValueError(
                f"adopted vocabulary is missing corpus keyword {exc.args[0]!r}"
            ) from None
        self._vocabulary_index = index
        self._doc_masks = masks

    # ------------------------------------------------------------------
    # Mutation (package-private: see repro.core.mutations)
    # ------------------------------------------------------------------
    def _apply_mutations(
        self,
        removed_oids: AbstractSet[int],
        appended: Sequence[SpatialObject],
    ) -> None:
        """Apply one normalised mutation batch in place.

        The caller (:class:`~repro.core.mutations.MutableDatabase`) has
        already validated the batch: removed ids exist, appended ids are
        unused after the removals, and the batch does not empty the
        database.  Order rule shared with every incrementally-maintained
        kernel: survivors keep their relative order, appended objects
        go to the end — so a compacted kernel's row order always equals
        this object order.  Updates arrive decomposed as remove + append
        (the updated object moves to the end).
        """
        previous = self._objects
        if not removed_oids:
            # Insert-only fast path (the live-ingest common case): C-speed
            # tuple concatenation and pure dict additions — no rebuild of
            # the id/name tables for the untouched survivors.
            self._objects = previous + tuple(appended)
            for obj in appended:
                self._by_id[obj.oid] = obj
                if obj.name is not None and obj.name not in self._by_name:
                    self._by_name[obj.name] = obj
            if self._doc_masks is not None:
                index = self._vocabulary_index.extended(
                    obj.doc for obj in appended
                )
                self._vocabulary_index = index
                encode = index.encode
                self._doc_masks = self._doc_masks + tuple(
                    encode(obj.doc) for obj in appended
                )
            return
        kept = [obj for obj in previous if obj.oid not in removed_oids]
        kept.extend(appended)
        self._objects = tuple(kept)
        self._by_id = {obj.oid: obj for obj in self._objects}
        by_name: dict[str, SpatialObject] = {}
        for obj in self._objects:
            if obj.name is not None and obj.name not in by_name:
                by_name[obj.name] = obj
        self._by_name = by_name
        if self._doc_masks is not None:
            # Incremental interning: existing masks keep their bit
            # positions (the vocabulary only ever appends), so only the
            # appended objects are encoded.  Old masks are aligned with
            # the previous object order; filter with the predicate the
            # object rebuild used.
            index = self._vocabulary_index.extended(
                obj.doc for obj in appended
            )
            self._vocabulary_index = index
            encode = index.encode
            self._doc_masks = tuple(
                [
                    mask
                    for obj, mask in zip(previous, self._doc_masks)
                    if obj.oid not in removed_oids
                ]
                + [encode(obj.doc) for obj in appended]
            )

    def keyword_document_frequencies(self) -> dict[str, int]:
        """Keyword → number of objects containing it."""
        return document_frequencies([obj.doc for obj in self._objects])

    def filter(self, predicate: Callable[[SpatialObject], bool]) -> "SpatialDatabase":
        """Return a new database over the objects satisfying ``predicate``.

        The dataspace (and therefore distance normalisation) is retained
        so scores remain comparable across the filtered view.
        """
        kept = [obj for obj in self._objects if predicate(obj)]
        if not kept:
            raise ValueError("filter removed every object")
        return SpatialDatabase(kept, dataspace=self._dataspace)

    def summary(self) -> dict[str, float | int]:
        """Return dataset statistics used by benchmarks and DESIGN docs."""
        doc_lengths = [len(obj.doc) for obj in self._objects]
        return {
            "objects": len(self._objects),
            "vocabulary": len(self.vocabulary()),
            "min_doc_len": min(doc_lengths),
            "max_doc_len": max(doc_lengths),
            "avg_doc_len": sum(doc_lengths) / len(doc_lengths),
            "dataspace_width": self._dataspace.width,
            "dataspace_height": self._dataspace.height,
        }
