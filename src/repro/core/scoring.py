"""The ranking function ``ST`` of Eqn. (1) and its score decompositions.

``ST(o, q) = ws · (1 − SDist(o, q)) + wt · TSim(o, q)``

:class:`Scorer` binds a database (for distance normalisation) to a text
similarity model and exposes:

* per-object scores and their (SDist, TSim) decomposition,
* the *dual coordinates* ``(a, b) = (1 − SDist, TSim)`` of an object
  under a query — the representation in which an object's score is the
  linear function ``w·a + (1−w)·b`` of the spatial weight, which is the
  foundation of the preference-adjustment module (DESIGN.md §3.3),
* exact ranking utilities shared by the brute-force engine, the why-not
  modules and the test oracles.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import nsmallest
from operator import neg
from typing import AbstractSet, Iterable, NamedTuple, Sequence

from repro.core.kernel import ScoringKernel
from repro.core.objects import SpatialDatabase, SpatialObject
from repro.core.sharding import ShardRouter, ShardedKernel
from repro.core.query import QueryResult, RankedObject, SpatialKeywordQuery, Weights
from repro.text.similarity import JACCARD, TextSimilarityModel

__all__ = ["ScoreBreakdown", "DualPoint", "Scorer"]


@dataclass(frozen=True, slots=True)
class ScoreBreakdown:
    """An object's score together with its two normalised components."""

    score: float
    sdist: float
    tsim: float


class DualPoint(NamedTuple):
    """Dual-space coordinates of an object under a fixed (loc, doc).

    ``a = 1 − SDist(o, q)`` (spatial proximity) and ``b = TSim(o, q)``.
    Under weights ``⟨w, 1−w⟩`` the object's score is the line
    ``f(w) = w·a + (1−w)·b``; two objects tie exactly where their lines
    cross (DESIGN.md §3.3).

    A ``NamedTuple`` so the kernel's dual view can materialise all n
    points per query at C speed via :meth:`DualPoint._make`.
    """

    oid: int
    a: float
    b: float

    def score_at(self, ws: float) -> float:
        """Score under spatial weight ``ws``."""
        return ws * self.a + (1.0 - ws) * self.b

    @property
    def slope(self) -> float:
        """d(score)/d(ws) — used by the rank-update theorem."""
        return self.a - self.b

    def crossover_with(self, other: "DualPoint") -> float | None:
        """Spatial weight where the two score lines intersect.

        Returns None when the lines are parallel (identical slope) —
        such pairs never change relative order, so they contribute no
        rank-change candidate.
        """
        denominator = self.slope - other.slope
        if denominator == 0.0:
            return None
        return (other.b - self.b) / denominator


class Scorer:
    """Evaluator of Eqn. (1) over a fixed database and text model.

    For the set models with an exact columnar formula (Jaccard, Dice,
    Overlap) the scorer carries a :class:`~repro.core.kernel.ScoringKernel`
    and routes every full-scan utility (:meth:`rank_all`, :meth:`top_k`,
    :meth:`rank_of`, :meth:`worst_rank`, :meth:`dual_points`) through its
    flat-column batch passes.  The object-at-a-time methods remain the
    semantics oracle: both paths produce bit-identical floats and the
    same (score desc, oid asc) tie order, which
    ``tests/properties/test_prop_kernel.py`` asserts.
    """

    def __init__(
        self,
        database: SpatialDatabase,
        *,
        text_model: TextSimilarityModel = JACCARD,
        use_kernel: bool = True,
        shard_router: ShardRouter | None = None,
    ) -> None:
        self._database = database
        self._text_model = text_model
        if not use_kernel:
            self._kernel = None
        elif shard_router is not None:
            # A sharded kernel: same global columns and floats, but the
            # whole-database rank primitives skip shards that provably
            # cannot hold a better-ranked object (repro.core.sharding).
            self._kernel = ShardedKernel.maybe_build(
                database, text_model, shard_router
            )
        else:
            self._kernel = ScoringKernel.maybe_build(database, text_model)

    @property
    def database(self) -> SpatialDatabase:
        return self._database

    @property
    def text_model(self) -> TextSimilarityModel:
        return self._text_model

    @property
    def kernel(self) -> ScoringKernel | None:
        """The columnar batch kernel, or None when the model needs sets."""
        return self._kernel

    def _kernel_row_for(self, obj: SpatialObject) -> int | None:
        """Row of ``obj`` when the kernel may stand in for scoring it.

        The set path scores the *passed* object, so the kernel column is
        only equivalent when the object is identical to the database's
        copy (not merely sharing an oid).
        """
        if self._kernel is None or obj not in self._database:
            return None
        return self._kernel.row_of(obj.oid)

    # ------------------------------------------------------------------
    # Component scores
    # ------------------------------------------------------------------
    def sdist(self, obj: SpatialObject, query: SpatialKeywordQuery) -> float:
        """Normalised spatial distance ``SDist(o, q)`` ∈ [0, 1]."""
        return self._database.normalized_distance(obj.loc, query.loc)

    def tsim(
        self, obj: SpatialObject, query_doc: AbstractSet[str]
    ) -> float:
        """Textual similarity ``TSim(o, q)`` ∈ [0, 1] (Eqn. 2 by default)."""
        return self._text_model.similarity(obj.doc, query_doc)

    def breakdown(
        self, obj: SpatialObject, query: SpatialKeywordQuery
    ) -> ScoreBreakdown:
        """Score an object, returning the full decomposition."""
        sdist = self.sdist(obj, query)
        tsim = self.tsim(obj, query.doc)
        score = query.ws * (1.0 - sdist) + query.wt * tsim
        return ScoreBreakdown(score=score, sdist=sdist, tsim=tsim)

    def score(self, obj: SpatialObject, query: SpatialKeywordQuery) -> float:
        """``ST(o, q)`` — Eqn. (1).

        Computed directly — no :class:`ScoreBreakdown` allocation on
        this hot path; callers needing the components use
        :meth:`breakdown`.
        """
        sdist = self._database.normalized_distance(obj.loc, query.loc)
        tsim = self._text_model.similarity(obj.doc, query.doc)
        return query.ws * (1.0 - sdist) + query.wt * tsim

    # ------------------------------------------------------------------
    # Dual-space view (preference adjustment substrate)
    # ------------------------------------------------------------------
    def dual_point(
        self, obj: SpatialObject, query: SpatialKeywordQuery
    ) -> DualPoint:
        """Map an object to its dual coordinates under ``query``.

        Only ``query.loc`` and ``query.doc`` matter; the weights are the
        free variable in dual space.
        """
        sdist = self.sdist(obj, query)
        tsim = self.tsim(obj, query.doc)
        return DualPoint(oid=obj.oid, a=1.0 - sdist, b=tsim)

    def dual_points(self, query: SpatialKeywordQuery) -> list[DualPoint]:
        """Dual coordinates of every database object under ``query``."""
        if self._kernel is not None:
            return self._kernel.dual_points_all(query)
        return [self.dual_point(obj, query) for obj in self._database]

    # ------------------------------------------------------------------
    # Exact ranking (the reference semantics every engine must match)
    # ------------------------------------------------------------------
    def rank_all(self, query: SpatialKeywordQuery) -> list[RankedObject]:
        """Rank the whole database under ``query``.

        Deterministic total order: score descending, then oid ascending.
        """
        if self._kernel is not None:
            sdists, tsims, scores = self._kernel.components_all(query)
            order = self._kernel.order_rows(scores)
            # The kernel's row-aligned object column (not the database
            # tuple): under live mutation, tombstoned rows leave the two
            # misaligned, and order_rows only emits live rows.
            objects = self._kernel.row_objects
            # Entry materialisation stays at C speed: column gathers via
            # map(__getitem__) feeding RankedObject._make through zip.
            return list(
                map(
                    RankedObject._make,
                    zip(
                        map(objects.__getitem__, order),
                        map(scores.__getitem__, order),
                        map(sdists.__getitem__, order),
                        map(tsims.__getitem__, order),
                        range(1, len(order) + 1),
                    ),
                )
            )
        scored: list[tuple[float, SpatialObject, ScoreBreakdown]] = []
        for obj in self._database:
            breakdown = self.breakdown(obj, query)
            scored.append((breakdown.score, obj, breakdown))
        scored.sort(key=lambda item: (-item[0], item[1].oid))
        return [
            RankedObject(
                obj=obj, score=breakdown.score, sdist=breakdown.sdist,
                tsim=breakdown.tsim, rank=position,
            )
            for position, (_, obj, breakdown) in enumerate(scored, start=1)
        ]

    def top_k(self, query: SpatialKeywordQuery) -> QueryResult:
        """Brute-force top-k: the reference result per Definition 1.

        The kernel path selects the k best rows with a bounded heap
        instead of materialising all n :class:`RankedObject` entries —
        same (score desc, oid asc) prefix as :meth:`rank_all`.
        """
        if self._kernel is not None:
            sdists, tsims, scores = self._kernel.components_all(query)
            oids = self._kernel.oids
            objects = self._kernel.row_objects
            if self._kernel.has_tombstones:
                candidates = (
                    (-scores[row], oids[row], row)
                    for row in self._kernel.live_row_list()
                )
            else:
                candidates = zip(map(neg, scores), oids, range(len(objects)))
            best = nsmallest(query.k, candidates)
            entries = [
                RankedObject(
                    obj=objects[row], score=scores[row], sdist=sdists[row],
                    tsim=tsims[row], rank=position,
                )
                for position, (_, _, row) in enumerate(best, start=1)
            ]
            return QueryResult(query, entries)
        ranking = self.rank_all(query)
        return QueryResult(query, ranking[: query.k])

    def rank_of(
        self, obj: SpatialObject, query: SpatialKeywordQuery
    ) -> int:
        """Exact rank of one object without materialising the full order.

        Counts objects that beat ``obj`` under the (score desc, oid asc)
        total order in a single scan — O(n) instead of O(n log n).
        """
        target_score = self.score(obj, query)
        if self._kernel_row_for(obj) is not None:
            return self._kernel.count_better(target_score, obj.oid, query) + 1
        better = 0
        for other in self._database:
            if other.oid == obj.oid:
                continue
            other_score = self.score(other, query)
            if other_score > target_score or (
                other_score == target_score and other.oid < obj.oid
            ):
                better += 1
        return better + 1

    def worst_rank(
        self,
        objects: Iterable[SpatialObject],
        query: SpatialKeywordQuery,
    ) -> int:
        """``R(M, q)``: the lowest (largest) rank among ``objects``.

        This is the quantity the penalty functions of Eqns. (3) and (4)
        are built on — "R(M, q) denotes the lowest rank of the missing
        objects under the query q".
        """
        targets = list(objects)
        if not targets:
            raise ValueError("worst_rank requires at least one object")
        if self._kernel is not None and all(
            target in self._database for target in targets
        ):
            ranks = self._kernel.rank_of_many(
                [target.oid for target in targets], query
            )
            return max(ranks.values())
        # Single scan: for each database object count how many targets it
        # beats; equivalently compute each target's rank and take the max.
        # Targets live in a flat (oid, score) list with a parallel count
        # list so the inner loop carries no dict lookups.
        target_data = [(t.oid, self.score(t, query)) for t in targets]
        better_counts = [0] * len(target_data)
        for other in self._database:
            other_oid = other.oid
            other_score = self.score(other, query)
            for position, (target_oid, target_score) in enumerate(target_data):
                if other_oid == target_oid:
                    continue
                if other_score > target_score or (
                    other_score == target_score and other_oid < target_oid
                ):
                    better_counts[position] += 1
        return 1 + max(better_counts)

    def result_from_objects(
        self, query: SpatialKeywordQuery, objects: Sequence[SpatialObject]
    ) -> QueryResult:
        """Build a :class:`QueryResult` from already-selected objects.

        Used by index-based engines: the engine supplies the top-k
        objects, this re-scores them (cheap: k is small) and attaches
        rank positions.
        """
        entries = []
        for position, obj in enumerate(objects, start=1):
            breakdown = self.breakdown(obj, query)
            entries.append(
                RankedObject(
                    obj=obj, score=breakdown.score, sdist=breakdown.sdist,
                    tsim=breakdown.tsim, rank=position,
                )
            )
        return QueryResult(query, entries)
